# Empty dependencies file for util_result_test.
# This may be replaced when dependencies are built.
