file(REMOVE_RECURSE
  "CMakeFiles/util_result_test.dir/util/result_test.cc.o"
  "CMakeFiles/util_result_test.dir/util/result_test.cc.o.d"
  "util_result_test"
  "util_result_test.pdb"
  "util_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
