# Empty dependencies file for sim_concurrent_test.
# This may be replaced when dependencies are built.
