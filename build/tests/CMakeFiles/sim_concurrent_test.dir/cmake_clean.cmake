file(REMOVE_RECURSE
  "CMakeFiles/sim_concurrent_test.dir/sim/concurrent_deployment_test.cc.o"
  "CMakeFiles/sim_concurrent_test.dir/sim/concurrent_deployment_test.cc.o.d"
  "sim_concurrent_test"
  "sim_concurrent_test.pdb"
  "sim_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
