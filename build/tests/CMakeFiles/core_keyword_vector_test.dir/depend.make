# Empty dependencies file for core_keyword_vector_test.
# This may be replaced when dependencies are built.
