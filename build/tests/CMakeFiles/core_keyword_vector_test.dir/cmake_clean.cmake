file(REMOVE_RECURSE
  "CMakeFiles/core_keyword_vector_test.dir/core/keyword_vector_test.cc.o"
  "CMakeFiles/core_keyword_vector_test.dir/core/keyword_vector_test.cc.o.d"
  "core_keyword_vector_test"
  "core_keyword_vector_test.pdb"
  "core_keyword_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_keyword_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
