# Empty dependencies file for qap_problem_test.
# This may be replaced when dependencies are built.
