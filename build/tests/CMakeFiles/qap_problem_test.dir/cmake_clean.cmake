file(REMOVE_RECURSE
  "CMakeFiles/qap_problem_test.dir/qap/hta_problem_test.cc.o"
  "CMakeFiles/qap_problem_test.dir/qap/hta_problem_test.cc.o.d"
  "qap_problem_test"
  "qap_problem_test.pdb"
  "qap_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qap_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
