file(REMOVE_RECURSE
  "CMakeFiles/util_check_test.dir/util/check_test.cc.o"
  "CMakeFiles/util_check_test.dir/util/check_test.cc.o.d"
  "util_check_test"
  "util_check_test.pdb"
  "util_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
