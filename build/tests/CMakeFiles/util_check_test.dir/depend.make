# Empty dependencies file for util_check_test.
# This may be replaced when dependencies are built.
