file(REMOVE_RECURSE
  "CMakeFiles/assign_approximation_test.dir/assign/approximation_test.cc.o"
  "CMakeFiles/assign_approximation_test.dir/assign/approximation_test.cc.o.d"
  "assign_approximation_test"
  "assign_approximation_test.pdb"
  "assign_approximation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_approximation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
