# Empty dependencies file for assign_approximation_test.
# This may be replaced when dependencies are built.
