file(REMOVE_RECURSE
  "CMakeFiles/assign_property_test.dir/assign/solver_property_test.cc.o"
  "CMakeFiles/assign_property_test.dir/assign/solver_property_test.cc.o.d"
  "assign_property_test"
  "assign_property_test.pdb"
  "assign_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
