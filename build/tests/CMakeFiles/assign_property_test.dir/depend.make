# Empty dependencies file for assign_property_test.
# This may be replaced when dependencies are built.
