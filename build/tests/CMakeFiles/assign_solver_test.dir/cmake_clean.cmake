file(REMOVE_RECURSE
  "CMakeFiles/assign_solver_test.dir/assign/hta_solver_test.cc.o"
  "CMakeFiles/assign_solver_test.dir/assign/hta_solver_test.cc.o.d"
  "assign_solver_test"
  "assign_solver_test.pdb"
  "assign_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
