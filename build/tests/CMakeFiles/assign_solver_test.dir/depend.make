# Empty dependencies file for assign_solver_test.
# This may be replaced when dependencies are built.
