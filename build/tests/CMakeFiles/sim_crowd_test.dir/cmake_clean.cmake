file(REMOVE_RECURSE
  "CMakeFiles/sim_crowd_test.dir/sim/crowd_sim_test.cc.o"
  "CMakeFiles/sim_crowd_test.dir/sim/crowd_sim_test.cc.o.d"
  "sim_crowd_test"
  "sim_crowd_test.pdb"
  "sim_crowd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_crowd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
