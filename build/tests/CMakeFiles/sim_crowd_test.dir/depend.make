# Empty dependencies file for sim_crowd_test.
# This may be replaced when dependencies are built.
