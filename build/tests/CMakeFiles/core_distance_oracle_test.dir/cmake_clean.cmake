file(REMOVE_RECURSE
  "CMakeFiles/core_distance_oracle_test.dir/core/distance_oracle_test.cc.o"
  "CMakeFiles/core_distance_oracle_test.dir/core/distance_oracle_test.cc.o.d"
  "core_distance_oracle_test"
  "core_distance_oracle_test.pdb"
  "core_distance_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_distance_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
