# Empty dependencies file for core_distance_test.
# This may be replaced when dependencies are built.
