# Empty dependencies file for sim_online_experiment_test.
# This may be replaced when dependencies are built.
