file(REMOVE_RECURSE
  "CMakeFiles/sim_online_experiment_test.dir/sim/online_experiment_test.cc.o"
  "CMakeFiles/sim_online_experiment_test.dir/sim/online_experiment_test.cc.o.d"
  "sim_online_experiment_test"
  "sim_online_experiment_test.pdb"
  "sim_online_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_online_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
