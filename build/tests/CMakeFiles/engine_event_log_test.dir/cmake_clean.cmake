file(REMOVE_RECURSE
  "CMakeFiles/engine_event_log_test.dir/engine/event_log_test.cc.o"
  "CMakeFiles/engine_event_log_test.dir/engine/event_log_test.cc.o.d"
  "engine_event_log_test"
  "engine_event_log_test.pdb"
  "engine_event_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
