file(REMOVE_RECURSE
  "CMakeFiles/assign_baselines_test.dir/assign/baselines_test.cc.o"
  "CMakeFiles/assign_baselines_test.dir/assign/baselines_test.cc.o.d"
  "assign_baselines_test"
  "assign_baselines_test.pdb"
  "assign_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
