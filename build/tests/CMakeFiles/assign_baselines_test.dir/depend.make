# Empty dependencies file for assign_baselines_test.
# This may be replaced when dependencies are built.
