# Empty compiler generated dependencies file for engine_service_test.
# This may be replaced when dependencies are built.
