file(REMOVE_RECURSE
  "CMakeFiles/engine_estimator_consistency_test.dir/engine/estimator_consistency_test.cc.o"
  "CMakeFiles/engine_estimator_consistency_test.dir/engine/estimator_consistency_test.cc.o.d"
  "engine_estimator_consistency_test"
  "engine_estimator_consistency_test.pdb"
  "engine_estimator_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_estimator_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
