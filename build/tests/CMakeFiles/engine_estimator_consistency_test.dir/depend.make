# Empty dependencies file for engine_estimator_consistency_test.
# This may be replaced when dependencies are built.
