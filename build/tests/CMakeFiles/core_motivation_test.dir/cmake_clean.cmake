file(REMOVE_RECURSE
  "CMakeFiles/core_motivation_test.dir/core/motivation_test.cc.o"
  "CMakeFiles/core_motivation_test.dir/core/motivation_test.cc.o.d"
  "core_motivation_test"
  "core_motivation_test.pdb"
  "core_motivation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_motivation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
