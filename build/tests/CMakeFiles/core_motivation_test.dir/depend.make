# Empty dependencies file for core_motivation_test.
# This may be replaced when dependencies are built.
