file(REMOVE_RECURSE
  "CMakeFiles/util_env_test.dir/util/env_test.cc.o"
  "CMakeFiles/util_env_test.dir/util/env_test.cc.o.d"
  "util_env_test"
  "util_env_test.pdb"
  "util_env_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
