file(REMOVE_RECURSE
  "CMakeFiles/assign_certificate_test.dir/assign/certificate_test.cc.o"
  "CMakeFiles/assign_certificate_test.dir/assign/certificate_test.cc.o.d"
  "assign_certificate_test"
  "assign_certificate_test.pdb"
  "assign_certificate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_certificate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
