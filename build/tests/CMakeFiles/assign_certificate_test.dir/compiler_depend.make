# Empty compiler generated dependencies file for assign_certificate_test.
# This may be replaced when dependencies are built.
