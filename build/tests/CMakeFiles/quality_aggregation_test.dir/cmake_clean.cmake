file(REMOVE_RECURSE
  "CMakeFiles/quality_aggregation_test.dir/quality/aggregation_test.cc.o"
  "CMakeFiles/quality_aggregation_test.dir/quality/aggregation_test.cc.o.d"
  "quality_aggregation_test"
  "quality_aggregation_test.pdb"
  "quality_aggregation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
