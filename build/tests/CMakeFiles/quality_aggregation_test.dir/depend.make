# Empty dependencies file for quality_aggregation_test.
# This may be replaced when dependencies are built.
