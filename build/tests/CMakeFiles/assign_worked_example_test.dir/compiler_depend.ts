# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for assign_worked_example_test.
