file(REMOVE_RECURSE
  "CMakeFiles/assign_worked_example_test.dir/assign/worked_example_test.cc.o"
  "CMakeFiles/assign_worked_example_test.dir/assign/worked_example_test.cc.o.d"
  "assign_worked_example_test"
  "assign_worked_example_test.pdb"
  "assign_worked_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_worked_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
