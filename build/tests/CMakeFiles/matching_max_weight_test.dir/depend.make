# Empty dependencies file for matching_max_weight_test.
# This may be replaced when dependencies are built.
