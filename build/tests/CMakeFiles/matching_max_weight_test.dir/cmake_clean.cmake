file(REMOVE_RECURSE
  "CMakeFiles/matching_max_weight_test.dir/matching/max_weight_matching_test.cc.o"
  "CMakeFiles/matching_max_weight_test.dir/matching/max_weight_matching_test.cc.o.d"
  "matching_max_weight_test"
  "matching_max_weight_test.pdb"
  "matching_max_weight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_max_weight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
