# Empty compiler generated dependencies file for integration_public_api_test.
# This may be replaced when dependencies are built.
