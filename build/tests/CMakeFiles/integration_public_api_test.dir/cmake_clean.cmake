file(REMOVE_RECURSE
  "CMakeFiles/integration_public_api_test.dir/integration/public_api_test.cc.o"
  "CMakeFiles/integration_public_api_test.dir/integration/public_api_test.cc.o.d"
  "integration_public_api_test"
  "integration_public_api_test.pdb"
  "integration_public_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_public_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
