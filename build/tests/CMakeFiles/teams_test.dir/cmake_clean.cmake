file(REMOVE_RECURSE
  "CMakeFiles/teams_test.dir/teams/team_formation_test.cc.o"
  "CMakeFiles/teams_test.dir/teams/team_formation_test.cc.o.d"
  "teams_test"
  "teams_test.pdb"
  "teams_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
