# Empty dependencies file for teams_test.
# This may be replaced when dependencies are built.
