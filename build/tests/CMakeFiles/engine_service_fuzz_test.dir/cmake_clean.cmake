file(REMOVE_RECURSE
  "CMakeFiles/engine_service_fuzz_test.dir/engine/service_fuzz_test.cc.o"
  "CMakeFiles/engine_service_fuzz_test.dir/engine/service_fuzz_test.cc.o.d"
  "engine_service_fuzz_test"
  "engine_service_fuzz_test.pdb"
  "engine_service_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_service_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
