# Empty dependencies file for engine_task_pool_test.
# This may be replaced when dependencies are built.
