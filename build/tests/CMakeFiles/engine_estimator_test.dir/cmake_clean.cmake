file(REMOVE_RECURSE
  "CMakeFiles/engine_estimator_test.dir/engine/motivation_estimator_test.cc.o"
  "CMakeFiles/engine_estimator_test.dir/engine/motivation_estimator_test.cc.o.d"
  "engine_estimator_test"
  "engine_estimator_test.pdb"
  "engine_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
