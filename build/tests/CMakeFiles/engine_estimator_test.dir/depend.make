# Empty dependencies file for engine_estimator_test.
# This may be replaced when dependencies are built.
