file(REMOVE_RECURSE
  "CMakeFiles/qap_view_test.dir/qap/qap_view_test.cc.o"
  "CMakeFiles/qap_view_test.dir/qap/qap_view_test.cc.o.d"
  "qap_view_test"
  "qap_view_test.pdb"
  "qap_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qap_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
