# Empty dependencies file for qap_view_test.
# This may be replaced when dependencies are built.
