file(REMOVE_RECURSE
  "CMakeFiles/matching_lsap_test.dir/matching/lsap_test.cc.o"
  "CMakeFiles/matching_lsap_test.dir/matching/lsap_test.cc.o.d"
  "matching_lsap_test"
  "matching_lsap_test.pdb"
  "matching_lsap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_lsap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
