# Empty dependencies file for matching_lsap_test.
# This may be replaced when dependencies are built.
