file(REMOVE_RECURSE
  "CMakeFiles/io_catalog_test.dir/io/catalog_io_test.cc.o"
  "CMakeFiles/io_catalog_test.dir/io/catalog_io_test.cc.o.d"
  "io_catalog_test"
  "io_catalog_test.pdb"
  "io_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
