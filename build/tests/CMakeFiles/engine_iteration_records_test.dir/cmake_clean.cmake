file(REMOVE_RECURSE
  "CMakeFiles/engine_iteration_records_test.dir/engine/iteration_records_test.cc.o"
  "CMakeFiles/engine_iteration_records_test.dir/engine/iteration_records_test.cc.o.d"
  "engine_iteration_records_test"
  "engine_iteration_records_test.pdb"
  "engine_iteration_records_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_iteration_records_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
