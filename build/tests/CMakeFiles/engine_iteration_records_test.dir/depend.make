# Empty dependencies file for engine_iteration_records_test.
# This may be replaced when dependencies are built.
