# Empty dependencies file for sim_worker_gen_test.
# This may be replaced when dependencies are built.
