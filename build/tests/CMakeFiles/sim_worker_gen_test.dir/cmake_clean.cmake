file(REMOVE_RECURSE
  "CMakeFiles/sim_worker_gen_test.dir/sim/worker_gen_test.cc.o"
  "CMakeFiles/sim_worker_gen_test.dir/sim/worker_gen_test.cc.o.d"
  "sim_worker_gen_test"
  "sim_worker_gen_test.pdb"
  "sim_worker_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_worker_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
