file(REMOVE_RECURSE
  "CMakeFiles/sim_catalog_test.dir/sim/catalog_test.cc.o"
  "CMakeFiles/sim_catalog_test.dir/sim/catalog_test.cc.o.d"
  "sim_catalog_test"
  "sim_catalog_test.pdb"
  "sim_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
