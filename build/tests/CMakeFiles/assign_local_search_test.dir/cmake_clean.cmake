file(REMOVE_RECURSE
  "CMakeFiles/assign_local_search_test.dir/assign/local_search_test.cc.o"
  "CMakeFiles/assign_local_search_test.dir/assign/local_search_test.cc.o.d"
  "assign_local_search_test"
  "assign_local_search_test.pdb"
  "assign_local_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_local_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
