# Empty dependencies file for assign_local_search_test.
# This may be replaced when dependencies are built.
