file(REMOVE_RECURSE
  "CMakeFiles/matching_edge_cases_test.dir/matching/matching_edge_cases_test.cc.o"
  "CMakeFiles/matching_edge_cases_test.dir/matching/matching_edge_cases_test.cc.o.d"
  "matching_edge_cases_test"
  "matching_edge_cases_test.pdb"
  "matching_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
