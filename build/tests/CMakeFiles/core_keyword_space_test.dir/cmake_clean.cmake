file(REMOVE_RECURSE
  "CMakeFiles/core_keyword_space_test.dir/core/keyword_space_test.cc.o"
  "CMakeFiles/core_keyword_space_test.dir/core/keyword_space_test.cc.o.d"
  "core_keyword_space_test"
  "core_keyword_space_test.pdb"
  "core_keyword_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_keyword_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
