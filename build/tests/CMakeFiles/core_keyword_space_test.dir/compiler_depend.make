# Empty compiler generated dependencies file for core_keyword_space_test.
# This may be replaced when dependencies are built.
