file(REMOVE_RECURSE
  "CMakeFiles/hta_cli.dir/hta_cli.cc.o"
  "CMakeFiles/hta_cli.dir/hta_cli.cc.o.d"
  "hta"
  "hta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
