# Empty compiler generated dependencies file for hta_cli.
# This may be replaced when dependencies are built.
