# Empty compiler generated dependencies file for ablation_structured_exact.
# This may be replaced when dependencies are built.
