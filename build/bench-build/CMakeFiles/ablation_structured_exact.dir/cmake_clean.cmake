file(REMOVE_RECURSE
  "../bench/ablation_structured_exact"
  "../bench/ablation_structured_exact.pdb"
  "CMakeFiles/ablation_structured_exact.dir/ablation_structured_exact.cc.o"
  "CMakeFiles/ablation_structured_exact.dir/ablation_structured_exact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_structured_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
