file(REMOVE_RECURSE
  "../bench/table1_worked_example"
  "../bench/table1_worked_example.pdb"
  "CMakeFiles/table1_worked_example.dir/table1_worked_example.cc.o"
  "CMakeFiles/table1_worked_example.dir/table1_worked_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_worked_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
