# Empty dependencies file for table1_worked_example.
# This may be replaced when dependencies are built.
