file(REMOVE_RECURSE
  "../bench/ablation_matching"
  "../bench/ablation_matching.pdb"
  "CMakeFiles/ablation_matching.dir/ablation_matching.cc.o"
  "CMakeFiles/ablation_matching.dir/ablation_matching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
