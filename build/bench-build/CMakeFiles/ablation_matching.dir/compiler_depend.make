# Empty compiler generated dependencies file for ablation_matching.
# This may be replaced when dependencies are built.
