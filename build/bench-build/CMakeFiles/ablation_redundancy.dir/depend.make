# Empty dependencies file for ablation_redundancy.
# This may be replaced when dependencies are built.
