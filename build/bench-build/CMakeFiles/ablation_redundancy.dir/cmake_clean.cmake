file(REMOVE_RECURSE
  "../bench/ablation_redundancy"
  "../bench/ablation_redundancy.pdb"
  "CMakeFiles/ablation_redundancy.dir/ablation_redundancy.cc.o"
  "CMakeFiles/ablation_redundancy.dir/ablation_redundancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
