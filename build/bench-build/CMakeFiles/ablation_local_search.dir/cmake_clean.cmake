file(REMOVE_RECURSE
  "../bench/ablation_local_search"
  "../bench/ablation_local_search.pdb"
  "CMakeFiles/ablation_local_search.dir/ablation_local_search.cc.o"
  "CMakeFiles/ablation_local_search.dir/ablation_local_search.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
