# Empty compiler generated dependencies file for ablation_lsap_solvers.
# This may be replaced when dependencies are built.
