file(REMOVE_RECURSE
  "../bench/ablation_lsap_solvers"
  "../bench/ablation_lsap_solvers.pdb"
  "CMakeFiles/ablation_lsap_solvers.dir/ablation_lsap_solvers.cc.o"
  "CMakeFiles/ablation_lsap_solvers.dir/ablation_lsap_solvers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lsap_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
