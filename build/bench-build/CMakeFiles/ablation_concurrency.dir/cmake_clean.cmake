file(REMOVE_RECURSE
  "../bench/ablation_concurrency"
  "../bench/ablation_concurrency.pdb"
  "CMakeFiles/ablation_concurrency.dir/ablation_concurrency.cc.o"
  "CMakeFiles/ablation_concurrency.dir/ablation_concurrency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
