file(REMOVE_RECURSE
  "../bench/ablation_metrics"
  "../bench/ablation_metrics.pdb"
  "CMakeFiles/ablation_metrics.dir/ablation_metrics.cc.o"
  "CMakeFiles/ablation_metrics.dir/ablation_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
