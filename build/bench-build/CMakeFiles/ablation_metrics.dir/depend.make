# Empty dependencies file for ablation_metrics.
# This may be replaced when dependencies are built.
