file(REMOVE_RECURSE
  "../bench/fig2c_time_vs_workers"
  "../bench/fig2c_time_vs_workers.pdb"
  "CMakeFiles/fig2c_time_vs_workers.dir/fig2c_time_vs_workers.cc.o"
  "CMakeFiles/fig2c_time_vs_workers.dir/fig2c_time_vs_workers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_time_vs_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
