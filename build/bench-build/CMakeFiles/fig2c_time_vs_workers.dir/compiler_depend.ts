# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2c_time_vs_workers.
