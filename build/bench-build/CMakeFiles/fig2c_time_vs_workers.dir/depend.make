# Empty dependencies file for fig2c_time_vs_workers.
# This may be replaced when dependencies are built.
