# Empty compiler generated dependencies file for fig2b_objective_vs_tasks.
# This may be replaced when dependencies are built.
