file(REMOVE_RECURSE
  "../bench/ablation_xmax"
  "../bench/ablation_xmax.pdb"
  "CMakeFiles/ablation_xmax.dir/ablation_xmax.cc.o"
  "CMakeFiles/ablation_xmax.dir/ablation_xmax.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
