# Empty dependencies file for ablation_xmax.
# This may be replaced when dependencies are built.
