# Empty dependencies file for fig2a_time_vs_tasks.
# This may be replaced when dependencies are built.
