file(REMOVE_RECURSE
  "../bench/fig2a_time_vs_tasks"
  "../bench/fig2a_time_vs_tasks.pdb"
  "CMakeFiles/fig2a_time_vs_tasks.dir/fig2a_time_vs_tasks.cc.o"
  "CMakeFiles/fig2a_time_vs_tasks.dir/fig2a_time_vs_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_time_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
