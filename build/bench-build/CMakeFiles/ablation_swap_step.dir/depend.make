# Empty dependencies file for ablation_swap_step.
# This may be replaced when dependencies are built.
