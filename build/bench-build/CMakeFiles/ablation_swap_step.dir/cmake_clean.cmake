file(REMOVE_RECURSE
  "../bench/ablation_swap_step"
  "../bench/ablation_swap_step.pdb"
  "CMakeFiles/ablation_swap_step.dir/ablation_swap_step.cc.o"
  "CMakeFiles/ablation_swap_step.dir/ablation_swap_step.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swap_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
