file(REMOVE_RECURSE
  "../bench/fig3_time_vs_groups"
  "../bench/fig3_time_vs_groups.pdb"
  "CMakeFiles/fig3_time_vs_groups.dir/fig3_time_vs_groups.cc.o"
  "CMakeFiles/fig3_time_vs_groups.dir/fig3_time_vs_groups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_vs_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
