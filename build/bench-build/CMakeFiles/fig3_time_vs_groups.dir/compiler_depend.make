# Empty compiler generated dependencies file for fig3_time_vs_groups.
# This may be replaced when dependencies are built.
