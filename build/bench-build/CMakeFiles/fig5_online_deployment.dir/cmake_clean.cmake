file(REMOVE_RECURSE
  "../bench/fig5_online_deployment"
  "../bench/fig5_online_deployment.pdb"
  "CMakeFiles/fig5_online_deployment.dir/fig5_online_deployment.cc.o"
  "CMakeFiles/fig5_online_deployment.dir/fig5_online_deployment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_online_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
