# Empty compiler generated dependencies file for fig5_online_deployment.
# This may be replaced when dependencies are built.
