
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/assignment_service.cc" "src/engine/CMakeFiles/hta_engine.dir/assignment_service.cc.o" "gcc" "src/engine/CMakeFiles/hta_engine.dir/assignment_service.cc.o.d"
  "/root/repo/src/engine/event_log.cc" "src/engine/CMakeFiles/hta_engine.dir/event_log.cc.o" "gcc" "src/engine/CMakeFiles/hta_engine.dir/event_log.cc.o.d"
  "/root/repo/src/engine/motivation_estimator.cc" "src/engine/CMakeFiles/hta_engine.dir/motivation_estimator.cc.o" "gcc" "src/engine/CMakeFiles/hta_engine.dir/motivation_estimator.cc.o.d"
  "/root/repo/src/engine/task_pool.cc" "src/engine/CMakeFiles/hta_engine.dir/task_pool.cc.o" "gcc" "src/engine/CMakeFiles/hta_engine.dir/task_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/hta_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/hta_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hta_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
