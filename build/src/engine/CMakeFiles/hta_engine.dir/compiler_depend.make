# Empty compiler generated dependencies file for hta_engine.
# This may be replaced when dependencies are built.
