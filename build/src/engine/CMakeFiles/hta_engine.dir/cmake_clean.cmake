file(REMOVE_RECURSE
  "CMakeFiles/hta_engine.dir/assignment_service.cc.o"
  "CMakeFiles/hta_engine.dir/assignment_service.cc.o.d"
  "CMakeFiles/hta_engine.dir/event_log.cc.o"
  "CMakeFiles/hta_engine.dir/event_log.cc.o.d"
  "CMakeFiles/hta_engine.dir/motivation_estimator.cc.o"
  "CMakeFiles/hta_engine.dir/motivation_estimator.cc.o.d"
  "CMakeFiles/hta_engine.dir/task_pool.cc.o"
  "CMakeFiles/hta_engine.dir/task_pool.cc.o.d"
  "libhta_engine.a"
  "libhta_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
