file(REMOVE_RECURSE
  "libhta_engine.a"
)
