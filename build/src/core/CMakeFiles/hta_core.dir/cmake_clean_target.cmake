file(REMOVE_RECURSE
  "libhta_core.a"
)
