
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/hta_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/hta_core.dir/distance.cc.o.d"
  "/root/repo/src/core/distance_oracle.cc" "src/core/CMakeFiles/hta_core.dir/distance_oracle.cc.o" "gcc" "src/core/CMakeFiles/hta_core.dir/distance_oracle.cc.o.d"
  "/root/repo/src/core/keyword_space.cc" "src/core/CMakeFiles/hta_core.dir/keyword_space.cc.o" "gcc" "src/core/CMakeFiles/hta_core.dir/keyword_space.cc.o.d"
  "/root/repo/src/core/keyword_vector.cc" "src/core/CMakeFiles/hta_core.dir/keyword_vector.cc.o" "gcc" "src/core/CMakeFiles/hta_core.dir/keyword_vector.cc.o.d"
  "/root/repo/src/core/motivation.cc" "src/core/CMakeFiles/hta_core.dir/motivation.cc.o" "gcc" "src/core/CMakeFiles/hta_core.dir/motivation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
