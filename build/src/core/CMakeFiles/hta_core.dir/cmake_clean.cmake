file(REMOVE_RECURSE
  "CMakeFiles/hta_core.dir/distance.cc.o"
  "CMakeFiles/hta_core.dir/distance.cc.o.d"
  "CMakeFiles/hta_core.dir/distance_oracle.cc.o"
  "CMakeFiles/hta_core.dir/distance_oracle.cc.o.d"
  "CMakeFiles/hta_core.dir/keyword_space.cc.o"
  "CMakeFiles/hta_core.dir/keyword_space.cc.o.d"
  "CMakeFiles/hta_core.dir/keyword_vector.cc.o"
  "CMakeFiles/hta_core.dir/keyword_vector.cc.o.d"
  "CMakeFiles/hta_core.dir/motivation.cc.o"
  "CMakeFiles/hta_core.dir/motivation.cc.o.d"
  "libhta_core.a"
  "libhta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
