# Empty dependencies file for hta_core.
# This may be replaced when dependencies are built.
