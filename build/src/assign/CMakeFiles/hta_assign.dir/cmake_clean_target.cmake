file(REMOVE_RECURSE
  "libhta_assign.a"
)
