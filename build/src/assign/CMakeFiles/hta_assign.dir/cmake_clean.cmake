file(REMOVE_RECURSE
  "CMakeFiles/hta_assign.dir/assignment.cc.o"
  "CMakeFiles/hta_assign.dir/assignment.cc.o.d"
  "CMakeFiles/hta_assign.dir/baselines.cc.o"
  "CMakeFiles/hta_assign.dir/baselines.cc.o.d"
  "CMakeFiles/hta_assign.dir/brute_force.cc.o"
  "CMakeFiles/hta_assign.dir/brute_force.cc.o.d"
  "CMakeFiles/hta_assign.dir/hta_solver.cc.o"
  "CMakeFiles/hta_assign.dir/hta_solver.cc.o.d"
  "CMakeFiles/hta_assign.dir/local_search.cc.o"
  "CMakeFiles/hta_assign.dir/local_search.cc.o.d"
  "libhta_assign.a"
  "libhta_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
