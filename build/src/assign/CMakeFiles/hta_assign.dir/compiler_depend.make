# Empty compiler generated dependencies file for hta_assign.
# This may be replaced when dependencies are built.
