
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/assignment.cc" "src/assign/CMakeFiles/hta_assign.dir/assignment.cc.o" "gcc" "src/assign/CMakeFiles/hta_assign.dir/assignment.cc.o.d"
  "/root/repo/src/assign/baselines.cc" "src/assign/CMakeFiles/hta_assign.dir/baselines.cc.o" "gcc" "src/assign/CMakeFiles/hta_assign.dir/baselines.cc.o.d"
  "/root/repo/src/assign/brute_force.cc" "src/assign/CMakeFiles/hta_assign.dir/brute_force.cc.o" "gcc" "src/assign/CMakeFiles/hta_assign.dir/brute_force.cc.o.d"
  "/root/repo/src/assign/hta_solver.cc" "src/assign/CMakeFiles/hta_assign.dir/hta_solver.cc.o" "gcc" "src/assign/CMakeFiles/hta_assign.dir/hta_solver.cc.o.d"
  "/root/repo/src/assign/local_search.cc" "src/assign/CMakeFiles/hta_assign.dir/local_search.cc.o" "gcc" "src/assign/CMakeFiles/hta_assign.dir/local_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qap/CMakeFiles/hta_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hta_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
