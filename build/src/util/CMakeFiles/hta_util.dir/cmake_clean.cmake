file(REMOVE_RECURSE
  "CMakeFiles/hta_util.dir/env.cc.o"
  "CMakeFiles/hta_util.dir/env.cc.o.d"
  "CMakeFiles/hta_util.dir/rng.cc.o"
  "CMakeFiles/hta_util.dir/rng.cc.o.d"
  "CMakeFiles/hta_util.dir/stats.cc.o"
  "CMakeFiles/hta_util.dir/stats.cc.o.d"
  "CMakeFiles/hta_util.dir/status.cc.o"
  "CMakeFiles/hta_util.dir/status.cc.o.d"
  "CMakeFiles/hta_util.dir/table.cc.o"
  "CMakeFiles/hta_util.dir/table.cc.o.d"
  "libhta_util.a"
  "libhta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
