# Empty dependencies file for hta_util.
# This may be replaced when dependencies are built.
