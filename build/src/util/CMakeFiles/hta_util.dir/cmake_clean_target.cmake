file(REMOVE_RECURSE
  "libhta_util.a"
)
