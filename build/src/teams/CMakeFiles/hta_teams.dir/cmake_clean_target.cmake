file(REMOVE_RECURSE
  "libhta_teams.a"
)
