file(REMOVE_RECURSE
  "CMakeFiles/hta_teams.dir/team_formation.cc.o"
  "CMakeFiles/hta_teams.dir/team_formation.cc.o.d"
  "libhta_teams.a"
  "libhta_teams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_teams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
