# Empty compiler generated dependencies file for hta_teams.
# This may be replaced when dependencies are built.
