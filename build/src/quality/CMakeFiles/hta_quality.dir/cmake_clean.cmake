file(REMOVE_RECURSE
  "CMakeFiles/hta_quality.dir/aggregation.cc.o"
  "CMakeFiles/hta_quality.dir/aggregation.cc.o.d"
  "libhta_quality.a"
  "libhta_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
