file(REMOVE_RECURSE
  "libhta_quality.a"
)
