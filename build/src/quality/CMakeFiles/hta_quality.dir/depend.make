# Empty dependencies file for hta_quality.
# This may be replaced when dependencies are built.
