file(REMOVE_RECURSE
  "CMakeFiles/hta_sim.dir/behavior.cc.o"
  "CMakeFiles/hta_sim.dir/behavior.cc.o.d"
  "CMakeFiles/hta_sim.dir/catalog.cc.o"
  "CMakeFiles/hta_sim.dir/catalog.cc.o.d"
  "CMakeFiles/hta_sim.dir/concurrent_deployment.cc.o"
  "CMakeFiles/hta_sim.dir/concurrent_deployment.cc.o.d"
  "CMakeFiles/hta_sim.dir/crowd_sim.cc.o"
  "CMakeFiles/hta_sim.dir/crowd_sim.cc.o.d"
  "CMakeFiles/hta_sim.dir/online_experiment.cc.o"
  "CMakeFiles/hta_sim.dir/online_experiment.cc.o.d"
  "CMakeFiles/hta_sim.dir/worker_gen.cc.o"
  "CMakeFiles/hta_sim.dir/worker_gen.cc.o.d"
  "libhta_sim.a"
  "libhta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
