# Empty dependencies file for hta_sim.
# This may be replaced when dependencies are built.
