file(REMOVE_RECURSE
  "libhta_sim.a"
)
