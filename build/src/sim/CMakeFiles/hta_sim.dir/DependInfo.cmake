
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/behavior.cc" "src/sim/CMakeFiles/hta_sim.dir/behavior.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/behavior.cc.o.d"
  "/root/repo/src/sim/catalog.cc" "src/sim/CMakeFiles/hta_sim.dir/catalog.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/catalog.cc.o.d"
  "/root/repo/src/sim/concurrent_deployment.cc" "src/sim/CMakeFiles/hta_sim.dir/concurrent_deployment.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/concurrent_deployment.cc.o.d"
  "/root/repo/src/sim/crowd_sim.cc" "src/sim/CMakeFiles/hta_sim.dir/crowd_sim.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/crowd_sim.cc.o.d"
  "/root/repo/src/sim/online_experiment.cc" "src/sim/CMakeFiles/hta_sim.dir/online_experiment.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/online_experiment.cc.o.d"
  "/root/repo/src/sim/worker_gen.cc" "src/sim/CMakeFiles/hta_sim.dir/worker_gen.cc.o" "gcc" "src/sim/CMakeFiles/hta_sim.dir/worker_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/hta_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/hta_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/hta_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hta_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
