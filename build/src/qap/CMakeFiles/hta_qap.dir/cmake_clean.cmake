file(REMOVE_RECURSE
  "CMakeFiles/hta_qap.dir/hta_problem.cc.o"
  "CMakeFiles/hta_qap.dir/hta_problem.cc.o.d"
  "CMakeFiles/hta_qap.dir/qap_view.cc.o"
  "CMakeFiles/hta_qap.dir/qap_view.cc.o.d"
  "libhta_qap.a"
  "libhta_qap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
