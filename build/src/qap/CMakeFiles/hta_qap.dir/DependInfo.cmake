
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qap/hta_problem.cc" "src/qap/CMakeFiles/hta_qap.dir/hta_problem.cc.o" "gcc" "src/qap/CMakeFiles/hta_qap.dir/hta_problem.cc.o.d"
  "/root/repo/src/qap/qap_view.cc" "src/qap/CMakeFiles/hta_qap.dir/qap_view.cc.o" "gcc" "src/qap/CMakeFiles/hta_qap.dir/qap_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
