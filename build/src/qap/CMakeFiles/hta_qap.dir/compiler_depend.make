# Empty compiler generated dependencies file for hta_qap.
# This may be replaced when dependencies are built.
