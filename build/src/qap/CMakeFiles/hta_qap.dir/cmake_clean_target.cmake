file(REMOVE_RECURSE
  "libhta_qap.a"
)
