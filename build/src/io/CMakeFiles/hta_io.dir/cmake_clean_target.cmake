file(REMOVE_RECURSE
  "libhta_io.a"
)
