# Empty compiler generated dependencies file for hta_io.
# This may be replaced when dependencies are built.
