file(REMOVE_RECURSE
  "CMakeFiles/hta_io.dir/catalog_io.cc.o"
  "CMakeFiles/hta_io.dir/catalog_io.cc.o.d"
  "CMakeFiles/hta_io.dir/csv.cc.o"
  "CMakeFiles/hta_io.dir/csv.cc.o.d"
  "libhta_io.a"
  "libhta_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
