# Empty dependencies file for hta_matching.
# This may be replaced when dependencies are built.
