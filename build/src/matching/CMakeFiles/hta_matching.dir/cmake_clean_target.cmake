file(REMOVE_RECURSE
  "libhta_matching.a"
)
