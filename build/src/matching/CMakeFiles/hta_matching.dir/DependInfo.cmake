
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/lsap.cc" "src/matching/CMakeFiles/hta_matching.dir/lsap.cc.o" "gcc" "src/matching/CMakeFiles/hta_matching.dir/lsap.cc.o.d"
  "/root/repo/src/matching/max_weight_matching.cc" "src/matching/CMakeFiles/hta_matching.dir/max_weight_matching.cc.o" "gcc" "src/matching/CMakeFiles/hta_matching.dir/max_weight_matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
