file(REMOVE_RECURSE
  "CMakeFiles/hta_matching.dir/lsap.cc.o"
  "CMakeFiles/hta_matching.dir/lsap.cc.o.d"
  "CMakeFiles/hta_matching.dir/max_weight_matching.cc.o"
  "CMakeFiles/hta_matching.dir/max_weight_matching.cc.o.d"
  "libhta_matching.a"
  "libhta_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hta_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
