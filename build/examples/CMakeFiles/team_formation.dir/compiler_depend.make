# Empty compiler generated dependencies file for team_formation.
# This may be replaced when dependencies are built.
