file(REMOVE_RECURSE
  "CMakeFiles/team_formation.dir/team_formation.cpp.o"
  "CMakeFiles/team_formation.dir/team_formation.cpp.o.d"
  "team_formation"
  "team_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
