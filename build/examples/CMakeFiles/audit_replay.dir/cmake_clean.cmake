file(REMOVE_RECURSE
  "CMakeFiles/audit_replay.dir/audit_replay.cpp.o"
  "CMakeFiles/audit_replay.dir/audit_replay.cpp.o.d"
  "audit_replay"
  "audit_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
