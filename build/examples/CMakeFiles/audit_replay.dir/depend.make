# Empty dependencies file for audit_replay.
# This may be replaced when dependencies are built.
