# Empty dependencies file for adaptive_session.
# This may be replaced when dependencies are built.
