file(REMOVE_RECURSE
  "CMakeFiles/adaptive_session.dir/adaptive_session.cpp.o"
  "CMakeFiles/adaptive_session.dir/adaptive_session.cpp.o.d"
  "adaptive_session"
  "adaptive_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
