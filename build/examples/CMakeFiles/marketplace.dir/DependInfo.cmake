
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/marketplace.cpp" "examples/CMakeFiles/marketplace.dir/marketplace.cpp.o" "gcc" "examples/CMakeFiles/marketplace.dir/marketplace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/hta_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hta_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/hta_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hta_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/hta_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/teams/CMakeFiles/hta_teams.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/hta_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
