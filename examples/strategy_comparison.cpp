// End-to-end strategy comparison on the simulated crowd platform: runs
// a miniature version of the paper's online deployment (Fig. 5) and
// prints quality / throughput / retention per strategy.
//
// Run: ./build/examples/strategy_comparison [sessions_per_strategy]
#include <cstdlib>
#include <iostream>

#include "sim/online_experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hta;

  OnlineExperimentOptions options;
  options.sessions_per_strategy = argc > 1 ? std::atoi(argv[1]) : 8;
  options.session.max_minutes = 15.0;
  options.catalog.num_groups = 40;
  options.catalog.tasks_per_group = 40;
  options.seed = 2024;

  std::cout << "Simulating " << options.sessions_per_strategy
            << " work sessions per strategy ("
            << options.session.max_minutes << "-minute cap)...\n\n";

  const OnlineExperimentResult result = RunOnlineExperiment(options);

  TableWriter table({"strategy", "quality", "tasks", "tasks/session",
                     "mean session (min)"});
  for (const StrategyCurves& c : result.curves) {
    const double quality =
        c.total_questions > 0
            ? static_cast<double>(c.total_correct) / c.total_questions
            : 0.0;
    const SampleSummary durations = Summarize(c.session_duration_minutes);
    const SampleSummary tasks = Summarize(c.tasks_per_session);
    table.AddRow({StrategyName(c.kind), FmtPercent(quality),
                  FmtInt(static_cast<long long>(c.total_tasks)),
                  FmtDouble(tasks.mean, 1), FmtDouble(durations.mean, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nRetention (% sessions still active) at minute 5 / 10 / 15:\n";
  for (const StrategyCurves& c : result.curves) {
    std::cout << "  " << StrategyName(c.kind) << ": "
              << FmtDouble(c.retention_pct[5], 0) << "% / "
              << FmtDouble(c.retention_pct[10], 0) << "% / "
              << FmtDouble(c.retention_pct.back(), 0) << "%\n";
  }
  std::cout << "\nExpected shape (paper Fig. 5): div-only wins on quality, "
               "rel-only trails everywhere,\nadaptive hta-gre offers the "
               "best throughput/retention compromise.\n";
  return 0;
}
