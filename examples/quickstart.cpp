// Quickstart: define tasks and workers, solve one HTA iteration with
// both algorithms, and inspect the assignment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "assign/hta_solver.h"
#include "core/keyword_space.h"
#include "util/table.h"

int main() {
  using namespace hta;

  // 1. A keyword space: tasks and workers are Boolean vectors over it.
  KeywordSpace space;
  const KeywordId kAudio = space.Intern("audio");
  const KeywordId kEnglish = space.Intern("english");
  const KeywordId kNews = space.Intern("news");
  const KeywordId kTagging = space.Intern("tagging");
  const KeywordId kStreetView = space.Intern("google street view");
  const KeywordId kSentiment = space.Intern("sentiment analysis");
  const size_t universe = space.size();

  // 2. Tasks, AMT-style.
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(universe, {kAudio, kEnglish, kNews}),
                     "transcribe a news clip", 0, 0.08);
  tasks.emplace_back(1, KeywordVector(universe, {kAudio, kEnglish}),
                     "transcribe a podcast snippet", 0, 0.07);
  tasks.emplace_back(2, KeywordVector(universe, {kTagging, kStreetView}),
                     "tag storefronts in street view", 1, 0.05);
  tasks.emplace_back(3, KeywordVector(universe, {kTagging, kStreetView,
                                                 kEnglish}),
                     "tag street signs", 1, 0.05);
  tasks.emplace_back(4, KeywordVector(universe, {kSentiment, kEnglish}),
                     "label tweet sentiment", 2, 0.03);
  tasks.emplace_back(5, KeywordVector(universe, {kSentiment, kNews}),
                     "label headline sentiment", 2, 0.03);

  // 3. Workers: expressed interests + (alpha, beta) motivation weights.
  //    Worker 0 craves variety; worker 1 wants tasks matching her skills.
  std::vector<Worker> workers;
  workers.emplace_back(100, KeywordVector(universe, {kAudio, kEnglish}),
                       MotivationWeights{0.8, 0.2});
  workers.emplace_back(101, KeywordVector(universe, {kSentiment, kEnglish}),
                       MotivationWeights{0.2, 0.8});

  // 4. Build the HTA instance: at most Xmax = 3 tasks per worker.
  auto problem = HtaProblem::Create(&tasks, &workers, /*xmax=*/3);
  if (!problem.ok()) {
    std::cerr << "failed to build problem: " << problem.status() << "\n";
    return 1;
  }

  // 5. Solve with both algorithms.
  for (const char* name : {"hta-app", "hta-gre"}) {
    auto result = std::string(name) == "hta-app" ? SolveHtaApp(*problem, 42)
                                                 : SolveHtaGre(*problem, 42);
    if (!result.ok()) {
      std::cerr << "solve failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "=== " << name
              << "  (total motivation = " << FmtDouble(result->stats.motivation)
              << ", solve time = "
              << FmtDouble(result->stats.total_seconds * 1e3, 2) << " ms)\n";
    for (size_t q = 0; q < workers.size(); ++q) {
      std::cout << "  worker " << workers[q].id() << " (alpha="
                << workers[q].weights().alpha << "): ";
      for (TaskIndex t : result->assignment.bundles[q]) {
        std::cout << "[" << tasks[t].title() << "] ";
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nThe diversity-seeking worker receives tasks spanning "
               "groups;\nthe relevance-seeking worker receives tasks "
               "matching her keywords.\n";
  return 0;
}
