// Audit-log replay: run a short deployment with the audit log enabled,
// persist it to CSV, reload it, and recompute every worker's (alpha,
// beta) estimate offline — bit-identical to what the live service
// computed. This is the operational story for Section III's "observe
// workers, capture their motivation": the observation stream is
// durable and reanalyzable.
//
// Run: ./build/examples/audit_replay
#include <cstdio>
#include <iostream>

#include "engine/assignment_service.h"
#include "io/catalog_io.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "util/table.h"

int main() {
  using namespace hta;

  CatalogOptions catalog_options;
  catalog_options.num_groups = 20;
  catalog_options.tasks_per_group = 30;
  catalog_options.vocabulary_size = 200;
  auto catalog = GenerateCatalog(catalog_options);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  EventLog log;
  AssignmentServiceOptions service_options;
  service_options.strategy = StrategyKind::kHtaGre;
  service_options.xmax = 8;
  service_options.extra_random_tasks = 2;
  service_options.refresh_after_completions = 4;
  service_options.max_tasks_per_iteration = 200;
  service_options.event_log = &log;
  AssignmentService service(&catalog->tasks, service_options);

  // Three simulated workers complete a few dozen tasks.
  std::vector<Worker> replay_workers;
  std::vector<uint64_t> ids;
  for (int q = 0; q < 3; ++q) {
    Rng rng(100 + q);
    BehaviorParams params;
    params.alpha_latent = 0.2 + 0.3 * q;  // A spread of preferences.
    const KeywordVector interests = catalog->tasks[q * 150].keywords();
    BehavioralWorker worker(&catalog->tasks, DistanceKind::kJaccard,
                            Worker(q, interests), params, rng);
    const uint64_t id = service.RegisterWorker(interests);
    ids.push_back(id);
    replay_workers.emplace_back(id, interests);
    double minute = service.clock_minutes();
    for (int step = 0; step < 16; ++step) {
      const auto displayed = service.Displayed(id);
      if (displayed.empty()) break;
      const size_t chosen = worker.ChooseTask(displayed);
      minute += worker.CompletionSeconds(chosen, displayed) / 60.0;
      worker.RecordCompletion(chosen);
      service.AdvanceClock(minute);
      if (!service.NotifyCompleted(id, chosen).ok()) break;
    }
    service.Deregister(id);
  }

  // Persist the audit log and load it back.
  const std::string path = "/tmp/hta_audit_example.csv";
  if (Status s = SaveEventLogCsv(log, path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto loaded = LoadEventLogCsv(path);
  std::remove(path.c_str());
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  std::cout << "audit log: " << loaded->size()
            << " events persisted and reloaded\n\n";

  auto replayed = ReplayEstimates(*loaded, catalog->tasks, replay_workers);
  if (!replayed.ok()) {
    std::cerr << replayed.status() << "\n";
    return 1;
  }

  TableWriter table({"worker", "live alpha", "replayed alpha", "match"});
  for (uint64_t id : ids) {
    const MotivationWeights live = service.CurrentWeights(id);
    const MotivationWeights offline = replayed->at(id);
    table.AddRow({FmtInt(static_cast<long long>(id)),
                  FmtDouble(live.alpha, 6), FmtDouble(offline.alpha, 6),
                  live.alpha == offline.alpha ? "exact" : "DIFFERS"});
  }
  table.Print(std::cout);
  std::cout << "\nOffline replay reproduces the live service's motivation "
               "estimates exactly.\n";
  return 0;
}
