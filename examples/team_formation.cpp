// Team formation for collaborative tasks — the paper's future-work
// direction (Section VII) implemented as a library extension: form the
// most motivated team per task from workers with complementary skills.
//
// Run: ./build/examples/team_formation
#include <iostream>

#include "core/keyword_space.h"
#include "teams/team_formation.h"
#include "util/table.h"

int main() {
  using namespace hta;

  KeywordSpace space;
  const KeywordId kFrench = space.Intern("french");
  const KeywordId kEnglish = space.Intern("english");
  const KeywordId kAudio = space.Intern("audio");
  const KeywordId kMedical = space.Intern("medical");
  const KeywordId kLegal = space.Intern("legal");
  const KeywordId kOcr = space.Intern("ocr");
  const size_t universe = space.size();

  // Two collaborative tasks, each needing a pair of workers.
  std::vector<CollaborativeTask> tasks;
  tasks.push_back({Task(0, KeywordVector(universe,
                                         {kFrench, kEnglish, kAudio}),
                        "translate a French interview recording", 0, 0.40),
                   2});
  tasks.push_back({Task(1, KeywordVector(universe,
                                         {kMedical, kLegal, kOcr}),
                        "digitize a medico-legal report", 1, 0.55),
                   2});

  // A worker pool with partially overlapping skills.
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(universe, {kFrench, kEnglish}));
  workers.emplace_back(1, KeywordVector(universe, {kAudio, kEnglish}));
  workers.emplace_back(2, KeywordVector(universe, {kFrench, kAudio}));
  workers.emplace_back(3, KeywordVector(universe, {kMedical, kOcr}));
  workers.emplace_back(4, KeywordVector(universe, {kLegal}));
  workers.emplace_back(5, KeywordVector(universe, {kOcr}));

  const TeamScoreWeights weights;  // coverage 1.0 / compl. 0.5 / rel 0.25
  auto teams = FormTeamsGreedy(tasks, workers, weights);
  if (!teams.ok()) {
    std::cerr << "team formation failed: " << teams.status() << "\n";
    return 1;
  }

  TableWriter table({"task", "team", "coverage", "score"});
  for (size_t t = 0; t < tasks.size(); ++t) {
    std::string members;
    for (WorkerIndex m : teams->teams[t]) {
      if (!members.empty()) members += " + ";
      members += "w" + std::to_string(workers[m].id());
    }
    table.AddRow({tasks[t].task.title(), members,
                  FmtPercent(TeamCoverage(tasks[t].task, teams->teams[t],
                                          workers)),
                  FmtDouble(TeamScore(tasks[t].task, teams->teams[t], workers,
                                      weights, DistanceKind::kJaccard))});
  }
  table.Print(std::cout);
  std::cout << "\nEach team unions complementary skills to cover its task's "
               "requirements;\nworkers join at most one team.\n";
  return 0;
}
