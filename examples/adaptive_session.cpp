// Adaptive assignment in action: a single simulated worker completes
// tasks across several iterations while the engine re-estimates her
// (alpha, beta) from observed choices — the Section III loop.
//
// Run: ./build/examples/adaptive_session [latent_alpha]
#include <cstdlib>
#include <iostream>

#include "engine/assignment_service.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hta;

  double latent_alpha = 0.85;  // The worker's true diversity preference.
  if (argc > 1) latent_alpha = std::atof(argv[1]);

  CatalogOptions catalog_options;
  catalog_options.num_groups = 30;
  catalog_options.tasks_per_group = 20;
  catalog_options.vocabulary_size = 250;
  auto catalog = GenerateCatalog(catalog_options);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  AssignmentServiceOptions service_options;
  service_options.strategy = StrategyKind::kHtaGre;
  service_options.xmax = 8;
  service_options.extra_random_tasks = 2;
  service_options.refresh_after_completions = 4;
  service_options.max_tasks_per_iteration = 150;
  AssignmentService service(&catalog->tasks, service_options);

  BehaviorParams params;
  params.alpha_latent = latent_alpha;
  params.choice_noise = 0.05;
  KeywordVector interests = catalog->tasks[0].keywords();
  BehavioralWorker worker(&catalog->tasks, DistanceKind::kJaccard,
                          Worker(1, interests), params, Rng(7));

  const uint64_t id = service.RegisterWorker(interests);
  std::cout << "Worker latent alpha* = " << latent_alpha
            << " (diversity preference); engine prior = 0.5\n\n";

  TableWriter table({"completions", "estimated alpha", "estimated beta",
                     "iterations so far"});
  for (int step = 1; step <= 32; ++step) {
    const auto displayed = service.Displayed(id);
    if (displayed.empty()) break;
    const size_t chosen = worker.ChooseTask(displayed);
    worker.RecordCompletion(chosen);
    if (!service.NotifyCompleted(id, chosen).ok()) break;
    if (step % 4 == 0) {
      const MotivationWeights w = service.CurrentWeights(id);
      table.AddRow({FmtInt(step), FmtDouble(w.alpha), FmtDouble(w.beta),
                    FmtInt(static_cast<long long>(service.iteration_count()))});
    }
  }
  table.Print(std::cout);

  const MotivationWeights final_weights = service.CurrentWeights(id);
  std::cout << "\nFinal estimate alpha = " << FmtDouble(final_weights.alpha)
            << " vs latent alpha* = " << latent_alpha << "\n"
            << "The estimate drifts toward the worker's true preference as "
               "completions accumulate.\n";
  return 0;
}
