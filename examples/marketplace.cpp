// A synthetic AMT-like marketplace: generate a catalog of task groups
// and a worker population, then run one holistic assignment iteration
// and report marketplace-level statistics — the paper's offline
// experiment setting at example scale.
//
// Run: ./build/examples/marketplace [#groups] [#tasks_per_group] [#workers]
#include <cstdlib>
#include <iostream>

#include "assign/hta_solver.h"
#include "sim/catalog.h"
#include "sim/worker_gen.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hta;

  CatalogOptions catalog_options;
  catalog_options.num_groups = argc > 1 ? std::atoi(argv[1]) : 50;
  catalog_options.tasks_per_group = argc > 2 ? std::atoi(argv[2]) : 20;
  catalog_options.vocabulary_size = 600;
  WorkerGenOptions worker_options;
  worker_options.count = argc > 3 ? std::atoi(argv[3]) : 40;

  auto catalog = GenerateCatalog(catalog_options);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }
  auto workers = GenerateWorkers(worker_options, *catalog);
  if (!workers.ok()) {
    std::cerr << workers.status() << "\n";
    return 1;
  }
  std::cout << "Marketplace: " << catalog->size() << " tasks in "
            << catalog_options.num_groups << " groups, " << workers->size()
            << " workers, Xmax = 20\n\n";

  auto problem = HtaProblem::Create(&catalog->tasks, &*workers, 20);
  if (!problem.ok()) {
    std::cerr << problem.status() << "\n";
    return 1;
  }

  TableWriter table({"algorithm", "motivation", "assigned", "matching (ms)",
                     "lsap (ms)", "total (ms)"});
  for (const bool use_app : {true, false}) {
    auto result =
        use_app ? SolveHtaApp(*problem, 42) : SolveHtaGre(*problem, 42);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    table.AddRow({use_app ? "hta-app" : "hta-gre",
                  FmtDouble(result->stats.motivation, 1),
                  FmtInt(static_cast<long long>(
                      result->assignment.AssignedTaskCount())),
                  FmtDouble(result->stats.matching_seconds * 1e3, 1),
                  FmtDouble(result->stats.lsap_seconds * 1e3, 1),
                  FmtDouble(result->stats.total_seconds * 1e3, 1)});

    if (!use_app) {
      // Distribution of per-worker motivation under HTA-GRE.
      const std::vector<double> per_worker =
          PerWorkerMotivation(*problem, result->assignment);
      const SampleSummary s = Summarize(per_worker);
      std::cout << "hta-gre per-worker motivation: mean = "
                << FmtDouble(s.mean) << ", min = " << FmtDouble(s.min)
                << ", max = " << FmtDouble(s.max) << "\n\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nhta-gre reaches a comparable objective far faster — the "
               "paper's headline offline finding.\n";
  return 0;
}
