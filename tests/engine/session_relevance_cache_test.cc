// SessionRelevanceCache bit-identity and budget behavior: rows computed
// once at registration must be EXPECT_EQ-identical (not just close) to
// both the scalar TaskRelevance reference and a fresh batched
// RectangularRelevance sweep, across every DistanceKind and several
// kernel thread caps — the warm-start engine serves solver relevance
// tables from these rows, so any drift would break the engine's
// warm/cold equivalence guarantee. Budget-capped sessions must degrade
// to a reported miss (caller falls back to the fresh sweep), never to a
// wrong table.
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/catalog_cache.h"
#include "core/distance.h"
#include "core/packed_set.h"
#include "engine/session_relevance_cache.h"
#include "util/rng.h"

namespace hta {
namespace {

constexpr size_t kUniverse = 64;

std::vector<Task> RandomCatalog(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KeywordVector v(kUniverse);
    const size_t bits = 1 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
    }
    tasks.emplace_back(i, v);
  }
  return tasks;
}

std::vector<KeywordVector> RandomInterests(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordVector> out;
  for (size_t w = 0; w < count; ++w) {
    KeywordVector v(kUniverse);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
    }
    out.push_back(v);
  }
  return out;
}

class SessionRelevanceBitIdentity
    : public ::testing::TestWithParam<std::tuple<DistanceKind, size_t>> {};

TEST_P(SessionRelevanceBitIdentity, RowsMatchScalarAndRectangularSweeps) {
  const DistanceKind kind = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  const auto catalog = RandomCatalog(181, /*seed=*/11);
  const auto interests = RandomInterests(5, /*seed=*/12);
  const CatalogCache cache(&catalog, kind);

  SessionRelevanceCache rows(&cache, /*max_bytes=*/size_t{1} << 30);
  for (size_t q = 0; q < interests.size(); ++q) {
    rows.AddSession(/*worker_id=*/100 + q, interests[q], threads);
  }
  ASSERT_EQ(rows.session_count(), interests.size());
  EXPECT_EQ(rows.bytes_used(),
            interests.size() * catalog.size() * sizeof(double));

  // Reference 1: the scalar per-pair path every cold component uses.
  for (size_t q = 0; q < interests.size(); ++q) {
    const double* row = rows.Row(100 + q);
    ASSERT_NE(row, nullptr);
    const Worker worker(100 + q, interests[q]);
    for (size_t t = 0; t < catalog.size(); ++t) {
      EXPECT_EQ(row[t], TaskRelevance(kind, catalog[t], worker))
          << "kind=" << DistanceKindName(kind) << " threads=" << threads
          << " q=" << q << " t=" << t;
    }
  }

  // Reference 2: one fresh batched catalog x workers sweep — the exact
  // kernel a cold FillRelevanceTable would run.
  const PackedSetMatrix packed_interests =
      PackedSetMatrix::FromVectors(interests);
  std::vector<double> fresh(catalog.size() * interests.size());
  RectangularRelevance(cache.packed(), packed_interests, kind, fresh.data(),
                       threads);
  std::vector<size_t> all_tasks(catalog.size());
  for (size_t t = 0; t < catalog.size(); ++t) all_tasks[t] = t;
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < interests.size(); ++q) ids.push_back(100 + q);
  std::vector<double> gathered;
  ASSERT_TRUE(rows.GatherTable(all_tasks, ids, &gathered));
  ASSERT_EQ(gathered.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(gathered[i], fresh[i]) << "i=" << i;
  }

  // Subset gather in scrambled order matches the scalar reference too
  // (this is the solver-table layout: rel[t * |W| + q]).
  const std::vector<size_t> subset = {180, 0, 97, 3, 55, 55, 14};
  ASSERT_TRUE(rows.GatherTable(subset, ids, &gathered));
  ASSERT_EQ(gathered.size(), subset.size() * ids.size());
  for (size_t t = 0; t < subset.size(); ++t) {
    for (size_t q = 0; q < ids.size(); ++q) {
      const Worker worker(ids[q], interests[q]);
      EXPECT_EQ(gathered[t * ids.size() + q],
                TaskRelevance(kind, catalog[subset[t]], worker));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndThreads, SessionRelevanceBitIdentity,
    ::testing::Combine(::testing::Values(DistanceKind::kJaccard,
                                         DistanceKind::kDice,
                                         DistanceKind::kHamming,
                                         DistanceKind::kCosineAngular),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{2},
                                         size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<DistanceKind, size_t>>&
           info) {
      std::string name = DistanceKindName(std::get<0>(info.param)) +
                         "_threads" + std::to_string(std::get<1>(info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SessionRelevanceCacheTest, BudgetSkipsInsteadOfEvicting) {
  const auto catalog = RandomCatalog(100, /*seed=*/21);
  const auto interests = RandomInterests(3, /*seed=*/22);
  const CatalogCache cache(&catalog, DistanceKind::kJaccard);
  const size_t row_bytes = catalog.size() * sizeof(double);

  // Budget fits exactly two rows; the third registration is skipped.
  SessionRelevanceCache rows(&cache, 2 * row_bytes);
  rows.AddSession(1, interests[0]);
  rows.AddSession(2, interests[1]);
  rows.AddSession(3, interests[2]);
  EXPECT_TRUE(rows.Contains(1));
  EXPECT_TRUE(rows.Contains(2));
  EXPECT_FALSE(rows.Contains(3));
  EXPECT_EQ(rows.Row(3), nullptr);
  EXPECT_EQ(rows.bytes_used(), 2 * row_bytes);

  // A gather involving the uncached session reports a miss and leaves
  // the output untouched — the caller's fallback sweep sees its own
  // buffer, never a half-written table.
  const std::vector<size_t> subset = {0, 5, 9};
  std::vector<double> out(99, -7.0);
  EXPECT_FALSE(rows.GatherTable(subset, {1, 3}, &out));
  ASSERT_EQ(out.size(), 99u);
  for (const double v : out) EXPECT_EQ(v, -7.0);
  // Cached-only gathers still succeed.
  EXPECT_TRUE(rows.GatherTable(subset, {1, 2}, &out));
  EXPECT_EQ(out.size(), subset.size() * 2);

  // Removing a row frees budget for a later registration.
  rows.RemoveSession(1);
  EXPECT_FALSE(rows.Contains(1));
  EXPECT_EQ(rows.bytes_used(), row_bytes);
  rows.AddSession(3, interests[2]);
  EXPECT_TRUE(rows.Contains(3));
  EXPECT_EQ(rows.bytes_used(), 2 * row_bytes);
  // Removing an uncached or unknown session is a no-op.
  rows.RemoveSession(1);
  rows.RemoveSession(42);
  EXPECT_EQ(rows.bytes_used(), 2 * row_bytes);
}

TEST(SessionRelevanceCacheTest, ReRegisteringOverwritesInPlace) {
  const auto catalog = RandomCatalog(60, /*seed=*/31);
  const auto interests = RandomInterests(2, /*seed=*/32);
  const CatalogCache cache(&catalog, DistanceKind::kDice);
  SessionRelevanceCache rows(&cache, size_t{1} << 20);

  rows.AddSession(7, interests[0]);
  const size_t bytes_after_first = rows.bytes_used();
  rows.AddSession(7, interests[1]);  // Same id, new session profile.
  EXPECT_EQ(rows.bytes_used(), bytes_after_first);
  EXPECT_EQ(rows.session_count(), 1u);
  const double* row = rows.Row(7);
  ASSERT_NE(row, nullptr);
  const Worker worker(7, interests[1]);
  for (size_t t = 0; t < catalog.size(); ++t) {
    EXPECT_EQ(row[t], TaskRelevance(DistanceKind::kDice, catalog[t], worker));
  }
}

}  // namespace
}  // namespace hta
