// Sharded-service equivalence: the two safety properties the sharded
// front-end ships with.
//
//  1. One shard IS the unsharded service: a ShardedAssignmentService
//     with HTA_SHARDS=1 and a bare AssignmentService over the same
//     catalog are driven through an identical scripted deployment and
//     must stay EXPECT_EQ-identical at every observable step —
//     displayed bundles, weight estimates, pool state, and the full
//     iteration-record stream — across every DistanceKind and with
//     warm start both off and on, including a mid-script Deregister.
//
//  2. Driver scheduling never shows: a 4-shard concurrent deployment
//     is bit-identical across driver-thread caps {1, 2, 4} and solver
//     thread caps {0, 1, 4} — same sessions (down to every completion
//     event), same merged audit log, same iteration records per shard.
//     Sessions end mid-run throughout (voluntary leaves and expiry both
//     Deregister from inside the loop), so the equivalence covers
//     mid-run deregistration by construction.
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/assignment_service.h"
#include "engine/sharded_service.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "sim/sharded_deployment.h"
#include "sim/worker_gen.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"

namespace hta {
namespace {

/// Pins an environment variable for one test, restoring the previous
/// state on destruction (the CI suite runs with HTA_SHARDS=4 — tests
/// that mean "exactly one shard" must say so explicitly).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::vector<Task> RandomCatalog(size_t n, size_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KeywordVector v(universe);
    const size_t bits = 1 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    tasks.emplace_back(i, v);
  }
  return tasks;
}

std::vector<KeywordVector> RandomInterests(size_t count, size_t universe,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordVector> out;
  for (size_t w = 0; w < count; ++w) {
    KeywordVector v(universe);
    for (size_t b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    out.push_back(v);
  }
  return out;
}

void ExpectSameIterationRecords(const std::vector<IterationRecord>& a,
                                const std::vector<IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration);
    EXPECT_EQ(a[i].worker_count, b[i].worker_count);
    EXPECT_EQ(a[i].task_count, b[i].task_count);
    EXPECT_EQ(a[i].motivation, b[i].motivation);  // Bit-identical doubles.
    EXPECT_EQ(a[i].warm_seeded, b[i].warm_seeded);
    EXPECT_EQ(a[i].carried_tasks, b[i].carried_tasks);
    EXPECT_EQ(a[i].repaired_slots, b[i].repaired_slots);
    // solve_seconds / setup_seconds are wall clock — excluded.
  }
}

void ExpectSameEvents(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const LoggedEvent& ea = a.events()[i];
    const LoggedEvent& eb = b.events()[i];
    EXPECT_EQ(ea.minute, eb.minute) << "event " << i;
    EXPECT_EQ(ea.worker_id, eb.worker_id) << "event " << i;
    EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind))
        << "event " << i;
    EXPECT_EQ(ea.task_ids, eb.task_ids) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// Property 1: one shard is bit-identical to the unsharded service.

class OneShardEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<DistanceKind, bool>> {};

TEST_P(OneShardEquivalenceTest, ScriptedDeploymentIsBitIdentical) {
  const DistanceKind kind = std::get<0>(GetParam());
  const bool warm_start = std::get<1>(GetParam());
  ScopedEnv pin_shards("HTA_SHARDS", "1");
  ScopedEnv pin_warm_start("HTA_WARM_START", warm_start ? "1" : "0");
  constexpr size_t kUniverse = 70;
  const auto catalog = RandomCatalog(260, kUniverse, 21);
  const auto interests = RandomInterests(5, kUniverse, 22);

  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.metric = kind;
  options.xmax = 5;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.min_batch_workers = 2;
  options.max_tasks_per_iteration = 40;
  options.seed = 77;

  EventLog flat_log;
  AssignmentServiceOptions flat_options = options;
  flat_options.event_log = &flat_log;
  AssignmentService flat(&catalog, flat_options);

  EventLog sharded_log;
  ShardedServiceOptions sharded_options;
  sharded_options.service = options;
  sharded_options.service.event_log = &sharded_log;
  sharded_options.num_shards = 1;
  ShardedAssignmentService sharded(&catalog, sharded_options);
  ASSERT_EQ(sharded.num_shards(), size_t{1});

  std::vector<uint64_t> ids;
  const auto expect_same_state = [&] {
    for (uint64_t id : ids) {
      ASSERT_EQ(sharded.Displayed(id), flat.Displayed(id)) << "worker " << id;
      const MotivationWeights sw = sharded.CurrentWeights(id);
      const MotivationWeights fw = flat.CurrentWeights(id);
      EXPECT_EQ(sw.alpha, fw.alpha);
      EXPECT_EQ(sw.beta, fw.beta);
    }
    EXPECT_EQ(sharded.shard(0).pool().available_count(),
              flat.pool().available_count());
    EXPECT_EQ(sharded.shard(0).pool().completed_count(),
              flat.pool().completed_count());
  };

  double minute = 0.0;
  for (const KeywordVector& v : interests) {
    minute += 0.5;
    flat.AdvanceClock(minute);
    sharded.AdvanceClock(minute);
    const uint64_t flat_id = flat.RegisterWorker(v);
    const uint64_t sharded_id = sharded.RegisterWorker(v);
    ASSERT_EQ(sharded_id, flat_id);
    ids.push_back(flat_id);
    expect_same_state();
  }

  for (size_t round = 0; round < 4; ++round) {
    for (uint64_t id : ids) {
      for (size_t c = 0; c < 2; ++c) {
        const std::vector<size_t> displayed = flat.Displayed(id);
        if (displayed.empty()) break;
        minute += 0.25;
        flat.AdvanceClock(minute);
        sharded.AdvanceClock(minute);
        ASSERT_TRUE(flat.NotifyCompleted(id, displayed.front()).ok());
        ASSERT_TRUE(sharded.NotifyCompleted(id, displayed.front()).ok());
        expect_same_state();
      }
    }
    if (round == 1) {
      // A mid-deployment departure must not disturb equivalence.
      minute += 0.25;
      flat.AdvanceClock(minute);
      sharded.AdvanceClock(minute);
      flat.Deregister(ids.back());
      sharded.Deregister(ids.back());
      ids.pop_back();
      expect_same_state();
    }
  }

  EXPECT_EQ(sharded.iteration_count(), flat.iteration_count());
  ExpectSameIterationRecords(sharded.shard(0).iterations(),
                             flat.iterations());
  // Pass-through mode writes the caller's log directly; Flush must be
  // a no-op and both audit trails identical event for event.
  sharded.FlushEventLog();
  ExpectSameEvents(sharded_log, flat_log);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, OneShardEquivalenceTest,
    ::testing::Combine(::testing::Values(DistanceKind::kJaccard,
                                         DistanceKind::kDice,
                                         DistanceKind::kHamming,
                                         DistanceKind::kCosineAngular),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Property 2: a 4-shard deployment is bit-identical across driver
// thread caps and solver thread caps.

struct DeploymentRun {
  DeploymentResult result;
  EventLog log;
  std::vector<std::vector<IterationRecord>> shard_iterations;
  size_t completions = 0;
};

DeploymentRun RunOnce(const Catalog& catalog,
                      const std::vector<Worker>& profiles,
                      size_t driver_threads, size_t solver_threads,
                      bool warm_start) {
  ScopedEnv pin_shards("HTA_SHARDS", "4");
  ScopedEnv pin_warm_start("HTA_WARM_START", warm_start ? "1" : "0");
  // Workers are stateful (boredom, history, RNG): rebuild the same
  // population from the same seeds for every run.
  std::vector<BehavioralWorker> behavioral;
  behavioral.reserve(profiles.size());
  for (size_t s = 0; s < profiles.size(); ++s) {
    Rng param_rng(4242 ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
    const BehaviorParams params = SampleBehaviorParams(&param_rng);
    behavioral.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                            profiles[s], params, param_rng.Fork(17));
  }

  DeploymentRun run;
  ShardedServiceOptions options;
  options.num_shards = 4;
  options.service.strategy = StrategyKind::kHtaGre;
  options.service.xmax = 5;
  options.service.extra_random_tasks = 2;
  options.service.refresh_after_completions = 2;
  options.service.max_tasks_per_iteration = 80;
  options.service.solver_threads = solver_threads;
  options.service.seed = 99;
  options.service.event_log = &run.log;
  ShardedAssignmentService service(&catalog.tasks, options);
  EXPECT_EQ(service.num_shards(), size_t{4});

  ShardedDeploymentOptions deployment;
  deployment.arrival_rate_per_min = 1.5;
  deployment.session.max_minutes = 5.0;
  deployment.seed = 1234;
  deployment.driver_threads = driver_threads;
  run.result = RunShardedDeployment(&service, catalog, &behavioral,
                                    deployment);
  for (size_t s = 0; s < service.num_shards(); ++s) {
    run.shard_iterations.push_back(service.shard(s).iterations());
  }
  for (const SessionResult& session : run.result.sessions) {
    run.completions += session.events.size();
  }
  return run;
}

void ExpectSameRun(const DeploymentRun& a, const DeploymentRun& b) {
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.result.iterations, b.result.iterations);
  EXPECT_EQ(a.result.deployment_minutes, b.result.deployment_minutes);
  EXPECT_EQ(a.result.max_concurrent_sessions,
            b.result.max_concurrent_sessions);
  EXPECT_EQ(a.result.mean_workers_per_iteration,
            b.result.mean_workers_per_iteration);
  ASSERT_EQ(a.result.sessions.size(), b.result.sessions.size());
  for (size_t s = 0; s < a.result.sessions.size(); ++s) {
    const SessionResult& sa = a.result.sessions[s];
    const SessionResult& sb = b.result.sessions[s];
    EXPECT_EQ(sa.worker_id, sb.worker_id) << "slot " << s;
    EXPECT_EQ(sa.arrival_minute, sb.arrival_minute);
    EXPECT_EQ(sa.ended_minute, sb.ended_minute);
    EXPECT_EQ(sa.duration_minutes, sb.duration_minutes);
    EXPECT_EQ(sa.left_voluntarily, sb.left_voluntarily);
    ASSERT_EQ(sa.events.size(), sb.events.size()) << "slot " << s;
    for (size_t e = 0; e < sa.events.size(); ++e) {
      EXPECT_EQ(sa.events[e].wall_minute, sb.events[e].wall_minute);
      EXPECT_EQ(sa.events[e].worker_id, sb.events[e].worker_id);
      EXPECT_EQ(sa.events[e].catalog_task, sb.events[e].catalog_task);
      EXPECT_EQ(sa.events[e].questions, sb.events[e].questions);
      EXPECT_EQ(sa.events[e].correct, sb.events[e].correct);
    }
  }
  ASSERT_EQ(a.shard_iterations.size(), b.shard_iterations.size());
  for (size_t s = 0; s < a.shard_iterations.size(); ++s) {
    ExpectSameIterationRecords(a.shard_iterations[s], b.shard_iterations[s]);
  }
  ExpectSameEvents(a.log, b.log);
}

class ShardedDeploymentDeterminismTest : public ::testing::Test {
 protected:
  static Catalog MakeDeploymentCatalog() {
    CatalogOptions options;
    options.num_groups = 12;
    options.tasks_per_group = 50;
    options.vocabulary_size = 120;
    options.seed = 31;
    auto catalog = GenerateCatalog(options);
    HTA_CHECK(catalog.ok()) << catalog.status();
    return std::move(*catalog);
  }
  static std::vector<Worker> MakeProfiles(const Catalog& catalog) {
    WorkerGenOptions options;
    options.count = 8;
    options.seed = 32;
    auto workers = GenerateWorkers(options, catalog);
    HTA_CHECK(workers.ok()) << workers.status();
    return std::move(*workers);
  }
};

TEST_F(ShardedDeploymentDeterminismTest,
       BitIdenticalAcrossDriverAndSolverThreadCaps) {
  const Catalog catalog = MakeDeploymentCatalog();
  const std::vector<Worker> profiles = MakeProfiles(catalog);

  const DeploymentRun reference = RunOnce(catalog, profiles,
                                          /*driver_threads=*/1,
                                          /*solver_threads=*/0,
                                          /*warm_start=*/false);
  EXPECT_GT(reference.completions, size_t{0});
  EXPECT_GT(reference.result.iterations, size_t{0});
  EXPECT_FALSE(reference.log.empty());

  for (const size_t driver_threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const size_t solver_threads : {size_t{0}, size_t{1}, size_t{4}}) {
      if (driver_threads == 1 && solver_threads == 0) continue;  // Reference.
      SCOPED_TRACE("driver_threads=" + std::to_string(driver_threads) +
                   " solver_threads=" + std::to_string(solver_threads));
      const DeploymentRun run = RunOnce(catalog, profiles, driver_threads,
                                        solver_threads, /*warm_start=*/false);
      ExpectSameRun(reference, run);
    }
  }
}

TEST_F(ShardedDeploymentDeterminismTest, WarmStartOnIsEquallyDeterministic) {
  const Catalog catalog = MakeDeploymentCatalog();
  const std::vector<Worker> profiles = MakeProfiles(catalog);

  const DeploymentRun reference = RunOnce(catalog, profiles,
                                          /*driver_threads=*/1,
                                          /*solver_threads=*/0,
                                          /*warm_start=*/true);
  EXPECT_GT(reference.completions, size_t{0});
  for (const size_t driver_threads : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("driver_threads=" + std::to_string(driver_threads));
    const DeploymentRun run = RunOnce(catalog, profiles, driver_threads,
                                      /*solver_threads=*/4,
                                      /*warm_start=*/true);
    ExpectSameRun(reference, run);
  }
}

// ---------------------------------------------------------------------------
// Front-end unit properties.

TEST(ShardedServiceTest, TaskIndexMappingRoundTrips) {
  ScopedEnv pin_shards("HTA_SHARDS", "4");
  const auto catalog = RandomCatalog(103, 40, 5);  // Not divisible by 4.
  ShardedServiceOptions options;
  options.num_shards = 4;
  ShardedAssignmentService service(&catalog, options);
  ASSERT_EQ(service.num_shards(), size_t{4});
  size_t owned = 0;
  for (size_t s = 0; s < 4; ++s) {
    owned += service.shard(s).pool().available_count();
  }
  EXPECT_EQ(owned, catalog.size());  // Disjoint cover, no task dropped.
  for (size_t g = 0; g < catalog.size(); ++g) {
    const size_t shard = service.ShardOfTask(g);
    EXPECT_LT(shard, size_t{4});
    EXPECT_EQ(service.GlobalTaskIndex(shard, service.LocalTaskIndex(g)), g);
  }
}

TEST(ShardedServiceTest, InterestHashIsDeterministicAndInRange) {
  ScopedEnv pin_shards("HTA_SHARDS", "4");
  const auto catalog = RandomCatalog(64, 40, 6);
  ShardedServiceOptions options;
  options.num_shards = 4;
  ShardedAssignmentService a(&catalog, options);
  ShardedAssignmentService b(&catalog, options);
  const auto interests = RandomInterests(32, 40, 7);
  for (const KeywordVector& v : interests) {
    const size_t shard = a.ShardForInterests(v);
    EXPECT_LT(shard, size_t{4});
    EXPECT_EQ(b.ShardForInterests(v), shard) << "hash must be instance-free";
  }
}

TEST(ShardedServiceTest, CrossShardCompletionIsRejected) {
  ScopedEnv pin_shards("HTA_SHARDS", "4");
  const auto catalog = RandomCatalog(120, 40, 8);
  ShardedServiceOptions options;
  options.num_shards = 4;
  options.service.xmax = 4;
  options.service.extra_random_tasks = 1;
  ShardedAssignmentService service(&catalog, options);
  const auto interests = RandomInterests(1, 40, 9);
  const uint64_t id = service.RegisterWorker(interests[0]);
  const size_t worker_shard = service.ShardOfWorker(id);
  // Any global index from another shard must bounce, even if in range.
  const size_t foreign = (worker_shard + 1) % 4;
  const Status status = service.NotifyCompleted(id, foreign);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The worker's own displayed tasks are all in their shard and accept.
  const std::vector<size_t> displayed = service.Displayed(id);
  ASSERT_FALSE(displayed.empty());
  for (const size_t g : displayed) {
    EXPECT_EQ(service.ShardOfTask(g), worker_shard);
  }
  EXPECT_TRUE(service.NotifyCompleted(id, displayed.front()).ok());
}

TEST(ShardedServiceTest, EnvOverrideControlsShardCount) {
  const auto catalog = RandomCatalog(60, 40, 10);
  {
    ScopedEnv pin_shards("HTA_SHARDS", "3");
    ShardedServiceOptions options;
    options.num_shards = 1;  // Env wins.
    ShardedAssignmentService service(&catalog, options);
    EXPECT_EQ(service.num_shards(), size_t{3});
  }
  {
    // Shard counts beyond the catalog clamp (no empty shards).
    ScopedEnv pin_shards("HTA_SHARDS", "100");
    ShardedServiceOptions options;
    ShardedAssignmentService service(&catalog, options);
    EXPECT_EQ(service.num_shards(), size_t{60});
  }
}

}  // namespace
}  // namespace hta
