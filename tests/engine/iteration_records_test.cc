#include <gtest/gtest.h>

#include "engine/assignment_service.h"
#include "sim/catalog.h"

namespace hta {
namespace {

Catalog SmallCatalog() {
  CatalogOptions options;
  options.num_groups = 10;
  options.tasks_per_group = 25;
  options.vocabulary_size = 120;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

TEST(IterationRecordsTest, SolverBackedIterationsCarryStats) {
  const Catalog catalog = SmallCatalog();
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGreRel;  // No cold start.
  options.xmax = 5;
  options.extra_random_tasks = 1;
  options.refresh_after_completions = 2;
  options.max_tasks_per_iteration = 60;
  AssignmentService service(&catalog.tasks, options);

  const uint64_t id = service.RegisterWorker(catalog.tasks[0].keywords());
  for (int k = 0; k < 4; ++k) {
    const auto displayed = service.Displayed(id);
    ASSERT_FALSE(displayed.empty());
    ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
  }

  const auto& records = service.iterations();
  ASSERT_GE(records.size(), 2u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].iteration, i + 1);
    EXPECT_GE(records[i].worker_count, 1u);
    EXPECT_GT(records[i].task_count, 0u);  // REL strategy always solves.
    EXPECT_GE(records[i].solve_seconds, 0.0);
    EXPECT_GT(records[i].motivation, 0.0);
  }
}

TEST(IterationRecordsTest, ColdStartIterationHasNoSolverStats) {
  const Catalog catalog = SmallCatalog();
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;  // Cold start is random.
  options.xmax = 5;
  AssignmentService service(&catalog.tasks, options);
  (void)service.RegisterWorker(catalog.tasks[0].keywords());
  ASSERT_EQ(service.iterations().size(), 1u);
  EXPECT_EQ(service.iterations()[0].task_count, 0u);
  EXPECT_EQ(service.iterations()[0].worker_count, 1u);
  EXPECT_EQ(service.iterations()[0].motivation, 0.0);
}

TEST(IterationRecordsTest, DrainedPoolStopsAssigning) {
  CatalogOptions tiny;
  tiny.num_groups = 2;
  tiny.tasks_per_group = 5;  // 10 tasks total.
  tiny.vocabulary_size = 40;
  auto catalog = GenerateCatalog(tiny);
  ASSERT_TRUE(catalog.ok());
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGreDiv;
  options.xmax = 6;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 2;
  AssignmentService service(&catalog->tasks, options);
  const uint64_t id = service.RegisterWorker(catalog->tasks[0].keywords());
  // Complete everything the platform can serve.
  size_t safety = 0;
  while (!service.Displayed(id).empty() && safety++ < 50) {
    ASSERT_TRUE(
        service.NotifyCompleted(id, service.Displayed(id)[0]).ok());
  }
  EXPECT_EQ(service.pool().available_count(), 0u);
  EXPECT_GT(service.pool().completed_count(), 0u);
  EXPECT_TRUE(service.Displayed(id).empty());
}

}  // namespace
}  // namespace hta
