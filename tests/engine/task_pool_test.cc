#include "engine/task_pool.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

std::vector<Task> MakeCatalog(size_t n) {
  std::vector<Task> tasks;
  for (size_t i = 0; i < n; ++i) {
    tasks.emplace_back(i, KeywordVector(8, {static_cast<KeywordId>(i % 8)}));
  }
  return tasks;
}

TEST(TaskPoolTest, AllAvailableInitially) {
  const auto catalog = MakeCatalog(5);
  TaskPool pool(&catalog);
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_EQ(pool.available_count(), 5u);
  EXPECT_EQ(pool.completed_count(), 0u);
  EXPECT_EQ(pool.AvailableIndices().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pool.state(i), TaskState::kAvailable);
  }
}

TEST(TaskPoolTest, AssignmentLifecycle) {
  const auto catalog = MakeCatalog(3);
  TaskPool pool(&catalog);
  EXPECT_TRUE(pool.MarkAssigned(1).ok());
  EXPECT_EQ(pool.state(1), TaskState::kAssigned);
  EXPECT_EQ(pool.available_count(), 2u);
  EXPECT_TRUE(pool.MarkCompleted(1).ok());
  EXPECT_EQ(pool.state(1), TaskState::kCompleted);
  EXPECT_EQ(pool.completed_count(), 1u);
}

TEST(TaskPoolTest, DoubleAssignFails) {
  const auto catalog = MakeCatalog(2);
  TaskPool pool(&catalog);
  EXPECT_TRUE(pool.MarkAssigned(0).ok());
  EXPECT_EQ(pool.MarkAssigned(0).code(), StatusCode::kFailedPrecondition);
}

TEST(TaskPoolTest, CompleteRequiresAssigned) {
  const auto catalog = MakeCatalog(2);
  TaskPool pool(&catalog);
  EXPECT_FALSE(pool.MarkCompleted(0).ok());
  ASSERT_TRUE(pool.MarkAssigned(0).ok());
  ASSERT_TRUE(pool.MarkCompleted(0).ok());
  EXPECT_FALSE(pool.MarkCompleted(0).ok());  // Already completed.
}

TEST(TaskPoolTest, ReleaseReturnsTaskToPool) {
  const auto catalog = MakeCatalog(2);
  TaskPool pool(&catalog);
  ASSERT_TRUE(pool.MarkAssigned(0).ok());
  EXPECT_TRUE(pool.Release(0).ok());
  EXPECT_EQ(pool.state(0), TaskState::kAvailable);
  EXPECT_EQ(pool.available_count(), 2u);
  // Release of non-assigned fails.
  EXPECT_FALSE(pool.Release(1).ok());
}

TEST(TaskPoolTest, AvailableIndicesSkipsAssignedAndCompleted) {
  const auto catalog = MakeCatalog(4);
  TaskPool pool(&catalog);
  ASSERT_TRUE(pool.MarkAssigned(1).ok());
  ASSERT_TRUE(pool.MarkAssigned(3).ok());
  ASSERT_TRUE(pool.MarkCompleted(3).ok());
  const std::vector<size_t> available = pool.AvailableIndices();
  EXPECT_EQ(available, (std::vector<size_t>{0, 2}));
}

TEST(TaskPoolTest, SelectAvailableIsTheRankthAvailableIndex) {
  const auto catalog = MakeCatalog(5);
  TaskPool pool(&catalog);
  ASSERT_TRUE(pool.MarkAssigned(0).ok());
  ASSERT_TRUE(pool.MarkAssigned(3).ok());
  // Available: {1, 2, 4}.
  EXPECT_EQ(pool.SelectAvailable(0), 1u);
  EXPECT_EQ(pool.SelectAvailable(1), 2u);
  EXPECT_EQ(pool.SelectAvailable(2), 4u);
  ASSERT_TRUE(pool.Release(3).ok());
  EXPECT_EQ(pool.SelectAvailable(2), 3u);  // {1, 2, 3, 4} now.
}

TEST(TaskPoolTest, SelectAvailableMatchesAvailableIndicesUnderChurn) {
  // Sizes straddling word and Fenwick boundaries.
  for (const size_t n : {1ul, 63ul, 64ul, 65ul, 200ul, 257ul}) {
    const auto catalog = MakeCatalog(n);
    TaskPool pool(&catalog);
    Rng rng(n);
    for (size_t step = 0; step < 3 * n; ++step) {
      const size_t idx = rng.NextBounded(n);
      switch (pool.state(idx)) {
        case TaskState::kAvailable:
          ASSERT_TRUE(pool.MarkAssigned(idx).ok());
          break;
        case TaskState::kAssigned:
          if (step % 2 == 0) {
            ASSERT_TRUE(pool.MarkCompleted(idx).ok());
          } else {
            ASSERT_TRUE(pool.Release(idx).ok());
          }
          break;
        case TaskState::kCompleted:
          break;
      }
      const std::vector<size_t> available = pool.AvailableIndices();
      ASSERT_EQ(available.size(), pool.available_count());
      for (size_t rank = 0; rank < available.size(); ++rank) {
        ASSERT_EQ(pool.SelectAvailable(rank), available[rank])
            << "n=" << n << " step=" << step << " rank=" << rank;
      }
    }
  }
}

TEST(TaskPoolDeathTest, SelectAvailableOutOfRangeRankAborts) {
  const auto catalog = MakeCatalog(3);
  TaskPool pool(&catalog);
  ASSERT_TRUE(pool.MarkAssigned(1).ok());
  EXPECT_DEATH({ (void)pool.SelectAvailable(2); }, "CHECK failed");
}

TEST(TaskPoolDeathTest, OutOfRangeIndexAborts) {
  const auto catalog = MakeCatalog(2);
  TaskPool pool(&catalog);
  EXPECT_DEATH({ (void)pool.state(2); }, "CHECK failed");
}

}  // namespace
}  // namespace hta
