// Randomized operation-sequence stress test for the assignment
// service: arbitrary interleavings of register / complete / deregister
// across many workers must never violate the platform invariants
// (single ownership of tasks, pool-state consistency, valid weights,
// no crash).
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "engine/assignment_service.h"
#include "sim/catalog.h"
#include "util/rng.h"

namespace hta {
namespace {

struct FuzzCase {
  StrategyKind strategy;
  uint64_t seed;
  size_t ops;
};

class ServiceFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ServiceFuzz, InvariantsHoldUnderRandomOperations) {
  const FuzzCase fuzz = GetParam();

  CatalogOptions catalog_options;
  catalog_options.num_groups = 20;
  catalog_options.tasks_per_group = 30;
  catalog_options.vocabulary_size = 200;
  catalog_options.seed = fuzz.seed;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());

  AssignmentServiceOptions options;
  options.strategy = fuzz.strategy;
  options.xmax = 5;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.max_tasks_per_iteration = 80;
  options.min_batch_workers = 2;
  options.seed = fuzz.seed + 1;
  EventLog log;
  options.event_log = &log;
  AssignmentService service(&catalog->tasks, options);

  Rng rng(fuzz.seed + 2);
  std::vector<uint64_t> active;
  std::vector<uint64_t> retired;
  double clock = 0.0;
  size_t completions = 0;

  for (size_t op = 0; op < fuzz.ops; ++op) {
    clock += rng.NextDouble();
    service.AdvanceClock(clock);
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 2 || active.empty()) {
      // Register a new worker.
      KeywordVector interests(catalog->space.size());
      for (int b = 0; b < 5; ++b) {
        interests.Set(
            static_cast<KeywordId>(rng.NextBounded(catalog->space.size())));
      }
      active.push_back(service.RegisterWorker(interests));
    } else if (dice < 9) {
      // Complete a random displayed task of a random active worker.
      const uint64_t id = active[rng.NextBounded(active.size())];
      const auto displayed = service.Displayed(id);
      if (!displayed.empty()) {
        const size_t t = displayed[rng.NextBounded(displayed.size())];
        ASSERT_TRUE(service.NotifyCompleted(id, t).ok());
        ++completions;
      }
    } else {
      // Deregister a random active worker.
      const size_t pos = rng.NextBounded(active.size());
      service.Deregister(active[pos]);
      retired.push_back(active[pos]);
      active[pos] = active.back();
      active.pop_back();
    }

    // Invariant: no task is displayed to two active workers.
    std::set<size_t> seen;
    for (uint64_t id : active) {
      for (size_t t : service.Displayed(id)) {
        ASSERT_TRUE(seen.insert(t).second)
            << "task " << t << " displayed twice at op " << op;
        // Displayed tasks are Assigned in the pool.
        ASSERT_EQ(service.pool().state(t), TaskState::kAssigned);
      }
    }
    // Invariant: weight estimates are valid.
    for (uint64_t id : active) {
      const MotivationWeights w = service.CurrentWeights(id);
      ASSERT_GE(w.alpha, 0.0);
      ASSERT_LE(w.alpha, 1.0);
      ASSERT_NEAR(w.alpha + w.beta, 1.0, 1e-9);
    }
  }

  // Post: pool accounting adds up.
  const TaskPool& pool = service.pool();
  EXPECT_EQ(pool.completed_count(), completions);
  size_t available = 0;
  size_t assigned = 0;
  size_t completed = 0;
  for (size_t t = 0; t < pool.size(); ++t) {
    switch (pool.state(t)) {
      case TaskState::kAvailable:
        ++available;
        break;
      case TaskState::kAssigned:
        ++assigned;
        break;
      case TaskState::kCompleted:
        ++completed;
        break;
    }
  }
  EXPECT_EQ(available + assigned + completed, pool.size());
  EXPECT_EQ(available, pool.available_count());
  EXPECT_EQ(completed, pool.completed_count());

  // Post: operations on retired workers are rejected, not crashing.
  for (uint64_t id : retired) {
    EXPECT_TRUE(service.Displayed(id).empty());
    EXPECT_FALSE(service.NotifyCompleted(id, 0).ok());
  }

  // Post: the audit log is well-formed — time-ordered, one completion
  // event per completion, and at least one display (a drained pool can
  // leave late registrants without a bundle, so displays may be fewer
  // than registrations).
  size_t display_events = 0;
  size_t completion_events = 0;
  double prev_minute = 0.0;
  for (const LoggedEvent& e : log.events()) {
    EXPECT_GE(e.minute, prev_minute);
    prev_minute = e.minute;
    if (e.kind == LoggedEvent::Kind::kDisplayed) {
      ++display_events;
    } else if (e.kind == LoggedEvent::Kind::kCompleted) {
      ++completion_events;
      EXPECT_EQ(e.task_ids.size(), 1u);
    } else {
      // Session boundaries carry no tasks.
      EXPECT_TRUE(e.task_ids.empty());
    }
  }
  EXPECT_GE(display_events, 1u);
  EXPECT_EQ(completion_events, completions);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ServiceFuzz,
    ::testing::Values(FuzzCase{StrategyKind::kHtaGre, 1, 300},
                      FuzzCase{StrategyKind::kHtaGre, 2, 300},
                      FuzzCase{StrategyKind::kHtaGreDiv, 3, 300},
                      FuzzCase{StrategyKind::kHtaGreRel, 4, 300},
                      FuzzCase{StrategyKind::kRandom, 5, 300},
                      FuzzCase{StrategyKind::kHtaGre, 6, 600}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      std::string name = StrategyName(info.param.strategy) + "_seed" +
                         std::to_string(info.param.seed) + "_ops" +
                         std::to_string(info.param.ops);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hta
