// Randomized operation-sequence stress test for the assignment
// service: arbitrary interleavings of register / complete / deregister
// across many workers must never violate the platform invariants
// (single ownership of tasks, pool-state consistency, valid weights,
// no crash). A second suite drives churn-heavy scripts — mid-run
// session expiries and late registrations — through a cold and a
// warm-started service side by side (the suite runs under HTA_AUDIT=1,
// so every carried seed and solved assignment is auditor-validated),
// asserting the warm deployment's refreshed bundles dominate the cold
// deployment's on average and never fall far behind at any refresh.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/distance_oracle.h"
#include "core/motivation.h"
#include "engine/assignment_service.h"
#include "sim/catalog.h"
#include "util/env.h"
#include "util/rng.h"

namespace hta {
namespace {

struct FuzzCase {
  StrategyKind strategy;
  uint64_t seed;
  size_t ops;
};

class ServiceFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ServiceFuzz, InvariantsHoldUnderRandomOperations) {
  const FuzzCase fuzz = GetParam();

  CatalogOptions catalog_options;
  catalog_options.num_groups = 20;
  catalog_options.tasks_per_group = 30;
  catalog_options.vocabulary_size = 200;
  catalog_options.seed = fuzz.seed;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());

  AssignmentServiceOptions options;
  options.strategy = fuzz.strategy;
  options.xmax = 5;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.max_tasks_per_iteration = 80;
  options.min_batch_workers = 2;
  options.seed = fuzz.seed + 1;
  EventLog log;
  options.event_log = &log;
  AssignmentService service(&catalog->tasks, options);

  Rng rng(fuzz.seed + 2);
  std::vector<uint64_t> active;
  std::vector<uint64_t> retired;
  double clock = 0.0;
  size_t completions = 0;

  for (size_t op = 0; op < fuzz.ops; ++op) {
    clock += rng.NextDouble();
    service.AdvanceClock(clock);
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 2 || active.empty()) {
      // Register a new worker.
      KeywordVector interests(catalog->space.size());
      for (int b = 0; b < 5; ++b) {
        interests.Set(
            static_cast<KeywordId>(rng.NextBounded(catalog->space.size())));
      }
      active.push_back(service.RegisterWorker(interests));
    } else if (dice < 9) {
      // Complete a random displayed task of a random active worker.
      const uint64_t id = active[rng.NextBounded(active.size())];
      const auto displayed = service.Displayed(id);
      if (!displayed.empty()) {
        const size_t t = displayed[rng.NextBounded(displayed.size())];
        ASSERT_TRUE(service.NotifyCompleted(id, t).ok());
        ++completions;
      }
    } else {
      // Deregister a random active worker.
      const size_t pos = rng.NextBounded(active.size());
      service.Deregister(active[pos]);
      retired.push_back(active[pos]);
      active[pos] = active.back();
      active.pop_back();
    }

    // Invariant: no task is displayed to two active workers.
    std::set<size_t> seen;
    for (uint64_t id : active) {
      for (size_t t : service.Displayed(id)) {
        ASSERT_TRUE(seen.insert(t).second)
            << "task " << t << " displayed twice at op " << op;
        // Displayed tasks are Assigned in the pool.
        ASSERT_EQ(service.pool().state(t), TaskState::kAssigned);
      }
    }
    // Invariant: weight estimates are valid.
    for (uint64_t id : active) {
      const MotivationWeights w = service.CurrentWeights(id);
      ASSERT_GE(w.alpha, 0.0);
      ASSERT_LE(w.alpha, 1.0);
      ASSERT_NEAR(w.alpha + w.beta, 1.0, 1e-9);
    }
  }

  // Post: pool accounting adds up.
  const TaskPool& pool = service.pool();
  EXPECT_EQ(pool.completed_count(), completions);
  size_t available = 0;
  size_t assigned = 0;
  size_t completed = 0;
  for (size_t t = 0; t < pool.size(); ++t) {
    switch (pool.state(t)) {
      case TaskState::kAvailable:
        ++available;
        break;
      case TaskState::kAssigned:
        ++assigned;
        break;
      case TaskState::kCompleted:
        ++completed;
        break;
    }
  }
  EXPECT_EQ(available + assigned + completed, pool.size());
  EXPECT_EQ(available, pool.available_count());
  EXPECT_EQ(completed, pool.completed_count());

  // Post: operations on retired workers are rejected, not crashing.
  for (uint64_t id : retired) {
    EXPECT_TRUE(service.Displayed(id).empty());
    EXPECT_FALSE(service.NotifyCompleted(id, 0).ok());
  }

  // Post: the audit log is well-formed — time-ordered, one completion
  // event per completion, and at least one display (a drained pool can
  // leave late registrants without a bundle, so displays may be fewer
  // than registrations).
  size_t display_events = 0;
  size_t completion_events = 0;
  double prev_minute = 0.0;
  for (const LoggedEvent& e : log.events()) {
    EXPECT_GE(e.minute, prev_minute);
    prev_minute = e.minute;
    if (e.kind == LoggedEvent::Kind::kDisplayed) {
      ++display_events;
    } else if (e.kind == LoggedEvent::Kind::kCompleted) {
      ++completion_events;
      EXPECT_EQ(e.task_ids.size(), 1u);
    } else {
      // Session boundaries carry no tasks.
      EXPECT_TRUE(e.task_ids.empty());
    }
  }
  EXPECT_GE(display_events, 1u);
  EXPECT_EQ(completion_events, completions);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ServiceFuzz,
    ::testing::Values(FuzzCase{StrategyKind::kHtaGre, 1, 300},
                      FuzzCase{StrategyKind::kHtaGre, 2, 300},
                      FuzzCase{StrategyKind::kHtaGreDiv, 3, 300},
                      FuzzCase{StrategyKind::kHtaGreRel, 4, 300},
                      FuzzCase{StrategyKind::kRandom, 5, 300},
                      FuzzCase{StrategyKind::kHtaGre, 6, 600}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      std::string name = StrategyName(info.param.strategy) + "_seed" +
                         std::to_string(info.param.seed) + "_ops" +
                         std::to_string(info.param.ops);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Churn-heavy scripted deployments, cold vs warm-started.
//
// The two deployments diverge after the first warm-seeded solve, so
// their estimated (alpha, beta) — and with them the recorded solver
// objectives — are not on a comparable scale. Bundle quality is judged
// off-policy instead: after every aligned refresh both services' newly
// displayed bundles are re-scored under the worker's fixed interests
// with prior weights (extra_random_tasks = 0 keeps the display equal to
// the optimized bundle). Divergence also means the two solves see
// different samples of the pool, so strict per-refresh dominance is not
// a theorem — an unlucky warm sample can trail a lucky cold one by a
// few percent. The contract enforced here: no refresh falls behind by
// more than 10%, and each deployment's quality total strictly dominates
// (ablation_warm_start checks strict per-refresh dominance on its
// larger bench configuration, where it does hold).

struct ChurnCase {
  uint64_t seed;
  size_t refresh;  // Completions per refresh; churn = refresh / xmax.
};

class WarmStartChurn : public ::testing::TestWithParam<ChurnCase> {};

double BundleQuality(const AssignmentService& service, uint64_t id,
                     const KeywordVector& interests,
                     const TaskDistanceOracle& oracle) {
  TaskBundle bundle;
  for (const size_t t : service.Displayed(id)) {
    bundle.push_back(static_cast<TaskIndex>(t));
  }
  return Motivation(bundle, Worker(id, interests), oracle);
}

void CheckDisplayOwnership(const AssignmentService& service,
                           const std::vector<uint64_t>& active) {
  std::set<size_t> seen;
  for (const uint64_t id : active) {
    for (const size_t t : service.Displayed(id)) {
      ASSERT_TRUE(seen.insert(t).second) << "task " << t << " displayed twice";
      ASSERT_EQ(service.pool().state(t), TaskState::kAssigned);
    }
  }
}

TEST_P(WarmStartChurn, WarmBundlesNeverWorseOnAlignedRefreshes) {
  // warm_start requires the warm catalog cache; under the CI cold
  // -reference run (HTA_WARM_CACHE=0) the warm service degenerates to
  // a second cold service and the comparison loses its meaning.
  if (GetEnvIntOr("HTA_WARM_CACHE", 1) == 0) {
    GTEST_SKIP() << "HTA_WARM_CACHE=0 forces the cold path everywhere";
  }
  const ChurnCase churn = GetParam();

  CatalogOptions catalog_options;
  catalog_options.num_groups = 20;
  catalog_options.tasks_per_group = 30;
  catalog_options.vocabulary_size = 200;
  catalog_options.seed = churn.seed;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());
  const TaskDistanceOracle oracle(&catalog->tasks, DistanceKind::kJaccard);

  Rng rng(churn.seed + 1);
  std::vector<KeywordVector> interests;
  for (size_t w = 0; w < 6; ++w) {
    KeywordVector v(catalog->space.size());
    for (int b = 0; b < 5; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(catalog->space.size())));
    }
    interests.push_back(v);
  }

  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.xmax = 6;
  options.extra_random_tasks = 0;  // Display == optimized bundle.
  options.refresh_after_completions = churn.refresh;
  options.max_tasks_per_iteration = 60;
  options.min_batch_workers = 1;  // Aligned refresh schedules.
  options.seed = churn.seed + 2;
  AssignmentService cold(&catalog->tasks, options);
  options.warm_start = true;
  AssignmentService warm(&catalog->tasks, options);
  ASSERT_TRUE(warm.options().warm_start);
  ASSERT_NE(warm.session_relevance(), nullptr);

  // The script drives both services through identical operations:
  // register four workers, run completion rounds, expire two sessions
  // mid-run, and admit a late registrant whose own refreshes then join
  // the comparison.
  std::vector<uint64_t> active;
  size_t registered = 0;
  const auto register_next = [&] {
    const uint64_t cold_id = cold.RegisterWorker(interests[registered]);
    const uint64_t warm_id = warm.RegisterWorker(interests[registered]);
    ASSERT_EQ(cold_id, warm_id);
    active.push_back(cold_id);
    ++registered;
  };
  const auto expire = [&](size_t pos) {
    const uint64_t id = active[pos];
    cold.Deregister(id);
    warm.Deregister(id);
    EXPECT_FALSE(warm.session_relevance()->Contains(id));
    active.erase(active.begin() + static_cast<ptrdiff_t>(pos));
  };
  double cold_quality_sum = 0.0;
  double warm_quality_sum = 0.0;
  // One worker's round: complete `refresh` displayed tasks (at script
  // -chosen positions, independently per service — contents have
  // diverged), then compare the refreshed bundles' fixed-weight quality.
  const auto run_worker = [&](uint64_t id, size_t round) {
    for (AssignmentService* service : {&cold, &warm}) {
      for (size_t c = 0; c < churn.refresh; ++c) {
        const auto displayed = service->Displayed(id);
        ASSERT_FALSE(displayed.empty());
        const size_t pos = (round * 7 + c * 3 + id) % displayed.size();
        ASSERT_TRUE(service->NotifyCompleted(id, displayed[pos]).ok());
      }
    }
    const double cold_quality =
        BundleQuality(cold, id, interests[id], oracle);
    const double warm_quality =
        BundleQuality(warm, id, interests[id], oracle);
    EXPECT_GE(warm_quality, 0.9 * cold_quality)
        << "worker " << id << " round " << round;
    cold_quality_sum += cold_quality;
    warm_quality_sum += warm_quality;
  };

  for (size_t w = 0; w < 4; ++w) register_next();
  for (size_t round = 0; round < 4; ++round) {
    for (const uint64_t id : std::vector<uint64_t>(active)) {
      run_worker(id, round);
    }
    CheckDisplayOwnership(cold, active);
    CheckDisplayOwnership(warm, active);
    if (round == 0) expire(1);       // Session expiry mid-run.
    if (round == 1) register_next(); // Late arrival: cold-start bundle,
                                     // compared from its next refresh.
    if (round == 2) expire(0);
  }

  // The warm deployment's bundles dominate in aggregate.
  EXPECT_GT(warm_quality_sum, cold_quality_sum);

  // Aligned solve schedules, and the warm service actually warm-started
  // (carrying survivors) rather than silently falling back cold.
  ASSERT_EQ(cold.iteration_count(), warm.iteration_count());
  size_t seeded = 0;
  size_t carried = 0;
  for (const IterationRecord& record : cold.iterations()) {
    EXPECT_FALSE(record.warm_seeded);
    EXPECT_EQ(record.carried_tasks, 0u);
  }
  for (const IterationRecord& record : warm.iterations()) {
    if (record.warm_seeded) ++seeded;
    carried += record.carried_tasks;
  }
  EXPECT_GT(seeded, 0u);
  EXPECT_GT(carried, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ChurnScripts, WarmStartChurn,
    ::testing::Values(ChurnCase{101, 1}, ChurnCase{102, 1},
                      ChurnCase{103, 3}, ChurnCase{104, 3},
                      ChurnCase{105, 5}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_refresh" +
             std::to_string(info.param.refresh);
    });

}  // namespace
}  // namespace hta
