#include "engine/event_log.h"

#include <gtest/gtest.h>

#include "engine/assignment_service.h"
#include "sim/catalog.h"

namespace hta {
namespace {

TEST(EventLogTest, AppendsInOrder) {
  EventLog log;
  log.RecordDisplayed(0.0, 1, {10, 11});
  log.RecordCompleted(1.5, 1, 10);
  log.RecordCompleted(1.5, 1, 11);  // Equal timestamps allowed.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].kind, LoggedEvent::Kind::kDisplayed);
  EXPECT_EQ(log.events()[0].task_ids, (std::vector<uint64_t>{10, 11}));
  EXPECT_EQ(log.events()[1].kind, LoggedEvent::Kind::kCompleted);
  EXPECT_EQ(log.events()[2].minute, 1.5);
}

TEST(EventLogDeathTest, RejectsTimeTravel) {
  EventLog log;
  log.RecordCompleted(5.0, 1, 10);
  EXPECT_DEATH({ log.RecordCompleted(4.0, 1, 11); }, "time order");
}

TEST(ReplayTest, RecoversEstimatorState) {
  // Drive an estimator-equivalent sequence through a log and check the
  // replayed estimate matches a directly-driven estimator.
  std::vector<Task> catalog;
  catalog.emplace_back(100, KeywordVector(32, {1, 2, 3}));
  catalog.emplace_back(101, KeywordVector(32, {1, 2, 4}));
  catalog.emplace_back(102, KeywordVector(32, {10, 11, 12}));
  std::vector<Worker> workers;
  workers.emplace_back(7, KeywordVector(32, {1, 2, 3}));

  EventLog log;
  log.RecordDisplayed(0.0, 7, {100, 101, 102});
  log.RecordCompleted(1.0, 7, 100);
  log.RecordCompleted(2.0, 7, 102);

  auto replayed = ReplayEstimates(log, catalog, workers);
  ASSERT_TRUE(replayed.ok());
  ASSERT_TRUE(replayed->count(7));

  MotivationEstimator direct(&catalog, DistanceKind::kJaccard);
  direct.BeginBundle(7, {0, 1, 2});
  direct.ObserveCompletion(7, 0, workers[0]);
  direct.ObserveCompletion(7, 2, workers[0]);
  const MotivationWeights expected = direct.Estimate(7);
  EXPECT_DOUBLE_EQ(replayed->at(7).alpha, expected.alpha);
  EXPECT_DOUBLE_EQ(replayed->at(7).beta, expected.beta);
}

TEST(ReplayTest, RejectsUnknownIds) {
  std::vector<Task> catalog;
  catalog.emplace_back(100, KeywordVector(32, {1}));
  std::vector<Worker> workers;
  workers.emplace_back(7, KeywordVector(32, {1}));

  EventLog unknown_task;
  unknown_task.RecordCompleted(0.0, 7, 999);
  EXPECT_EQ(ReplayEstimates(unknown_task, catalog, workers).status().code(),
            StatusCode::kNotFound);

  EventLog unknown_worker;
  unknown_worker.RecordCompleted(0.0, 42, 100);
  EXPECT_EQ(ReplayEstimates(unknown_worker, catalog, workers).status().code(),
            StatusCode::kNotFound);
}

class ServiceAuditTest : public ::testing::Test {
 protected:
  ServiceAuditTest() {
    CatalogOptions options;
    options.num_groups = 12;
    options.tasks_per_group = 20;
    options.vocabulary_size = 120;
    auto c = GenerateCatalog(options);
    HTA_CHECK(c.ok());
    catalog_ = std::move(*c);
  }
  Catalog catalog_;
};

TEST_F(ServiceAuditTest, LogCapturesDisplaysAndCompletions) {
  EventLog log;
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGreDiv;
  options.xmax = 5;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.max_tasks_per_iteration = 60;
  options.event_log = &log;
  AssignmentService service(&catalog_.tasks, options);

  const uint64_t id = service.RegisterWorker(catalog_.tasks[0].keywords());
  // Registration + the first displayed bundle.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].kind, LoggedEvent::Kind::kRegistered);
  EXPECT_TRUE(log.events()[0].task_ids.empty());
  for (int k = 0; k < 3; ++k) {
    service.AdvanceClock(static_cast<double>(k + 1));
    const auto displayed = service.Displayed(id);
    ASSERT_FALSE(displayed.empty());
    ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
  }
  // Registration + 1 display + 3 completions + 1 refresh display.
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.events().back().kind, LoggedEvent::Kind::kDisplayed);
  EXPECT_EQ(log.events()[2].minute, 1.0);

  service.Deregister(id);
  EXPECT_EQ(log.events().back().kind, LoggedEvent::Kind::kDeregistered);
  EXPECT_TRUE(log.events().back().task_ids.empty());
}

TEST_F(ServiceAuditTest, ReplayReproducesLiveEstimates) {
  // The headline invariant: replaying the audit log through the
  // offline estimator yields exactly the weights the live service
  // computed.
  EventLog log;
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.xmax = 6;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.max_tasks_per_iteration = 80;
  options.event_log = &log;
  AssignmentService service(&catalog_.tasks, options);

  std::vector<uint64_t> ids;
  std::vector<Worker> replay_workers;
  for (int q = 0; q < 3; ++q) {
    const KeywordVector interests = catalog_.tasks[q * 40].keywords();
    const uint64_t id = service.RegisterWorker(interests);
    ids.push_back(id);
    replay_workers.emplace_back(id, interests);
  }
  double minute = 0.0;
  for (int round = 0; round < 8; ++round) {
    for (uint64_t id : ids) {
      const auto displayed = service.Displayed(id);
      if (displayed.empty()) continue;
      minute += 0.25;
      service.AdvanceClock(minute);
      ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
    }
  }

  auto replayed = ReplayEstimates(log, catalog_.tasks, replay_workers);
  ASSERT_TRUE(replayed.ok());
  for (uint64_t id : ids) {
    const MotivationWeights live = service.CurrentWeights(id);
    ASSERT_TRUE(replayed->count(id)) << "worker " << id << " missing";
    EXPECT_DOUBLE_EQ(replayed->at(id).alpha, live.alpha);
    EXPECT_DOUBLE_EQ(replayed->at(id).beta, live.beta);
  }
}

TEST_F(ServiceAuditTest, ClockMustBeMonotone) {
  AssignmentServiceOptions options;
  AssignmentService service(&catalog_.tasks, options);
  service.AdvanceClock(5.0);
  EXPECT_DEATH({ service.AdvanceClock(4.0); }, "CHECK failed");
}

}  // namespace
}  // namespace hta
