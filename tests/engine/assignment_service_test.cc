#include "engine/assignment_service.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sim/catalog.h"

namespace hta {
namespace {

Catalog SmallCatalog(uint64_t seed = 3) {
  CatalogOptions options;
  options.num_groups = 12;
  options.tasks_per_group = 20;
  options.vocabulary_size = 120;
  options.seed = seed;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

AssignmentServiceOptions SmallServiceOptions(StrategyKind strategy) {
  AssignmentServiceOptions o;
  o.strategy = strategy;
  o.xmax = 5;
  o.extra_random_tasks = 2;
  o.refresh_after_completions = 3;
  o.max_tasks_per_iteration = 60;
  return o;
}

KeywordVector SomeInterests(const Catalog& catalog) {
  return catalog.tasks[0].keywords();
}

TEST(AssignmentServiceTest, RegisterDisplaysTasks) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreDiv));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  const auto displayed = service.Displayed(id);
  EXPECT_EQ(displayed.size(), 7u);  // xmax + extras.
  // All displayed tasks are marked assigned in the pool.
  for (size_t t : displayed) {
    EXPECT_EQ(service.pool().state(t), TaskState::kAssigned);
  }
  EXPECT_EQ(service.iteration_count(), 1u);
}

TEST(AssignmentServiceTest, AdaptiveColdStartIsRandomBundle) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGre));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  // Cold start still displays xmax + extras tasks, but the iteration
  // record shows no solver invocation (task_count == 0).
  EXPECT_EQ(service.Displayed(id).size(), 7u);
  ASSERT_EQ(service.iterations().size(), 1u);
  EXPECT_EQ(service.iterations()[0].task_count, 0u);
}

TEST(AssignmentServiceTest, CompletionRemovesFromDisplay) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreRel));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  auto displayed = service.Displayed(id);
  const size_t task = displayed[0];
  ASSERT_TRUE(service.NotifyCompleted(id, task).ok());
  displayed = service.Displayed(id);
  EXPECT_EQ(std::count(displayed.begin(), displayed.end(), task), 0);
  EXPECT_EQ(service.pool().state(task), TaskState::kCompleted);
}

TEST(AssignmentServiceTest, CompletingUndisplayedTaskFails) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreRel));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  // Find a task not displayed to the worker.
  const auto displayed = service.Displayed(id);
  size_t hidden = 0;
  while (std::count(displayed.begin(), displayed.end(), hidden) > 0) ++hidden;
  EXPECT_EQ(service.NotifyCompleted(id, hidden).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AssignmentServiceTest, UnknownWorkerFails) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreRel));
  EXPECT_EQ(service.NotifyCompleted(404, 0).code(), StatusCode::kNotFound);
}

TEST(AssignmentServiceTest, RefreshTriggersAfterConfiguredCompletions) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreRel));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  EXPECT_EQ(service.iteration_count(), 1u);
  // Complete 3 tasks (refresh_after_completions) → new iteration.
  for (int k = 0; k < 3; ++k) {
    const auto displayed = service.Displayed(id);
    ASSERT_FALSE(displayed.empty());
    ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
  }
  EXPECT_EQ(service.iteration_count(), 2u);
  // The refreshed display is full again.
  EXPECT_EQ(service.Displayed(id).size(), 7u);
}

TEST(AssignmentServiceTest, TasksNeverDisplayedTwice) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGre));
  const uint64_t a = service.RegisterWorker(SomeInterests(catalog));
  const uint64_t b = service.RegisterWorker(catalog.tasks[30].keywords());
  std::set<size_t> seen;
  for (size_t t : service.Displayed(a)) {
    EXPECT_TRUE(seen.insert(t).second);
  }
  for (size_t t : service.Displayed(b)) {
    EXPECT_TRUE(seen.insert(t).second) << "task displayed to both workers";
  }
}

TEST(AssignmentServiceTest, AdaptiveWeightsMoveAfterCompletions) {
  const Catalog catalog = SmallCatalog();
  auto options = SmallServiceOptions(StrategyKind::kHtaGre);
  AssignmentService service(&catalog.tasks, options);
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  const MotivationWeights before = service.CurrentWeights(id);
  EXPECT_DOUBLE_EQ(before.alpha, options.prior.alpha);
  for (int k = 0; k < 4; ++k) {
    const auto displayed = service.Displayed(id);
    ASSERT_FALSE(displayed.empty());
    ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
  }
  const MotivationWeights after = service.CurrentWeights(id);
  EXPECT_NEAR(after.alpha + after.beta, 1.0, 1e-12);
  // With real observations the estimate is data-driven; it should very
  // rarely equal the prior exactly.
  EXPECT_NE(after.alpha, before.alpha);
}

TEST(AssignmentServiceTest, DeregisterWithoutRecycleKeepsTasksDropped) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreDiv));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  const auto displayed = service.Displayed(id);
  service.Deregister(id);
  for (size_t t : displayed) {
    EXPECT_EQ(service.pool().state(t), TaskState::kAssigned);
  }
  EXPECT_TRUE(service.Displayed(id).empty());
}

TEST(AssignmentServiceTest, DeregisterWithRecycleReturnsTasks) {
  const Catalog catalog = SmallCatalog();
  auto options = SmallServiceOptions(StrategyKind::kHtaGreDiv);
  options.recycle_on_leave = true;
  AssignmentService service(&catalog.tasks, options);
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  const auto displayed = service.Displayed(id);
  service.Deregister(id);
  for (size_t t : displayed) {
    EXPECT_EQ(service.pool().state(t), TaskState::kAvailable);
  }
}

TEST(AssignmentServiceTest, CompletionsAfterDeregisterRejected) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kHtaGreDiv));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  const auto displayed = service.Displayed(id);
  service.Deregister(id);
  EXPECT_FALSE(service.NotifyCompleted(id, displayed[0]).ok());
}

TEST(AssignmentServiceTest, RandomStrategyServesTasks) {
  const Catalog catalog = SmallCatalog();
  AssignmentService service(&catalog.tasks,
                            SmallServiceOptions(StrategyKind::kRandom));
  const uint64_t id = service.RegisterWorker(SomeInterests(catalog));
  EXPECT_EQ(service.Displayed(id).size(), 7u);
}

TEST(AssignmentServiceTest, ManyWorkersSharedIteration) {
  const Catalog catalog = SmallCatalog();
  auto options = SmallServiceOptions(StrategyKind::kHtaGreRel);
  AssignmentService service(&catalog.tasks, options);
  std::vector<uint64_t> ids;
  for (int q = 0; q < 4; ++q) {
    ids.push_back(service.RegisterWorker(catalog.tasks[q * 25].keywords()));
  }
  // Drive all workers to the refresh threshold; iterations pool workers.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t id : ids) {
      const auto displayed = service.Displayed(id);
      ASSERT_FALSE(displayed.empty());
      ASSERT_TRUE(service.NotifyCompleted(id, displayed[0]).ok());
    }
  }
  // Every worker still has a non-empty display and no double booking.
  std::set<size_t> seen;
  for (uint64_t id : ids) {
    for (size_t t : service.Displayed(id)) {
      EXPECT_TRUE(seen.insert(t).second);
    }
  }
}

}  // namespace
}  // namespace hta
