// Warm-vs-cold engine equivalence: two AssignmentServices over the same
// catalog — one with the warm catalog cache (packed rows + persistent
// distance triangle + zero-copy subset views), one forced cold (task
// copies per iteration, exactly the pre-cache reference path) — are
// driven through an identical scripted deployment and must stay
// EXPECT_EQ-identical at every observable step: displayed bundles after
// every registration and completion, weight estimates, pool state, and
// the full iteration-record stream (bit-identical objectives). The
// script is exercised across every DistanceKind (including the
// non-metric Dice) and several solver thread caps.
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/assignment_service.h"
#include "util/env.h"
#include "util/rng.h"

namespace hta {
namespace {

// Under the HTA_WARM_CACHE=0 escape hatch (the CI cold-reference run)
// every service is forced cold and warm-vs-cold degenerates to
// cold-vs-cold; skip so the suite's pass has its intended meaning.
#define SKIP_IF_WARM_CACHE_FORCED_OFF()                                   \
  if (GetEnvIntOr("HTA_WARM_CACHE", 1) == 0) {                            \
    GTEST_SKIP() << "HTA_WARM_CACHE=0 forces the cold path everywhere";   \
  }

std::vector<Task> RandomCatalog(size_t n, size_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KeywordVector v(universe);
    const size_t bits = 1 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    tasks.emplace_back(i, v);
  }
  return tasks;
}

std::vector<KeywordVector> RandomInterests(size_t count, size_t universe,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordVector> out;
  for (size_t w = 0; w < count; ++w) {
    KeywordVector v(universe);
    for (size_t b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    out.push_back(v);
  }
  return out;
}

class WarmColdEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<DistanceKind, size_t>> {};

TEST_P(WarmColdEquivalenceTest, ScriptedDeploymentIsBitIdentical) {
  SKIP_IF_WARM_CACHE_FORCED_OFF();
  const DistanceKind kind = std::get<0>(GetParam());
  const size_t solver_threads = std::get<1>(GetParam());
  constexpr size_t kUniverse = 70;
  const auto catalog = RandomCatalog(260, kUniverse, 21);
  const auto interests = RandomInterests(4, kUniverse, 22);

  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.metric = kind;
  options.xmax = 5;
  options.extra_random_tasks = 2;
  options.refresh_after_completions = 3;
  options.min_batch_workers = 2;
  options.max_tasks_per_iteration = 40;  // << catalog: sampling path.
  options.solver_threads = solver_threads;
  options.seed = 77;

  AssignmentServiceOptions warm_options = options;
  warm_options.warm_cache = true;
  AssignmentServiceOptions cold_options = options;
  cold_options.warm_cache = false;
  AssignmentService warm(&catalog, warm_options);
  AssignmentService cold(&catalog, cold_options);
  ASSERT_NE(warm.warm_cache(), nullptr);
  ASSERT_EQ(cold.warm_cache(), nullptr);

  std::vector<uint64_t> ids;
  const auto expect_same_state = [&] {
    for (uint64_t id : ids) {
      ASSERT_EQ(warm.Displayed(id), cold.Displayed(id)) << "worker " << id;
      const MotivationWeights ww = warm.CurrentWeights(id);
      const MotivationWeights cw = cold.CurrentWeights(id);
      EXPECT_EQ(ww.alpha, cw.alpha);
      EXPECT_EQ(ww.beta, cw.beta);
    }
    EXPECT_EQ(warm.pool().available_count(), cold.pool().available_count());
    EXPECT_EQ(warm.pool().completed_count(), cold.pool().completed_count());
  };

  for (const KeywordVector& v : interests) {
    const uint64_t warm_id = warm.RegisterWorker(v);
    const uint64_t cold_id = cold.RegisterWorker(v);
    ASSERT_EQ(warm_id, cold_id);
    ids.push_back(warm_id);
    expect_same_state();
  }

  for (size_t round = 0; round < 4; ++round) {
    for (uint64_t id : ids) {
      for (size_t c = 0; c < 2; ++c) {
        const std::vector<size_t> displayed = warm.Displayed(id);
        if (displayed.empty()) break;
        ASSERT_TRUE(warm.NotifyCompleted(id, displayed.front()).ok());
        ASSERT_TRUE(cold.NotifyCompleted(id, displayed.front()).ok());
        expect_same_state();
      }
    }
    if (round == 1) {
      // A mid-deployment departure must not disturb equivalence.
      warm.Deregister(ids.back());
      cold.Deregister(ids.back());
      ids.pop_back();
      expect_same_state();
    }
  }

  // The full iteration stream matches record for record; timings are
  // the only fields allowed to differ.
  ASSERT_EQ(warm.iteration_count(), cold.iteration_count());
  for (size_t i = 0; i < warm.iteration_count(); ++i) {
    const IterationRecord& w = warm.iterations()[i];
    const IterationRecord& c = cold.iterations()[i];
    EXPECT_EQ(w.iteration, c.iteration);
    EXPECT_EQ(w.worker_count, c.worker_count);
    EXPECT_EQ(w.task_count, c.task_count);
    EXPECT_EQ(w.motivation, c.motivation) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndThreadCaps, WarmColdEquivalenceTest,
    ::testing::Combine(::testing::Values(DistanceKind::kJaccard,
                                         DistanceKind::kDice,
                                         DistanceKind::kHamming,
                                         DistanceKind::kCosineAngular),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{2},
                                         size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<DistanceKind, size_t>>&
           info) {
      std::string name = DistanceKindName(std::get<0>(info.param)) +
                         "_threads" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';  // "cosine-angular" -> valid gtest name.
      }
      return name;
    });

// The warm default must follow AssignmentServiceOptions (and the
// HTA_WARM_CACHE escape hatch tested in CI), and a tiny distance-cache
// budget must degrade to packed-rows-only warm mode, still equivalent.
TEST(WarmColdEquivalenceTest, ZeroDistanceBudgetStaysEquivalent) {
  SKIP_IF_WARM_CACHE_FORCED_OFF();
  constexpr size_t kUniverse = 40;
  const auto catalog = RandomCatalog(120, kUniverse, 31);
  const auto interests = RandomInterests(2, kUniverse, 32);

  AssignmentServiceOptions options;
  options.xmax = 4;
  options.extra_random_tasks = 1;
  options.refresh_after_completions = 2;
  options.max_tasks_per_iteration = 30;
  options.seed = 7;

  AssignmentServiceOptions warm_options = options;
  warm_options.warm_cache = true;
  warm_options.warm_distance_cache_bytes = 0;  // Packed rows only.
  AssignmentServiceOptions cold_options = options;
  cold_options.warm_cache = false;
  AssignmentService warm(&catalog, warm_options);
  AssignmentService cold(&catalog, cold_options);
  ASSERT_NE(warm.warm_cache(), nullptr);
  EXPECT_FALSE(warm.warm_cache()->distance_cache_enabled());

  std::vector<uint64_t> ids;
  for (const KeywordVector& v : interests) {
    ids.push_back(warm.RegisterWorker(v));
    ASSERT_EQ(cold.RegisterWorker(v), ids.back());
  }
  for (size_t step = 0; step < 12; ++step) {
    const uint64_t id = ids[step % ids.size()];
    const std::vector<size_t> displayed = warm.Displayed(id);
    if (displayed.empty()) continue;
    ASSERT_TRUE(warm.NotifyCompleted(id, displayed.front()).ok());
    ASSERT_TRUE(cold.NotifyCompleted(id, displayed.front()).ok());
    for (uint64_t w : ids) {
      ASSERT_EQ(warm.Displayed(w), cold.Displayed(w));
    }
  }
  ASSERT_EQ(warm.iteration_count(), cold.iteration_count());
  for (size_t i = 0; i < warm.iteration_count(); ++i) {
    EXPECT_EQ(warm.iterations()[i].motivation, cold.iterations()[i].motivation);
  }
}

}  // namespace
}  // namespace hta
