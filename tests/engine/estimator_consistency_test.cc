// Statistical consistency of the Section III estimator: when simulated
// workers with known latent preferences choose tasks from realistic
// bundles, the recovered (alpha, beta) estimates must separate the
// populations in the right direction. This closes the loop between the
// estimator (engine) and the behavioral model (sim).
#include <algorithm>

#include <gtest/gtest.h>

#include "engine/motivation_estimator.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "util/stats.h"

namespace hta {
namespace {

class EstimatorConsistencyTest : public ::testing::Test {
 protected:
  EstimatorConsistencyTest() {
    CatalogOptions options;
    options.num_groups = 20;
    options.tasks_per_group = 30;
    options.vocabulary_size = 200;
    auto c = GenerateCatalog(options);
    HTA_CHECK(c.ok());
    catalog_ = std::move(*c);
  }

  /// Simulates one worker with the given latent preference completing
  /// `completions` tasks from random 12-task bundles, and returns the
  /// estimator's final alpha.
  double EstimateAlphaFor(double alpha_latent, uint64_t seed,
                          int completions = 24) {
    Rng rng(seed);
    BehaviorParams params;
    params.alpha_latent = alpha_latent;
    params.choice_noise = 0.05;
    // Anchor the worker's interests on a task group so relevance is a
    // usable signal.
    const KeywordVector interests =
        catalog_.tasks[rng.NextBounded(catalog_.size())].keywords();
    BehavioralWorker worker(&catalog_.tasks, DistanceKind::kJaccard,
                            Worker(seed, interests), params, rng.Fork(1));
    MotivationEstimator estimator(&catalog_.tasks, DistanceKind::kJaccard);

    int done = 0;
    while (done < completions) {
      // A fresh random bundle each refresh, like the platform's display.
      std::vector<size_t> bundle =
          rng.SampleWithoutReplacement(catalog_.size(), 12);
      estimator.BeginBundle(seed, bundle);
      for (int k = 0; k < 6 && done < completions; ++k, ++done) {
        // The worker picks among the not-yet-completed bundle tasks
        // (the estimator tracks completion internally; the local erase
        // below keeps the choice set in sync).
        const size_t chosen = worker.ChooseTask(bundle);
        worker.RecordCompletion(chosen);
        estimator.ObserveCompletion(seed, chosen, worker.profile());
        // Remove chosen from the local bundle view.
        bundle.erase(std::find(bundle.begin(), bundle.end(), chosen));
      }
    }
    return estimator.Estimate(seed).alpha;
  }

  Catalog catalog_;
};

TEST_F(EstimatorConsistencyTest, SeparatesDiversityAndRelevanceLovers) {
  std::vector<double> diversity_lover_alphas;
  std::vector<double> relevance_lover_alphas;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    diversity_lover_alphas.push_back(EstimateAlphaFor(0.95, seed));
    relevance_lover_alphas.push_back(EstimateAlphaFor(0.05, 100 + seed));
  }
  const double div_mean = Summarize(diversity_lover_alphas).mean;
  const double rel_mean = Summarize(relevance_lover_alphas).mean;
  EXPECT_GT(div_mean, rel_mean + 0.03)
      << "estimator failed to separate latent preferences: div-lover mean "
      << div_mean << " vs rel-lover mean " << rel_mean;
  // The separation should also be statistically significant.
  auto u = MannWhitneyUTest(diversity_lover_alphas, relevance_lover_alphas);
  ASSERT_TRUE(u.ok());
  EXPECT_LT(u->p_value, 0.05);
}

TEST_F(EstimatorConsistencyTest, EstimatesMonotoneInLatentAlpha) {
  // Averaged over seeds, the estimate should increase with the latent
  // preference across a 3-point sweep.
  auto mean_estimate = [&](double alpha_latent, uint64_t base) {
    double sum = 0.0;
    for (uint64_t s = 0; s < 8; ++s) {
      sum += EstimateAlphaFor(alpha_latent, base + s);
    }
    return sum / 8.0;
  };
  const double low = mean_estimate(0.1, 200);
  const double mid = mean_estimate(0.5, 300);
  const double high = mean_estimate(0.9, 400);
  EXPECT_LT(low, high);
  EXPECT_LE(low, mid + 0.05);
  EXPECT_LE(mid, high + 0.05);
}

}  // namespace
}  // namespace hta
