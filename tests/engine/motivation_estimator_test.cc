#include "engine/motivation_estimator.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() {
    // Tasks 0 and 1 are near-duplicates; task 2 is disjoint from both;
    // task 3 partially overlaps 0/1.
    catalog_.emplace_back(0, KeywordVector(32, {1, 2, 3}));
    catalog_.emplace_back(1, KeywordVector(32, {1, 2, 4}));
    catalog_.emplace_back(2, KeywordVector(32, {10, 11, 12}));
    catalog_.emplace_back(3, KeywordVector(32, {1, 20, 21}));
  }

  std::vector<Task> catalog_;
  Worker WorkerLiking(std::initializer_list<KeywordId> ids) {
    return Worker(7, KeywordVector(32, ids));
  }
};

TEST_F(EstimatorTest, PriorReturnedWithoutObservations) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard,
                          MotivationWeights{0.3, 0.7});
  const MotivationWeights w = est.Estimate(7);
  EXPECT_DOUBLE_EQ(w.alpha, 0.3);
  EXPECT_DOUBLE_EQ(w.beta, 0.7);
}

TEST_F(EstimatorTest, FirstCompletionHasNoDiversitySignal) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1, 2, 3});
  est.BeginBundle(7, {0, 1, 2});
  est.ObserveCompletion(7, 0, w);
  // No completed prefix → max diversity gain 0 → skipped.
  EXPECT_EQ(est.DiversityObservationCount(7), 0u);
  // Relevance signal exists (rel(t0) = 1 is the max).
  EXPECT_EQ(est.RelevanceObservationCount(7), 1u);
}

TEST_F(EstimatorTest, DiversityChooserDriftsTowardHighAlpha) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1, 2, 3});
  est.BeginBundle(7, {0, 1, 2, 3});
  // Completes t0, then the most-different remaining task each time.
  est.ObserveCompletion(7, 0, w);
  est.ObserveCompletion(7, 2, w);  // t2 is maximally diverse from t0.
  est.ObserveCompletion(7, 3, w);
  const MotivationWeights weights = est.Estimate(7);
  EXPECT_GT(weights.alpha, weights.beta);
  EXPECT_NEAR(weights.alpha + weights.beta, 1.0, 1e-12);
}

TEST_F(EstimatorTest, RelevanceChooserDriftsTowardHighBeta) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1, 2, 3});
  est.BeginBundle(7, {0, 1, 2, 3});
  // Completes in relevance order: t0 (rel 1), then t1 (best remaining
  // relevance but low marginal diversity), then t3.
  est.ObserveCompletion(7, 0, w);
  est.ObserveCompletion(7, 1, w);
  est.ObserveCompletion(7, 3, w);
  const MotivationWeights weights = est.Estimate(7);
  EXPECT_GT(weights.beta, weights.alpha);
}

TEST_F(EstimatorTest, UnknownTasksIgnored) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1});
  est.BeginBundle(7, {0, 1});
  est.ObserveCompletion(7, 2, w);  // Not in the bundle.
  EXPECT_EQ(est.DiversityObservationCount(7), 0u);
  EXPECT_EQ(est.RelevanceObservationCount(7), 0u);
}

TEST_F(EstimatorTest, DuplicateCompletionIgnored) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1, 2, 3});
  est.BeginBundle(7, {0, 1});
  est.ObserveCompletion(7, 0, w);
  est.ObserveCompletion(7, 0, w);
  EXPECT_EQ(est.RelevanceObservationCount(7), 1u);
}

TEST_F(EstimatorTest, ObservationsBeforeBeginBundleIgnored) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1});
  est.ObserveCompletion(7, 0, w);
  EXPECT_EQ(est.RelevanceObservationCount(7), 0u);
}

TEST_F(EstimatorTest, GainsAccumulateAcrossBundles) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({1, 2, 3});
  est.BeginBundle(7, {0, 1});
  est.ObserveCompletion(7, 0, w);
  est.BeginBundle(7, {2, 3});
  est.ObserveCompletion(7, 2, w);
  EXPECT_EQ(est.RelevanceObservationCount(7), 2u);
}

TEST_F(EstimatorTest, WorkersTrackedIndependently) {
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker a = WorkerLiking({1, 2, 3});
  est.BeginBundle(1, {0, 1});
  est.ObserveCompletion(1, 0, a);
  EXPECT_EQ(est.RelevanceObservationCount(1), 1u);
  EXPECT_EQ(est.RelevanceObservationCount(2), 0u);
}

TEST_F(EstimatorTest, NormalizedGainInZeroOne) {
  // The chosen task's marginal gain can never exceed the max over
  // remaining tasks, so alpha_raw, beta_raw lie in [0, 1] and the
  // normalized estimate is a valid weight pair.
  MotivationEstimator est(&catalog_, DistanceKind::kJaccard);
  const Worker w = WorkerLiking({10, 11});
  est.BeginBundle(7, {0, 1, 2, 3});
  est.ObserveCompletion(7, 1, w);
  est.ObserveCompletion(7, 3, w);
  est.ObserveCompletion(7, 0, w);
  est.ObserveCompletion(7, 2, w);
  const MotivationWeights weights = est.Estimate(7);
  EXPECT_GE(weights.alpha, 0.0);
  EXPECT_LE(weights.alpha, 1.0);
  EXPECT_NEAR(weights.alpha + weights.beta, 1.0, 1e-12);
}

}  // namespace
}  // namespace hta
