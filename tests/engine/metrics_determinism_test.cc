#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/concurrent_deployment.h"
#include "sim/worker_gen.h"
#include "util/metrics.h"

namespace hta {
namespace {

/// Pins the observability layer's two engine-wide contracts:
///  1. the deterministic metrics digest is bit-identical for every
///     solver thread cap, and
///  2. turning instrumentation on changes nothing the engine computes.

Catalog TestCatalog() {
  CatalogOptions options;
  options.num_groups = 15;
  options.tasks_per_group = 40;
  options.vocabulary_size = 150;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

std::vector<BehavioralWorker> TestWorkers(const Catalog& catalog,
                                          size_t count) {
  std::vector<BehavioralWorker> workers;
  for (size_t s = 0; s < count; ++s) {
    Rng rng(1000 + s);
    BehaviorParams params = SampleBehaviorParams(&rng);
    KeywordVector interests(catalog.space.size());
    for (int b = 0; b < 5; ++b) {
      interests.Set(
          static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
    }
    workers.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                         Worker(s, std::move(interests)), params,
                         rng.Fork(1));
  }
  return workers;
}

DeploymentResult RunDeployment(const Catalog& catalog, size_t solver_threads) {
  AssignmentServiceOptions service_options;
  service_options.strategy = StrategyKind::kHtaGre;
  service_options.xmax = 6;
  service_options.extra_random_tasks = 2;
  service_options.refresh_after_completions = 3;
  service_options.max_tasks_per_iteration = 100;
  service_options.solver_threads = solver_threads;
  AssignmentService service(&catalog.tasks, service_options);
  auto workers = TestWorkers(catalog, 6);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 2.0;
  options.session.max_minutes = 8.0;
  return RunConcurrentDeployment(&service, catalog, &workers, options);
}

TEST(MetricsDeterminismTest, DigestIdenticalAcrossSolverThreadCaps) {
  const Catalog catalog = TestCatalog();
  metrics::OverrideEnabled(true);
  std::string reference;
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
    metrics::ResetForTesting();
    RunDeployment(catalog, threads);
    const std::string digest = metrics::DeterministicDigest();
    EXPECT_FALSE(digest.empty());
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << "metric totals changed under solver_threads=" << threads;
    }
  }
  metrics::ResetForTesting();
  metrics::OverrideEnabled(false);
}

TEST(MetricsDeterminismTest, InstrumentationDoesNotPerturbTheEngine) {
  const Catalog catalog = TestCatalog();
  metrics::OverrideEnabled(false);
  const DeploymentResult off = RunDeployment(catalog, 0);
  metrics::OverrideEnabled(true);
  metrics::ResetForTesting();
  const DeploymentResult on = RunDeployment(catalog, 0);
  metrics::ResetForTesting();
  metrics::OverrideEnabled(false);

  EXPECT_EQ(on.iterations, off.iterations);
  ASSERT_EQ(on.sessions.size(), off.sessions.size());
  for (size_t s = 0; s < on.sessions.size(); ++s) {
    const SessionResult& a = on.sessions[s];
    const SessionResult& b = off.sessions[s];
    EXPECT_EQ(a.worker_id, b.worker_id);
    EXPECT_EQ(a.left_voluntarily, b.left_voluntarily);
    EXPECT_EQ(a.duration_minutes, b.duration_minutes);
    EXPECT_EQ(a.arrival_minute, b.arrival_minute);
    EXPECT_EQ(a.ended_minute, b.ended_minute);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].catalog_task, b.events[e].catalog_task);
      EXPECT_EQ(a.events[e].session_minute, b.events[e].session_minute);
      EXPECT_EQ(a.events[e].wall_minute, b.events[e].wall_minute);
      EXPECT_EQ(a.events[e].correct, b.events[e].correct);
    }
  }
}

TEST(MetricsDeterminismTest, EngineCountersReflectTheDeployment) {
  const Catalog catalog = TestCatalog();
  metrics::OverrideEnabled(true);
  metrics::ResetForTesting();
  const DeploymentResult result = RunDeployment(catalog, 0);
  size_t completions = 0;
  for (const SessionResult& s : result.sessions) {
    completions += s.tasks_completed();
  }
  uint64_t metric_completions = 0;
  uint64_t metric_iterations = 0;
  uint64_t metric_registrations = 0;
  uint64_t metric_expirations = 0;
  uint64_t metric_deregistrations = 0;
  for (const metrics::MetricValue& v : metrics::Snapshot()) {
    if (v.name == "engine.completions") metric_completions = v.count;
    if (v.name == "engine.iterations") metric_iterations = v.count;
    if (v.name == "engine.registrations") metric_registrations = v.count;
    if (v.name == "engine.deregistrations") metric_deregistrations = v.count;
    if (v.name == "deployment.expirations") metric_expirations = v.count;
  }
  EXPECT_EQ(metric_completions, completions);
  EXPECT_EQ(metric_iterations, result.iterations);
  EXPECT_EQ(metric_registrations, result.sessions.size());
  EXPECT_EQ(metric_deregistrations, result.sessions.size());
  // Every non-voluntary session either expired at the cap or ran the
  // platform dry; expirations can never exceed the involuntary count.
  size_t involuntary = 0;
  for (const SessionResult& s : result.sessions) {
    if (!s.left_voluntarily) ++involuntary;
  }
  EXPECT_LE(metric_expirations, involuntary);
  metrics::ResetForTesting();
  metrics::OverrideEnabled(false);
}

}  // namespace
}  // namespace hta
