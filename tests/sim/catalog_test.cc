#include "sim/catalog.h"

#include <set>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "util/rng.h"

namespace hta {
namespace {

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  const ZipfSampler zipf(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng.NextDouble())];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(ZipfSamplerTest, SkewedTowardLowIndices) {
  const ZipfSampler zipf(100, 1.2);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng.NextDouble())];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSamplerTest, BoundaryInputs) {
  const ZipfSampler zipf(5, 1.0);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  EXPECT_LT(zipf.Sample(0.9999999), 5u);
}

TEST(CatalogTest, GeneratesRequestedShape) {
  CatalogOptions options;
  options.num_groups = 10;
  options.tasks_per_group = 7;
  options.vocabulary_size = 200;
  auto catalog = GenerateCatalog(options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->size(), 70u);
  EXPECT_EQ(catalog->space.size(), 200u);
  EXPECT_EQ(catalog->questions_per_task.size(), 70u);
}

TEST(CatalogTest, TaskIdsAreDenseAndGroupsLabeled) {
  CatalogOptions options;
  options.num_groups = 4;
  options.tasks_per_group = 3;
  auto catalog = GenerateCatalog(options);
  ASSERT_TRUE(catalog.ok());
  for (size_t i = 0; i < catalog->size(); ++i) {
    EXPECT_EQ(catalog->tasks[i].id(), i);
    EXPECT_EQ(catalog->tasks[i].group(), i / 3);
    EXPECT_FALSE(catalog->tasks[i].title().empty());
  }
}

TEST(CatalogTest, IntraGroupMoreSimilarThanInterGroup) {
  CatalogOptions options;
  options.num_groups = 20;
  options.tasks_per_group = 10;
  options.vocabulary_size = 500;
  auto catalog = GenerateCatalog(options);
  ASSERT_TRUE(catalog.ok());
  double intra = 0.0;
  int intra_n = 0;
  double inter = 0.0;
  int inter_n = 0;
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t a = rng.NextBounded(catalog->size());
    const size_t b = rng.NextBounded(catalog->size());
    if (a == b) continue;
    const double d = PairwiseTaskDiversity(
        DistanceKind::kJaccard, catalog->tasks[a], catalog->tasks[b]);
    if (catalog->tasks[a].group() == catalog->tasks[b].group()) {
      intra += d;
      ++intra_n;
    } else {
      inter += d;
      ++inter_n;
    }
  }
  ASSERT_GT(intra_n, 10);
  ASSERT_GT(inter_n, 10);
  EXPECT_LT(intra / intra_n, inter / inter_n)
      << "tasks within a group must be more similar than across groups";
}

TEST(CatalogTest, MoreGroupsMeansMoreDistinctProfiles) {
  // The Fig. 3 diversity knob: with one group per task, average
  // pairwise diversity is higher than with few groups.
  CatalogOptions few;
  few.num_groups = 2;
  few.tasks_per_group = 50;
  few.vocabulary_size = 300;
  CatalogOptions many;
  many.num_groups = 100;
  many.tasks_per_group = 1;
  many.vocabulary_size = 300;
  auto catalog_few = GenerateCatalog(few);
  auto catalog_many = GenerateCatalog(many);
  ASSERT_TRUE(catalog_few.ok());
  ASSERT_TRUE(catalog_many.ok());
  auto mean_diversity = [](const Catalog& c) {
    double sum = 0.0;
    int n = 0;
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        sum += PairwiseTaskDiversity(DistanceKind::kJaccard, c.tasks[i],
                                     c.tasks[j]);
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_LT(mean_diversity(*catalog_few), mean_diversity(*catalog_many));
}

TEST(CatalogTest, RewardsAndQuestionsWithinRanges) {
  CatalogOptions options;
  options.num_groups = 10;
  options.tasks_per_group = 10;
  options.min_reward_usd = 0.01;
  options.max_reward_usd = 0.12;
  options.min_questions = 1;
  options.max_questions = 3;
  auto catalog = GenerateCatalog(options);
  ASSERT_TRUE(catalog.ok());
  for (size_t i = 0; i < catalog->size(); ++i) {
    EXPECT_GE(catalog->tasks[i].reward_usd(), 0.01);
    EXPECT_LE(catalog->tasks[i].reward_usd(), 0.12);
    EXPECT_GE(catalog->questions_per_task[i], 1);
    EXPECT_LE(catalog->questions_per_task[i], 3);
  }
}

TEST(CatalogTest, DeterministicForSeed) {
  CatalogOptions options;
  options.num_groups = 5;
  options.tasks_per_group = 5;
  auto a = GenerateCatalog(options);
  auto b = GenerateCatalog(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(a->tasks[i].keywords() == b->tasks[i].keywords());
  }
}

TEST(CatalogTest, RejectsDegenerateOptions) {
  CatalogOptions options;
  options.vocabulary_size = 0;
  EXPECT_FALSE(GenerateCatalog(options).ok());

  options = CatalogOptions();
  options.num_groups = 0;
  EXPECT_FALSE(GenerateCatalog(options).ok());

  options = CatalogOptions();
  options.keywords_per_group = 2000;
  EXPECT_FALSE(GenerateCatalog(options).ok());

  options = CatalogOptions();
  options.min_reward_usd = 0.5;
  options.max_reward_usd = 0.1;
  EXPECT_FALSE(GenerateCatalog(options).ok());

  options = CatalogOptions();
  options.min_questions = 0;
  EXPECT_FALSE(GenerateCatalog(options).ok());
}

TEST(CatalogTest, TasksHaveNonEmptyKeywords) {
  CatalogOptions options;
  options.num_groups = 8;
  options.tasks_per_group = 8;
  auto catalog = GenerateCatalog(options);
  ASSERT_TRUE(catalog.ok());
  for (const Task& t : catalog->tasks) {
    EXPECT_GE(t.keywords().Count(), options.keywords_per_group);
  }
}

}  // namespace
}  // namespace hta
