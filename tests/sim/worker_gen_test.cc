#include "sim/worker_gen.h"

#include <gtest/gtest.h>

#include "core/distance.h"

namespace hta {
namespace {

Catalog TestCatalog() {
  CatalogOptions options;
  options.num_groups = 10;
  options.tasks_per_group = 10;
  options.vocabulary_size = 150;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

TEST(WorkerGenTest, GeneratesCountWithFiveKeywords) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.count = 25;
  auto workers = GenerateWorkers(options, catalog);
  ASSERT_TRUE(workers.ok());
  EXPECT_EQ(workers->size(), 25u);
  for (const Worker& w : *workers) {
    EXPECT_EQ(w.interests().Count(), 5u);
    EXPECT_EQ(w.interests().universe_size(), 150u);
  }
}

TEST(WorkerGenTest, IdsAreDense) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.count = 10;
  auto workers = GenerateWorkers(options, catalog);
  ASSERT_TRUE(workers.ok());
  for (size_t q = 0; q < 10; ++q) {
    EXPECT_EQ((*workers)[q].id(), q);
  }
}

TEST(WorkerGenTest, RandomWeightsSumToOne) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.count = 50;
  options.random_weights = true;
  auto workers = GenerateWorkers(options, catalog);
  ASSERT_TRUE(workers.ok());
  bool varied = false;
  for (const Worker& w : *workers) {
    EXPECT_NEAR(w.weights().alpha + w.weights().beta, 1.0, 1e-12);
    if (w.weights().alpha < 0.3 || w.weights().alpha > 0.7) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(WorkerGenTest, FixedWeightsWhenDisabled) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.count = 5;
  options.random_weights = false;
  auto workers = GenerateWorkers(options, catalog);
  ASSERT_TRUE(workers.ok());
  for (const Worker& w : *workers) {
    EXPECT_DOUBLE_EQ(w.weights().alpha, 0.5);
  }
}

TEST(WorkerGenTest, GroupAffinityRaisesBestRelevance) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions uniform;
  uniform.count = 40;
  uniform.group_affinity = 0.0;
  uniform.seed = 5;
  WorkerGenOptions affine;
  affine.count = 40;
  affine.group_affinity = 0.8;
  affine.seed = 5;
  auto uniform_workers = GenerateWorkers(uniform, catalog);
  auto affine_workers = GenerateWorkers(affine, catalog);
  ASSERT_TRUE(uniform_workers.ok());
  ASSERT_TRUE(affine_workers.ok());
  auto mean_best_rel = [&](const std::vector<Worker>& workers) {
    double total = 0.0;
    for (const Worker& w : workers) {
      double best = 0.0;
      for (const Task& t : catalog.tasks) {
        best = std::max(best, TaskRelevance(DistanceKind::kJaccard, t, w));
      }
      total += best;
    }
    return total / workers.size();
  };
  EXPECT_GT(mean_best_rel(*affine_workers),
            mean_best_rel(*uniform_workers));
}

TEST(WorkerGenTest, RejectsBadOptions) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.keywords_per_worker = 1000;
  EXPECT_FALSE(GenerateWorkers(options, catalog).ok());
  options = WorkerGenOptions();
  options.group_affinity = 1.5;
  EXPECT_FALSE(GenerateWorkers(options, catalog).ok());
}

TEST(WorkerGenTest, DeterministicForSeed) {
  const Catalog catalog = TestCatalog();
  WorkerGenOptions options;
  options.count = 10;
  auto a = GenerateWorkers(options, catalog);
  auto b = GenerateWorkers(options, catalog);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t q = 0; q < 10; ++q) {
    EXPECT_TRUE((*a)[q].interests() == (*b)[q].interests());
  }
}

}  // namespace
}  // namespace hta
