#include "sim/crowd_sim.h"

#include <set>

#include <gtest/gtest.h>

#include "sim/worker_gen.h"

namespace hta {
namespace {

Catalog TestCatalog() {
  CatalogOptions options;
  options.num_groups = 15;
  options.tasks_per_group = 30;
  options.vocabulary_size = 150;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

AssignmentServiceOptions TestServiceOptions(StrategyKind strategy) {
  AssignmentServiceOptions o;
  o.strategy = strategy;
  o.xmax = 6;
  o.extra_random_tasks = 2;
  o.refresh_after_completions = 3;
  o.max_tasks_per_iteration = 80;
  return o;
}

BehavioralWorker TestWorker(const Catalog& catalog, uint64_t seed) {
  Rng rng(seed);
  BehaviorParams params = SampleBehaviorParams(&rng);
  KeywordVector interests(catalog.space.size());
  for (int b = 0; b < 5; ++b) {
    interests.Set(
        static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
  }
  return BehavioralWorker(&catalog.tasks, DistanceKind::kJaccard,
                          Worker(seed, std::move(interests)), params,
                          rng.Fork(1));
}

TEST(CrowdSimTest, SessionCompletesTasksWithinTimeBudget) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGre));
  BehavioralWorker worker = TestWorker(catalog, 1);
  SessionConfig config;
  config.max_minutes = 30.0;
  const SessionResult session = RunSession(&service, catalog, &worker, config);
  EXPECT_GT(session.tasks_completed(), 0u);
  EXPECT_LE(session.duration_minutes, 30.0 + 1e-9);
  // Events are time-ordered and within the session window.
  double prev = 0.0;
  for (const CompletionEvent& e : session.events) {
    EXPECT_GE(e.session_minute, prev);
    EXPECT_LE(e.session_minute, 30.0);
    prev = e.session_minute;
    EXPECT_GE(e.questions, 1);
    EXPECT_LE(e.correct, e.questions);
    EXPECT_GE(e.correct, 0);
  }
}

TEST(CrowdSimTest, QuestionAccountingConsistent) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGreDiv));
  BehavioralWorker worker = TestWorker(catalog, 2);
  const SessionResult session =
      RunSession(&service, catalog, &worker, SessionConfig{});
  EXPECT_GE(session.questions_total(), session.tasks_completed());
  EXPECT_LE(session.questions_correct(), session.questions_total());
  // Every completed task's questions match the catalog.
  for (const CompletionEvent& e : session.events) {
    EXPECT_EQ(e.questions,
              static_cast<int>(catalog.questions_per_task[e.catalog_task]));
  }
}

TEST(CrowdSimTest, CompletedTasksAreCompletedInPool) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGreRel));
  BehavioralWorker worker = TestWorker(catalog, 3);
  const SessionResult session =
      RunSession(&service, catalog, &worker, SessionConfig{});
  for (const CompletionEvent& e : session.events) {
    EXPECT_EQ(service.pool().state(e.catalog_task), TaskState::kCompleted);
  }
  EXPECT_EQ(service.pool().completed_count(), session.tasks_completed());
}

TEST(CrowdSimTest, NoTaskCompletedTwiceAcrossSessions) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGre));
  std::set<size_t> completed;
  for (uint64_t s = 0; s < 5; ++s) {
    BehavioralWorker worker = TestWorker(catalog, 10 + s);
    const SessionResult session =
        RunSession(&service, catalog, &worker, SessionConfig{});
    for (const CompletionEvent& e : session.events) {
      EXPECT_TRUE(completed.insert(e.catalog_task).second)
          << "task " << e.catalog_task << " completed twice";
    }
  }
}

TEST(CrowdSimTest, ShortSessionCapRespected) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGre));
  BehavioralWorker worker = TestWorker(catalog, 4);
  SessionConfig config;
  config.max_minutes = 2.0;
  const SessionResult session = RunSession(&service, catalog, &worker, config);
  EXPECT_LE(session.duration_minutes, 2.0 + 1e-9);
  for (const CompletionEvent& e : session.events) {
    EXPECT_LE(e.session_minute, 2.0);
  }
}

TEST(CrowdSimTest, DeterministicGivenSeeds) {
  const Catalog catalog = TestCatalog();
  auto run_once = [&]() {
    AssignmentService service(&catalog.tasks,
                              TestServiceOptions(StrategyKind::kHtaGre));
    BehavioralWorker worker = TestWorker(catalog, 5);
    return RunSession(&service, catalog, &worker, SessionConfig{});
  };
  const SessionResult a = run_once();
  const SessionResult b = run_once();
  EXPECT_EQ(a.tasks_completed(), b.tasks_completed());
  EXPECT_DOUBLE_EQ(a.duration_minutes, b.duration_minutes);
  EXPECT_EQ(a.questions_correct(), b.questions_correct());
}

}  // namespace
}  // namespace hta
