#include <vector>

#include <gtest/gtest.h>

#include "engine/event_log.h"
#include "sim/concurrent_deployment.h"
#include "sim/worker_gen.h"

namespace hta {
namespace {

/// Regression tests for the deployment clock/ordering semantics:
///
///  * A session that hits its time cap mid-task must end at exactly
///    arrival + max_minutes, on the service clock, via the queued
///    expiry event — not early at the last completion's time (the
///    pre-fix behavior, where Deregister ran at a service clock that
///    disagreed with the recorded session end).
///  * The audit EventLog's wall-clock contract must hold across
///    interleaved sessions: replaying the log offline reproduces the
///    live motivation estimates exactly.

Catalog TestCatalog() {
  CatalogOptions options;
  options.num_groups = 15;
  options.tasks_per_group = 40;
  options.vocabulary_size = 150;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

AssignmentServiceOptions TestServiceOptions() {
  AssignmentServiceOptions o;
  o.strategy = StrategyKind::kHtaGre;
  o.xmax = 6;
  o.extra_random_tasks = 2;
  o.refresh_after_completions = 3;
  o.max_tasks_per_iteration = 100;
  return o;
}

/// Workers whose tasks take ~3 minutes and who (essentially) never
/// leave voluntarily, so sessions end by hitting the cap mid-task.
std::vector<BehavioralWorker> SlowPersistentWorkers(const Catalog& catalog,
                                                    size_t count) {
  std::vector<BehavioralWorker> workers;
  for (size_t s = 0; s < count; ++s) {
    Rng rng(1000 + s);
    BehaviorParams params;
    params.base_task_seconds = 180.0;
    params.time_jitter_sigma = 0.0;
    params.base_leave_hazard = 0.0;
    params.utility_retention = 0.0;
    params.boredom_leave_hazard = 0.0;
    params.choice_fatigue_hazard = 0.0;
    KeywordVector interests(catalog.space.size());
    for (int b = 0; b < 5; ++b) {
      interests.Set(
          static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
    }
    workers.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                         Worker(s, std::move(interests)), params,
                         rng.Fork(1));
  }
  return workers;
}

std::vector<BehavioralWorker> SampledWorkers(const Catalog& catalog,
                                             size_t count) {
  std::vector<BehavioralWorker> workers;
  for (size_t s = 0; s < count; ++s) {
    Rng rng(1000 + s);
    BehaviorParams params = SampleBehaviorParams(&rng);
    KeywordVector interests(catalog.space.size());
    for (int b = 0; b < 5; ++b) {
      interests.Set(
          static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
    }
    workers.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                         Worker(s, std::move(interests)), params,
                         rng.Fork(1));
  }
  return workers;
}

const LoggedEvent* FindDeregistration(const EventLog& log,
                                      uint64_t worker_id) {
  for (const LoggedEvent& e : log.events()) {
    if (e.kind == LoggedEvent::Kind::kDeregistered &&
        e.worker_id == worker_id) {
      return &e;
    }
  }
  return nullptr;
}

TEST(DeploymentClockTest, CappedSessionsExpireAtArrivalPlusMax) {
  const Catalog catalog = TestCatalog();
  EventLog log;
  AssignmentServiceOptions service_options = TestServiceOptions();
  service_options.event_log = &log;
  AssignmentService service(&catalog.tasks, service_options);
  auto workers = SlowPersistentWorkers(catalog, 4);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 1.0;
  options.session.max_minutes = 5.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);

  size_t expired = 0;
  for (const SessionResult& s : result.sessions) {
    if (s.left_voluntarily) continue;
    if (s.tasks_completed() == 0) continue;  // Platform ran dry instantly.
    // A ~3-minute task inside a 5-minute session leaves the worker
    // holding the HIT when the second task would cross the cap; the
    // queued expiry event must end the session exactly at the cap.
    EXPECT_DOUBLE_EQ(s.ended_minute, s.arrival_minute + 5.0);
    EXPECT_DOUBLE_EQ(s.duration_minutes, 5.0);
    ++expired;
  }
  EXPECT_GT(expired, 0u) << "no session hit the cap; test setup is broken";
}

TEST(DeploymentClockTest, DeregistrationIsLoggedAtTheSessionEndClock) {
  const Catalog catalog = TestCatalog();
  EventLog log;
  AssignmentServiceOptions service_options = TestServiceOptions();
  service_options.event_log = &log;
  AssignmentService service(&catalog.tasks, service_options);
  auto workers = SlowPersistentWorkers(catalog, 4);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 1.0;
  options.session.max_minutes = 5.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);

  for (const SessionResult& s : result.sessions) {
    const LoggedEvent* dereg = FindDeregistration(log, s.worker_id);
    ASSERT_NE(dereg, nullptr) << "worker " << s.worker_id;
    // Pre-fix, end_session ran while the service clock still sat at the
    // last completion, so the logged deregistration disagreed with the
    // recorded session end.
    EXPECT_DOUBLE_EQ(dereg->minute, s.ended_minute);
  }
  // The log's append contract (non-decreasing minutes across *all*
  // workers) held throughout — re-check explicitly for clarity.
  double prev = 0.0;
  for (const LoggedEvent& e : log.events()) {
    EXPECT_GE(e.minute, prev);
    prev = e.minute;
  }
}

TEST(DeploymentClockTest, InterleavedReplayReproducesLiveEstimates) {
  const Catalog catalog = TestCatalog();
  EventLog log;
  AssignmentServiceOptions service_options = TestServiceOptions();
  service_options.event_log = &log;
  AssignmentService service(&catalog.tasks, service_options);
  auto workers = SampledWorkers(catalog, 6);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 3.0;
  options.session.max_minutes = 8.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);
  ASSERT_GT(result.max_concurrent_sessions, size_t{1})
      << "sessions did not interleave; the test exercises nothing";

  std::vector<Worker> replay_workers;
  for (size_t slot = 0; slot < workers.size(); ++slot) {
    replay_workers.emplace_back(result.sessions[slot].worker_id,
                                workers[slot].profile().interests());
  }
  auto replayed = ReplayEstimates(log, catalog.tasks, replay_workers);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  for (const SessionResult& s : result.sessions) {
    const MotivationWeights live = service.CurrentWeights(s.worker_id);
    ASSERT_TRUE(replayed->count(s.worker_id))
        << "worker " << s.worker_id << " missing from replay";
    EXPECT_DOUBLE_EQ(replayed->at(s.worker_id).alpha, live.alpha);
    EXPECT_DOUBLE_EQ(replayed->at(s.worker_id).beta, live.beta);
  }

  // The sim-side wall-clock stamps agree with the log's timeline: each
  // completion event appears in the log at its wall_minute.
  for (const SessionResult& s : result.sessions) {
    for (const CompletionEvent& e : s.events) {
      bool found = false;
      for (const LoggedEvent& logged : log.events()) {
        if (logged.kind == LoggedEvent::Kind::kCompleted &&
            logged.worker_id == s.worker_id &&
            logged.minute == e.wall_minute) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "no logged completion at wall minute "
                         << e.wall_minute << " for worker " << s.worker_id;
    }
  }
}

}  // namespace
}  // namespace hta
