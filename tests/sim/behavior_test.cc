#include "sim/behavior.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

class BehaviorTest : public ::testing::Test {
 protected:
  BehaviorTest() {
    // Tasks 0-2 near-identical, task 3-4 very different.
    catalog_.emplace_back(0, KeywordVector(64, {1, 2, 3}));
    catalog_.emplace_back(1, KeywordVector(64, {1, 2, 4}));
    catalog_.emplace_back(2, KeywordVector(64, {1, 2, 5}));
    catalog_.emplace_back(3, KeywordVector(64, {30, 31, 32}));
    catalog_.emplace_back(4, KeywordVector(64, {40, 41, 42}));
  }

  BehavioralWorker MakeWorker(double alpha_latent, double noise = 0.0,
                              uint64_t seed = 5) {
    BehaviorParams params;
    params.alpha_latent = alpha_latent;
    params.choice_noise = noise;
    return BehavioralWorker(&catalog_, DistanceKind::kJaccard,
                            Worker(1, KeywordVector(64, {1, 2, 3})), params,
                            Rng(seed));
  }

  std::vector<Task> catalog_;
};

TEST_F(BehaviorTest, RelevanceLoverPicksRelevantTask) {
  BehavioralWorker w = MakeWorker(/*alpha_latent=*/0.0);
  // Task 0 exactly matches interests; noise 0 → deterministic argmax.
  EXPECT_EQ(w.ChooseTask({0, 3, 4}), 0u);
}

TEST_F(BehaviorTest, DiversityLoverAlternatesAwayFromHistory) {
  BehavioralWorker w = MakeWorker(/*alpha_latent=*/1.0);
  const size_t first = w.ChooseTask({0, 1, 3});
  w.RecordCompletion(first);
  // Next pick maximizes distance from history; after completing a task
  // from the {0,1,2} cluster, task 3 or 4 must win.
  const size_t second = w.ChooseTask({1, 2, 3});
  if (first == 0 || first == 1) {
    EXPECT_EQ(second, 3u);
  }
}

TEST_F(BehaviorTest, LatentUtilityBlendsBothSignals) {
  BehavioralWorker rel = MakeWorker(0.0);
  BehavioralWorker div = MakeWorker(1.0);
  rel.RecordCompletion(0);
  div.RecordCompletion(0);
  // For the relevance-lover, near-duplicate task 1 (rel ~ 0.5) beats
  // disjoint task 3 (rel 0); for the diversity-lover the reverse.
  EXPECT_GT(rel.LatentUtility(1), rel.LatentUtility(3));
  EXPECT_GT(div.LatentUtility(3), div.LatentUtility(1));
}

TEST_F(BehaviorTest, BoredomRisesOnSimilarStreakAndDecaysOnVariety) {
  BehavioralWorker w = MakeWorker(0.5);
  EXPECT_EQ(w.boredom(), 0.0);
  w.RecordCompletion(0);
  w.RecordCompletion(1);  // Similarity 0.5 > threshold 0.45.
  w.RecordCompletion(2);
  const double bored = w.boredom();
  EXPECT_GT(bored, 0.0);
  w.RecordCompletion(3);  // Dissimilar → decay.
  EXPECT_LT(w.boredom(), bored);
}

TEST_F(BehaviorTest, BoredomDepressesAccuracy) {
  BehaviorParams params;
  params.alpha_latent = 0.5;
  params.boredom_gain = 1.0;
  auto accuracy_estimate = [&](bool bored_first) {
    BehavioralWorker w(&catalog_, DistanceKind::kJaccard,
                       Worker(1, KeywordVector(64, {1, 2, 3})), params,
                       Rng(11));
    if (bored_first) {
      // A long streak of near-duplicates builds substantial boredom.
      for (int round = 0; round < 4; ++round) {
        w.RecordCompletion(0);
        w.RecordCompletion(1);
        w.RecordCompletion(2);
      }
    }
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      if (w.AnswerQuestionCorrectly(1)) ++correct;
    }
    return static_cast<double>(correct) / n;
  };
  EXPECT_GT(accuracy_estimate(false), accuracy_estimate(true) + 0.05);
}

TEST_F(BehaviorTest, ChoiceOverheadGrowsWithDisplayedDiversity) {
  BehaviorParams params;
  params.time_jitter_sigma = 0.0;  // Deterministic timing.
  BehavioralWorker w(&catalog_, DistanceKind::kJaccard,
                     Worker(1, KeywordVector(64, {1})), params, Rng(3));
  const double similar_set = w.CompletionSeconds(0, {0, 1, 2});
  const double diverse_set = w.CompletionSeconds(0, {0, 3, 4});
  EXPECT_GT(diverse_set, similar_set);
}

TEST_F(BehaviorTest, HigherUtilityLowersLeaveRate) {
  BehaviorParams params;
  params.alpha_latent = 0.0;  // Pure relevance preference.
  auto leave_rate = [&](size_t completed_task) {
    int leaves = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      BehavioralWorker w(&catalog_, DistanceKind::kJaccard,
                         Worker(1, KeywordVector(64, {1, 2, 3})), params,
                         Rng(1000 + i));
      w.RecordCompletion(completed_task);
      if (w.DecidesToLeave()) ++leaves;
    }
    return static_cast<double>(leaves) / n;
  };
  // Completing the perfectly relevant task 0 (utility 1) retains better
  // than completing irrelevant task 4 (utility 0).
  EXPECT_LT(leave_rate(0), leave_rate(4));
}

TEST_F(BehaviorTest, SampledParamsWithinDocumentedRanges) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const BehaviorParams p = SampleBehaviorParams(&rng);
    EXPECT_GE(p.alpha_latent, 0.15);
    EXPECT_LE(p.alpha_latent, 0.85);
    EXPECT_GE(p.base_accuracy, 0.72);
    EXPECT_LE(p.base_accuracy, 0.84);
    EXPECT_GT(p.base_task_seconds, 0.0);
    EXPECT_GT(p.base_leave_hazard, 0.0);
  }
}

TEST_F(BehaviorTest, CompletionSecondsAlwaysPositive) {
  BehavioralWorker w = MakeWorker(0.5, 0.3, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(w.CompletionSeconds(0, {0, 1, 3}), 0.0);
  }
}

TEST_F(BehaviorTest, DeterministicGivenSeed) {
  BehavioralWorker a = MakeWorker(0.5, 0.3, 21);
  BehavioralWorker b = MakeWorker(0.5, 0.3, 21);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.ChooseTask({0, 1, 2, 3, 4}), b.ChooseTask({0, 1, 2, 3, 4}));
  }
}

}  // namespace
}  // namespace hta
