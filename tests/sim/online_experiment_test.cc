#include "sim/online_experiment.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

OnlineExperimentOptions SmallOptions() {
  OnlineExperimentOptions options;
  options.sessions_per_strategy = 3;
  options.session.max_minutes = 5.0;
  options.catalog.num_groups = 12;
  options.catalog.tasks_per_group = 30;
  options.catalog.vocabulary_size = 150;
  options.strategies = {StrategyKind::kHtaGre, StrategyKind::kHtaGreDiv};
  options.seed = 31;
  return options;
}

TEST(OnlineExperimentTest, DeterministicAcrossRuns) {
  const OnlineExperimentOptions options = SmallOptions();
  const OnlineExperimentResult a = RunOnlineExperiment(options);
  const OnlineExperimentResult b = RunOnlineExperiment(options);
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (size_t s = 0; s < a.curves.size(); ++s) {
    EXPECT_EQ(a.curves[s].total_tasks, b.curves[s].total_tasks);
    EXPECT_EQ(a.curves[s].total_correct, b.curves[s].total_correct);
    EXPECT_EQ(a.curves[s].tasks_per_session, b.curves[s].tasks_per_session);
    EXPECT_EQ(a.curves[s].session_duration_minutes,
              b.curves[s].session_duration_minutes);
  }
}

TEST(OnlineExperimentTest, SeedChangesOutcomes) {
  OnlineExperimentOptions options = SmallOptions();
  const OnlineExperimentResult a = RunOnlineExperiment(options);
  options.seed = 32;
  const OnlineExperimentResult b = RunOnlineExperiment(options);
  // Different seeds should not produce bit-identical task counts for
  // every strategy (overwhelmingly unlikely if seeding works).
  bool any_difference = false;
  for (size_t s = 0; s < a.curves.size(); ++s) {
    if (a.curves[s].total_tasks != b.curves[s].total_tasks) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(OnlineExperimentTest, StrategiesShareTheSameCatalogAndWorkers) {
  // Strategy comparability: the same sessions-per-strategy and the
  // same simulated population, so per-session sample sizes line up.
  const OnlineExperimentOptions options = SmallOptions();
  const OnlineExperimentResult result = RunOnlineExperiment(options);
  for (const StrategyCurves& c : result.curves) {
    EXPECT_EQ(c.tasks_per_session.size(), options.sessions_per_strategy);
    EXPECT_EQ(c.session_duration_minutes.size(),
              options.sessions_per_strategy);
  }
}

TEST(OnlineExperimentTest, ConcurrentAndSequentialBothCoherent) {
  for (const bool concurrent : {false, true}) {
    OnlineExperimentOptions options = SmallOptions();
    options.concurrent_sessions = concurrent;
    options.arrival_rate_per_min = 2.0;
    const OnlineExperimentResult result = RunOnlineExperiment(options);
    for (const StrategyCurves& c : result.curves) {
      EXPECT_GT(c.total_tasks, 0u) << (concurrent ? "concurrent" : "seq");
      for (size_t b = 1; b < c.minutes.size(); ++b) {
        EXPECT_GE(c.cumulative_completed[b], c.cumulative_completed[b - 1]);
        EXPECT_LE(c.retention_pct[b], c.retention_pct[b - 1]);
      }
    }
  }
}

TEST(OnlineExperimentTest, ForStrategyFindsAndChecks) {
  const OnlineExperimentOptions options = SmallOptions();
  const OnlineExperimentResult result = RunOnlineExperiment(options);
  EXPECT_EQ(result.ForStrategy(StrategyKind::kHtaGre).kind,
            StrategyKind::kHtaGre);
  EXPECT_DEATH(
      { (void)result.ForStrategy(StrategyKind::kRandom); },
      "not in result");
}

}  // namespace
}  // namespace hta
