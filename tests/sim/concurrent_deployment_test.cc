#include "sim/concurrent_deployment.h"

#include <set>

#include <gtest/gtest.h>

#include "sim/online_experiment.h"
#include "sim/worker_gen.h"

namespace hta {
namespace {

Catalog TestCatalog() {
  CatalogOptions options;
  options.num_groups = 15;
  options.tasks_per_group = 40;
  options.vocabulary_size = 150;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

AssignmentServiceOptions TestServiceOptions(StrategyKind strategy) {
  AssignmentServiceOptions o;
  o.strategy = strategy;
  o.xmax = 6;
  o.extra_random_tasks = 2;
  o.refresh_after_completions = 3;
  o.max_tasks_per_iteration = 100;
  return o;
}

std::vector<BehavioralWorker> TestWorkers(const Catalog& catalog,
                                          size_t count) {
  std::vector<BehavioralWorker> workers;
  for (size_t s = 0; s < count; ++s) {
    Rng rng(1000 + s);
    BehaviorParams params = SampleBehaviorParams(&rng);
    KeywordVector interests(catalog.space.size());
    for (int b = 0; b < 5; ++b) {
      interests.Set(
          static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
    }
    workers.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                         Worker(s, std::move(interests)), params,
                         rng.Fork(1));
  }
  return workers;
}

TEST(ConcurrentDeploymentTest, AllSessionsComplete) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGre));
  auto workers = TestWorkers(catalog, 6);
  ConcurrentDeploymentOptions options;
  options.session.max_minutes = 10.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);
  ASSERT_EQ(result.sessions.size(), 6u);
  for (const SessionResult& s : result.sessions) {
    EXPECT_GT(s.worker_id, 0u);
    EXPECT_LE(s.duration_minutes, 10.0 + 1e-9);
    EXPECT_GE(s.duration_minutes, 0.0);
  }
  EXPECT_GT(result.deployment_minutes, 0.0);
  EXPECT_GE(result.max_concurrent_sessions, size_t{1});
}

TEST(ConcurrentDeploymentTest, SessionsActuallyOverlap) {
  // With a fast arrival rate and long sessions, concurrency > 1 and at
  // least one solver iteration pools multiple workers.
  const Catalog catalog = TestCatalog();
  AssignmentServiceOptions service_options =
      TestServiceOptions(StrategyKind::kHtaGreRel);
  service_options.min_batch_workers = 3;
  AssignmentService service(&catalog.tasks, service_options);
  auto workers = TestWorkers(catalog, 8);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 4.0;
  options.session.max_minutes = 10.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);
  EXPECT_GT(result.max_concurrent_sessions, size_t{1});
  EXPECT_GT(result.mean_workers_per_iteration, 1.0)
      << "concurrent deployments should pool workers into iterations";
}

TEST(ConcurrentDeploymentTest, EventTimesAreSessionRelativeAndOrdered) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGreDiv));
  auto workers = TestWorkers(catalog, 5);
  ConcurrentDeploymentOptions options;
  options.session.max_minutes = 8.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);
  for (const SessionResult& s : result.sessions) {
    double prev = 0.0;
    for (const CompletionEvent& e : s.events) {
      EXPECT_GE(e.session_minute, prev);
      EXPECT_LE(e.session_minute, 8.0 + 1e-9);
      prev = e.session_minute;
      // The wall-clock stamp is the session-relative one shifted by the
      // arrival time, so it can never precede it.
      EXPECT_GE(e.wall_minute, e.session_minute - 1e-9);
    }
  }
}

TEST(ConcurrentDeploymentTest, NoTaskCompletedTwice) {
  const Catalog catalog = TestCatalog();
  AssignmentService service(&catalog.tasks,
                            TestServiceOptions(StrategyKind::kHtaGre));
  auto workers = TestWorkers(catalog, 8);
  ConcurrentDeploymentOptions options;
  options.arrival_rate_per_min = 3.0;
  options.session.max_minutes = 8.0;
  const DeploymentResult result =
      RunConcurrentDeployment(&service, catalog, &workers, options);
  std::set<size_t> completed;
  for (const SessionResult& s : result.sessions) {
    for (const CompletionEvent& e : s.events) {
      EXPECT_TRUE(completed.insert(e.catalog_task).second);
      EXPECT_EQ(service.pool().state(e.catalog_task), TaskState::kCompleted);
    }
  }
}

TEST(ConcurrentDeploymentTest, DeterministicForSeeds) {
  const Catalog catalog = TestCatalog();
  auto run_once = [&]() {
    AssignmentService service(&catalog.tasks,
                              TestServiceOptions(StrategyKind::kHtaGre));
    auto workers = TestWorkers(catalog, 5);
    ConcurrentDeploymentOptions options;
    options.session.max_minutes = 6.0;
    return RunConcurrentDeployment(&service, catalog, &workers, options);
  };
  const DeploymentResult a = run_once();
  const DeploymentResult b = run_once();
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    EXPECT_EQ(a.sessions[s].tasks_completed(), b.sessions[s].tasks_completed());
    EXPECT_DOUBLE_EQ(a.sessions[s].duration_minutes,
                     b.sessions[s].duration_minutes);
  }
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(ConcurrentDeploymentTest, OnlineExperimentConcurrentModeWorks) {
  OnlineExperimentOptions options;
  options.sessions_per_strategy = 4;
  options.session.max_minutes = 6.0;
  options.catalog.num_groups = 15;
  options.catalog.tasks_per_group = 30;
  options.strategies = {StrategyKind::kHtaGre};
  options.concurrent_sessions = true;
  options.arrival_rate_per_min = 2.0;
  options.seed = 5;
  const OnlineExperimentResult result = RunOnlineExperiment(options);
  const StrategyCurves& c = result.ForStrategy(StrategyKind::kHtaGre);
  EXPECT_GT(c.total_tasks, 0u);
  EXPECT_EQ(c.tasks_per_session.size(), 4u);
}

}  // namespace
}  // namespace hta
