#include "qap/hta_problem.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

std::vector<Task> TwoTasks() {
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(16, {1, 2}));
  tasks.emplace_back(1, KeywordVector(16, {3, 4}));
  return tasks;
}

std::vector<Worker> OneWorker() {
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(16, {1, 3}));
  return workers;
}

TEST(HtaProblemTest, CreateSucceedsOnValidInput) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  auto problem = HtaProblem::Create(&tasks, &workers, 2);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(problem->task_count(), 2u);
  EXPECT_EQ(problem->worker_count(), 1u);
  EXPECT_EQ(problem->xmax(), 2u);
  EXPECT_EQ(problem->distance_kind(), DistanceKind::kJaccard);
}

TEST(HtaProblemTest, RejectsZeroXmax) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  EXPECT_EQ(HtaProblem::Create(&tasks, &workers, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HtaProblemTest, RejectsEmptyTasksOrWorkers) {
  const std::vector<Task> no_tasks;
  const std::vector<Worker> no_workers;
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  EXPECT_FALSE(HtaProblem::Create(&no_tasks, &workers, 1).ok());
  EXPECT_FALSE(HtaProblem::Create(&tasks, &no_workers, 1).ok());
}

TEST(HtaProblemTest, RejectsNonMetricByDefault) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  auto r = HtaProblem::Create(&tasks, &workers, 1, DistanceKind::kDice);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(HtaProblem::Create(&tasks, &workers, 1, DistanceKind::kDice,
                                 /*allow_non_metric=*/true)
                  .ok());
}

TEST(HtaProblemTest, RejectsNegativeOrZeroSumWeights) {
  const auto tasks = TwoTasks();
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(16, {1}), MotivationWeights{0.0, 0.0});
  EXPECT_FALSE(HtaProblem::Create(&tasks, &workers, 1).ok());
}

TEST(HtaProblemTest, AcceptsUnnormalizedWeights) {
  // The paper's Example 1 uses (0.6, 0.3); this must be accepted.
  const auto tasks = TwoTasks();
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(16, {1}), MotivationWeights{0.6, 0.3});
  EXPECT_TRUE(HtaProblem::Create(&tasks, &workers, 1).ok());
}

TEST(HtaProblemTest, RelevanceDerivedFromKeywords) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  auto problem = HtaProblem::Create(&tasks, &workers, 2);
  ASSERT_TRUE(problem.ok());
  // task0 = {1,2}, worker = {1,3}: J-sim = 1/3 → rel = 1/3.
  EXPECT_NEAR(problem->Relevance(0, 0), 1.0 / 3.0, 1e-12);
}

TEST(HtaProblemTest, CreateWithMatricesOverridesRelevance) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  const std::vector<double> distances{0.0, 0.9, 0.9, 0.0};
  const std::vector<double> relevance{0.28, 0.67};
  auto problem = HtaProblem::CreateWithMatrices(&tasks, &workers, 2,
                                                distances, relevance);
  ASSERT_TRUE(problem.ok());
  EXPECT_DOUBLE_EQ(problem->Relevance(0, 0), 0.28);
  EXPECT_DOUBLE_EQ(problem->Relevance(1, 0), 0.67);
  // The oracle caches distances as float32.
  EXPECT_NEAR(problem->oracle()(0, 1), 0.9, 1e-6);
}

TEST(HtaProblemTest, CreateWithMatricesValidatesShapes) {
  const auto tasks = TwoTasks();
  const auto workers = OneWorker();
  // Asymmetric distance matrix.
  EXPECT_FALSE(HtaProblem::CreateWithMatrices(
                   &tasks, &workers, 1, {0.0, 0.5, 0.4, 0.0}, {0.1, 0.2})
                   .ok());
  // Nonzero diagonal.
  EXPECT_FALSE(HtaProblem::CreateWithMatrices(
                   &tasks, &workers, 1, {0.1, 0.5, 0.5, 0.0}, {0.1, 0.2})
                   .ok());
  // Wrong relevance size.
  EXPECT_FALSE(HtaProblem::CreateWithMatrices(
                   &tasks, &workers, 1, {0.0, 0.5, 0.5, 0.0}, {0.1})
                   .ok());
  // Relevance out of range.
  EXPECT_FALSE(HtaProblem::CreateWithMatrices(
                   &tasks, &workers, 1, {0.0, 0.5, 0.5, 0.0}, {0.1, 1.2})
                   .ok());
}

}  // namespace
}  // namespace hta
