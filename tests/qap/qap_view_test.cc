#include "qap/qap_view.h"

#include <numeric>

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(QapViewTest, DimensionIsMaxOfTasksAndSlots) {
  const Fixture f = RandomFixture(10, 2, 1);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  EXPECT_EQ(view.n(), 10u);  // 10 tasks > 2*3 slots.

  auto padded = HtaProblem::Create(&f.tasks, &f.workers, 8);
  ASSERT_TRUE(padded.ok());
  const QapView padded_view(&*padded);
  EXPECT_EQ(padded_view.n(), 16u);  // 2*8 slots > 10 tasks.
  EXPECT_TRUE(padded_view.IsPaddingTask(10));
  EXPECT_FALSE(padded_view.IsPaddingTask(9));
}

TEST(QapViewTest, WorkerOfVertexMapsCliques) {
  const Fixture f = RandomFixture(10, 2, 2);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  for (size_t l = 0; l < 3; ++l) EXPECT_EQ(view.WorkerOfVertex(l), 0);
  for (size_t l = 3; l < 6; ++l) EXPECT_EQ(view.WorkerOfVertex(l), 1);
  for (size_t l = 6; l < 10; ++l) EXPECT_EQ(view.WorkerOfVertex(l), -1);
}

TEST(QapViewTest, MatrixAMatchesEquationFour) {
  const Fixture f = RandomFixture(10, 2, 3);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  for (size_t k = 0; k < view.n(); ++k) {
    for (size_t l = 0; l < view.n(); ++l) {
      const double a = view.A(k, l);
      if (k == l) {
        EXPECT_EQ(a, 0.0);
        continue;
      }
      const int32_t qk = view.WorkerOfVertex(k);
      const int32_t ql = view.WorkerOfVertex(l);
      if (qk >= 0 && qk == ql) {
        EXPECT_DOUBLE_EQ(
            a, f.workers[static_cast<size_t>(ql)].weights().alpha);
      } else {
        EXPECT_EQ(a, 0.0);
      }
    }
  }
}

TEST(QapViewTest, MatrixCNonzeroOnlyOnWorkerColumns) {
  const Fixture f = RandomFixture(10, 2, 4);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  for (size_t k = 0; k < 10; ++k) {
    for (size_t l = 0; l < 10; ++l) {
      const double c = view.C(k, l);
      const int32_t q = view.WorkerOfVertex(l);
      if (q < 0) {
        EXPECT_EQ(c, 0.0);
      } else {
        const Worker& w = f.workers[static_cast<size_t>(q)];
        EXPECT_NEAR(c,
                    w.weights().beta *
                        problem->Relevance(static_cast<TaskIndex>(k),
                                           static_cast<WorkerIndex>(q)) *
                        2.0,
                    1e-12);
      }
    }
  }
}

TEST(QapViewTest, DegAMatchesRowSums) {
  const Fixture f = RandomFixture(12, 3, 5);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  for (size_t l = 0; l < view.n(); ++l) {
    double row_sum = 0.0;
    for (size_t k = 0; k < view.n(); ++k) row_sum += view.A(k, l);
    EXPECT_NEAR(view.DegA(l), row_sum, 1e-12);
  }
}

TEST(QapViewTest, WorkerColumnsListsCliqueColumns) {
  const Fixture f = RandomFixture(10, 2, 6);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  const std::vector<size_t> cols = view.WorkerColumns();
  ASSERT_EQ(cols.size(), 6u);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(cols[i], i);
}

TEST(QapViewTest, ImplicitObjectiveEqualsDenseObjective) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Fixture f = RandomFixture(8 + rng.NextBounded(6), 2, 100 + trial);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
    ASSERT_TRUE(problem.ok());
    const QapView view(&*problem);
    const DenseQapMatrices dense = DenseQapMatrices::FromView(view);
    std::vector<int32_t> perm(view.n());
    std::iota(perm.begin(), perm.end(), 0);
    for (int p = 0; p < 5; ++p) {
      std::vector<int32_t> shuffled = perm;
      // Deterministic shuffle via Rng.
      for (size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
      }
      EXPECT_NEAR(view.Objective(shuffled), dense.Objective(shuffled), 1e-9);
    }
  }
}

// Equation 8: the MAXQAP objective of a permutation equals the HTA
// motivation (Eq. 3) of the extracted assignment — exactly, when every
// bundle is full (|T| >= |W| * Xmax ensures extracted bundles have
// exactly Xmax members only if the permutation fills cliques; random
// permutations do fill every clique vertex with some task when
// |T| == n).
TEST(QapViewTest, EquationEightIdentityOnFullInstances) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    // |T| = n >= |W| * Xmax, no padding.
    const size_t workers = 1 + rng.NextBounded(3);
    const size_t xmax = 2 + rng.NextBounded(3);
    const size_t tasks = workers * xmax + rng.NextBounded(5);
    const Fixture f = RandomFixture(tasks, workers, 200 + trial);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, xmax);
    ASSERT_TRUE(problem.ok());
    const QapView view(&*problem);
    ASSERT_EQ(view.n(), tasks);

    std::vector<int32_t> perm(tasks);
    std::iota(perm.begin(), perm.end(), 0);
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    // Every clique vertex is hit by exactly one task, so every bundle
    // has exactly Xmax members and Eq. 8 holds with equality.
    const Assignment assignment = ExtractAssignment(view, perm);
    for (const TaskBundle& b : assignment.bundles) {
      ASSERT_EQ(b.size(), xmax);
    }
    EXPECT_NEAR(view.Objective(perm), TotalMotivation(*problem, assignment),
                1e-9)
        << "Eq. 8 identity violated at trial " << trial;
  }
}

TEST(QapViewTest, PaddingTasksContributeNothing) {
  const Fixture f = RandomFixture(4, 2, 9);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);  // 8 slots.
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  EXPECT_EQ(view.n(), 8u);
  for (size_t k = 4; k < 8; ++k) {
    for (size_t l = 0; l < 8; ++l) {
      EXPECT_EQ(view.B(k, l), 0.0);
      EXPECT_EQ(view.C(k, l), 0.0);
    }
  }
}

}  // namespace
}  // namespace hta
