#include "core/keyword_vector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

TEST(KeywordVectorTest, EmptyVector) {
  KeywordVector v(100);
  EXPECT_EQ(v.universe_size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.Empty());
  EXPECT_FALSE(v.Test(0));
  EXPECT_FALSE(v.Test(99));
}

TEST(KeywordVectorTest, SetTestClear) {
  KeywordVector v(100);
  v.Set(3);
  v.Set(64);  // Crosses block boundary.
  v.Set(99);
  EXPECT_TRUE(v.Test(3));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(99));
  EXPECT_FALSE(v.Test(4));
  EXPECT_EQ(v.Count(), 3u);
  v.Clear(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(KeywordVectorTest, InitializerListConstruction) {
  KeywordVector v(10, {1, 3, 7});
  EXPECT_EQ(v.Count(), 3u);
  EXPECT_TRUE(v.Test(1));
  EXPECT_TRUE(v.Test(3));
  EXPECT_TRUE(v.Test(7));
}

TEST(KeywordVectorTest, VectorConstruction) {
  std::vector<KeywordId> ids{0, 9};
  KeywordVector v(10, ids);
  EXPECT_EQ(v.ToIds(), ids);
}

TEST(KeywordVectorTest, SetIsIdempotent) {
  KeywordVector v(10);
  v.Set(5);
  v.Set(5);
  EXPECT_EQ(v.Count(), 1u);
}

TEST(KeywordVectorTest, IntersectionCount) {
  KeywordVector a(128, {1, 2, 3, 70});
  KeywordVector b(128, {2, 3, 4, 71});
  EXPECT_EQ(KeywordVector::IntersectionCount(a, b), 2u);
}

TEST(KeywordVectorTest, UnionCount) {
  KeywordVector a(128, {1, 2, 3, 70});
  KeywordVector b(128, {2, 3, 4, 71});
  EXPECT_EQ(KeywordVector::UnionCount(a, b), 6u);
}

TEST(KeywordVectorTest, SymmetricDifferenceCount) {
  KeywordVector a(128, {1, 2, 3, 70});
  KeywordVector b(128, {2, 3, 4, 71});
  EXPECT_EQ(KeywordVector::SymmetricDifferenceCount(a, b), 4u);
}

TEST(KeywordVectorTest, SetIdentities) {
  // |A| + |B| == |A ∪ B| + |A ∩ B| for random vectors.
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    KeywordVector a(200);
    KeywordVector b(200);
    for (int k = 0; k < 20; ++k) {
      a.Set(static_cast<KeywordId>(rng.NextBounded(200)));
      b.Set(static_cast<KeywordId>(rng.NextBounded(200)));
    }
    EXPECT_EQ(a.Count() + b.Count(),
              KeywordVector::UnionCount(a, b) +
                  KeywordVector::IntersectionCount(a, b));
    EXPECT_EQ(KeywordVector::SymmetricDifferenceCount(a, b),
              KeywordVector::UnionCount(a, b) -
                  KeywordVector::IntersectionCount(a, b));
  }
}

TEST(KeywordVectorTest, ToIdsSortedAscending) {
  KeywordVector v(300, {255, 0, 64, 128, 299});
  const std::vector<KeywordId> ids = v.ToIds();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 64u);
  EXPECT_EQ(ids[2], 128u);
  EXPECT_EQ(ids[3], 255u);
  EXPECT_EQ(ids[4], 299u);
}

TEST(KeywordVectorTest, ToStringRendersSet) {
  KeywordVector v(10, {2, 5});
  EXPECT_EQ(v.ToString(), "{2, 5}");
  EXPECT_EQ(KeywordVector(4).ToString(), "{}");
}

TEST(KeywordVectorTest, EqualityRequiresSameUniverseAndBits) {
  KeywordVector a(10, {1});
  KeywordVector b(10, {1});
  KeywordVector c(11, {1});
  KeywordVector d(10, {2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(KeywordVectorTest, ZeroUniverse) {
  KeywordVector v(0);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.Empty());
  EXPECT_TRUE(v.ToIds().empty());
}

TEST(KeywordVectorTest, ExactBlockBoundaryUniverse) {
  KeywordVector v(64);
  v.Set(63);
  EXPECT_TRUE(v.Test(63));
  EXPECT_EQ(v.Count(), 1u);
  KeywordVector w(128);
  w.Set(127);
  EXPECT_EQ(w.ToIds().back(), 127u);
}

#ifndef NDEBUG
TEST(KeywordVectorDeathTest, OutOfRangeSetAbortsInDebug) {
  KeywordVector v(10);
  EXPECT_DEATH({ v.Set(10); }, "CHECK failed");
}
#endif

}  // namespace
}  // namespace hta
