#include "core/motivation.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

class MotivationTest : public ::testing::Test {
 protected:
  MotivationTest() {
    // Three tasks with known pairwise Jaccard distances.
    tasks_.emplace_back(0, KeywordVector(64, {1, 2}));
    tasks_.emplace_back(1, KeywordVector(64, {2, 3}));
    tasks_.emplace_back(2, KeywordVector(64, {5, 6}));
    oracle_ = std::make_unique<TaskDistanceOracle>(&tasks_,
                                                   DistanceKind::kJaccard);
  }

  std::vector<Task> tasks_;
  std::unique_ptr<TaskDistanceOracle> oracle_;
};

TEST_F(MotivationTest, SetDiversitySumsPairs) {
  // d(0,1) = 2/3, d(0,2) = 1, d(1,2) = 1.
  EXPECT_NEAR(SetDiversity({0, 1, 2}, *oracle_), 2.0 / 3.0 + 1.0 + 1.0,
              1e-12);
}

TEST_F(MotivationTest, SetDiversityOfSingletonAndEmpty) {
  EXPECT_DOUBLE_EQ(SetDiversity({0}, *oracle_), 0.0);
  EXPECT_DOUBLE_EQ(SetDiversity({}, *oracle_), 0.0);
}

TEST_F(MotivationTest, SetRelevanceSumsPerTask) {
  const Worker worker(0, KeywordVector(64, {1, 2}));
  // rel(t0) = 1, rel(t1) = 1 - 2/3 = 1/3, rel(t2) = 0.
  EXPECT_NEAR(
      SetRelevance({0, 1, 2}, tasks_, worker, DistanceKind::kJaccard),
      1.0 + 1.0 / 3.0, 1e-12);
}

TEST_F(MotivationTest, MotivationEquationThree) {
  const Worker worker(0, KeywordVector(64, {1, 2}),
                      MotivationWeights{0.3, 0.7});
  const TaskBundle bundle{0, 1, 2};
  const double td = SetDiversity(bundle, *oracle_);
  const double tr =
      SetRelevance(bundle, tasks_, worker, DistanceKind::kJaccard);
  const double expected = 2.0 * 0.3 * td + 0.7 * 2.0 * tr;
  EXPECT_NEAR(Motivation(bundle, worker, *oracle_), expected, 1e-12);
}

TEST_F(MotivationTest, EmptyBundleHasZeroMotivation) {
  const Worker worker(0, KeywordVector(64, {1}));
  EXPECT_DOUBLE_EQ(Motivation({}, worker, *oracle_), 0.0);
}

TEST_F(MotivationTest, SingletonBundleHasZeroMotivation) {
  // |T'| - 1 == 0 kills the relevance term and there are no pairs.
  const Worker worker(0, KeywordVector(64, {1, 2}),
                      MotivationWeights{0.0, 1.0});
  EXPECT_DOUBLE_EQ(Motivation({0}, worker, *oracle_), 0.0);
}

TEST_F(MotivationTest, PureDiversityWorkerIgnoresRelevance) {
  const Worker div_worker(0, KeywordVector(64, {1, 2}),
                          MotivationWeights::DiversityOnly());
  const TaskBundle bundle{0, 1, 2};
  EXPECT_NEAR(Motivation(bundle, div_worker, *oracle_),
              2.0 * SetDiversity(bundle, *oracle_), 1e-12);
}

TEST_F(MotivationTest, PureRelevanceWorkerIgnoresDiversity) {
  const Worker rel_worker(0, KeywordVector(64, {1, 2}),
                          MotivationWeights::RelevanceOnly());
  const TaskBundle bundle{0, 1};
  EXPECT_NEAR(
      Motivation(bundle, rel_worker, *oracle_),
      1.0 * SetRelevance(bundle, tasks_, rel_worker, DistanceKind::kJaccard),
      1e-12);
}

TEST_F(MotivationTest, DiversityMarginalGain) {
  EXPECT_NEAR(DiversityMarginalGain(2, {0, 1}, *oracle_), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(DiversityMarginalGain(2, {}, *oracle_), 0.0);
}

TEST_F(MotivationTest, RelevanceGainIsRel) {
  const Worker worker(0, KeywordVector(64, {1, 2}));
  EXPECT_DOUBLE_EQ(
      RelevanceGain(0, tasks_, worker, DistanceKind::kJaccard), 1.0);
  EXPECT_DOUBLE_EQ(
      RelevanceGain(2, tasks_, worker, DistanceKind::kJaccard), 0.0);
}

TEST(MotivationWeightsTest, NormalizedSumsToOne) {
  const MotivationWeights w = MotivationWeights::Normalized(0.2, 0.6);
  EXPECT_NEAR(w.alpha, 0.25, 1e-12);
  EXPECT_NEAR(w.beta, 0.75, 1e-12);
}

TEST(MotivationWeightsTest, NormalizedZeroFallsBackToHalf) {
  const MotivationWeights w = MotivationWeights::Normalized(0.0, 0.0);
  EXPECT_DOUBLE_EQ(w.alpha, 0.5);
  EXPECT_DOUBLE_EQ(w.beta, 0.5);
}

TEST(MotivationWeightsDeathTest, NegativeWeightsAbort) {
  EXPECT_DEATH({ MotivationWeights::Normalized(-0.1, 0.5); },
               "non-negative");
}

TEST(MotivationPropertyTest, MotivationMonotoneInAlphaForDiverseBundle) {
  // For a bundle where the (scaled) diversity term exceeds the
  // relevance term, increasing alpha increases motivation.
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(64, {1}));
  tasks.emplace_back(1, KeywordVector(64, {2}));
  const TaskDistanceOracle oracle(&tasks, DistanceKind::kJaccard);
  const KeywordVector no_interest(64, {9});
  double previous = -1.0;
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.1) {
    const Worker w(0, no_interest, MotivationWeights{alpha, 1.0 - alpha});
    const double m = Motivation({0, 1}, w, oracle);
    EXPECT_GT(m, previous);
    previous = m;
  }
}

}  // namespace
}  // namespace hta
