// Unit tests for the warm catalog caches (core/catalog_cache.h): the
// persistent tiled distance triangle (bit-identity against the scalar
// reference, lazy per-tile fills, budget gating), zero-copy subset
// views with non-contiguous remaps, GatherRows bit-identity, the
// shared-cache oracle, and subset-view HtaProblem construction solving
// bit-identically to a cold Create over copied tasks.
#include "core/catalog_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "core/distance.h"
#include "core/task.h"
#include "core/worker.h"
#include "qap/hta_problem.h"
#include "util/rng.h"

namespace hta {
namespace {

constexpr DistanceKind kAllKinds[] = {
    DistanceKind::kJaccard, DistanceKind::kDice, DistanceKind::kHamming,
    DistanceKind::kCosineAngular};

std::vector<Task> RandomCatalog(size_t n, size_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KeywordVector v(universe);
    const size_t bits = 1 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    tasks.emplace_back(i, v);
  }
  return tasks;
}

TEST(CatalogCacheTest, DistanceBitIdenticalToScalarReferenceForEveryKind) {
  const auto catalog = RandomCatalog(60, 100, 11);
  for (const DistanceKind kind : kAllKinds) {
    const CatalogCache cache(&catalog, kind);
    ASSERT_TRUE(cache.distance_cache_enabled());
    for (size_t i = 0; i < catalog.size(); ++i) {
      EXPECT_EQ(cache.Distance(i, i), 0.0);
      for (size_t j = i + 1; j < catalog.size(); ++j) {
        const double expected =
            PairwiseTaskDiversity(kind, catalog[i], catalog[j]);
        EXPECT_EQ(cache.Distance(i, j), expected)
            << DistanceKindName(kind) << " (" << i << "," << j << ")";
        // Symmetric argument order hits the same cached entry.
        EXPECT_EQ(cache.Distance(j, i), expected);
      }
    }
  }
}

TEST(CatalogCacheTest, DisabledTriangleStillBitIdentical) {
  const auto catalog = RandomCatalog(40, 80, 12);
  for (const DistanceKind kind : kAllKinds) {
    CatalogCache::Options options;
    options.enable_distance_cache = false;
    const CatalogCache cache(&catalog, kind, options);
    EXPECT_FALSE(cache.distance_cache_enabled());
    for (size_t i = 0; i < catalog.size(); ++i) {
      for (size_t j = 0; j < catalog.size(); ++j) {
        EXPECT_EQ(cache.Distance(i, j),
                  PairwiseTaskDiversity(kind, catalog[i], catalog[j]));
      }
    }
  }
}

TEST(CatalogCacheTest, BudgetGateDisablesTriangle) {
  const auto catalog = RandomCatalog(100, 64, 13);
  // 100 tasks -> 4950 pairs -> 39600 bytes of doubles.
  CatalogCache::Options tight;
  tight.max_distance_cache_bytes = 39599;
  const CatalogCache gated(&catalog, DistanceKind::kJaccard, tight);
  EXPECT_FALSE(gated.distance_cache_enabled());

  CatalogCache::Options fits;
  fits.max_distance_cache_bytes = 39600;
  const CatalogCache enabled(&catalog, DistanceKind::kJaccard, fits);
  EXPECT_TRUE(enabled.distance_cache_enabled());
  // Both answer identically regardless of gating.
  for (size_t j = 1; j < catalog.size(); j += 7) {
    EXPECT_EQ(gated.Distance(0, j), enabled.Distance(0, j));
  }
}

TEST(CatalogCacheTest, TilesFillLazilyAndOnlyOnce) {
  // 300 tasks -> a 3x3 tile grid (kTileRows = 128).
  const auto catalog = RandomCatalog(300, 64, 14);
  const CatalogCache cache(&catalog, DistanceKind::kJaccard);
  ASSERT_TRUE(cache.distance_cache_enabled());
  EXPECT_EQ(cache.tile_count(), 9u);
  EXPECT_EQ(cache.filled_tiles(), 0u);

  (void)cache.Distance(0, 1);  // Tile (0,0).
  EXPECT_EQ(cache.filled_tiles(), 1u);
  (void)cache.Distance(5, 100);  // Still tile (0,0).
  EXPECT_EQ(cache.filled_tiles(), 1u);
  (void)cache.Distance(299, 0);  // Tile (0,2) after swap to (0,299).
  EXPECT_EQ(cache.filled_tiles(), 2u);
  (void)cache.Distance(130, 260);  // Tile (1,2).
  EXPECT_EQ(cache.filled_tiles(), 3u);
}

TEST(CatalogSubsetViewTest, NonContiguousRemapExposesUnderlyingTasks) {
  const auto catalog = RandomCatalog(64, 50, 15);
  const CatalogCache cache(&catalog, DistanceKind::kJaccard);
  const std::vector<size_t> sample = {3, 7, 20, 21, 50, 63};
  const CatalogSubsetView view(&cache, sample);
  ASSERT_EQ(view.size(), sample.size());
  EXPECT_EQ(view.kind(), DistanceKind::kJaccard);
  for (size_t k = 0; k < sample.size(); ++k) {
    EXPECT_EQ(view.catalog_index(k), sample[k]);
    EXPECT_EQ(&view.task(k), &catalog[sample[k]]);  // Zero-copy.
  }
  for (size_t a = 0; a < sample.size(); ++a) {
    for (size_t b = 0; b < sample.size(); ++b) {
      EXPECT_EQ(view.Distance(a, b),
                PairwiseTaskDiversity(DistanceKind::kJaccard,
                                      catalog[sample[a]], catalog[sample[b]]));
    }
  }
}

TEST(CatalogSubsetViewTest, GatherPackedRowsBitIdenticalToRepacking) {
  const auto catalog = RandomCatalog(70, 130, 16);
  const CatalogCache cache(&catalog, DistanceKind::kJaccard);
  const std::vector<size_t> sample = {69, 0, 33, 33, 12, 68};  // Unsorted,
                                                               // repeated.
  const CatalogSubsetView view(&cache, sample);
  const PackedSetMatrix gathered = view.GatherPackedRows();

  std::vector<Task> copies;
  for (size_t c : sample) copies.push_back(catalog[c]);
  const PackedSetMatrix repacked = PackedSetMatrix::FromTasks(copies);

  ASSERT_EQ(gathered.rows(), repacked.rows());
  ASSERT_EQ(gathered.row_blocks(), repacked.row_blocks());
  ASSERT_EQ(gathered.universe_size(), repacked.universe_size());
  for (size_t r = 0; r < gathered.rows(); ++r) {
    EXPECT_EQ(gathered.count(r), repacked.count(r));
    for (size_t b = 0; b < gathered.row_blocks(); ++b) {
      EXPECT_EQ(gathered.row(r)[b], repacked.row(r)[b])
          << "row " << r << " block " << b;
    }
  }
}

TEST(CatalogSubsetViewTest, SharedCacheOracleMatchesLocalOracle) {
  const auto catalog = RandomCatalog(50, 60, 17);
  const CatalogCache cache(&catalog, DistanceKind::kDice);
  const std::vector<size_t> sample = {1, 4, 9, 16, 25, 36, 49};
  const CatalogSubsetView view(&cache, sample);
  const TaskDistanceOracle shared = TaskDistanceOracle::FromSharedCache(&view);
  EXPECT_TRUE(shared.is_shared_subset());
  EXPECT_FALSE(shared.has_local_tasks());
  EXPECT_EQ(shared.task_count(), sample.size());
  EXPECT_EQ(shared.kind(), DistanceKind::kDice);

  std::vector<Task> copies;
  for (size_t c : sample) copies.push_back(catalog[c]);
  const TaskDistanceOracle local(&copies, DistanceKind::kDice);
  for (size_t a = 0; a < sample.size(); ++a) {
    EXPECT_EQ(&shared.task(static_cast<TaskIndex>(a)), &catalog[sample[a]]);
    for (size_t b = 0; b < sample.size(); ++b) {
      EXPECT_EQ(shared(static_cast<TaskIndex>(a), static_cast<TaskIndex>(b)),
                local(static_cast<TaskIndex>(a), static_cast<TaskIndex>(b)));
    }
  }
}

TEST(CatalogSubsetViewTest, CreateFromSubsetSolvesBitIdenticallyToCreate) {
  const auto catalog = RandomCatalog(120, 90, 18);
  Rng worker_rng(99);
  std::vector<Worker> workers;
  for (uint64_t q = 0; q < 3; ++q) {
    KeywordVector interests(90);
    for (size_t b = 0; b < 5; ++b) {
      interests.Set(static_cast<KeywordId>(worker_rng.NextBounded(90)));
    }
    workers.emplace_back(q + 1, interests, MotivationWeights{0.6, 0.4});
  }
  // A sparse, non-contiguous sample, as the engine produces.
  std::vector<size_t> sample;
  for (size_t c = 2; c < catalog.size(); c += 3) sample.push_back(c);

  for (const DistanceKind kind : kAllKinds) {
    const CatalogCache cache(&catalog, kind);
    const CatalogSubsetView view(&cache, sample);
    auto warm = HtaProblem::CreateFromSubset(&view, &workers, /*xmax=*/4,
                                             /*allow_non_metric=*/true);
    ASSERT_TRUE(warm.ok()) << warm.status();

    std::vector<Task> copies;
    for (size_t c : sample) copies.push_back(catalog[c]);
    auto cold = HtaProblem::Create(&copies, &workers, /*xmax=*/4, kind,
                                   /*allow_non_metric=*/true);
    ASSERT_TRUE(cold.ok()) << cold.status();

    std::vector<double> warm_rel;
    std::vector<double> cold_rel;
    warm->FillRelevanceTable(&warm_rel);
    cold->FillRelevanceTable(&cold_rel);
    EXPECT_EQ(warm_rel, cold_rel);

    Rng warm_rng(7);
    Rng cold_rng(7);
    auto warm_solved = SolveWithStrategy(*warm, StrategyKind::kHtaGre,
                                         /*seed=*/5, &warm_rng);
    auto cold_solved = SolveWithStrategy(*cold, StrategyKind::kHtaGre,
                                         /*seed=*/5, &cold_rng);
    ASSERT_TRUE(warm_solved.ok()) << warm_solved.status();
    ASSERT_TRUE(cold_solved.ok()) << cold_solved.status();
    EXPECT_EQ(warm_solved->assignment.bundles, cold_solved->assignment.bundles)
        << DistanceKindName(kind);
    EXPECT_EQ(warm_solved->stats.motivation, cold_solved->stats.motivation);
  }
}

TEST(CatalogSubsetViewTest, EmptySubsetIsRejectedByCreateFromSubset) {
  const auto catalog = RandomCatalog(10, 30, 19);
  const CatalogCache cache(&catalog, DistanceKind::kJaccard);
  const CatalogSubsetView view(&cache, {});
  const std::vector<Worker> workers = {
      Worker(1, KeywordVector(30, {1, 2}), MotivationWeights{0.5, 0.5})};
  auto problem = HtaProblem::CreateFromSubset(&view, &workers, /*xmax=*/2);
  EXPECT_FALSE(problem.ok());
  EXPECT_EQ(problem.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hta
