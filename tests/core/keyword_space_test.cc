#include "core/keyword_space.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(KeywordSpaceTest, StartsEmpty) {
  KeywordSpace space;
  EXPECT_EQ(space.size(), 0u);
  EXPECT_FALSE(space.Contains("audio"));
}

TEST(KeywordSpaceTest, InternAssignsDenseIds) {
  KeywordSpace space;
  EXPECT_EQ(space.Intern("audio"), 0u);
  EXPECT_EQ(space.Intern("english"), 1u);
  EXPECT_EQ(space.Intern("news"), 2u);
  EXPECT_EQ(space.size(), 3u);
}

TEST(KeywordSpaceTest, InternIsIdempotent) {
  KeywordSpace space;
  const KeywordId a = space.Intern("tagging");
  const KeywordId b = space.Intern("tagging");
  EXPECT_EQ(a, b);
  EXPECT_EQ(space.size(), 1u);
}

TEST(KeywordSpaceTest, FindLocatesInterned) {
  KeywordSpace space;
  space.Intern("audio");
  const KeywordId id = space.Intern("sentiment analysis");
  auto found = space.Find("sentiment analysis");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, id);
}

TEST(KeywordSpaceTest, FindReportsNotFound) {
  KeywordSpace space;
  space.Intern("audio");
  auto missing = space.Find("video");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(KeywordSpaceTest, NameRoundTrips) {
  KeywordSpace space;
  const KeywordId id = space.Intern("google street view");
  EXPECT_EQ(space.Name(id), "google street view");
}

TEST(KeywordSpaceTest, ContainsAfterIntern) {
  KeywordSpace space;
  space.Intern("english");
  EXPECT_TRUE(space.Contains("english"));
  EXPECT_FALSE(space.Contains("English"));  // Case sensitive.
}

TEST(KeywordSpaceDeathTest, NameOutOfRangeAborts) {
  KeywordSpace space;
  space.Intern("one");
  EXPECT_DEATH({ (void)space.Name(5); }, "CHECK failed");
}

TEST(KeywordSpaceTest, ManyKeywords) {
  KeywordSpace space;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(space.Intern("kw" + std::to_string(i)),
              static_cast<KeywordId>(i));
  }
  EXPECT_EQ(space.size(), 1000u);
  EXPECT_EQ(space.Find("kw999").value(), 999u);
  EXPECT_EQ(space.Name(500), "kw500");
}

}  // namespace
}  // namespace hta
