#include "core/distance_oracle.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

std::vector<Task> RandomTasks(size_t n, size_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KeywordVector v(universe);
    const size_t bits = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(universe)));
    }
    tasks.emplace_back(i, std::move(v));
  }
  return tasks;
}

TEST(DistanceOracleTest, OnTheFlyMatchesDirectComputation) {
  const std::vector<Task> tasks = RandomTasks(20, 64, 1);
  const TaskDistanceOracle oracle(&tasks, DistanceKind::kJaccard);
  EXPECT_FALSE(oracle.is_precomputed());
  for (TaskIndex i = 0; i < 20; ++i) {
    for (TaskIndex j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(
          oracle(i, j),
          i == j ? 0.0
                 : PairwiseTaskDiversity(DistanceKind::kJaccard, tasks[i],
                                         tasks[j]));
    }
  }
}

TEST(DistanceOracleTest, PrecomputedMatchesOnTheFly) {
  const std::vector<Task> tasks = RandomTasks(30, 64, 2);
  const TaskDistanceOracle fly(&tasks, DistanceKind::kJaccard);
  auto pre = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kJaccard);
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(pre->is_precomputed());
  for (TaskIndex i = 0; i < 30; ++i) {
    for (TaskIndex j = 0; j < 30; ++j) {
      EXPECT_NEAR((*pre)(i, j), fly(i, j), 1e-6);  // float cache.
    }
  }
}

TEST(DistanceOracleTest, SymmetricAndZeroDiagonal) {
  const std::vector<Task> tasks = RandomTasks(15, 64, 3);
  auto pre = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kHamming);
  ASSERT_TRUE(pre.ok());
  for (TaskIndex i = 0; i < 15; ++i) {
    EXPECT_EQ((*pre)(i, i), 0.0);
    for (TaskIndex j = 0; j < 15; ++j) {
      EXPECT_EQ((*pre)(i, j), (*pre)(j, i));
    }
  }
}

TEST(DistanceOracleTest, PrecomputedHonorsMemoryLimit) {
  const std::vector<Task> tasks = RandomTasks(100, 64, 4);
  // 100*99/2 floats = 19,800 bytes > 1,000-byte budget.
  auto pre = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kJaccard,
                                             /*max_cache_bytes=*/1000);
  EXPECT_FALSE(pre.ok());
  EXPECT_EQ(pre.status().code(), StatusCode::kResourceExhausted);
}

TEST(DistanceOracleTest, MemoryLimitBoundaryIsExact) {
  // 40*39/2 = 780 pairs = 3,120 bytes: a budget of exactly that size
  // must pass and one byte less must fail. The guard divides instead
  // of multiplying (pairs > max_cache_bytes / sizeof(float)), since
  // pairs * sizeof(float) can wrap size_t for large |T| and then
  // wrongly pass the check.
  const std::vector<Task> tasks = RandomTasks(40, 64, 6);
  const size_t exact = 780 * sizeof(float);
  auto fits = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kJaccard,
                                              /*max_cache_bytes=*/exact);
  EXPECT_TRUE(fits.ok()) << fits.status();
  auto tight = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kJaccard,
                                               /*max_cache_bytes=*/exact - 1);
  EXPECT_FALSE(tight.ok());
  EXPECT_EQ(tight.status().code(), StatusCode::kResourceExhausted);
  // The message reports entry counts, never the (overflowable) byte
  // product.
  EXPECT_NE(tight.status().message().find("780 float entries"),
            std::string::npos)
      << tight.status();
}

TEST(DistanceOracleTest, ReportsKindAndCount) {
  const std::vector<Task> tasks = RandomTasks(5, 64, 5);
  const TaskDistanceOracle oracle(&tasks, DistanceKind::kCosineAngular);
  EXPECT_EQ(oracle.kind(), DistanceKind::kCosineAngular);
  EXPECT_EQ(oracle.task_count(), 5u);
  EXPECT_EQ(&oracle.tasks(), &tasks);
}

TEST(DistanceOracleTest, SingleTask) {
  const std::vector<Task> tasks = RandomTasks(1, 64, 6);
  auto pre = TaskDistanceOracle::Precomputed(&tasks, DistanceKind::kJaccard);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ((*pre)(0, 0), 0.0);
}

}  // namespace
}  // namespace hta
