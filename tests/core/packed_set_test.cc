// Unit tests for the batched SoA distance substrate (core/packed_set.h):
// the packed bit-matrix layout (padding, counts, tail handling at every
// awkward universe size), the multi-versioned popcount primitive, and
// bit-identity of DistanceFromCounts against the scalar VectorDistance
// reference for every DistanceKind. The kernel-level batched-vs-scalar
// sweeps are covered end to end in assign/batched_kernel_equivalence_test.
#include "core/packed_set.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/keyword_vector.h"
#include "util/rng.h"

namespace hta {
namespace {

// Universe sizes that stress the tail block: a 1-bit universe, one bit
// short of a block, exact block boundaries, and one bit past them.
const size_t kAwkwardUniverses[] = {1, 63, 64, 65, 127};

KeywordVector RandomVector(size_t universe, size_t bits, Rng* rng) {
  KeywordVector v(universe);
  for (size_t b = 0; b < bits; ++b) {
    v.Set(static_cast<KeywordId>(rng->NextBounded(universe)));
  }
  return v;
}

TEST(KeywordVectorTailTest, MutatorsPreserveTailInvariantAtEveryUniverse) {
  for (const size_t universe : kAwkwardUniverses) {
    KeywordVector v(universe);
    // Walk every bit up and down; after each mutation the bits at
    // positions >= universe in the last block must stay zero (the
    // invariant every popcount kernel relies on).
    const auto expect_tail_zero = [&] {
      const size_t tail = universe & 63;
      if (tail != 0) {
        EXPECT_EQ(v.blocks().back() >> tail, 0u) << "universe " << universe;
      }
    };
    for (size_t id = 0; id < universe; ++id) {
      v.Set(static_cast<KeywordId>(id));
      expect_tail_zero();
    }
    EXPECT_EQ(v.Count(), universe);
    for (size_t id = 0; id < universe; ++id) {
      v.Clear(static_cast<KeywordId>(id));
      expect_tail_zero();
    }
    EXPECT_TRUE(v.Empty());
  }
}

TEST(KeywordVectorTailTest, EmptyVectorsHaveZeroBlocksAtEveryUniverse) {
  for (const size_t universe : kAwkwardUniverses) {
    const KeywordVector v(universe);
    EXPECT_EQ(v.blocks().size(), (universe + 63) / 64);
    for (const uint64_t b : v.blocks()) EXPECT_EQ(b, 0u);
    EXPECT_TRUE(v.Empty());
  }
  EXPECT_TRUE(KeywordVector(0).blocks().empty());
}

TEST(PackedSetMatrixTest, ShapePadsRowsToBlockPadMultiple) {
  for (const size_t universe : kAwkwardUniverses) {
    Rng rng(universe);
    std::vector<KeywordVector> vecs;
    for (int r = 0; r < 5; ++r) {
      vecs.push_back(RandomVector(universe, 1 + rng.NextBounded(universe), &rng));
    }
    const PackedSetMatrix m = PackedSetMatrix::FromVectors(vecs);
    ASSERT_EQ(m.rows(), vecs.size());
    EXPECT_EQ(m.universe_size(), universe);
    EXPECT_EQ(m.row_blocks() % PackedSetMatrix::kBlockPad, 0u);
    EXPECT_GE(m.row_blocks(), (universe + 63) / 64);
    for (size_t r = 0; r < m.rows(); ++r) {
      const uint64_t* row = m.row(r);
      const std::vector<uint64_t>& src = vecs[r].blocks();
      // Data blocks copied verbatim, padding blocks zero.
      for (size_t k = 0; k < m.row_blocks(); ++k) {
        EXPECT_EQ(row[k], k < src.size() ? src[k] : 0u)
            << "universe " << universe << " row " << r << " block " << k;
      }
      EXPECT_EQ(m.count(r), vecs[r].Count());
    }
  }
}

TEST(PackedSetMatrixTest, EmptyCollections) {
  const PackedSetMatrix none = PackedSetMatrix::FromVectors({});
  EXPECT_EQ(none.rows(), 0u);
  EXPECT_EQ(none.row_blocks(), 0u);

  // All-empty vectors still pack (zero rows of zero bits set).
  const std::vector<KeywordVector> empties(3, KeywordVector(65));
  const PackedSetMatrix m = PackedSetMatrix::FromVectors(empties);
  ASSERT_EQ(m.rows(), 3u);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(m.count(r), 0u);
}

TEST(PackedSetMatrixTest, IntersectRowCountsMatchesKeywordVector) {
  Rng rng(7);
  for (const size_t universe : {size_t{65}, size_t{200}, size_t{1000}}) {
    std::vector<KeywordVector> vecs;
    for (int r = 0; r < 40; ++r) {
      vecs.push_back(RandomVector(universe, rng.NextBounded(universe / 2), &rng));
    }
    const PackedSetMatrix m = PackedSetMatrix::FromVectors(vecs);
    const KeywordVector probe = RandomVector(universe, universe / 3, &rng);
    const PackedSetMatrix pm = PackedSetMatrix::FromVectors({probe});
    std::vector<uint32_t> counts(m.rows());
    packed_internal::IntersectRowCounts(pm.row(0), m.row(0), m.row_blocks(),
                                        m.rows(), counts.data());
    for (size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(counts[r], KeywordVector::IntersectionCount(probe, vecs[r]))
          << "universe " << universe << " row " << r;
    }
  }
}

TEST(PackedSetDistanceTest, DistanceFromCountsBitIdenticalToScalar) {
  const DistanceKind kinds[] = {DistanceKind::kJaccard, DistanceKind::kDice,
                                DistanceKind::kHamming,
                                DistanceKind::kCosineAngular};
  Rng rng(13);
  for (const size_t universe : kAwkwardUniverses) {
    std::vector<KeywordVector> vecs;
    // Include empty vectors so the empty/empty and empty/nonempty
    // special cases of every kind are exercised.
    vecs.push_back(KeywordVector(universe));
    vecs.push_back(KeywordVector(universe));
    for (int r = 0; r < 20; ++r) {
      vecs.push_back(RandomVector(universe, 1 + rng.NextBounded(universe), &rng));
    }
    for (const DistanceKind kind : kinds) {
      for (size_t i = 0; i < vecs.size(); ++i) {
        for (size_t j = 0; j < vecs.size(); ++j) {
          const size_t inter = KeywordVector::IntersectionCount(vecs[i], vecs[j]);
          const size_t ca = vecs[i].Count();
          const size_t cb = vecs[j].Count();
          const double batched = packed_internal::WithKind(kind, [&](auto tag) {
            return packed_internal::DistanceFromCounts<decltype(tag)::value>(
                inter, ca, cb, universe);
          });
          // Bit-identical, not approximately equal: the batched kernels
          // must be a drop-in for the scalar path.
          EXPECT_EQ(batched, VectorDistance(kind, vecs[i], vecs[j]))
              << DistanceKindName(kind) << " universe " << universe << " ("
              << i << ", " << j << ")";
        }
      }
    }
  }
}

TEST(PackedSetKernelTest, OneVsManyMatchesScalarWithZeroDiagonal) {
  Rng rng(17);
  std::vector<KeywordVector> vecs;
  for (int r = 0; r < 70; ++r) {
    vecs.push_back(RandomVector(100, 1 + rng.NextBounded(30), &rng));
  }
  const PackedSetMatrix m = PackedSetMatrix::FromVectors(vecs);
  for (const DistanceKind kind :
       {DistanceKind::kJaccard, DistanceKind::kCosineAngular}) {
    std::vector<double> out(vecs.size());
    for (const size_t i : {size_t{0}, size_t{33}, vecs.size() - 1}) {
      OneVsManyDistances(m, i, kind, out.data());
      for (size_t j = 0; j < vecs.size(); ++j) {
        const double expect =
            i == j ? 0.0 : VectorDistance(kind, vecs[i], vecs[j]);
        EXPECT_EQ(out[j], expect) << "row " << i << " col " << j;
      }
    }
  }
}

TEST(PackedSetKernelTest, AllPairsFillsTriangularCacheLikeScalar) {
  Rng rng(19);
  std::vector<KeywordVector> vecs;
  const size_t n = 150;  // > kPairTileRows, so column tiling is exercised.
  for (size_t r = 0; r < n; ++r) {
    vecs.push_back(RandomVector(130, 1 + rng.NextBounded(40), &rng));
  }
  const PackedSetMatrix m = PackedSetMatrix::FromVectors(vecs);
  std::vector<float> cache(n * (n - 1) / 2, -1.0f);
  AllPairsDistancesUpper(m, DistanceKind::kJaccard, cache.data());
  for (size_t i = 0; i < n; ++i) {
    const float* seg = cache.data() + (i * n - i * (i + 1) / 2);
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(seg[j - i - 1],
                static_cast<float>(
                    VectorDistance(DistanceKind::kJaccard, vecs[i], vecs[j])))
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(PackedSetKernelTest, RectangularRelevanceMatchesScalar) {
  Rng rng(23);
  std::vector<KeywordVector> a_vecs;
  std::vector<KeywordVector> b_vecs;
  for (int r = 0; r < 50; ++r) a_vecs.push_back(RandomVector(99, 10, &rng));
  for (int r = 0; r < 7; ++r) b_vecs.push_back(RandomVector(99, 15, &rng));
  const PackedSetMatrix a = PackedSetMatrix::FromVectors(a_vecs);
  const PackedSetMatrix b = PackedSetMatrix::FromVectors(b_vecs);
  std::vector<double> out(a_vecs.size() * b_vecs.size());
  RectangularRelevance(a, b, DistanceKind::kJaccard, out.data());
  for (size_t i = 0; i < a_vecs.size(); ++i) {
    for (size_t j = 0; j < b_vecs.size(); ++j) {
      EXPECT_EQ(out[i * b_vecs.size() + j],
                1.0 - VectorDistance(DistanceKind::kJaccard, a_vecs[i],
                                     b_vecs[j]))
          << "(" << i << ", " << j << ")";
    }
  }
  // Either side empty: a no-op, not a crash.
  RectangularRelevance(PackedSetMatrix(), b, DistanceKind::kJaccard,
                       out.data());
  RectangularRelevance(a, PackedSetMatrix(), DistanceKind::kJaccard,
                       out.data());
}

TEST(PackedSetKernelTest, EmitPositiveDistancesFiltersAndOrders) {
  Rng rng(29);
  std::vector<KeywordVector> vecs;
  const size_t n = 300;  // > kCountTile, so multiple tiles per row.
  for (size_t r = 0; r < n; ++r) {
    vecs.push_back(RandomVector(64, 1 + rng.NextBounded(8), &rng));
  }
  // Duplicate some rows so zero-distance pairs exist and the filter has
  // something to drop.
  vecs[5] = vecs[4];
  vecs[200] = vecs[4];
  const PackedSetMatrix m = PackedSetMatrix::FromVectors(vecs);
  for (const size_t i : {size_t{0}, size_t{4}, n - 2}) {
    std::vector<std::pair<size_t, float>> emitted;
    EmitPositiveDistancesInRow(m, i, DistanceKind::kJaccard,
                               [&](size_t j, float w) {
                                 emitted.emplace_back(j, w);
                               });
    std::vector<std::pair<size_t, float>> expected;
    for (size_t j = i + 1; j < n; ++j) {
      const float w = static_cast<float>(
          VectorDistance(DistanceKind::kJaccard, vecs[i], vecs[j]));
      if (w > 0.0f) expected.emplace_back(j, w);
    }
    EXPECT_EQ(emitted, expected) << "row " << i;
  }
}

#ifndef NDEBUG
TEST(PackedSetMatrixDeathTest, MixedUniversesAbortInDebug) {
  std::vector<KeywordVector> vecs;
  vecs.push_back(KeywordVector(64, {1}));
  vecs.push_back(KeywordVector(65, {1}));
  EXPECT_DEATH({ PackedSetMatrix::FromVectors(vecs); }, "CHECK failed");
}
#endif

}  // namespace
}  // namespace hta
