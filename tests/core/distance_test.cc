#include "core/distance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

KeywordVector V(std::initializer_list<KeywordId> ids) {
  return KeywordVector(64, ids);
}

TEST(JaccardTest, DisjointSetsAtDistanceOne) {
  EXPECT_DOUBLE_EQ(
      VectorDistance(DistanceKind::kJaccard, V({1, 2}), V({3, 4})), 1.0);
}

TEST(JaccardTest, IdenticalSetsAtDistanceZero) {
  EXPECT_DOUBLE_EQ(
      VectorDistance(DistanceKind::kJaccard, V({1, 2}), V({1, 2})), 0.0);
}

TEST(JaccardTest, KnownOverlap) {
  // |∩| = 1, |∪| = 3 → d = 1 - 1/3.
  EXPECT_NEAR(VectorDistance(DistanceKind::kJaccard, V({1, 2}), V({2, 3})),
              2.0 / 3.0, 1e-12);
}

TEST(JaccardTest, BothEmptyAtDistanceZero) {
  EXPECT_DOUBLE_EQ(VectorDistance(DistanceKind::kJaccard, V({}), V({})), 0.0);
}

TEST(JaccardTest, EmptyVsNonEmptyAtDistanceOne) {
  EXPECT_DOUBLE_EQ(VectorDistance(DistanceKind::kJaccard, V({}), V({5})),
                   1.0);
}

TEST(DiceTest, KnownOverlap) {
  // 1 - 2*1/(2+2) = 0.5.
  EXPECT_DOUBLE_EQ(VectorDistance(DistanceKind::kDice, V({1, 2}), V({2, 3})),
                   0.5);
}

TEST(DiceTest, ViolatesTriangleInequality) {
  // The classic counterexample: Dice is not a metric. d(a,b) + d(b,c)
  // can be < d(a,c) when b overlaps both.
  const KeywordVector a = V({1});
  const KeywordVector c = V({2});
  const KeywordVector b = V({1, 2});
  const double dab = VectorDistance(DistanceKind::kDice, a, b);  // 1/3
  const double dbc = VectorDistance(DistanceKind::kDice, b, c);  // 1/3
  const double dac = VectorDistance(DistanceKind::kDice, a, c);  // 1
  EXPECT_GT(dac, dab + dbc);
  EXPECT_FALSE(IsMetric(DistanceKind::kDice));
}

TEST(HammingTest, NormalizedByUniverse) {
  EXPECT_DOUBLE_EQ(
      VectorDistance(DistanceKind::kHamming, V({1, 2}), V({2, 3})),
      2.0 / 64.0);
}

TEST(CosineAngularTest, OrthogonalAtOne) {
  EXPECT_NEAR(
      VectorDistance(DistanceKind::kCosineAngular, V({1}), V({2})), 1.0,
      1e-12);
}

TEST(CosineAngularTest, IdenticalAtZero) {
  EXPECT_NEAR(
      VectorDistance(DistanceKind::kCosineAngular, V({1, 2}), V({1, 2})), 0.0,
      1e-12);
}

TEST(DistanceKindTest, NamesAreStable) {
  EXPECT_EQ(DistanceKindName(DistanceKind::kJaccard), "jaccard");
  EXPECT_EQ(DistanceKindName(DistanceKind::kDice), "dice");
  EXPECT_EQ(DistanceKindName(DistanceKind::kHamming), "hamming");
  EXPECT_EQ(DistanceKindName(DistanceKind::kCosineAngular), "cosine-angular");
}

TEST(DistanceKindTest, MetricFlags) {
  EXPECT_TRUE(IsMetric(DistanceKind::kJaccard));
  EXPECT_TRUE(IsMetric(DistanceKind::kHamming));
  EXPECT_TRUE(IsMetric(DistanceKind::kCosineAngular));
  EXPECT_FALSE(IsMetric(DistanceKind::kDice));
}

TEST(TaskRelevanceTest, MatchesOneMinusDistance) {
  const Task task(0, V({1, 2, 3}));
  const Worker worker(0, V({2, 3, 4}));
  // J-similarity = 2/4 → rel = 0.5.
  EXPECT_DOUBLE_EQ(TaskRelevance(DistanceKind::kJaccard, task, worker), 0.5);
}

TEST(TaskRelevanceTest, PaperTableOneValues) {
  // Reconstructing rel values of the shape used in Table I requires
  // only that rel is within [0, 1] and monotone in overlap.
  const Worker worker(0, V({1, 2, 3, 4, 5}));
  const Task more_overlap(0, V({1, 2, 3}));
  const Task less_overlap(1, V({1, 9}));
  EXPECT_GT(TaskRelevance(DistanceKind::kJaccard, more_overlap, worker),
            TaskRelevance(DistanceKind::kJaccard, less_overlap, worker));
}

// --- Property sweeps: metric axioms on random vectors -----------------

struct MetricCase {
  DistanceKind kind;
  uint64_t seed;
};

class MetricPropertyTest : public ::testing::TestWithParam<MetricCase> {};

KeywordVector RandomVector(Rng* rng, size_t universe, size_t max_bits) {
  KeywordVector v(universe);
  const size_t bits = rng->NextBounded(max_bits + 1);
  for (size_t i = 0; i < bits; ++i) {
    v.Set(static_cast<KeywordId>(rng->NextBounded(universe)));
  }
  return v;
}

TEST_P(MetricPropertyTest, RangeSymmetryIdentityTriangle) {
  const MetricCase c = GetParam();
  Rng rng(c.seed);
  for (int trial = 0; trial < 300; ++trial) {
    const KeywordVector a = RandomVector(&rng, 96, 12);
    const KeywordVector b = RandomVector(&rng, 96, 12);
    const KeywordVector x = RandomVector(&rng, 96, 12);

    const double dab = VectorDistance(c.kind, a, b);
    const double dba = VectorDistance(c.kind, b, a);
    const double daa = VectorDistance(c.kind, a, a);
    const double dax = VectorDistance(c.kind, a, x);
    const double dxb = VectorDistance(c.kind, x, b);

    EXPECT_GE(dab, 0.0);
    EXPECT_LE(dab, 1.0);
    EXPECT_DOUBLE_EQ(dab, dba);
    EXPECT_DOUBLE_EQ(daa, 0.0);
    if (IsMetric(c.kind)) {
      EXPECT_LE(dab, dax + dxb + 1e-12)
          << DistanceKindName(c.kind) << " violated triangle inequality: a="
          << a.ToString() << " b=" << b.ToString() << " x=" << x.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MetricPropertyTest,
    ::testing::Values(MetricCase{DistanceKind::kJaccard, 1},
                      MetricCase{DistanceKind::kJaccard, 2},
                      MetricCase{DistanceKind::kHamming, 3},
                      MetricCase{DistanceKind::kHamming, 4},
                      MetricCase{DistanceKind::kCosineAngular, 5},
                      MetricCase{DistanceKind::kCosineAngular, 6},
                      MetricCase{DistanceKind::kDice, 7}),
    [](const ::testing::TestParamInfo<MetricCase>& info) {
      std::string name = DistanceKindName(info.param.kind) + "_seed" +
                         std::to_string(info.param.seed);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hta
