// Integration tests spanning catalog generation, the adaptive engine,
// both solvers, and the online simulator — small-scale versions of the
// paper's two experiment suites.
#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/hta_solver.h"
#include "sim/online_experiment.h"
#include "sim/worker_gen.h"
#include "util/stats.h"

namespace hta {
namespace {

TEST(OfflinePipelineTest, CatalogToSolveAtModestScale) {
  // A miniature Fig. 2 point: 400 tasks, 20 workers, Xmax = 5.
  CatalogOptions catalog_options;
  catalog_options.num_groups = 20;
  catalog_options.tasks_per_group = 20;
  catalog_options.vocabulary_size = 300;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());

  WorkerGenOptions worker_options;
  worker_options.count = 20;
  auto workers = GenerateWorkers(worker_options, *catalog);
  ASSERT_TRUE(workers.ok());

  auto problem = HtaProblem::Create(&catalog->tasks, &*workers, 5);
  ASSERT_TRUE(problem.ok());

  auto app = SolveHtaApp(*problem, 1);
  auto gre = SolveHtaGre(*problem, 1);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(gre.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, app->assignment).ok());
  EXPECT_TRUE(ValidateAssignment(*problem, gre->assignment).ok());

  // Both fill all 100 slots (400 tasks >> 100 slots).
  EXPECT_EQ(app->assignment.AssignedTaskCount(), 100u);
  EXPECT_EQ(gre->assignment.AssignedTaskCount(), 100u);

  // The paper's Fig. 2b observation: the two objectives are close.
  EXPECT_GT(gre->stats.motivation, 0.5 * app->stats.motivation);
  EXPECT_LT(gre->stats.motivation, 1.5 * app->stats.motivation);
}

TEST(OfflinePipelineTest, ObjectiveGrowsWithTaskCount) {
  // More available tasks → no worse assignment objective (more choice).
  WorkerGenOptions worker_options;
  worker_options.count = 8;
  double previous = -1.0;
  for (size_t groups : {8u, 16u, 32u}) {
    CatalogOptions catalog_options;
    catalog_options.num_groups = groups;
    catalog_options.tasks_per_group = 10;
    catalog_options.vocabulary_size = 300;
    auto catalog = GenerateCatalog(catalog_options);
    ASSERT_TRUE(catalog.ok());
    auto workers = GenerateWorkers(worker_options, *catalog);
    ASSERT_TRUE(workers.ok());
    auto problem = HtaProblem::Create(&catalog->tasks, &*workers, 5);
    ASSERT_TRUE(problem.ok());
    auto result = SolveHtaGre(*problem, 7);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->stats.motivation, 0.6 * previous);
    previous = result->stats.motivation;
  }
}

TEST(OnlineExperimentTest, SmallRunProducesCoherentCurves) {
  OnlineExperimentOptions options;
  options.sessions_per_strategy = 4;
  options.session.max_minutes = 8.0;
  options.catalog.num_groups = 20;
  options.catalog.tasks_per_group = 25;
  options.catalog.vocabulary_size = 200;
  options.strategies = {StrategyKind::kHtaGre, StrategyKind::kHtaGreRel};
  options.seed = 77;

  const OnlineExperimentResult result = RunOnlineExperiment(options);
  ASSERT_EQ(result.curves.size(), 2u);

  for (const StrategyCurves& c : result.curves) {
    ASSERT_EQ(c.minutes.size(), 9u);  // 0..8 inclusive.
    EXPECT_GT(c.total_tasks, 0u);
    EXPECT_GE(c.total_questions, c.total_tasks);
    EXPECT_LE(c.total_correct, c.total_questions);
    EXPECT_EQ(c.tasks_per_session.size(), 4u);
    EXPECT_EQ(c.session_duration_minutes.size(), 4u);
    // Cumulative curves are monotone; retention is non-increasing from
    // 100%.
    for (size_t b = 1; b < c.minutes.size(); ++b) {
      EXPECT_GE(c.cumulative_completed[b], c.cumulative_completed[b - 1]);
      EXPECT_LE(c.retention_pct[b], c.retention_pct[b - 1]);
    }
    EXPECT_DOUBLE_EQ(c.retention_pct[0], 100.0);
    EXPECT_DOUBLE_EQ(c.cumulative_completed.back(),
                     static_cast<double>(c.total_tasks));
    for (double pct : c.cumulative_correct_pct) {
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0);
    }
  }
  EXPECT_NO_FATAL_FAILURE(result.ForStrategy(StrategyKind::kHtaGre));
}

TEST(OnlineExperimentTest, AdaptiveEstimatesTrackLatentPreferences) {
  // After a session of observations, the adaptive strategy's (alpha,
  // beta) estimates should be informative (within [0,1], not stuck at
  // the prior for every worker).
  OnlineExperimentOptions options;
  options.sessions_per_strategy = 4;
  options.session.max_minutes = 10.0;
  options.catalog.num_groups = 15;
  options.catalog.tasks_per_group = 25;
  options.strategies = {StrategyKind::kHtaGre};
  options.seed = 99;
  const OnlineExperimentResult result = RunOnlineExperiment(options);
  const StrategyCurves& c = result.ForStrategy(StrategyKind::kHtaGre);
  EXPECT_GT(c.mean_alpha_estimate_end, 0.0);
  EXPECT_LT(c.mean_alpha_estimate_end, 1.0);
}

TEST(SignificanceMachineryTest, PaperStyleComparisons) {
  // Reproduce the statistical apparatus of Section V-C on synthetic
  // curves: a two-proportion Z-test on quality and a Mann-Whitney U on
  // per-session task counts.
  OnlineExperimentOptions options;
  options.sessions_per_strategy = 6;
  options.session.max_minutes = 6.0;
  options.catalog.num_groups = 20;
  options.catalog.tasks_per_group = 20;
  options.strategies = {StrategyKind::kHtaGreDiv, StrategyKind::kHtaGreRel};
  options.seed = 3;
  const OnlineExperimentResult result = RunOnlineExperiment(options);
  const auto& div = result.ForStrategy(StrategyKind::kHtaGreDiv);
  const auto& rel = result.ForStrategy(StrategyKind::kHtaGreRel);

  auto z = TwoProportionZTest(div.total_correct, div.total_questions,
                              rel.total_correct, rel.total_questions);
  ASSERT_TRUE(z.ok());
  EXPECT_GE(z->p_value, 0.0);
  EXPECT_LE(z->p_value, 1.0);

  auto u = MannWhitneyUTest(div.tasks_per_session, rel.tasks_per_session);
  ASSERT_TRUE(u.ok());
  EXPECT_GE(u->p_value, 0.0);
  EXPECT_LE(u->p_value, 1.0);
}

}  // namespace
}  // namespace hta
