// Exercises the library the way the README tells an adopter to use it:
// umbrella include surface, Result-based error handling at every
// boundary, and an end-to-end generate -> solve -> refine -> export ->
// reload -> resolve loop through the public API only.
#include <cstdio>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "assign/local_search.h"
#include "engine/assignment_service.h"
#include "io/catalog_io.h"
#include "sim/online_experiment.h"
#include "sim/worker_gen.h"
#include "quality/aggregation.h"
#include "teams/team_formation.h"

namespace hta {
namespace {

TEST(PublicApiTest, ReadmeQuickstartFlow) {
  // Generate a marketplace.
  CatalogOptions catalog_options;
  catalog_options.num_groups = 15;
  catalog_options.tasks_per_group = 20;
  catalog_options.vocabulary_size = 150;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());
  WorkerGenOptions worker_options;
  worker_options.count = 8;
  auto workers = GenerateWorkers(worker_options, *catalog);
  ASSERT_TRUE(workers.ok());

  // Solve.
  auto problem = HtaProblem::Create(&catalog->tasks, &*workers, 6);
  ASSERT_TRUE(problem.ok());
  auto solved = SolveHtaGre(*problem, 42);
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(ValidateAssignment(*problem, solved->assignment).ok());

  // Refine.
  auto refined = ImproveAssignment(*problem, solved->assignment,
                                   LocalSearchOptions{});
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined->motivation + 1e-9, solved->stats.motivation);

  // Export everything, reload, and solve again from files.
  const std::string dir = ::testing::TempDir();
  const std::string tasks_csv = dir + "/api_tasks.csv";
  const std::string workers_csv = dir + "/api_workers.csv";
  const std::string assignment_csv = dir + "/api_assignment.csv";
  ASSERT_TRUE(SaveCatalogCsv(*catalog, tasks_csv).ok());
  ASSERT_TRUE(SaveWorkersCsv(*workers, catalog->space, workers_csv).ok());
  ASSERT_TRUE(SaveAssignmentCsv(refined->assignment, *workers,
                                catalog->tasks, assignment_csv)
                  .ok());

  auto deployment = LoadDeployment(tasks_csv, workers_csv);
  ASSERT_TRUE(deployment.ok());
  auto reloaded_problem = HtaProblem::Create(&deployment->catalog.tasks,
                                             &deployment->workers, 6);
  ASSERT_TRUE(reloaded_problem.ok());
  auto resolved = SolveHtaGre(*reloaded_problem, 42);
  ASSERT_TRUE(resolved.ok());
  // Same marketplace, same seed: the objective matches up to the CSV
  // round-trip precision (weights are persisted at 6 decimals).
  EXPECT_NEAR(resolved->stats.motivation, solved->stats.motivation, 1e-3);

  std::remove(tasks_csv.c_str());
  std::remove(workers_csv.c_str());
  std::remove(assignment_csv.c_str());
}

TEST(PublicApiTest, AllSolverEntryPointsAgreeOnFeasibility) {
  CatalogOptions catalog_options;
  catalog_options.num_groups = 10;
  catalog_options.tasks_per_group = 15;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());
  WorkerGenOptions worker_options;
  worker_options.count = 5;
  auto workers = GenerateWorkers(worker_options, *catalog);
  ASSERT_TRUE(workers.ok());
  auto problem = HtaProblem::Create(&catalog->tasks, &*workers, 4);
  ASSERT_TRUE(problem.ok());

  Rng rng(5);
  for (StrategyKind kind :
       {StrategyKind::kHtaGre, StrategyKind::kHtaGreDiv,
        StrategyKind::kHtaGreRel, StrategyKind::kRandom}) {
    auto result = SolveWithStrategy(*problem, kind, 9, &rng);
    ASSERT_TRUE(result.ok()) << StrategyName(kind);
    EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  }
  auto greedy_rel = SolveGreedyRelevance(*problem);
  ASSERT_TRUE(greedy_rel.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, greedy_rel->assignment).ok());
}

TEST(PublicApiTest, TeamsComposeWithGeneratedMarketplace) {
  CatalogOptions catalog_options;
  catalog_options.num_groups = 8;
  catalog_options.tasks_per_group = 4;
  auto catalog = GenerateCatalog(catalog_options);
  ASSERT_TRUE(catalog.ok());
  WorkerGenOptions worker_options;
  worker_options.count = 10;
  worker_options.group_affinity = 0.8;
  auto workers = GenerateWorkers(worker_options, *catalog);
  ASSERT_TRUE(workers.ok());

  std::vector<CollaborativeTask> collaborative;
  for (size_t t = 0; t < 4; ++t) {
    collaborative.push_back({catalog->tasks[t * 5], 2});
  }
  auto teams = FormTeamsGreedy(collaborative, *workers, TeamScoreWeights{});
  ASSERT_TRUE(teams.ok());
  ASSERT_EQ(teams->teams.size(), 4u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_GE(
        TeamCoverage(collaborative[t].task, teams->teams[t], *workers), 0.0);
  }
}

TEST(PublicApiTest, ErrorsSurfaceAsStatusesNotCrashes) {
  // Every documented misuse of the public API returns a Status.
  const std::vector<Task> no_tasks;
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(8, {1}));
  const std::vector<Worker> no_workers;
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(8, {1}));

  EXPECT_FALSE(HtaProblem::Create(&no_tasks, &workers, 1).ok());
  EXPECT_FALSE(HtaProblem::Create(&tasks, &no_workers, 1).ok());
  EXPECT_FALSE(HtaProblem::Create(&tasks, &workers, 0).ok());
  EXPECT_FALSE(LoadCatalogCsv("/nonexistent/x.csv").ok());
  EXPECT_FALSE(FormTeamsGreedy({}, workers, TeamScoreWeights{}).ok());
  EXPECT_FALSE(MajorityVote({}, 2).ok());
}

}  // namespace
}  // namespace hta
