#include "util/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace hta::trace {
namespace {

std::string TempTracePath(const char* tag) {
  return ::testing::TempDir() + "/hta_trace_" + tag + ".json";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { OverridePathForTesting(""); }
};

TEST_F(TraceTest, DisabledByDefaultAndSpansAreNoOps) {
  OverridePathForTesting("");
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(OutputPath(), "");
  { PhaseSpan span("test.noop"); }
  EXPECT_EQ(BufferedSpanCount(), 0u);
  Flush();  // No-op, must not crash.
}

TEST_F(TraceTest, SpansBufferAndFlushAsChromeTraceJson) {
  const std::string path = TempTracePath("flush");
  std::remove(path.c_str());
  OverridePathForTesting(path);
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(OutputPath(), path);

  { PhaseSpan span("phase.alpha"); }
  { PhaseSpan span("phase.beta"); }
  EXPECT_EQ(BufferedSpanCount(), 2u);

  Flush();
  EXPECT_EQ(BufferedSpanCount(), 0u);

  const std::string json = ReadAll(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  const std::string path = TempTracePath("tids");
  std::remove(path.c_str());
  OverridePathForTesting(path);

  { PhaseSpan span("phase.main"); }
  std::thread other([] { PhaseSpan span("phase.worker"); });
  other.join();
  EXPECT_EQ(BufferedSpanCount(), 2u);
  Flush();

  const std::string json = ReadAll(path);
  // Both spans present; at least two distinct tid values appear.
  EXPECT_NE(json.find("\"phase.main\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.worker\""), std::string::npos);
  const size_t first_tid = json.find("\"tid\": ");
  ASSERT_NE(first_tid, std::string::npos);
  const std::string tid_token =
      json.substr(first_tid, json.find(',', first_tid) - first_tid);
  size_t occurrences = 0;
  for (size_t pos = json.find("\"tid\": "); pos != std::string::npos;
       pos = json.find("\"tid\": ", pos + 1)) {
    if (json.compare(pos, tid_token.size(), tid_token) == 0) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u) << "expected distinct per-thread tids";
}

TEST_F(TraceTest, PhaseSpanFeedsHistogramWhenMetricsEnabled) {
  // Force tracing off regardless of any ambient HTA_TRACE, so the span
  // below times purely for the histogram.
  OverridePathForTesting("");
  metrics::OverrideEnabled(true);
  metrics::ResetForTesting();
  static metrics::Histogram hist("test.trace_span_seconds",
                                 metrics::LatencyBucketsSeconds());
  { PhaseSpan span("phase.timed", &hist); }
  bool found = false;
  for (const metrics::MetricValue& v : metrics::Snapshot()) {
    if (v.name == "test.trace_span_seconds") {
      EXPECT_EQ(v.count, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  metrics::ResetForTesting();
  metrics::OverrideEnabled(false);
  // Tracing stayed off: timing ran for the histogram, no span buffered.
  EXPECT_EQ(BufferedSpanCount(), 0u);
}

TEST_F(TraceTest, OverridePathDropsPreviouslyBufferedSpans) {
  OverridePathForTesting(TempTracePath("drop_a"));
  { PhaseSpan span("phase.stale"); }
  EXPECT_EQ(BufferedSpanCount(), 1u);
  OverridePathForTesting(TempTracePath("drop_b"));
  EXPECT_EQ(BufferedSpanCount(), 0u);
}

}  // namespace
}  // namespace hta::trace
