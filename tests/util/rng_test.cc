#include "util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(21);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(77);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GumbelMeanIsEulerMascheroni) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextGumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 15);  // Expected ~1 fixed point.
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(41);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngDeathTest, SampleMoreThanPopulationAborts) {
  Rng rng(1);
  EXPECT_DEATH({ rng.SampleWithoutReplacement(3, 4); }, "CHECK failed");
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(55);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  Rng child_a_again = parent.Fork(0);
  EXPECT_EQ(child_a.Next(), child_a_again.Next());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.Next() == child_b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == std::numeric_limits<uint64_t>::max());
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace hta
