#include "util/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(JsonNumberTest, FiniteValuesRoundTripAtFullPrecision) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(-2.0), "-2");
  // %.17g preserves every double bit-exactly through a parse. Parse
  // with strtod: stod throws out_of_range on subnormals (ERANGE).
  const double pi = 3.141592653589793;
  EXPECT_EQ(std::strtod(JsonNumber(pi).c_str(), nullptr), pi);
  const double tiny = 5e-324;  // Smallest subnormal.
  EXPECT_EQ(std::strtod(JsonNumber(tiny).c_str(), nullptr), tiny);
}

TEST(JsonNumberTest, NonFiniteValuesSerializeAsNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonQuoteTest, PlainStringsAreQuoted) {
  EXPECT_EQ(JsonQuote(""), "\"\"");
  EXPECT_EQ(JsonQuote("hta-gre"), "\"hta-gre\"");
}

TEST(JsonQuoteTest, QuotesAndBackslashesEscaped) {
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
}

TEST(JsonQuoteTest, NamedControlCharactersUseShortEscapes) {
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(JsonQuote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(JsonQuote("a\bb"), "\"a\\bb\"");
  EXPECT_EQ(JsonQuote("a\fb"), "\"a\\fb\"");
}

TEST(JsonQuoteTest, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x1f')), "\"\\u001f\"");
  // NUL embedded in a std::string is escaped, not truncated.
  EXPECT_EQ(JsonQuote(std::string("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonQuoteTest, HighBytesPassThroughVerbatim) {
  // UTF-8 multibyte sequences are valid JSON string content as-is.
  EXPECT_EQ(JsonQuote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

}  // namespace
}  // namespace hta
