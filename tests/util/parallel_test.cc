#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/env.h"
#include "util/rng.h"

namespace hta {
namespace {

// The global pool reads HTA_THREADS once, at first use. Force a
// multi-threaded pool for this whole binary (before main runs) so the
// worker-thread code paths are actually exercised even on single-core
// CI machines; serial behavior is covered via max_threads = 1, which
// takes the same inline path as an HTA_THREADS=1 pool.
const bool kForcePoolSize = [] {
  setenv("HTA_THREADS", "4", /*overwrite=*/0);
  return true;
}();

using parallel_internal::BlockAt;
using parallel_internal::BlockCount;

TEST(BlockPartitionTest, CountsAndRangesTileTheInterval) {
  EXPECT_EQ(BlockCount(0, 10, 3), 4u);
  EXPECT_EQ(BlockCount(0, 9, 3), 3u);
  EXPECT_EQ(BlockCount(5, 5, 3), 0u);
  EXPECT_EQ(BlockCount(7, 5, 3), 0u);  // Empty (end < begin).
  EXPECT_EQ(BlockCount(0, 1, 100), 1u);
  // grain 0 behaves as grain 1.
  EXPECT_EQ(BlockCount(0, 4, 0), 4u);

  size_t expected_begin = 2;
  const size_t blocks = BlockCount(2, 13, 4);
  ASSERT_EQ(blocks, 3u);
  for (size_t b = 0; b < blocks; ++b) {
    const auto r = BlockAt(2, 13, 4, b);
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.end, 13u);
    EXPECT_LT(r.begin, r.end);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, 13u);
}

TEST(ParallelForTest, PerIndexFormCoversEveryIndexExactlyOnce) {
  ASSERT_TRUE(kForcePoolSize);
  constexpr size_t kRange = 10000;
  std::vector<std::atomic<int>> hits(kRange);
  ParallelFor(0, kRange, 64, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, BlockFormCoversEveryIndexExactlyOnce) {
  constexpr size_t kRange = 5000;
  std::vector<std::atomic<int>> hits(kRange);
  ParallelFor(0, kRange, 37, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NonZeroBeginIsRespected) {
  std::vector<int> hits(20, 0);
  ParallelFor(5, 17, 4, [&](size_t i) { hits[i] += 1; }, /*max_threads=*/1);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 5 && i < 17 ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, GrainEdgeCases) {
  // Empty range: fn never runs.
  bool ran = false;
  ParallelFor(3, 3, 8, [&](size_t) { ran = true; });
  ParallelFor(9, 3, 8, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);

  // Grain larger than the range: one block, executed inline.
  std::vector<int> hits(6, 0);
  ParallelFor(0, 6, 100, [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 6);

  // Grain 0 is treated as grain 1.
  std::atomic<int> count{0};
  ParallelFor(0, 8, 0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelForTest, SerialCapMatchesParallelExecution) {
  constexpr size_t kRange = 4096;
  std::vector<uint64_t> serial(kRange), parallel(kRange);
  auto body = [](size_t i) { return i * 2654435761u + 17; };
  ParallelFor(0, kRange, 128, [&](size_t i) { serial[i] = body(i); },
              /*max_threads=*/1);
  ParallelFor(0, kRange, 128, [&](size_t i) { parallel[i] = body(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      ParallelFor(0, 1000, 8,
                  [&](size_t i) {
                    if (i == 437) throw std::runtime_error("boom");
                  }),
      std::runtime_error);

  // The pool must remain fully usable after a failed job.
  std::atomic<int> count{0};
  ParallelFor(0, 256, 8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 256);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  constexpr size_t kOuter = 32;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ParallelFor(0, kOuter, 1, [&](size_t i) {
    ParallelFor(0, kInner, 8,
                [&](size_t j) { hits[i * kInner + j].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelReduceTest, SumsFullRangeFromInit) {
  const double sum = ParallelReduce(
      1, 1001, 64, 0.5,
      [](size_t begin, size_t end) {
        double s = 0.0;
        for (size_t i = begin; i < end; ++i) s += static_cast<double>(i);
        return s;
      },
      [](double acc, double partial) { return acc + partial; });
  EXPECT_DOUBLE_EQ(sum, 0.5 + 1000.0 * 1001.0 / 2.0);
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  const int value = ParallelReduce(
      4, 4, 8, 77, [](size_t, size_t) { return 1; },
      [](int acc, int partial) { return acc + partial; });
  EXPECT_EQ(value, 77);
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCaps) {
  // Floating-point partials round differently under different
  // association; the fixed block partition must make every thread cap
  // produce the same bits.
  Rng rng(123);
  std::vector<double> data(10007);
  for (double& v : data) v = rng.NextDouble() * 2.0 - 1.0;
  auto reduce_with = [&](size_t max_threads) {
    return ParallelReduce(
        0, data.size(), 97, 0.0,
        [&](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += data[i] * data[i];
          return s;
        },
        [](double acc, double partial) { return acc + partial; },
        max_threads);
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(0));
  EXPECT_EQ(serial, reduce_with(2));
  EXPECT_EQ(serial, reduce_with(3));
}

TEST(ParallelStableSortTest, MatchesSerialStableSortAtAllSizes) {
  Rng rng(77);
  // Sizes straddling the leaf-block grain: empty, tiny, one block,
  // just over one block, and several blocks with a ragged tail.
  for (const size_t n : {size_t{0}, size_t{5}, kParallelSortGrain,
                         kParallelSortGrain + 1, 5 * kParallelSortGrain + 17}) {
    std::vector<int> data(n);
    for (int& v : data) v = static_cast<int>(rng.NextBounded(1000));
    std::vector<int> expected = data;
    std::stable_sort(expected.begin(), expected.end());
    for (const size_t cap : {size_t{1}, size_t{0}, size_t{3}}) {
      std::vector<int> sorted = data;
      ParallelStableSort(&sorted, std::less<int>(), cap);
      ASSERT_EQ(sorted, expected) << "n=" << n << " cap=" << cap;
    }
  }
}

TEST(ParallelStableSortTest, PreservesOrderOfEqualKeys) {
  // Stability: pairs with equal keys must keep their input order, even
  // when the key spans multiple leaf blocks.
  const size_t n = 3 * kParallelSortGrain + 101;
  Rng rng(9);
  std::vector<std::pair<int, size_t>> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<int>(rng.NextBounded(7)), i};
  }
  auto by_key = [](const std::pair<int, size_t>& a,
                   const std::pair<int, size_t>& b) {
    return a.first < b.first;
  };
  std::vector<std::pair<int, size_t>> sorted = data;
  ParallelStableSort(&sorted, by_key);
  for (size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_LE(sorted[i - 1].first, sorted[i].first);
    if (sorted[i - 1].first == sorted[i].first) {
      ASSERT_LT(sorted[i - 1].second, sorted[i].second) << "at " << i;
    }
  }
}

TEST(ThreadPoolTest, ThreadCountMatchesConstruction) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.thread_count(), 1u);
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  // Zero behaves like one (the caller always participates).
  ThreadPool zero(0);
  EXPECT_EQ(zero.thread_count(), 1u);
}

TEST(ThreadPoolTest, RunExecutesEveryBlockOnDedicatedPools) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{5}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.Run(hits.size(), [&](size_t b) { hits[b].fetch_add(1); });
    for (size_t b = 0; b < hits.size(); ++b) {
      ASSERT_EQ(hits[b].load(), 1)
          << "block " << b << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, GlobalPoolHonorsHtaThreadsEnv) {
  // kForcePoolSize guaranteed HTA_THREADS was set before first use
  // (without clobbering an externally supplied value).
  const int requested = GetHtaThreads();
  ASSERT_GT(requested, 0);
  EXPECT_EQ(ThreadPool::Global().thread_count(),
            static_cast<size_t>(requested));
}

}  // namespace
}  // namespace hta
