#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad xmax");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad xmax");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad xmax");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("index 9");
  EXPECT_EQ(os.str(), "OutOfRange: index 9");
}

Status FailsThenPropagates(bool fail) {
  HTA_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorPropagatesError) {
  EXPECT_EQ(FailsThenPropagates(true), Status::Internal("inner"));
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  EXPECT_EQ(FailsThenPropagates(false), Status::NotFound("outer"));
}

}  // namespace
}  // namespace hta
