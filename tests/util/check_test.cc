#include "util/check.h"

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(CheckTest, PassingChecksDoNothing) {
  HTA_CHECK(true);
  HTA_CHECK(1 + 1 == 2) << "never evaluated";
  HTA_CHECK_EQ(2, 2);
  HTA_CHECK_NE(1, 2);
  HTA_CHECK_LT(1, 2);
  HTA_CHECK_LE(2, 2);
  HTA_CHECK_GT(3, 2);
  HTA_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ HTA_CHECK(false) << "context 123"; }, "context 123");
}

TEST(CheckDeathTest, FailureMessageNamesCondition) {
  EXPECT_DEATH({ HTA_CHECK(2 < 1); }, "2 < 1");
}

TEST(CheckDeathTest, ComparisonChecksPrintOperands) {
  EXPECT_DEATH({ HTA_CHECK_EQ(3, 4); }, "3 vs 4");
  EXPECT_DEATH({ HTA_CHECK_LT(9, 2); }, "9 vs 2");
}

TEST(CheckTest, StreamedMessageNotEvaluatedOnSuccess) {
  int counter = 0;
  auto bump = [&counter]() {
    ++counter;
    return "side effect";
  };
  HTA_CHECK(true) << bump();
  EXPECT_EQ(counter, 0);
}

#ifndef NDEBUG
TEST(CheckDeathTest, DebugChecksActiveInDebugBuilds) {
  EXPECT_DEATH({ HTA_DCHECK(false); }, "CHECK failed");
  EXPECT_DEATH({ HTA_DCHECK_EQ(1, 2); }, "1 vs 2");
}
#else
TEST(CheckTest, DebugChecksCompiledOutInRelease) {
  HTA_DCHECK(false);       // Must not abort.
  HTA_DCHECK_EQ(1, 2);     // Must not abort.
  SUCCEED();
}
#endif

}  // namespace
}  // namespace hta
