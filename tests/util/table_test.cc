#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(TableWriterTest, PrintsAlignedColumns) {
  TableWriter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator line of dashes present.
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Column alignment: "value" column starts at same offset in each line.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row1.find("1"));
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(TableWriterTest, RowCountTracksRows) {
  TableWriter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"x"});
  t.AddRow({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriterDeathTest, RowWidthMismatchAborts) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH({ t.AddRow({"only-one"}); }, "CHECK failed");
}

TEST(TableWriterDeathTest, EmptyHeaderAborts) {
  EXPECT_DEATH({ TableWriter t({}); }, "at least one column");
}

TEST(TableWriterTest, CsvPlainCells) {
  TableWriter t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n");
}

TEST(TableWriterTest, CsvQuotesCarriageReturnAndNewline) {
  TableWriter t({"text"});
  t.AddRow({"line1\r\nline2"});
  t.AddRow({"bare\rcr"});
  // RFC 4180: any cell containing CR or LF must be quoted; \r
  // previously slipped through unquoted.
  EXPECT_EQ(t.ToCsv(), "text\n\"line1\r\nline2\"\n\"bare\rcr\"\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"text"});
  t.AddRow({"a,b"});
  t.AddRow({"say \"hi\""});
  EXPECT_EQ(t.ToCsv(), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(FmtTest, DoubleRespectsPrecision) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(3.14159, 0), "3");
  EXPECT_EQ(FmtDouble(-1.5, 3), "-1.500");
}

TEST(FmtTest, IntFormats) {
  EXPECT_EQ(FmtInt(0), "0");
  EXPECT_EQ(FmtInt(-42), "-42");
  EXPECT_EQ(FmtInt(123456789012345LL), "123456789012345");
}

TEST(FmtTest, PercentFromFraction) {
  EXPECT_EQ(FmtPercent(0.819, 1), "81.9%");
  EXPECT_EQ(FmtPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace hta
