#include "util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace hta {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("HTA_BENCH_SCALE");
    unsetenv("HTA_TEST_VAR");
    unsetenv("HTA_THREADS");
  }
};

TEST_F(EnvTest, GetEnvOrFallsBackWhenUnset) {
  unsetenv("HTA_TEST_VAR");
  EXPECT_EQ(GetEnvOr("HTA_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, GetEnvOrReadsValue) {
  setenv("HTA_TEST_VAR", "hello", 1);
  EXPECT_EQ(GetEnvOr("HTA_TEST_VAR", "fallback"), "hello");
}

TEST_F(EnvTest, EmptyValueUsesFallback) {
  setenv("HTA_TEST_VAR", "", 1);
  EXPECT_EQ(GetEnvOr("HTA_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, GetEnvIntParses) {
  setenv("HTA_TEST_VAR", "42", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), 42);
}

TEST_F(EnvTest, GetEnvIntRejectsGarbage) {
  setenv("HTA_TEST_VAR", "12abc", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), 7);
  setenv("HTA_TEST_VAR", "abc", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, GetEnvIntNegative) {
  setenv("HTA_TEST_VAR", "-5", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), -5);
}

TEST_F(EnvTest, GetEnvIntRejectsOutOfRangeValues) {
  // Regression: strtoll saturates out-of-range input to LLONG_MAX /
  // LLONG_MIN and only reports it via errno == ERANGE; such values
  // must fall back instead of silently saturating.
  setenv("HTA_TEST_VAR", "99999999999999999999", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), 7);
  setenv("HTA_TEST_VAR", "-99999999999999999999", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), 7);
  // Extremes that do fit in int64_t still parse.
  setenv("HTA_TEST_VAR", "9223372036854775807", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), INT64_MAX);
  setenv("HTA_TEST_VAR", "-9223372036854775808", 1);
  EXPECT_EQ(GetEnvIntOr("HTA_TEST_VAR", 7), INT64_MIN);
}

TEST_F(EnvTest, HtaThreadsOutOfRangeFallsBackToAuto) {
  // Before the ERANGE fix this saturated to LLONG_MAX and clamped to
  // kMaxHtaThreads, silently accepting a nonsense setting.
  setenv("HTA_THREADS", "99999999999999999999", 1);
  EXPECT_EQ(GetHtaThreads(), 0);
}

TEST_F(EnvTest, HtaThreadsDefaultsToAuto) {
  unsetenv("HTA_THREADS");
  EXPECT_EQ(GetHtaThreads(), 0);
}

TEST_F(EnvTest, HtaThreadsParsesPositiveValues) {
  setenv("HTA_THREADS", "1", 1);
  EXPECT_EQ(GetHtaThreads(), 1);
  setenv("HTA_THREADS", "8", 1);
  EXPECT_EQ(GetHtaThreads(), 8);
}

TEST_F(EnvTest, HtaThreadsRejectsNonPositiveAndGarbage) {
  setenv("HTA_THREADS", "0", 1);
  EXPECT_EQ(GetHtaThreads(), 0);
  setenv("HTA_THREADS", "-3", 1);
  EXPECT_EQ(GetHtaThreads(), 0);
  setenv("HTA_THREADS", "lots", 1);
  EXPECT_EQ(GetHtaThreads(), 0);
}

TEST_F(EnvTest, HtaThreadsClampsToMax) {
  setenv("HTA_THREADS", "100000", 1);
  EXPECT_EQ(GetHtaThreads(), kMaxHtaThreads);
}

TEST_F(EnvTest, BenchScaleDefault) {
  unsetenv("HTA_BENCH_SCALE");
  EXPECT_EQ(GetBenchScale(), BenchScale::kDefault);
}

TEST_F(EnvTest, BenchScaleParsesAllValuesCaseInsensitive) {
  setenv("HTA_BENCH_SCALE", "smoke", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmoke);
  setenv("HTA_BENCH_SCALE", "PAPER", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kPaper);
  setenv("HTA_BENCH_SCALE", "Default", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kDefault);
  setenv("HTA_BENCH_SCALE", "bogus", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kDefault);
}

TEST_F(EnvTest, BenchScaleNamesRoundTrip) {
  EXPECT_EQ(BenchScaleName(BenchScale::kSmoke), "smoke");
  EXPECT_EQ(BenchScaleName(BenchScale::kDefault), "default");
  EXPECT_EQ(BenchScaleName(BenchScale::kPaper), "paper");
}

}  // namespace
}  // namespace hta
