#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(SummarizeTest, EmptySample) {
  const SampleSummary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const SampleSummary s = Summarize({4.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(SummarizeTest, KnownSample) {
  const SampleSummary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 50).value(), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100).value(), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25).value(), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75).value(), 7.5);
}

TEST(PercentileTest, RejectsEmptyAndOutOfRange) {
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile({1.0}, -1).ok());
  EXPECT_FALSE(Percentile({1.0}, 101).ok());
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(5.0), 1.0, 1e-6);
}

TEST(TwoProportionZTest, EqualProportionsGiveHighP) {
  const auto r = TwoProportionZTest(50, 100, 50, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.0, 1e-12);
  EXPECT_NEAR(r->p_value, 1.0, 1e-12);
}

TEST(TwoProportionZTest, LargeGapIsSignificant) {
  // Roughly the paper's Fig. 5a comparison: 81.9% vs 65% on a few
  // hundred questions each.
  const auto r = TwoProportionZTest(327, 400, 260, 400);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::abs(r->statistic), 2.0);
  EXPECT_LT(r->p_value, 0.01);
}

TEST(TwoProportionZTest, MatchesHandComputedZ) {
  // p1=0.6 (60/100), p2=0.5 (50/100), pooled=0.55.
  const auto r = TwoProportionZTest(60, 100, 50, 100);
  ASSERT_TRUE(r.ok());
  const double se = std::sqrt(0.55 * 0.45 * (0.01 + 0.01));
  EXPECT_NEAR(r->statistic, 0.1 / se, 1e-9);
}

TEST(TwoProportionZTest, ExtremeZKeepsTinyNonZeroTail) {
  // Regression: p = 2 * (1 - NormalCdf(|z|)) cancels to exactly 0 once
  // |z| >~ 8; the direct erfc tail stays finite far beyond that.
  const auto r = TwoProportionZTest(5000, 10000, 3000, 10000);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::abs(r->statistic), 25.0);
  EXPECT_GT(r->p_value, 0.0);
  EXPECT_LT(r->p_value, 1e-100);
  // Pin against the closed form p = erfc(|z| / sqrt(2)).
  EXPECT_DOUBLE_EQ(r->p_value,
                   std::erfc(std::abs(r->statistic) / std::sqrt(2.0)));
}

TEST(TwoProportionZTest, ModerateZMatchesNormalCdfForm) {
  // Where the old 2 * (1 - Phi) form is still accurate, the erfc tail
  // must agree with it.
  const auto r = TwoProportionZTest(60, 100, 50, 100);
  ASSERT_TRUE(r.ok());
  const double legacy = 2.0 * (1.0 - NormalCdf(std::abs(r->statistic)));
  EXPECT_NEAR(r->p_value, legacy, 1e-12);
}

TEST(TwoProportionZTest, RejectsBadInputs) {
  EXPECT_FALSE(TwoProportionZTest(1, 0, 1, 2).ok());
  EXPECT_FALSE(TwoProportionZTest(3, 2, 1, 2).ok());
}

TEST(TwoProportionZTest, DegenerateAllSuccesses) {
  const auto r = TwoProportionZTest(10, 10, 10, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->p_value, 1.0);  // Zero pooled variance: no evidence.
}

TEST(MannWhitneyUTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = MannWhitneyUTest(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.8);
}

TEST(MannWhitneyUTest, SeparatedSamplesSignificant) {
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> b{11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  const auto r = MannWhitneyUTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.001);
  // U for sample a against fully larger b is 0.
  EXPECT_DOUBLE_EQ(r->statistic, 0.0);
}

TEST(MannWhitneyUTest, SymmetricInSamples) {
  std::vector<double> a{1, 5, 7, 9};
  std::vector<double> b{2, 3, 8, 10, 12};
  const auto ab = MannWhitneyUTest(a, b);
  const auto ba = MannWhitneyUTest(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_NEAR(ab->p_value, ba->p_value, 1e-9);
  // U_a + U_b == n1 * n2.
  EXPECT_NEAR(ab->statistic + ba->statistic, 4.0 * 5.0, 1e-9);
}

TEST(MannWhitneyUTest, HandlesTies) {
  std::vector<double> a{1, 1, 2, 2};
  std::vector<double> b{1, 2, 2, 3};
  const auto r = MannWhitneyUTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->p_value, 0.0);
  EXPECT_LE(r->p_value, 1.0);
}

TEST(MannWhitneyUTest, FullySeparatedLargeSamplesKeepNonZeroP) {
  // 60 vs 60 fully separated values give |z| ≈ 9.4, past the point
  // where the cancelling 2 * (1 - Phi) form rounded the p-value to 0.
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(100 + i));
  }
  const auto r = MannWhitneyUTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.0);
  EXPECT_LT(r->p_value, 1e-15);
}

TEST(MannWhitneyUTest, RejectsEmpty) {
  EXPECT_FALSE(MannWhitneyUTest({}, {1.0}).ok());
  EXPECT_FALSE(MannWhitneyUTest({1.0}, {}).ok());
}

TEST(BootstrapTest, CoversTrueMeanOfTightSample) {
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(10.0 + rng.NextGaussian());
  const auto ci = BootstrapMeanCi(values, 0.95, 500, &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci->lower, 10.1);
  EXPECT_GT(ci->upper, 9.9);
  EXPECT_LT(ci->upper - ci->lower, 1.0);
  EXPECT_LE(ci->lower, ci->upper);
}

TEST(BootstrapTest, RejectsBadInputs) {
  Rng rng(1);
  EXPECT_FALSE(BootstrapMeanCi({}, 0.95, 100, &rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, 0.0, 100, &rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, 1.0, 100, &rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, 0.95, 0, &rng).ok());
}

TEST(RunningStatTest, MatchesBatchSummary) {
  std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat rs;
  for (double v : values) rs.Add(v);
  const SampleSummary s = Summarize(values);
  EXPECT_EQ(rs.count(), s.n);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace hta
