#include "util/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hta::metrics {
namespace {

/// Finds one metric by name in a snapshot; fails the test if missing.
const MetricValue& Find(const std::vector<MetricValue>& snapshot,
                        const std::string& name) {
  for (const MetricValue& v : snapshot) {
    if (v.name == name) return v;
  }
  ADD_FAILURE() << "metric not found: " << name;
  static const MetricValue empty;
  return empty;
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OverrideEnabled(true);
    ResetForTesting();
  }
  void TearDown() override {
    ResetForTesting();
    OverrideEnabled(false);
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  static Counter counter("test.counter_accumulates");
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(Find(Snapshot(), "test.counter_accumulates").count, 42u);
}

TEST_F(MetricsTest, DisabledCounterRecordsNothing) {
  static Counter counter("test.counter_disabled");
  OverrideEnabled(false);
  counter.Add(7);
  OverrideEnabled(true);
  EXPECT_EQ(Find(Snapshot(), "test.counter_disabled").count, 0u);
}

TEST_F(MetricsTest, ReRegisteringANameSharesTheSeries) {
  Counter a("test.counter_shared");
  Counter b("test.counter_shared");
  a.Add(1);
  b.Add(2);
  EXPECT_EQ(Find(Snapshot(), "test.counter_shared").count, 3u);
}

TEST_F(MetricsTest, GaugeTracksValueAndMax) {
  static Gauge gauge("test.gauge");
  gauge.Set(5);
  gauge.Set(9);
  gauge.Set(3);
  const MetricValue v = Find(Snapshot(), "test.gauge");
  EXPECT_EQ(v.value, 3);
  EXPECT_EQ(v.max, 9);
}

TEST_F(MetricsTest, GaugeMaxHandlesNegativeValues) {
  static Gauge gauge("test.gauge_negative");
  gauge.Set(-7);
  gauge.Set(-3);
  gauge.Set(-5);
  const MetricValue v = Find(Snapshot(), "test.gauge_negative");
  EXPECT_EQ(v.value, -5);
  EXPECT_EQ(v.max, -3);
}

TEST_F(MetricsTest, HistogramBucketsObservations) {
  static Histogram hist("test.histogram", {1.0, 10.0, 100.0});
  hist.Observe(0.5);
  hist.Observe(1.0);   // Bounds are inclusive upper bounds.
  hist.Observe(5.0);
  hist.Observe(1e6);   // Overflow bucket.
  const MetricValue v = Find(Snapshot(), "test.histogram");
  EXPECT_EQ(v.count, 4u);
  ASSERT_EQ(v.bucket_counts.size(), 4u);
  EXPECT_EQ(v.bucket_counts[0], 2u);
  EXPECT_EQ(v.bucket_counts[1], 1u);
  EXPECT_EQ(v.bucket_counts[2], 0u);
  EXPECT_EQ(v.bucket_counts[3], 1u);
  EXPECT_DOUBLE_EQ(v.sum, 0.5 + 1.0 + 5.0 + 1e6);
}

TEST_F(MetricsTest, ConcurrentCounterWritesSumExactly) {
  // The striped counter must lose no increments under contention from
  // more threads than stripes; this is also the TSan probe for the
  // hot-path shard writes.
  static Counter counter("test.counter_concurrent");
  static Histogram hist("test.histogram_concurrent",
                        LatencyBucketsSeconds());
  constexpr size_t kThreads = 24;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter.Add();
        hist.Observe(1e-4);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<MetricValue> snapshot = Snapshot();
  EXPECT_EQ(Find(snapshot, "test.counter_concurrent").count,
            kThreads * kPerThread);
  EXPECT_EQ(Find(snapshot, "test.histogram_concurrent").count,
            kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  static Counter counter("test.json_counter");
  static Gauge gauge("test.json_gauge");
  counter.Add(3);
  gauge.Set(-2);
  const std::string json = SnapshotJson();
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\": {\"value\": -2, \"max\": -2}"),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(MetricsTest, DigestListsCountsButNotSums) {
  static Counter counter("test.digest_counter");
  static Histogram hist("test.digest_histogram", {1.0});
  counter.Add(2);
  hist.Observe(0.25);
  const std::string digest = DeterministicDigest();
  EXPECT_NE(digest.find("test.digest_counter counter 2"), std::string::npos);
  EXPECT_NE(digest.find("test.digest_histogram histogram 1"),
            std::string::npos);
  // The wall-clock-dependent sum must not leak into the digest.
  EXPECT_EQ(digest.find("0.25"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  static Counter counter("test.reset_counter");
  static Gauge gauge("test.reset_gauge");
  static Histogram hist("test.reset_histogram", {1.0});
  counter.Add(5);
  gauge.Set(5);
  hist.Observe(0.5);
  ResetForTesting();
  const std::vector<MetricValue> snapshot = Snapshot();
  EXPECT_EQ(Find(snapshot, "test.reset_counter").count, 0u);
  EXPECT_EQ(Find(snapshot, "test.reset_gauge").value, 0);
  EXPECT_EQ(Find(snapshot, "test.reset_gauge").max, 0);
  EXPECT_EQ(Find(snapshot, "test.reset_histogram").count, 0u);
}

TEST_F(MetricsTest, HistogramQuantileInterpolatesWithinBucket) {
  // Bounds {1,2,3,4}: one sample per finite bucket. Target ranks land
  // exactly on hand-computed interpolation points.
  const std::vector<double> bounds = {1.0, 2.0, 3.0, 4.0};
  const std::vector<uint64_t> counts = {1, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.75), 3.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.99), 3.96);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 1.0), 4.0);
  // q below the first sample's rank clamps to the first bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.0), 1.0);
}

TEST_F(MetricsTest, HistogramQuantileEdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0};
  // Empty histogram reports 0 for every quantile.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 0}, 0.5), 0.0);
  // Mass in the overflow bucket saturates at the largest finite bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 5}, 0.99), 2.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {2, 2, 0}, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {2, 2, 0}, -1.0), 0.5);
}

TEST_F(MetricsTest, ValueAtQuantileMatchesLiveHistogram) {
  static Histogram hist("test.quantile_histogram", {1.0, 2.0, 3.0, 4.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  hist.Observe(2.5);
  hist.Observe(3.5);
  EXPECT_DOUBLE_EQ(hist.ValueAtQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist.ValueAtQuantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(hist.ValueAtQuantile(0.99), 3.96);
  const MetricValue v = Find(Snapshot(), "test.quantile_histogram");
  EXPECT_DOUBLE_EQ(v.ValueAtQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueAtQuantile(0.99), 3.96);
}

TEST_F(MetricsTest, ValueAtQuantileOnNonHistogramIsZero) {
  static Counter counter("test.quantile_counter");
  counter.Add(7);
  const MetricValue v = Find(Snapshot(), "test.quantile_counter");
  EXPECT_DOUBLE_EQ(v.ValueAtQuantile(0.5), 0.0);
}

TEST_F(MetricsTest, ThreadStripeStaysInRange) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(ThreadStripe(), kCounterStripes);
  }
  std::thread other([] { EXPECT_LT(ThreadStripe(), kCounterStripes); });
  other.join();
}

}  // namespace
}  // namespace hta::metrics
