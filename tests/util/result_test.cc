#include "util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsValueWhenPresent) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

TEST(ResultTest, MutableValueIsMutable) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

TEST(ResultDeathTest, ConstructionFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; }, "OK status");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  HTA_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChainsSuccess) {
  Result<int> r = QuarterEven(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesInnerError) {
  Result<int> r = QuarterEven(6);  // 6/2 = 3, second halving fails.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hta
