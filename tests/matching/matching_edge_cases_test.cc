// Edge-case battery for the matching substrate: degenerate weights,
// duplicate edges, determinism of both 1/2-approximation algorithms.
#include <gtest/gtest.h>

#include "matching/max_weight_matching.h"
#include "util/rng.h"

namespace hta {
namespace {

TEST(MatchingEdgeTest, AllZeroWeightsStillMatchValidly) {
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      edges.push_back(WeightedEdge{u, v, 0.0f});
    }
  }
  const GraphMatching m = GreedyMaxWeightMatching(6, edges);
  EXPECT_DOUBLE_EQ(m.total_weight, 0.0);
  // Zero edges are still edges: the greedy picks vertex-disjoint ones.
  for (const auto& [u, v] : m.edges) {
    EXPECT_NE(u, v);
  }
}

TEST(MatchingEdgeTest, DuplicateEdgesDoNotDoubleMatch) {
  const std::vector<WeightedEdge> edges = {
      WeightedEdge{0, 1, 0.9f}, WeightedEdge{0, 1, 0.9f},
      WeightedEdge{1, 0, 0.9f}};
  const GraphMatching m = GreedyMaxWeightMatching(2, edges);
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_FLOAT_EQ(static_cast<float>(m.total_weight), 0.9f);
}

TEST(MatchingEdgeTest, SingleVertexGraph) {
  const GraphMatching m = GreedyMaxWeightMatching(1, {});
  EXPECT_TRUE(m.edges.empty());
  EXPECT_FALSE(m.IsMatched(0));
}

TEST(MatchingEdgeTest, IsMatchedOutOfRangeIsFalse) {
  const GraphMatching m = GreedyMaxWeightMatching(2, {});
  EXPECT_FALSE(m.IsMatched(5));
}

TEST(MatchingEdgeTest, PathGrowingDeterministic) {
  Rng rng(3);
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < 20; ++u) {
    for (VertexId v = u + 1; v < 20; ++v) {
      if (rng.NextBool(0.4)) {
        edges.push_back(
            WeightedEdge{u, v, static_cast<float>(rng.NextDouble())});
      }
    }
  }
  const GraphMatching a = PathGrowingMatching(20, edges);
  const GraphMatching b = PathGrowingMatching(20, edges);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
}

TEST(MatchingEdgeTest, GreedyIgnoresEdgeOrderButKeepsWeightOrder) {
  // Heaviest-first semantics survive arbitrary input permutations.
  std::vector<WeightedEdge> edges = {
      WeightedEdge{0, 1, 0.2f}, WeightedEdge{2, 3, 0.8f},
      WeightedEdge{1, 2, 0.5f}};
  Rng rng(9);
  const GraphMatching reference = GreedyMaxWeightMatching(4, edges);
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(&edges);
    const GraphMatching m = GreedyMaxWeightMatching(4, edges);
    EXPECT_EQ(m.edges, reference.edges);
  }
}

TEST(MatchingEdgeTest, StarGraphGreedyPicksOneSpoke) {
  // A star can match only one spoke; greedy must take the heaviest.
  const std::vector<WeightedEdge> edges = {
      WeightedEdge{0, 1, 0.3f}, WeightedEdge{0, 2, 0.9f},
      WeightedEdge{0, 3, 0.6f}};
  const GraphMatching m = GreedyMaxWeightMatching(4, edges);
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_EQ(m.edges[0], std::make_pair(VertexId{0}, VertexId{2}));
}

TEST(MatchingEdgeTest, ExactBruteForceOnEmptyAndTiny) {
  EXPECT_DOUBLE_EQ(ExactMaxWeightMatchingBruteForce(0, {}).total_weight, 0.0);
  const GraphMatching one = ExactMaxWeightMatchingBruteForce(
      2, {WeightedEdge{0, 1, 0.4f}});
  EXPECT_FLOAT_EQ(static_cast<float>(one.total_weight), 0.4f);
}

TEST(MatchingEdgeTest, PathGrowingHandlesIsolatedVertices) {
  // Vertices 4..9 have no incident edges.
  const std::vector<WeightedEdge> edges = {WeightedEdge{0, 1, 0.5f},
                                           WeightedEdge{2, 3, 0.7f}};
  const GraphMatching m = PathGrowingMatching(10, edges);
  EXPECT_EQ(m.edges.size(), 2u);
  for (VertexId v = 4; v < 10; ++v) {
    EXPECT_FALSE(m.IsMatched(v));
  }
}

}  // namespace
}  // namespace hta
