#include "matching/lsap.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

std::vector<double> RandomProfitMatrix(size_t n, Rng* rng,
                                       double scale = 1.0) {
  std::vector<double> m(n * n);
  for (double& v : m) v = rng->NextDouble() * scale;
  return m;
}

/// Exact LSAP by permutation enumeration; n <= 8.
double BruteForceLsap(size_t n, const std::vector<double>& profit) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1.0;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += profit[i * n + perm[i]];
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

void ExpectPermutation(const LsapSolution& s, size_t n) {
  ASSERT_EQ(s.row_to_col.size(), n);
  std::vector<bool> seen(n, false);
  for (int32_t c : s.row_to_col) {
    ASSERT_GE(c, 0);
    ASSERT_LT(static_cast<size_t>(c), n);
    EXPECT_FALSE(seen[static_cast<size_t>(c)]);
    seen[static_cast<size_t>(c)] = true;
  }
  for (size_t j = 0; j < n; ++j) {
    EXPECT_EQ(s.row_to_col[static_cast<size_t>(s.col_to_row[j])],
              static_cast<int32_t>(j));
  }
}

double RecomputeProfit(const LsapSolution& s, size_t n,
                       const std::vector<double>& profit) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += profit[i * n + static_cast<size_t>(s.row_to_col[i])];
  }
  return total;
}

TEST(LsapJvTest, TrivialSizes) {
  const LsapSolution s0 = SolveLsapJv(0, [](size_t, size_t) { return 0.0; });
  EXPECT_TRUE(s0.row_to_col.empty());
  EXPECT_EQ(s0.profit, 0.0);

  std::vector<double> one{7.0};
  const LsapSolution s1 = SolveLsapJv(1, DenseProfit(1, &one));
  EXPECT_EQ(s1.row_to_col[0], 0);
  EXPECT_DOUBLE_EQ(s1.profit, 7.0);
}

TEST(LsapJvTest, KnownTwoByTwo) {
  // max(1+4, 2+3) = 5 on the diagonal.
  std::vector<double> m{1, 2, 3, 4};
  const LsapSolution s = SolveLsapJv(2, DenseProfit(2, &m));
  ExpectPermutation(s, 2);
  EXPECT_DOUBLE_EQ(s.profit, 5.0);
}

TEST(LsapJvTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.NextBounded(6);  // up to 7
    const auto m = RandomProfitMatrix(n, &rng);
    const LsapSolution s = SolveLsapJv(n, DenseProfit(n, &m));
    ExpectPermutation(s, n);
    EXPECT_NEAR(s.profit, BruteForceLsap(n, m), 1e-9);
    EXPECT_NEAR(s.profit, RecomputeProfit(s, n, m), 1e-9);
  }
}

TEST(LsapHungarianTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.NextBounded(6);
    const auto m = RandomProfitMatrix(n, &rng);
    const LsapSolution s = SolveLsapHungarian(n, m);
    ExpectPermutation(s, n);
    EXPECT_NEAR(s.profit, BruteForceLsap(n, m), 1e-9);
  }
}

TEST(LsapCrossCheckTest, JvEqualsHungarianOnLargerRandomInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 20 + rng.NextBounded(60);
    const auto m = RandomProfitMatrix(n, &rng, 10.0);
    const LsapSolution jv = SolveLsapJv(n, DenseProfit(n, &m));
    const LsapSolution hung = SolveLsapHungarian(n, m);
    ExpectPermutation(jv, n);
    ExpectPermutation(hung, n);
    EXPECT_NEAR(jv.profit, hung.profit, 1e-6);
  }
}

TEST(LsapCrossCheckTest, JvHandlesDegenerateZeroColumns) {
  // The HTA structure: most columns all-zero, few profitable ones.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 30;
    std::vector<double> m(n * n, 0.0);
    for (size_t j = 0; j < 6; ++j) {
      for (size_t i = 0; i < n; ++i) m[i * n + j] = rng.NextDouble();
    }
    const LsapSolution jv = SolveLsapJv(n, DenseProfit(n, &m));
    const LsapSolution hung = SolveLsapHungarian(n, m);
    EXPECT_NEAR(jv.profit, hung.profit, 1e-9);
  }
}

TEST(LsapJvTest, ConstantMatrix) {
  std::vector<double> m(25, 3.0);
  const LsapSolution s = SolveLsapJv(5, DenseProfit(5, &m));
  ExpectPermutation(s, 5);
  EXPECT_NEAR(s.profit, 15.0, 1e-12);
}

TEST(LsapGreedyTest, IsValidAndHalfOptimal) {
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.NextBounded(6);
    const auto m = RandomProfitMatrix(n, &rng);
    const LsapSolution greedy = SolveLsapGreedy(n, DenseProfit(n, &m));
    ExpectPermutation(greedy, n);
    const double opt = BruteForceLsap(n, m);
    EXPECT_GE(greedy.profit + 1e-9, 0.5 * opt);
    EXPECT_LE(greedy.profit, opt + 1e-9);
    EXPECT_NEAR(greedy.profit, RecomputeProfit(greedy, n, m), 1e-9);
  }
}

TEST(LsapGreedyTest, ColumnHintMatchesFullScan) {
  // When the hint lists exactly the positive columns, results must be
  // identical to the unhinted greedy.
  Rng rng(6);
  const size_t n = 40;
  std::vector<double> m(n * n, 0.0);
  std::vector<size_t> positive_cols{3, 11, 17, 29};
  for (size_t j : positive_cols) {
    for (size_t i = 0; i < n; ++i) m[i * n + j] = rng.NextDouble();
  }
  const LsapSolution full = SolveLsapGreedy(n, DenseProfit(n, &m));
  const LsapSolution hinted =
      SolveLsapGreedy(n, DenseProfit(n, &m), &positive_cols);
  EXPECT_NEAR(full.profit, hinted.profit, 1e-12);
  EXPECT_EQ(full.row_to_col, hinted.row_to_col);
}

TEST(LsapGreedyTest, GreedyPicksGloballyHeaviestEdgeFirst) {
  // 2x2 where greedy and optimal differ: greedy takes 10 (0,0), then
  // forced (1,1) = 1 → 11; optimal is 9 + 8 = 17.
  std::vector<double> m{10, 9, 8, 1};
  const LsapSolution greedy = SolveLsapGreedy(2, DenseProfit(2, &m));
  EXPECT_DOUBLE_EQ(greedy.profit, 11.0);
  const LsapSolution exact = SolveLsapJv(2, DenseProfit(2, &m));
  EXPECT_DOUBLE_EQ(exact.profit, 17.0);
  EXPECT_GE(greedy.profit, 0.5 * exact.profit);
}

TEST(LsapAuctionTest, NearOptimalOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(10);
    const auto m = RandomProfitMatrix(n, &rng, 5.0);
    const LsapSolution auction = SolveLsapAuction(n, m);
    ExpectPermutation(auction, n);
    const LsapSolution exact = SolveLsapJv(n, DenseProfit(n, &m));
    // Auction with epsilon scaling lands within n * eps_final of
    // optimal; our eps_final = max/(4n) gives a max/4 additive bound,
    // but in practice it is much tighter. Assert a conservative bound.
    EXPECT_GE(auction.profit, exact.profit - 5.0 / 4.0 - 1e-9);
    EXPECT_LE(auction.profit, exact.profit + 1e-9);
  }
}

TEST(LsapAuctionTest, ExactOnWellSeparatedProfits) {
  // Profits far apart relative to epsilon: auction is exact.
  std::vector<double> m{100, 1, 1, 1, 100, 1, 1, 1, 100};
  const LsapSolution s = SolveLsapAuction(3, m);
  EXPECT_DOUBLE_EQ(s.profit, 300.0);
}

TEST(LsapStructuredTest, MatchesJvOnZeroPaddedInstances) {
  // Random profits confined to a column subset; every other column is
  // zero — exactly the HTA structure. The structured solver must find
  // the same optimal profit as the square exact solver.
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 10 + rng.NextBounded(40);
    const size_t m = 1 + rng.NextBounded(n / 2);
    std::vector<size_t> cols = rng.SampleWithoutReplacement(n, m);
    std::vector<double> matrix(n * n, 0.0);
    for (size_t j : cols) {
      for (size_t i = 0; i < n; ++i) matrix[i * n + j] = rng.NextDouble();
    }
    const DenseProfit profit(n, &matrix);
    const LsapSolution jv = SolveLsapJv(n, profit);
    const LsapSolution structured = SolveLsapStructured(n, profit, cols);
    ExpectPermutation(structured, n);
    EXPECT_NEAR(structured.profit, jv.profit, 1e-9)
        << "n=" << n << " m=" << m;
    EXPECT_NEAR(structured.profit, RecomputeProfit(structured, n, matrix),
                1e-9);
  }
}

TEST(LsapStructuredTest, EmptyColumnSetGivesIdentity) {
  std::vector<double> matrix(9, 0.0);
  const DenseProfit profit(3, &matrix);
  const LsapSolution s = SolveLsapStructured(3, profit, {});
  EXPECT_EQ(s.row_to_col, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(s.profit, 0.0);
}

TEST(LsapStructuredTest, SingleProfitableColumnPicksBestRow) {
  std::vector<double> matrix(16, 0.0);
  matrix[0 * 4 + 2] = 0.3;
  matrix[1 * 4 + 2] = 0.9;  // Row 1 is the best match for column 2.
  matrix[3 * 4 + 2] = 0.5;
  const DenseProfit profit(4, &matrix);
  const LsapSolution s = SolveLsapStructured(4, profit, {2});
  ExpectPermutation(s, 4);
  EXPECT_EQ(s.row_to_col[1], 2);
  EXPECT_DOUBLE_EQ(s.profit, 0.9);
}

TEST(LsapStructuredTest, AllColumnsProfitableEqualsFullSolve) {
  Rng rng(13);
  const size_t n = 25;
  const auto matrix = RandomProfitMatrix(n, &rng);
  std::vector<size_t> all_cols(n);
  std::iota(all_cols.begin(), all_cols.end(), 0);
  const DenseProfit profit(n, &matrix);
  const LsapSolution full = SolveLsapJv(n, profit);
  const LsapSolution structured = SolveLsapStructured(n, profit, all_cols);
  EXPECT_NEAR(structured.profit, full.profit, 1e-9);
}

TEST(LsapStructuredTest, MoreColumnsThanNeededStillExact) {
  // m close to n with heavy ties; column 5 is all-zero per the
  // structured solver's contract.
  std::vector<double> matrix(36, 0.5);
  for (size_t i = 0; i < 6; ++i) {
    matrix[i * 6 + i] = 0.0;
    matrix[i * 6 + 5] = 0.0;
  }
  const DenseProfit profit(6, &matrix);
  const LsapSolution s = SolveLsapStructured(6, profit, {0, 1, 2, 3, 4});
  ExpectPermutation(s, 6);
  // Optimal avoids all diagonal zeros on the 5 profitable columns.
  EXPECT_NEAR(s.profit, 2.5, 1e-9);
}

TEST(LsapSolutionTest, FinishSolutionDetectsNonPermutation) {
  EXPECT_DEATH(
      { lsap_internal::FinishSolution({0, 0}, 2, 0.0); },
      "not a permutation");
}

}  // namespace
}  // namespace hta
