#include "matching/max_weight_matching.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

std::vector<WeightedEdge> RandomEdges(size_t vertices, double density,
                                      Rng* rng) {
  std::vector<WeightedEdge> edges;
  for (VertexId u = 0; u < vertices; ++u) {
    for (VertexId v = u + 1; v < vertices; ++v) {
      if (rng->NextBool(density)) {
        edges.push_back(
            WeightedEdge{u, v, static_cast<float>(rng->NextDouble())});
      }
    }
  }
  return edges;
}

void ExpectValidMatching(const GraphMatching& m, size_t vertices) {
  ASSERT_EQ(m.mate.size(), vertices);
  for (VertexId v = 0; v < vertices; ++v) {
    if (m.mate[v] != GraphMatching::kUnmatched) {
      const VertexId partner = static_cast<VertexId>(m.mate[v]);
      ASSERT_LT(partner, vertices);
      EXPECT_EQ(m.mate[partner], static_cast<int32_t>(v))
          << "mate pointers must be mutual";
      EXPECT_NE(partner, v);
    }
  }
  // Edge list consistent with mate array and disjoint.
  std::vector<bool> used(vertices, false);
  for (const auto& [u, v] : m.edges) {
    EXPECT_FALSE(used[u]);
    EXPECT_FALSE(used[v]);
    used[u] = used[v] = true;
    EXPECT_EQ(m.mate[u], static_cast<int32_t>(v));
  }
}

TEST(GreedyMatchingTest, EmptyGraph) {
  const GraphMatching m = GreedyMaxWeightMatching(0, {});
  EXPECT_TRUE(m.edges.empty());
  EXPECT_EQ(m.total_weight, 0.0);
}

TEST(GreedyMatchingTest, SingleEdge) {
  const GraphMatching m =
      GreedyMaxWeightMatching(2, {WeightedEdge{0, 1, 0.5f}});
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(m.total_weight, 0.5);
  EXPECT_TRUE(m.IsMatched(0));
  EXPECT_TRUE(m.IsMatched(1));
}

TEST(GreedyMatchingTest, PicksHeaviestFirst) {
  // Triangle: greedy takes the heaviest edge, blocking the other two.
  const GraphMatching m = GreedyMaxWeightMatching(
      3, {WeightedEdge{0, 1, 1.0f}, WeightedEdge{1, 2, 0.9f},
          WeightedEdge{0, 2, 0.8f}});
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_EQ(m.edges[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_FALSE(m.IsMatched(2));
}

TEST(GreedyMatchingTest, PathGraphGreedyCanBeSuboptimal) {
  // Path a-b-c-d with weights 1, 1.5, 1: greedy takes the middle edge
  // (1.5) while optimal takes the two outer edges (2.0). This is the
  // canonical 1/2-approximation witness — assert the known behavior.
  const GraphMatching greedy = GreedyMaxWeightMatching(
      4, {WeightedEdge{0, 1, 1.0f}, WeightedEdge{1, 2, 1.5f},
          WeightedEdge{2, 3, 1.0f}});
  EXPECT_DOUBLE_EQ(greedy.total_weight, 1.5);
  const GraphMatching exact = ExactMaxWeightMatchingBruteForce(
      4, {WeightedEdge{0, 1, 1.0f}, WeightedEdge{1, 2, 1.5f},
          WeightedEdge{2, 3, 1.0f}});
  EXPECT_DOUBLE_EQ(exact.total_weight, 2.0);
  EXPECT_GE(greedy.total_weight, 0.5 * exact.total_weight);
}

TEST(GreedyMatchingTest, DeterministicTieBreaking) {
  std::vector<WeightedEdge> edges = {WeightedEdge{2, 3, 0.5f},
                                     WeightedEdge{0, 1, 0.5f}};
  const GraphMatching a = GreedyMaxWeightMatching(4, edges);
  std::swap(edges[0], edges[1]);
  const GraphMatching b = GreedyMaxWeightMatching(4, edges);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(GreedyMatchingTest, IgnoresSelfLoops) {
  const GraphMatching m = GreedyMaxWeightMatching(
      2, {WeightedEdge{0, 0, 5.0f}, WeightedEdge{0, 1, 0.1f}});
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(m.total_weight, 0.1f);
}

TEST(GreedyMatchingTest, ValidOnRandomGraphs) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.NextBounded(30);
    const auto edges = RandomEdges(n, 0.5, &rng);
    const GraphMatching m = GreedyMaxWeightMatching(n, edges);
    ExpectValidMatching(m, n);
  }
}

TEST(GreedyMatchingTest, HalfApproximationOnSmallRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.NextBounded(9);  // <= 10 vertices.
    const auto edges = RandomEdges(n, 0.7, &rng);
    const GraphMatching greedy = GreedyMaxWeightMatching(n, edges);
    const GraphMatching exact = ExactMaxWeightMatchingBruteForce(n, edges);
    EXPECT_GE(greedy.total_weight + 1e-9, 0.5 * exact.total_weight);
    EXPECT_LE(greedy.total_weight, exact.total_weight + 1e-9);
  }
}

TEST(PathGrowingTest, ValidOnRandomGraphs) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.NextBounded(30);
    const auto edges = RandomEdges(n, 0.5, &rng);
    const GraphMatching m = PathGrowingMatching(n, edges);
    ExpectValidMatching(m, n);
  }
}

TEST(PathGrowingTest, HalfApproximationOnSmallRandomGraphs) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.NextBounded(9);
    const auto edges = RandomEdges(n, 0.7, &rng);
    const GraphMatching pg = PathGrowingMatching(n, edges);
    const GraphMatching exact = ExactMaxWeightMatchingBruteForce(n, edges);
    EXPECT_GE(pg.total_weight + 1e-9, 0.5 * exact.total_weight);
    EXPECT_LE(pg.total_weight, exact.total_weight + 1e-9);
  }
}

TEST(TaskGraphMatchingTest, CompleteGraphCoversAllButOneOnOddN) {
  std::vector<Task> tasks;
  Rng rng(3);
  for (size_t i = 0; i < 7; ++i) {
    KeywordVector v(64);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    tasks.emplace_back(i, std::move(v));
  }
  const TaskDistanceOracle oracle(&tasks, DistanceKind::kJaccard);
  const GraphMatching m = GreedyMatchingOnTaskGraph(oracle);
  // With distinct random tasks nearly all pairwise distances are
  // positive, so a near-perfect matching (3 pairs of 7 vertices) exists.
  EXPECT_EQ(m.edges.size(), 3u);
  ExpectValidMatching(m, 7);
}

TEST(ExactMatchingDeathTest, RefusesLargeGraphs) {
  EXPECT_DEATH({ ExactMaxWeightMatchingBruteForce(13, {}); },
               "brute-force matching");
}

}  // namespace
}  // namespace hta
