#include "teams/team_formation.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

constexpr size_t kUniverse = 32;

Worker W(uint64_t id, std::initializer_list<KeywordId> ids) {
  return Worker(id, KeywordVector(kUniverse, ids));
}

CollaborativeTask T(std::initializer_list<KeywordId> ids, size_t team_size) {
  return CollaborativeTask{Task(0, KeywordVector(kUniverse, ids)), team_size};
}

TEST(TeamCoverageTest, FullPartialAndEmpty) {
  const std::vector<Worker> workers = {W(0, {1, 2}), W(1, {3}), W(2, {9})};
  const Task task(0, KeywordVector(kUniverse, {1, 2, 3}));
  EXPECT_DOUBLE_EQ(TeamCoverage(task, {0, 1}, workers), 1.0);
  EXPECT_NEAR(TeamCoverage(task, {0}, workers), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(TeamCoverage(task, {2}, workers), 0.0);
  EXPECT_DOUBLE_EQ(TeamCoverage(task, {}, workers), 0.0);
}

TEST(TeamCoverageTest, KeywordlessTaskFullyCovered) {
  const std::vector<Worker> workers = {W(0, {1})};
  const Task task(0, KeywordVector(kUniverse));
  EXPECT_DOUBLE_EQ(TeamCoverage(task, {0}, workers), 1.0);
}

TEST(TeamScoreTest, EmptyTeamScoresZero) {
  const std::vector<Worker> workers = {W(0, {1})};
  const Task task(0, KeywordVector(kUniverse, {1}));
  EXPECT_DOUBLE_EQ(
      TeamScore(task, {}, workers, TeamScoreWeights{}, DistanceKind::kJaccard),
      0.0);
}

TEST(TeamScoreTest, ComplementarityRewardsDiverseMembers) {
  const std::vector<Worker> workers = {W(0, {1, 2}), W(1, {1, 2}),
                                       W(2, {5, 6})};
  const Task task(0, KeywordVector(kUniverse, {1, 2, 5, 6}));
  TeamScoreWeights weights;
  weights.coverage = 0.0;
  weights.relevance = 0.0;
  weights.complementarity = 1.0;
  const double twins = TeamScore(task, {0, 1}, workers, weights,
                                 DistanceKind::kJaccard);
  const double diverse = TeamScore(task, {0, 2}, workers, weights,
                                   DistanceKind::kJaccard);
  EXPECT_GT(diverse, twins);
}

TEST(FormTeamsGreedyTest, PicksCoveringPair) {
  // Task needs {1,2,3,4}; workers 0 and 2 jointly cover it, worker 1
  // overlaps worker 0 and covers less.
  const std::vector<Worker> workers = {W(0, {1, 2}), W(1, {1, 2}),
                                       W(2, {3, 4})};
  TeamScoreWeights weights;
  weights.complementarity = 0.0;
  weights.relevance = 0.0;
  auto teams = FormTeamsGreedy({T({1, 2, 3, 4}, 2)}, workers, weights);
  ASSERT_TRUE(teams.ok());
  ASSERT_EQ(teams->teams.size(), 1u);
  std::vector<WorkerIndex> team = teams->teams[0];
  std::sort(team.begin(), team.end());
  EXPECT_EQ(team, (std::vector<WorkerIndex>{0, 2}));
}

TEST(FormTeamsGreedyTest, DisjointByDefault) {
  const std::vector<Worker> workers = {W(0, {1}), W(1, {2}), W(2, {3}),
                                       W(3, {4})};
  auto teams = FormTeamsGreedy({T({1, 2}, 2), T({1, 2}, 2)}, workers,
                               TeamScoreWeights{});
  ASSERT_TRUE(teams.ok());
  std::set<WorkerIndex> seen;
  for (const auto& team : teams->teams) {
    for (WorkerIndex m : team) {
      EXPECT_TRUE(seen.insert(m).second) << "worker in two teams";
    }
  }
  EXPECT_EQ(teams->TotalMembers(), 4u);
}

TEST(FormTeamsGreedyTest, OverlapAllowsReuse) {
  const std::vector<Worker> workers = {W(0, {1, 2}), W(1, {9})};
  auto teams = FormTeamsGreedy({T({1, 2}, 1), T({1, 2}, 1)}, workers,
                               TeamScoreWeights{}, DistanceKind::kJaccard,
                               /*allow_overlap=*/true);
  ASSERT_TRUE(teams.ok());
  EXPECT_EQ(teams->teams[0], teams->teams[1]);
  EXPECT_EQ(teams->teams[0], (std::vector<WorkerIndex>{0}));
}

TEST(FormTeamsGreedyTest, RunsOutOfWorkersGracefully) {
  const std::vector<Worker> workers = {W(0, {1}), W(1, {2})};
  auto teams = FormTeamsGreedy({T({1, 2}, 2), T({1, 2}, 2)}, workers,
                               TeamScoreWeights{});
  ASSERT_TRUE(teams.ok());
  EXPECT_EQ(teams->teams[0].size(), 2u);
  EXPECT_TRUE(teams->teams[1].empty());
}

TEST(FormTeamsGreedyTest, RejectsDegenerateInputs) {
  const std::vector<Worker> workers = {W(0, {1})};
  EXPECT_FALSE(FormTeamsGreedy({}, workers, TeamScoreWeights{}).ok());
  EXPECT_FALSE(FormTeamsGreedy({T({1}, 1)}, {}, TeamScoreWeights{}).ok());
  EXPECT_FALSE(FormTeamsGreedy({T({1}, 0)}, workers, TeamScoreWeights{}).ok());
}

TEST(FormTeamsBruteForceTest, RefusesLargeInstances) {
  std::vector<Worker> workers;
  for (uint64_t i = 0; i < 13; ++i) workers.push_back(W(i, {1}));
  EXPECT_FALSE(
      FormTeamsBruteForce({T({1}, 1)}, workers, TeamScoreWeights{}).ok());
  const std::vector<Worker> few = {W(0, {1}), W(1, {1}), W(2, {1}),
                                   W(3, {1}), W(4, {1})};
  EXPECT_FALSE(
      FormTeamsBruteForce({T({1}, 6)}, few, TeamScoreWeights{}).ok());
}

TEST(FormTeamsBruteForceTest, GreedyWithinSubmodularBoundOnPureCoverage) {
  // With pure coverage (monotone submodular) greedy guarantees
  // (1 - 1/e) of the per-task optimum.
  Rng rng(5);
  TeamScoreWeights weights;
  weights.complementarity = 0.0;
  weights.relevance = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Worker> workers;
    for (uint64_t q = 0; q < 8; ++q) {
      KeywordVector v(kUniverse);
      for (int b = 0; b < 3; ++b) {
        v.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
      }
      workers.emplace_back(q, std::move(v));
    }
    KeywordVector need(kUniverse);
    for (int b = 0; b < 8; ++b) {
      need.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
    }
    const CollaborativeTask ct{Task(0, need), 3};

    auto greedy = FormTeamsGreedy({ct}, workers, weights);
    auto exact = FormTeamsBruteForce({ct}, workers, weights);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    const double g = TeamCoverage(ct.task, greedy->teams[0], workers);
    const double e = TeamCoverage(ct.task, exact->teams[0], workers);
    EXPECT_LE(g, e + 1e-9);
    EXPECT_GE(g + 1e-9, (1.0 - 1.0 / 2.718281828) * e)
        << "greedy below the (1-1/e) submodular bound";
  }
}

TEST(FormTeamsBruteForceTest, GreedyCloseToExactOnMixedWeights) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Worker> workers;
    for (uint64_t q = 0; q < 7; ++q) {
      KeywordVector v(kUniverse);
      for (int b = 0; b < 4; ++b) {
        v.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
      }
      workers.emplace_back(q, std::move(v));
    }
    KeywordVector need(kUniverse);
    for (int b = 0; b < 6; ++b) {
      need.Set(static_cast<KeywordId>(rng.NextBounded(kUniverse)));
    }
    const CollaborativeTask ct{Task(0, need), 3};
    const TeamScoreWeights weights;  // Mixed defaults.
    auto greedy = FormTeamsGreedy({ct}, workers, weights);
    auto exact = FormTeamsBruteForce({ct}, workers, weights);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exact.ok());
    const double g = TeamScore(ct.task, greedy->teams[0], workers, weights,
                               DistanceKind::kJaccard);
    const double e = TeamScore(ct.task, exact->teams[0], workers, weights,
                               DistanceKind::kJaccard);
    EXPECT_LE(g, e + 1e-9);
    EXPECT_GE(g, 0.5 * e - 1e-9);
  }
}

}  // namespace
}  // namespace hta
