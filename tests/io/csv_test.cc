#include "io/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace hta {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto fields = ParseCsvLine("a,,c,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(ParseCsvLineTest, SingleField) {
  auto fields = ParseCsvLine("lonely");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"lonely"}));
}

TEST(ParseCsvLineTest, EmptyLineIsOneEmptyField) {
  auto fields = ParseCsvLine("");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 1u);
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLineTest, DoubledQuotes) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(ParseCsvLineTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(ParseCsvLineTest, RejectsTrailingAfterQuote) {
  EXPECT_FALSE(ParseCsvLine("\"a\"b,c").ok());
}

TEST(ParseCsvLineTest, RejectsQuoteMidField) {
  EXPECT_FALSE(ParseCsvLine("ab\"c\",d").ok());
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  const std::vector<std::string> fields{"plain", "with,comma",
                                        "with \"quotes\"", ""};
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/hta_csv_test.csv";
};

TEST_F(CsvFileTest, WriteAndReadBack) {
  CsvFile file;
  file.header = {"x", "y"};
  file.rows = {{"1", "a,b"}, {"2", "plain"}};
  ASSERT_TRUE(WriteCsvFile(path_, file).ok());
  auto loaded = ReadCsvFile(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, file.header);
  EXPECT_EQ(loaded->rows, file.rows);
}

TEST_F(CsvFileTest, MissingFileIsNotFound) {
  auto r = ReadCsvFile(path_ + ".nope");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvFileTest, ArityMismatchRejected) {
  std::ofstream out(path_);
  out << "a,b\n1,2\n1,2,3\n";
  out.close();
  auto r = ReadCsvFile(path_);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvFileTest, SkipsBlankLinesAndCrlf) {
  std::ofstream out(path_);
  out << "a,b\r\n\r\n1,2\r\n\n3,4\n";
  out.close();
  auto r = ReadCsvFile(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvFileTest, HeaderOnlyFileIsValid) {
  std::ofstream out(path_);
  out << "a,b\n";
  out.close();
  auto r = ReadCsvFile(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(CsvFileTest, EmptyFileRejected) {
  std::ofstream out(path_);
  out.close();
  EXPECT_FALSE(ReadCsvFile(path_).ok());
}

}  // namespace
}  // namespace hta
