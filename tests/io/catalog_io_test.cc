#include "io/catalog_io.h"

#include "io/csv.h"

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "sim/worker_gen.h"

namespace hta {
namespace {

class CatalogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CatalogOptions options;
    options.num_groups = 8;
    options.tasks_per_group = 6;
    options.vocabulary_size = 80;
    auto c = GenerateCatalog(options);
    HTA_CHECK(c.ok());
    catalog_ = std::move(*c);
  }
  void TearDown() override {
    std::remove(catalog_path_.c_str());
    std::remove(workers_path_.c_str());
    std::remove(assignment_path_.c_str());
  }

  Catalog catalog_;
  std::string catalog_path_ = ::testing::TempDir() + "/hta_catalog.csv";
  std::string workers_path_ = ::testing::TempDir() + "/hta_workers.csv";
  std::string assignment_path_ = ::testing::TempDir() + "/hta_assign.csv";
};

TEST_F(CatalogIoTest, CatalogRoundTrip) {
  ASSERT_TRUE(SaveCatalogCsv(catalog_, catalog_path_).ok());
  auto loaded = LoadCatalogCsv(catalog_path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), catalog_.size());
  for (size_t i = 0; i < catalog_.size(); ++i) {
    const Task& original = catalog_.tasks[i];
    const Task& restored = loaded->tasks[i];
    EXPECT_EQ(restored.id(), original.id());
    EXPECT_EQ(restored.title(), original.title());
    EXPECT_EQ(restored.group(), original.group());
    EXPECT_NEAR(restored.reward_usd(), original.reward_usd(), 1e-4);
    EXPECT_EQ(loaded->questions_per_task[i], catalog_.questions_per_task[i]);
    // Keyword sets match by name (ids may be renumbered).
    std::set<std::string> original_names;
    for (KeywordId id : original.keywords().ToIds()) {
      original_names.insert(catalog_.space.Name(id));
    }
    std::set<std::string> restored_names;
    for (KeywordId id : restored.keywords().ToIds()) {
      restored_names.insert(loaded->space.Name(id));
    }
    EXPECT_EQ(restored_names, original_names);
  }
}

TEST_F(CatalogIoTest, WorkersRoundTrip) {
  WorkerGenOptions options;
  options.count = 10;
  auto workers = GenerateWorkers(options, catalog_);
  ASSERT_TRUE(workers.ok());
  ASSERT_TRUE(SaveWorkersCsv(*workers, catalog_.space, workers_path_).ok());
  auto loaded = LoadWorkersCsv(workers_path_, catalog_.space);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), workers->size());
  for (size_t q = 0; q < workers->size(); ++q) {
    EXPECT_EQ((*loaded)[q].id(), (*workers)[q].id());
    EXPECT_NEAR((*loaded)[q].weights().alpha, (*workers)[q].weights().alpha,
                1e-6);
    EXPECT_TRUE((*loaded)[q].interests() == (*workers)[q].interests());
  }
}

TEST_F(CatalogIoTest, LoadedCatalogIsSolvable) {
  ASSERT_TRUE(SaveCatalogCsv(catalog_, catalog_path_).ok());
  auto loaded = LoadCatalogCsv(catalog_path_);
  ASSERT_TRUE(loaded.ok());
  WorkerGenOptions options;
  options.count = 4;
  auto workers = GenerateWorkers(options, *loaded);
  ASSERT_TRUE(workers.ok());
  auto problem = HtaProblem::Create(&loaded->tasks, &*workers, 5);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaGre(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
}

TEST_F(CatalogIoTest, AssignmentExportListsAllPairs) {
  WorkerGenOptions options;
  options.count = 3;
  auto workers = GenerateWorkers(options, catalog_);
  ASSERT_TRUE(workers.ok());
  auto problem = HtaProblem::Create(&catalog_.tasks, &*workers, 4);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaGre(*problem);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(SaveAssignmentCsv(result->assignment, *workers, catalog_.tasks,
                                assignment_path_)
                  .ok());
  auto exported = ReadCsvFile(assignment_path_);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->rows.size(), result->assignment.AssignedTaskCount());
  EXPECT_EQ(exported->header,
            (std::vector<std::string>{"worker_id", "task_id"}));
}

TEST_F(CatalogIoTest, DeploymentUnionsKeywordSpaces) {
  // A worker interested in a keyword no task carries must survive the
  // round trip via LoadDeployment (but not via the strict loaders).
  ASSERT_TRUE(SaveCatalogCsv(catalog_, catalog_path_).ok());
  CsvFile workers;
  workers.header = {"id", "alpha", "beta", "interests"};
  workers.rows = {{"7", "0.4", "0.6", "kw0;totally-new-keyword"}};
  ASSERT_TRUE(WriteCsvFile(workers_path_, workers).ok());

  auto strict_catalog = LoadCatalogCsv(catalog_path_);
  ASSERT_TRUE(strict_catalog.ok());
  EXPECT_FALSE(LoadWorkersCsv(workers_path_, strict_catalog->space).ok());

  auto deployment = LoadDeployment(catalog_path_, workers_path_);
  ASSERT_TRUE(deployment.ok());
  ASSERT_EQ(deployment->workers.size(), 1u);
  EXPECT_TRUE(deployment->catalog.space.Contains("totally-new-keyword"));
  EXPECT_EQ(deployment->workers[0].interests().Count(), 2u);
  // Task and worker vectors share one universe, so the problem builds.
  auto problem = HtaProblem::Create(&deployment->catalog.tasks,
                                    &deployment->workers, 3);
  EXPECT_TRUE(problem.ok());
}

TEST_F(CatalogIoTest, DeploymentWithNoNewKeywordsMatchesStrictLoad) {
  WorkerGenOptions options;
  options.count = 5;
  auto workers = GenerateWorkers(options, catalog_);
  ASSERT_TRUE(workers.ok());
  ASSERT_TRUE(SaveCatalogCsv(catalog_, catalog_path_).ok());
  ASSERT_TRUE(SaveWorkersCsv(*workers, catalog_.space, workers_path_).ok());
  auto deployment = LoadDeployment(catalog_path_, workers_path_);
  ASSERT_TRUE(deployment.ok());
  EXPECT_EQ(deployment->catalog.size(), catalog_.size());
  EXPECT_EQ(deployment->workers.size(), 5u);
}

TEST_F(CatalogIoTest, LoadRejectsWrongHeader) {
  CsvFile file;
  file.header = {"nope"};
  ASSERT_TRUE(WriteCsvFile(catalog_path_, file).ok());
  EXPECT_FALSE(LoadCatalogCsv(catalog_path_).ok());
  EXPECT_FALSE(LoadWorkersCsv(catalog_path_, catalog_.space).ok());
}

TEST_F(CatalogIoTest, LoadRejectsMalformedNumbers) {
  CsvFile file;
  file.header = {"id", "title", "group", "reward_usd", "questions",
                 "keywords"};
  file.rows = {{"x", "t", "0", "0.05", "1", "kw1"}};
  ASSERT_TRUE(WriteCsvFile(catalog_path_, file).ok());
  EXPECT_FALSE(LoadCatalogCsv(catalog_path_).ok());
}

TEST_F(CatalogIoTest, WorkersRejectUnknownKeywords) {
  CsvFile file;
  file.header = {"id", "alpha", "beta", "interests"};
  file.rows = {{"1", "0.5", "0.5", "not-a-keyword"}};
  ASSERT_TRUE(WriteCsvFile(workers_path_, file).ok());
  auto r = LoadWorkersCsv(workers_path_, catalog_.space);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogIoTest, EventLogRoundTrip) {
  EventLog log;
  log.RecordRegistered(0.0, 1);
  log.RecordDisplayed(0.0, 1, {10, 11, 12});
  log.RecordCompleted(1.25, 1, 11);
  log.RecordDisplayed(2.5, 2, {13});
  log.RecordCompleted(3.75, 2, 13);
  log.RecordDeregistered(4.0, 1);
  const std::string path = ::testing::TempDir() + "/hta_events.csv";
  ASSERT_TRUE(SaveEventLogCsv(log, path).ok());
  auto loaded = LoadEventLogCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 6u);
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ(loaded->events()[i].kind, log.events()[i].kind);
    EXPECT_EQ(loaded->events()[i].worker_id, log.events()[i].worker_id);
    EXPECT_EQ(loaded->events()[i].task_ids, log.events()[i].task_ids);
    EXPECT_NEAR(loaded->events()[i].minute, log.events()[i].minute, 1e-6);
  }
}

TEST_F(CatalogIoTest, EventLogRejectsBadKinds) {
  const std::string path = ::testing::TempDir() + "/hta_events_bad.csv";
  CsvFile file;
  file.header = {"minute", "worker_id", "kind", "task_ids"};
  file.rows = {{"0.0", "1", "exploded", "10"}};
  ASSERT_TRUE(WriteCsvFile(path, file).ok());
  EXPECT_FALSE(LoadEventLogCsv(path).ok());
  file.rows = {{"0.0", "1", "completed", "10;11"}};
  ASSERT_TRUE(WriteCsvFile(path, file).ok());
  EXPECT_FALSE(LoadEventLogCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hta
