// Tests for the per-instance optimality certificate (Theorem 4 /
// Eq. 18): solver stats carry an upper bound on the true optimum and a
// certified achieved-fraction.
#include <gtest/gtest.h>

#include "assign/brute_force.h"
#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(32);
    const size_t bits = 2 + rng.NextBounded(4);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(32)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(32);
    for (int b = 0; b < 3; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(32)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(CertificateTest, UpperBoundDominatesBruteForceOptimum) {
  // On instances small enough to certify with brute force, the reported
  // upper bound must be >= the true optimum for both solvers.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Fixture f = RandomFixture(8, 2, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
    ASSERT_TRUE(problem.ok());
    auto best = SolveHtaBruteForce(*problem);
    ASSERT_TRUE(best.ok());
    auto app = SolveHtaApp(*problem, 1);
    auto gre = SolveHtaGre(*problem, 1);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(gre.ok());
    EXPECT_GE(app->stats.optimum_upper_bound + 1e-9, best->motivation)
        << "exact-LSAP bound violated at seed " << seed;
    EXPECT_GE(gre->stats.optimum_upper_bound + 1e-9, best->motivation)
        << "greedy-LSAP bound violated at seed " << seed;
  }
}

TEST(CertificateTest, CertifiedRatioIsConservative) {
  // certified_ratio lower-bounds achieved/OPT: achieved/UB <=
  // achieved/OPT because UB >= OPT.
  for (uint64_t seed = 10; seed <= 14; ++seed) {
    const Fixture f = RandomFixture(8, 2, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
    ASSERT_TRUE(problem.ok());
    auto best = SolveHtaBruteForce(*problem);
    ASSERT_TRUE(best.ok());
    auto app = SolveHtaApp(*problem, 2);
    ASSERT_TRUE(app.ok());
    if (best->motivation > 0.0) {
      const double true_ratio = app->stats.qap_objective / best->motivation;
      EXPECT_LE(app->stats.certified_ratio, true_ratio + 1e-9);
    }
    EXPECT_GE(app->stats.certified_ratio, 0.0);
    EXPECT_LE(app->stats.certified_ratio, 1.0 + 1e-9);
  }
}

TEST(CertificateTest, BestOfTwoCertifiesAboveTheoreticalFactor) {
  // The derandomized swap achieves at least the expected value of the
  // random swap, so its certificate should clear the worst-case bound
  // comfortably on benign instances.
  const Fixture f = RandomFixture(40, 4, 3);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  HtaSolverOptions options;
  options.lsap = LsapMethod::kExactJv;
  options.swap = SwapMode::kBestOfTwo;
  auto result = SolveHta(*problem, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.certified_ratio, 0.25 - 1e-9)
      << "best-of-two exact solve below the 1/4 worst case";
}

TEST(CertificateTest, GreedyBoundIsTwiceExactBound) {
  const Fixture f = RandomFixture(30, 3, 4);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto app = SolveHtaApp(*problem, 1);
  auto gre = SolveHtaGre(*problem, 1);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(gre.ok());
  // Greedy LSAP profit <= exact LSAP profit, and greedy's bound factor
  // is 4 vs 2, so greedy's bound is at most twice exact's bound — and
  // both must dominate either algorithm's achieved objective.
  EXPECT_LE(gre->stats.optimum_upper_bound,
            2.0 * app->stats.optimum_upper_bound + 1e-9);
  EXPECT_GE(app->stats.optimum_upper_bound + 1e-9,
            app->stats.qap_objective);
  EXPECT_GE(gre->stats.optimum_upper_bound + 1e-9,
            gre->stats.qap_objective);
}

TEST(CertificateTest, StructuredExactMatchesJvBound) {
  const Fixture f = RandomFixture(30, 3, 5);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  HtaSolverOptions options;
  options.lsap = LsapMethod::kExactStructured;
  options.swap = SwapMode::kNone;
  auto rect = SolveHta(*problem, options);
  options.lsap = LsapMethod::kExactJv;
  auto jv = SolveHta(*problem, options);
  ASSERT_TRUE(rect.ok());
  ASSERT_TRUE(jv.ok());
  EXPECT_NEAR(rect->stats.optimum_upper_bound,
              jv->stats.optimum_upper_bound, 1e-6)
      << "both exact solvers must certify the same bound";
}

}  // namespace
}  // namespace hta
