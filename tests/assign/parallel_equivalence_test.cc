// Serial/parallel equivalence net for the parallel compute layer: on
// randomized instances, every parallelized hot path — the precomputed
// distance cache, the diversity edge list, the dense QAP
// materialization, the QAP objective, and the full solver pipeline —
// must produce bit-identical results whether it runs serially
// (max_threads / options.threads = 1) or across the pool. This is the
// determinism guarantee that makes HTA_THREADS a pure performance knob.
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "qap/qap_view.h"
#include "util/rng.h"

namespace hta {
namespace {

// Force a multi-threaded global pool before first use so the parallel
// side of each comparison really runs on worker threads, even on
// single-core CI machines (see parallel_test.cc).
const bool kForcePoolSize = [] {
  setenv("HTA_THREADS", "4", /*overwrite=*/0);
  return true;
}();

struct Instance {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Instance MakeInstance(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    inst.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 5; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    inst.workers.emplace_back(q, std::move(v),
                              MotivationWeights{alpha, 1.0 - alpha});
  }
  return inst;
}

TEST(ParallelEquivalenceTest, PrecomputedOracleMatchesSerialBuild) {
  ASSERT_TRUE(kForcePoolSize);
  for (const uint64_t seed : {11u, 12u, 13u}) {
    const Instance inst = MakeInstance(97, 4, seed);
    auto parallel = TaskDistanceOracle::Precomputed(
        &inst.tasks, DistanceKind::kJaccard);
    auto serial = TaskDistanceOracle::Precomputed(
        &inst.tasks, DistanceKind::kJaccard, size_t{4} << 30,
        /*max_threads=*/1);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(serial.ok());
    const TaskDistanceOracle reference(&inst.tasks, DistanceKind::kJaccard);
    for (size_t i = 0; i < inst.tasks.size(); ++i) {
      for (size_t j = 0; j < inst.tasks.size(); ++j) {
        const auto ti = static_cast<TaskIndex>(i);
        const auto tj = static_cast<TaskIndex>(j);
        ASSERT_EQ((*parallel)(ti, tj), (*serial)(ti, tj));
        // The cache stores floats; both builds must round identically
        // from the on-the-fly double distance.
        ASSERT_EQ(static_cast<float>((*parallel)(ti, tj)),
                  static_cast<float>(reference(ti, tj)));
      }
    }
  }
}

TEST(ParallelEquivalenceTest, DiversityEdgesMatchSerialScan) {
  for (const uint64_t seed : {21u, 22u}) {
    const Instance inst = MakeInstance(83, 3, seed);
    const TaskDistanceOracle oracle(&inst.tasks, DistanceKind::kJaccard);
    const std::vector<WeightedEdge> parallel = BuildDiversityEdges(oracle);
    const std::vector<WeightedEdge> serial =
        BuildDiversityEdges(oracle, /*max_threads=*/1);

    // Reference: the plain row-major serial scan.
    std::vector<WeightedEdge> reference;
    for (size_t i = 0; i < inst.tasks.size(); ++i) {
      for (size_t j = i + 1; j < inst.tasks.size(); ++j) {
        const float w = static_cast<float>(
            oracle(static_cast<TaskIndex>(i), static_cast<TaskIndex>(j)));
        if (w > 0.0f) {
          reference.push_back(WeightedEdge{static_cast<VertexId>(i),
                                           static_cast<VertexId>(j), w});
        }
      }
    }

    ASSERT_EQ(parallel.size(), reference.size());
    ASSERT_EQ(serial.size(), reference.size());
    for (size_t e = 0; e < reference.size(); ++e) {
      ASSERT_EQ(parallel[e].u, reference[e].u) << "edge " << e;
      ASSERT_EQ(parallel[e].v, reference[e].v) << "edge " << e;
      ASSERT_EQ(parallel[e].weight, reference[e].weight) << "edge " << e;
      ASSERT_EQ(serial[e].u, reference[e].u) << "edge " << e;
      ASSERT_EQ(serial[e].v, reference[e].v) << "edge " << e;
      ASSERT_EQ(serial[e].weight, reference[e].weight) << "edge " << e;
    }
  }
}

TEST(ParallelEquivalenceTest, DenseMaterializationMatchesSerial) {
  const Instance inst = MakeInstance(40, 3, 31);
  auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/4);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  const DenseQapMatrices parallel = DenseQapMatrices::FromView(view);
  const DenseQapMatrices serial =
      DenseQapMatrices::FromView(view, /*max_threads=*/1);
  ASSERT_EQ(parallel.n, serial.n);
  EXPECT_EQ(parallel.a, serial.a);
  EXPECT_EQ(parallel.b, serial.b);
  EXPECT_EQ(parallel.c, serial.c);
}

TEST(ParallelEquivalenceTest, ObjectiveBitIdenticalAcrossThreadCaps) {
  for (const uint64_t seed : {41u, 42u}) {
    const Instance inst = MakeInstance(120, 5, seed);
    auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/6);
    ASSERT_TRUE(problem.ok());
    const QapView view(&*problem);
    // A scrambled but valid permutation.
    std::vector<int32_t> perm(view.n());
    for (size_t k = 0; k < perm.size(); ++k) {
      perm[k] = static_cast<int32_t>(k);
    }
    Rng rng(seed * 7);
    for (size_t k = perm.size(); k > 1; --k) {
      std::swap(perm[k - 1], perm[rng.NextBounded(k)]);
    }
    const double parallel = view.Objective(perm);
    const double serial = view.Objective(perm, /*max_threads=*/1);
    const double capped = view.Objective(perm, /*max_threads=*/3);
    EXPECT_EQ(parallel, serial);
    EXPECT_EQ(parallel, capped);
  }
}

class SolverEquivalence : public ::testing::TestWithParam<LsapMethod> {};

TEST_P(SolverEquivalence, SolveHtaBitIdenticalSerialVsParallel) {
  for (const uint64_t seed : {51u, 52u, 53u}) {
    const Instance inst = MakeInstance(90, 4, seed);
    auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/5);
    ASSERT_TRUE(problem.ok());

    HtaSolverOptions options;
    options.lsap = GetParam();
    options.swap = SwapMode::kBestOfTwo;  // Deterministic swap phase.
    options.seed = seed;

    options.threads = 1;
    auto serial = SolveHta(*problem, options);
    ASSERT_TRUE(serial.ok());
    options.threads = 0;
    auto parallel = SolveHta(*problem, options);
    ASSERT_TRUE(parallel.ok());
    options.threads = 3;
    auto capped = SolveHta(*problem, options);
    ASSERT_TRUE(capped.ok());

    for (const auto& result : {&*parallel, &*capped}) {
      EXPECT_EQ(result->assignment.bundles, serial->assignment.bundles);
      EXPECT_EQ(result->stats.qap_objective, serial->stats.qap_objective);
      EXPECT_EQ(result->stats.motivation, serial->stats.motivation);
      EXPECT_EQ(result->stats.optimum_upper_bound,
                serial->stats.optimum_upper_bound);
      EXPECT_EQ(result->stats.certified_ratio,
                serial->stats.certified_ratio);
      EXPECT_EQ(result->stats.matched_pairs, serial->stats.matched_pairs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLsapMethods, SolverEquivalence,
                         ::testing::Values(LsapMethod::kExactJv,
                                           LsapMethod::kGreedy,
                                           LsapMethod::kExactStructured),
                         [](const ::testing::TestParamInfo<LsapMethod>& info) {
                           switch (info.param) {
                             case LsapMethod::kExactJv:
                               return "jv";
                             case LsapMethod::kGreedy:
                               return "greedy";
                             case LsapMethod::kExactStructured:
                               return "rect";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace hta
