#include "assign/hta_solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(HtaSolverTest, AppProducesFeasibleAssignment) {
  const Fixture f = RandomFixture(40, 4, 1);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaApp(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  EXPECT_GT(result->stats.motivation, 0.0);
}

TEST(HtaSolverTest, GreProducesFeasibleAssignment) {
  const Fixture f = RandomFixture(40, 4, 2);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaGre(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  EXPECT_GT(result->stats.motivation, 0.0);
}

TEST(HtaSolverTest, FullBundlesWhenTasksAbound) {
  // With |T| >= |W| * Xmax, exact LSAP places Xmax tasks per clique
  // whenever worker columns carry any positive profit.
  const Fixture f = RandomFixture(50, 3, 3);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaApp(*problem);
  ASSERT_TRUE(result.ok());
  for (const TaskBundle& b : result->assignment.bundles) {
    EXPECT_EQ(b.size(), 4u);
  }
  EXPECT_EQ(result->assignment.AssignedTaskCount(), 12u);
}

TEST(HtaSolverTest, PaddedInstanceAssignsAllTasks) {
  // Fewer tasks than slots: every real task should land somewhere, and
  // no bundle exceeds Xmax (C1).
  const Fixture f = RandomFixture(5, 2, 4);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);  // 8 slots.
  ASSERT_TRUE(problem.ok());
  for (const auto seed : {1ull, 2ull, 3ull}) {
    auto result = SolveHtaGre(*problem, seed);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  }
}

TEST(HtaSolverTest, DeterministicForFixedSeed) {
  const Fixture f = RandomFixture(30, 3, 5);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto a = SolveHtaGre(*problem, 99);
  auto b = SolveHtaGre(*problem, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment.bundles, b->assignment.bundles);
  EXPECT_DOUBLE_EQ(a->stats.motivation, b->stats.motivation);
}

TEST(HtaSolverTest, StatsPhasesArePopulated) {
  const Fixture f = RandomFixture(60, 4, 6);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaApp(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.matching_seconds, 0.0);
  EXPECT_GE(result->stats.lsap_seconds, 0.0);
  EXPECT_GE(result->stats.total_seconds,
            result->stats.matching_seconds + result->stats.lsap_seconds);
  EXPECT_GT(result->stats.matched_pairs, 0u);
  EXPECT_GT(result->stats.qap_objective, 0.0);
}

TEST(HtaSolverTest, QapObjectiveUpperBoundsMotivationWithPadding) {
  // Without padding and with full bundles they match (Eq. 8); the
  // padded case uses the (Xmax - 1) normalizer, so QAP >= motivation.
  const Fixture f = RandomFixture(5, 2, 7);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaGre(*problem, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.qap_objective + 1e-9, result->stats.motivation);
}

TEST(HtaSolverTest, BestOfTwoSwapNeverWorseThanNoSwap) {
  const Fixture f = RandomFixture(30, 3, 8);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  HtaSolverOptions none;
  none.swap = SwapMode::kNone;
  HtaSolverOptions best2;
  best2.swap = SwapMode::kBestOfTwo;
  auto r_none = SolveHta(*problem, none);
  auto r_best = SolveHta(*problem, best2);
  ASSERT_TRUE(r_none.ok());
  ASSERT_TRUE(r_best.ok());
  EXPECT_GE(r_best->stats.qap_objective + 1e-9, r_none->stats.qap_objective);
}

TEST(HtaSolverTest, PathGrowingMatchingVariantIsFeasible) {
  const Fixture f = RandomFixture(30, 3, 9);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  HtaSolverOptions options;
  options.matching = MatchingMethod::kPathGrowing;
  auto result = SolveHta(*problem, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
}

TEST(HtaSolverTest, AppAtLeastAsGoodAsGreOnAverage) {
  // Exact LSAP should not lose to greedy LSAP in aggregate.
  double app_total = 0.0;
  double gre_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Fixture f = RandomFixture(40, 4, 100 + trial);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
    ASSERT_TRUE(problem.ok());
    auto app = SolveHtaApp(*problem, 1);
    auto gre = SolveHtaGre(*problem, 1);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(gre.ok());
    app_total += app->stats.motivation;
    gre_total += gre->stats.motivation;
  }
  EXPECT_GE(app_total, gre_total * 0.95);
}

TEST(HtaSolverTest, SingleWorkerSingleTask) {
  Fixture f = RandomFixture(1, 1, 10);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 1);
  ASSERT_TRUE(problem.ok());
  auto result = SolveHtaGre(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
}

TEST(HtaSolverTest, SolverNamesAreDescriptive) {
  HtaSolverOptions o;
  o.lsap = LsapMethod::kExactJv;
  EXPECT_EQ(SolverName(o), "hta-app");
  o.lsap = LsapMethod::kGreedy;
  EXPECT_EQ(SolverName(o), "hta-gre");
  o.swap = SwapMode::kBestOfTwo;
  EXPECT_EQ(SolverName(o), "hta-gre+best2");
  o.swap = SwapMode::kNone;
  o.matching = MatchingMethod::kPathGrowing;
  EXPECT_EQ(SolverName(o), "hta-gre+pg+noswap");
}

TEST(HtaSolverTest, ExtractAssignmentFollowsEquationSeven) {
  const Fixture f = RandomFixture(6, 2, 11);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const QapView view(&*problem);
  // Identity permutation: tasks 0-2 to worker 0's clique, 3-5 to
  // worker 1's clique.
  std::vector<int32_t> perm{0, 1, 2, 3, 4, 5};
  const Assignment a = ExtractAssignment(view, perm);
  ASSERT_EQ(a.bundles.size(), 2u);
  EXPECT_EQ(a.bundles[0], (TaskBundle{0, 1, 2}));
  EXPECT_EQ(a.bundles[1], (TaskBundle{3, 4, 5}));
}

}  // namespace
}  // namespace hta
