// Equivalence suite for the incremental local search: the O(1)-delta
// evaluator must reproduce the retained naive reference move-for-move
// (identical final assignments and motivation), under both scan modes,
// across every DistanceKind, varying Xmax, and under-capacity seeds —
// and the deterministic scan must be bit-identical at any thread cap.
#include "assign/local_search.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

// Force a multi-threaded global pool (before first use) so thread caps
// of 4 actually take the worker-thread code path on single-core CI.
const bool kForcePoolSize = [] {
  setenv("HTA_THREADS", "4", /*overwrite=*/0);
  return true;
}();

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 5; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

LocalSearchResult Improve(const HtaProblem& problem, const Assignment& seed,
                          LocalSearchEval eval, LocalSearchScan scan,
                          size_t threads = 0) {
  LocalSearchOptions options;
  options.evaluation = eval;
  options.scan = scan;
  options.threads = threads;
  auto improved = ImproveAssignment(problem, seed, options);
  HTA_CHECK(improved.ok()) << improved.status();
  return *improved;
}

void ExpectIdentical(const LocalSearchResult& a, const LocalSearchResult& b,
                     const char* what) {
  EXPECT_EQ(a.assignment.bundles, b.assignment.bundles) << what;
  EXPECT_EQ(a.motivation, b.motivation) << what;
  EXPECT_EQ(a.improving_moves, b.improving_moves) << what;
  EXPECT_EQ(a.passes, b.passes) << what;
  EXPECT_EQ(a.reached_local_optimum, b.reached_local_optimum) << what;
}

class LocalSearchEquivalenceTest
    : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(LocalSearchEquivalenceTest, IncrementalMatchesNaiveOnGreSeeds) {
  ASSERT_TRUE(kForcePoolSize);
  const DistanceKind kind = GetParam();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const size_t xmax : {size_t{3}, size_t{6}}) {
      const Fixture f = RandomFixture(48, 4, seed);
      auto problem = HtaProblem::Create(&f.tasks, &f.workers, xmax, kind,
                                        /*allow_non_metric=*/true);
      ASSERT_TRUE(problem.ok()) << problem.status();
      auto gre = SolveHtaGre(*problem, seed);
      ASSERT_TRUE(gre.ok());
      for (const LocalSearchScan scan : {LocalSearchScan::kDeterministicBest,
                                         LocalSearchScan::kLegacySerial}) {
        const LocalSearchResult incremental =
            Improve(*problem, gre->assignment, LocalSearchEval::kIncremental,
                    scan);
        const LocalSearchResult naive =
            Improve(*problem, gre->assignment,
                    LocalSearchEval::kNaiveReference, scan);
        ExpectIdentical(incremental, naive,
                        scan == LocalSearchScan::kDeterministicBest
                            ? "deterministic scan"
                            : "legacy scan");
        EXPECT_GE(incremental.motivation + 1e-9,
                  incremental.initial_motivation);
        EXPECT_TRUE(
            ValidateAssignment(*problem, incremental.assignment).ok());
      }
    }
  }
}

TEST_P(LocalSearchEquivalenceTest, IncrementalMatchesNaiveUnderCapacity) {
  // Seeds with spare capacity and many unassigned tasks exercise the
  // insert tables and the size-changing bundle statistics.
  const DistanceKind kind = GetParam();
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    const Fixture f = RandomFixture(40, 3, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5, kind,
                                      /*allow_non_metric=*/true);
    ASSERT_TRUE(problem.ok()) << problem.status();
    // Under-capacity seed: bundle q gets q tasks (worker 0 empty).
    Assignment partial;
    partial.bundles.assign(3, {});
    TaskIndex next = 0;
    for (size_t q = 0; q < 3; ++q) {
      for (size_t i = 0; i < q; ++i) partial.bundles[q].push_back(next++);
    }
    for (const LocalSearchScan scan : {LocalSearchScan::kDeterministicBest,
                                       LocalSearchScan::kLegacySerial}) {
      const LocalSearchResult incremental = Improve(
          *problem, partial, LocalSearchEval::kIncremental, scan);
      const LocalSearchResult naive = Improve(
          *problem, partial, LocalSearchEval::kNaiveReference, scan);
      ExpectIdentical(incremental, naive, "under-capacity seed");
      // Inserts never hurt, so all capacity (3 workers x Xmax 5) fills.
      EXPECT_EQ(incremental.assignment.AssignedTaskCount(), 15u);
    }
  }
}

TEST_P(LocalSearchEquivalenceTest, DeterministicScanBitIdenticalAcrossThreads) {
  const DistanceKind kind = GetParam();
  const Fixture f = RandomFixture(60, 4, 21);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 6, kind,
                                    /*allow_non_metric=*/true);
  ASSERT_TRUE(problem.ok()) << problem.status();
  auto gre = SolveHtaGre(*problem, 21);
  ASSERT_TRUE(gre.ok());
  const LocalSearchResult serial =
      Improve(*problem, gre->assignment, LocalSearchEval::kIncremental,
              LocalSearchScan::kDeterministicBest, /*threads=*/1);
  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    const LocalSearchResult parallel =
        Improve(*problem, gre->assignment, LocalSearchEval::kIncremental,
                LocalSearchScan::kDeterministicBest, threads);
    ExpectIdentical(serial, parallel, "thread cap");
  }
}

TEST_P(LocalSearchEquivalenceTest, BundleStatsTablesMatchDirectEvaluation) {
  // The cache's tables must equal from-scratch sums after a chain of
  // applied moves.
  const DistanceKind kind = GetParam();
  const Fixture f = RandomFixture(30, 3, 5);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4, kind,
                                    /*allow_non_metric=*/true);
  ASSERT_TRUE(problem.ok()) << problem.status();
  auto gre = SolveHtaGre(*problem, 5);
  ASSERT_TRUE(gre.ok());
  Assignment assignment = gre->assignment;
  BundleStatsCache cache(*problem, &assignment);
  // Apply a few replaces/inserts through the cache, then cross-check.
  std::vector<bool> assigned(problem->task_count(), false);
  for (const TaskBundle& b : assignment.bundles) {
    for (TaskIndex t : b) assigned[t] = true;
  }
  std::vector<TaskIndex> unassigned;
  for (size_t t = 0; t < problem->task_count(); ++t) {
    if (!assigned[t]) unassigned.push_back(static_cast<TaskIndex>(t));
  }
  ASSERT_GE(unassigned.size(), 2u);
  if (!assignment.bundles[0].empty()) {
    const TaskIndex out = assignment.bundles[0][0];
    cache.ApplyReplace(0, 0, unassigned[0]);
    unassigned[0] = out;
  }
  if (assignment.bundles[1].size() < problem->xmax()) {
    cache.ApplyInsert(1, unassigned[1]);
  }
  const TaskDistanceOracle& d = problem->oracle();
  for (WorkerIndex q = 0; q < 3; ++q) {
    const TaskBundle& bundle = assignment.bundles[q];
    EXPECT_NEAR(cache.BundleDiversity(q), SetDiversity(bundle, d), 1e-12);
    double rel_sum = 0.0;
    for (TaskIndex m : bundle) rel_sum += problem->Relevance(m, q);
    EXPECT_NEAR(cache.BundleRelevance(q), rel_sum, 1e-12);
    for (size_t t = 0; t < problem->task_count(); ++t) {
      double div = 0.0;
      for (TaskIndex m : bundle) div += d(static_cast<TaskIndex>(t), m);
      ASSERT_NEAR(cache.DiversityToBundle(q, static_cast<TaskIndex>(t)), div,
                  1e-12)
          << "worker " << q << " task " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistanceKinds, LocalSearchEquivalenceTest,
                         ::testing::Values(DistanceKind::kJaccard,
                                           DistanceKind::kDice,
                                           DistanceKind::kHamming,
                                           DistanceKind::kCosineAngular),
                         [](const auto& info) {
                           std::string name = DistanceKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hta
