#include "assign/local_search.h"

#include <gtest/gtest.h>

#include "assign/baselines.h"
#include "assign/brute_force.h"
#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(48);
    const size_t bits = 2 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(48)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(48);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(48)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(LocalSearchTest, NeverDecreasesObjectiveAndStaysFeasible) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Fixture f = RandomFixture(40, 3, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
    ASSERT_TRUE(problem.ok());
    auto seed_solution = SolveHtaGre(*problem, seed);
    ASSERT_TRUE(seed_solution.ok());
    auto improved = ImproveAssignment(*problem, seed_solution->assignment,
                                      LocalSearchOptions{});
    ASSERT_TRUE(improved.ok());
    EXPECT_GE(improved->motivation + 1e-9, improved->initial_motivation);
    EXPECT_TRUE(ValidateAssignment(*problem, improved->assignment).ok());
    EXPECT_NEAR(improved->initial_motivation, seed_solution->stats.motivation,
                1e-9);
  }
}

TEST(LocalSearchTest, ImprovesRandomAssignments) {
  // Random seeds leave a lot on the table; local search must recover a
  // large part of it.
  const Fixture f = RandomFixture(50, 3, 7);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  Rng rng(3);
  auto random_seed = SolveRandomAssignment(*problem, &rng);
  ASSERT_TRUE(random_seed.ok());
  auto improved = ImproveAssignment(*problem, random_seed->assignment,
                                    LocalSearchOptions{});
  ASSERT_TRUE(improved.ok());
  // Random bundles are already diversity-rich (random sets are far
  // apart), so the head-room is mostly on the relevance side; expect a
  // clear but not dramatic lift.
  EXPECT_GT(improved->motivation, 1.02 * improved->initial_motivation)
      << "local search should lift a random assignment";
  EXPECT_GT(improved->improving_moves, 0u);
}

TEST(LocalSearchTest, ReachesLocalOptimumFlagOnEasyInstance) {
  const Fixture f = RandomFixture(12, 2, 9);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  auto seed_solution = SolveHtaGre(*problem, 1);
  ASSERT_TRUE(seed_solution.ok());
  LocalSearchOptions options;
  options.max_passes = 50;
  auto improved =
      ImproveAssignment(*problem, seed_solution->assignment, options);
  ASSERT_TRUE(improved.ok());
  EXPECT_TRUE(improved->reached_local_optimum);
}

TEST(LocalSearchTest, InsertFillsSpareCapacity) {
  // Start from an empty assignment: inserts alone must fill bundles
  // (adding a task never hurts with non-negative terms).
  const Fixture f = RandomFixture(30, 2, 11);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  Assignment empty;
  empty.bundles.assign(2, {});
  LocalSearchOptions options;
  options.enable_replace = false;
  options.enable_exchange = false;
  auto improved = ImproveAssignment(*problem, empty, options);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(improved->assignment.AssignedTaskCount(), 8u);
  EXPECT_GT(improved->motivation, 0.0);
}

TEST(LocalSearchTest, NearOptimalOnTinyInstances) {
  // On brute-forceable instances, GRE + local search should land very
  // close to the optimum.
  double total_ratio = 0.0;
  int n = 0;
  for (uint64_t seed = 20; seed < 26; ++seed) {
    const Fixture f = RandomFixture(8, 2, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
    ASSERT_TRUE(problem.ok());
    auto best = SolveHtaBruteForce(*problem);
    ASSERT_TRUE(best.ok());
    if (best->motivation <= 0.0) continue;
    auto gre = SolveHtaGre(*problem, 1);
    ASSERT_TRUE(gre.ok());
    LocalSearchOptions options;
    options.max_passes = 50;
    auto improved = ImproveAssignment(*problem, gre->assignment, options);
    ASSERT_TRUE(improved.ok());
    EXPECT_LE(improved->motivation, best->motivation + 1e-9);
    total_ratio += improved->motivation / best->motivation;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(total_ratio / n, 0.9)
      << "GRE + local search should average >90% of optimal on tiny "
         "instances";
}

TEST(LocalSearchTest, RejectsInfeasibleSeed) {
  const Fixture f = RandomFixture(10, 2, 31);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 2);
  ASSERT_TRUE(problem.ok());
  Assignment bogus;
  bogus.bundles = {{0, 1, 2}, {}};  // C1 violation: 3 > xmax 2.
  EXPECT_FALSE(
      ImproveAssignment(*problem, bogus, LocalSearchOptions{}).ok());
}

TEST(LocalSearchTest, DisabledMovesRespected) {
  const Fixture f = RandomFixture(30, 3, 13);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto gre = SolveHtaGre(*problem, 2);
  ASSERT_TRUE(gre.ok());
  LocalSearchOptions options;
  options.enable_replace = false;
  options.enable_exchange = false;
  options.enable_insert = false;
  auto improved = ImproveAssignment(*problem, gre->assignment, options);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(improved->improving_moves, 0u);
  EXPECT_EQ(improved->assignment.bundles, gre->assignment.bundles);
  EXPECT_TRUE(improved->reached_local_optimum);
}

}  // namespace
}  // namespace hta
