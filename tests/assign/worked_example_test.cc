// Reproduces the paper's running example end to end:
//   * Table I     — the rel(t, w) values for 2 workers x 8 tasks;
//   * Example 1   — matrices A and C of Fig. 1 (Xmax = 3,
//                   (alpha, beta) = (0.2, 0.8) and (0.6, 0.3));
//   * Example 2   — bundle extraction via Eq. 7 for a given permutation;
//   * Example 3   — the HTA-APP trace: M_B, the auxiliary profit
//                   f_{1,1} = 0.848, and a full solve.
#include <memory>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "matching/max_weight_matching.h"
#include "qap/qap_view.h"

namespace hta {
namespace {

class WorkedExampleTest : public ::testing::Test {
 protected:
  WorkedExampleTest() {
    // Eight tasks; keyword vectors are placeholders because the example
    // specifies rel and d values directly (Table I gives rel; Example 3
    // gives the d values that matter).
    for (uint64_t i = 0; i < 8; ++i) {
      tasks_.emplace_back(i, KeywordVector(8, {static_cast<KeywordId>(i)}));
    }
    workers_.emplace_back(1, KeywordVector(8, {0}),
                          MotivationWeights{0.2, 0.8});
    workers_.emplace_back(2, KeywordVector(8, {1}),
                          MotivationWeights{0.6, 0.3});

    // Table I, row-major |T| x |W|.
    relevance_ = {
        // w1    w2
        0.28, 0.30,  // t1
        0.25, 0.00,  // t2
        0.20, 0.20,  // t3
        0.43, 0.25,  // t4
        0.67, 0.25,  // t5
        0.40, 0.00,  // t6
        0.00, 0.00,  // t7
        0.40, 0.40,  // t8
    };

    // Pairwise distances: Example 3 pins d(t4,t8) = 1, d(t1,t6) = 1,
    // d(t3,t2) = 0.86, d(t7,t5) = 0.8; all other pairs sit at 0.7,
    // which keeps the matrix a metric (max 1 <= 0.7 + 0.7) and makes
    // the paper's M_B the unique greedy matching.
    distances_.assign(64, 0.7);
    for (int i = 0; i < 8; ++i) distances_[i * 8 + i] = 0.0;
    auto set_d = [&](int a, int b, double v) {
      distances_[a * 8 + b] = v;
      distances_[b * 8 + a] = v;
    };
    set_d(3, 7, 1.0);   // (t4, t8)
    set_d(0, 5, 1.0);   // (t1, t6)
    set_d(2, 1, 0.86);  // (t3, t2)
    set_d(6, 4, 0.8);   // (t7, t5)

    auto problem = HtaProblem::CreateWithMatrices(&tasks_, &workers_, 3,
                                                  distances_, relevance_);
    HTA_CHECK(problem.ok()) << problem.status();
    problem_ = std::make_unique<HtaProblem>(std::move(*problem));
  }

  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  std::vector<double> relevance_;
  std::vector<double> distances_;
  std::unique_ptr<HtaProblem> problem_;
};

TEST_F(WorkedExampleTest, TableOneRelevanceIsServed) {
  EXPECT_DOUBLE_EQ(problem_->Relevance(0, 0), 0.28);
  EXPECT_DOUBLE_EQ(problem_->Relevance(4, 0), 0.67);
  EXPECT_DOUBLE_EQ(problem_->Relevance(6, 0), 0.0);
  EXPECT_DOUBLE_EQ(problem_->Relevance(0, 1), 0.30);
  EXPECT_DOUBLE_EQ(problem_->Relevance(7, 1), 0.40);
}

TEST_F(WorkedExampleTest, MatrixAMatchesFigureOne) {
  const QapView view(problem_.get());
  EXPECT_EQ(view.n(), 8u);
  // First 3x3 block: worker 1's clique with alpha = 0.2 off-diagonal.
  for (size_t k = 0; k < 3; ++k) {
    for (size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(view.A(k, l), k == l ? 0.0 : 0.2);
    }
  }
  // Second block: worker 2, alpha = 0.6.
  for (size_t k = 3; k < 6; ++k) {
    for (size_t l = 3; l < 6; ++l) {
      EXPECT_DOUBLE_EQ(view.A(k, l), k == l ? 0.0 : 0.6);
    }
  }
  // Isolated vertices 6, 7 and cross-clique entries: zero.
  EXPECT_DOUBLE_EQ(view.A(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(view.A(6, 6), 0.0);
  EXPECT_DOUBLE_EQ(view.A(1, 7), 0.0);
}

TEST_F(WorkedExampleTest, MatrixCMatchesFigureOne) {
  const QapView view(problem_.get());
  // Fig. 1 shows c_{1,1} = 2 * 0.8 * 0.28 (worker 1 column, task t1).
  EXPECT_NEAR(view.C(0, 0), 2.0 * 0.8 * 0.28, 1e-12);
  EXPECT_NEAR(view.C(1, 0), 2.0 * 0.8 * 0.25, 1e-12);
  EXPECT_NEAR(view.C(5, 2), 2.0 * 0.8 * 0.4, 1e-12);
  EXPECT_NEAR(view.C(6, 1), 2.0 * 0.8 * 0.0, 1e-12);
  // Worker 2 columns (3-5): 2 * 0.3 * rel(w2, t).
  EXPECT_NEAR(view.C(0, 3), 2.0 * 0.3 * 0.3, 1e-12);
  EXPECT_NEAR(view.C(7, 5), 2.0 * 0.3 * 0.4, 1e-12);
  EXPECT_NEAR(view.C(1, 4), 0.0, 1e-12);
  // Columns 6, 7 are isolated: all zero.
  for (size_t k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(view.C(k, 6), 0.0);
    EXPECT_DOUBLE_EQ(view.C(k, 7), 0.0);
  }
}

TEST_F(WorkedExampleTest, ExampleTwoExtractionViaEquationSeven) {
  // Example 2: pi(1) = 4, pi(4) = 1, all others fixed points
  // (1-indexed) → 0-indexed perm below. Worker 1 receives
  // {t4, t2, t3}, worker 2 {t1, t5, t6}; t7, t8 unassigned.
  const QapView view(problem_.get());
  const std::vector<int32_t> perm{3, 1, 2, 0, 4, 5, 6, 7};
  const Assignment a = ExtractAssignment(view, perm);
  ASSERT_EQ(a.bundles.size(), 2u);
  EXPECT_EQ(a.bundles[0], (TaskBundle{1, 2, 3}));  // t2, t3, t4.
  EXPECT_EQ(a.bundles[1], (TaskBundle{0, 4, 5}));  // t1, t5, t6.
}

TEST_F(WorkedExampleTest, ExampleThreeGreedyMatchingMB) {
  const GraphMatching mb = GreedyMatchingOnTaskGraph(problem_->oracle());
  ASSERT_EQ(mb.edges.size(), 4u);
  // Sorted by weight desc with index tie-breaks: (t1,t6), (t4,t8),
  // (t2,t3), (t5,t7) — exactly the paper's M_B as unordered pairs.
  EXPECT_EQ(mb.edges[0], std::make_pair(VertexId{0}, VertexId{5}));
  EXPECT_EQ(mb.edges[1], std::make_pair(VertexId{3}, VertexId{7}));
  EXPECT_EQ(mb.edges[2], std::make_pair(VertexId{1}, VertexId{2}));
  EXPECT_EQ(mb.edges[3], std::make_pair(VertexId{4}, VertexId{6}));
  EXPECT_NEAR(mb.total_weight, 1.0 + 1.0 + 0.86 + 0.8, 1e-6);
}

TEST_F(WorkedExampleTest, ExampleThreeAuxiliaryProfit) {
  // f_{1,1} = bM(t1) * degA_1 + c_{1,1} = 1 * (0.2 * 2) + 2*0.8*0.28
  //         = 0.4 + 0.448 = 0.848.
  const QapView view(problem_.get());
  const GraphMatching mb = GreedyMatchingOnTaskGraph(problem_->oracle());
  std::vector<double> bm(8, 0.0);
  for (const auto& [u, v] : mb.edges) {
    const double w = problem_->oracle()(u, v);
    bm[u] = w;
    bm[v] = w;
  }
  EXPECT_NEAR(bm[0], 1.0, 1e-6);
  EXPECT_NEAR(view.DegA(0), 0.4, 1e-12);
  const double f_1_1 = bm[0] * view.DegA(0) + view.C(0, 0);
  EXPECT_NEAR(f_1_1, 0.848, 1e-6);
}

TEST_F(WorkedExampleTest, FullSolveIsFeasibleAndNontrivial) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    auto app = SolveHtaApp(*problem_, seed);
    ASSERT_TRUE(app.ok());
    EXPECT_TRUE(ValidateAssignment(*problem_, app->assignment).ok());
    // Both workers receive full bundles (8 tasks >= 6 slots).
    EXPECT_EQ(app->assignment.bundles[0].size(), 3u);
    EXPECT_EQ(app->assignment.bundles[1].size(), 3u);
    EXPECT_GT(app->stats.motivation, 0.0);
  }
}

}  // namespace
}  // namespace hta
