#include <gtest/gtest.h>

#include "assign/brute_force.h"
#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(32);
    const size_t bits = 2 + rng.NextBounded(4);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(32)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(32);
    for (int b = 0; b < 3; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(32)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(BruteForceTest, RefusesLargeInstances) {
  const Fixture f = RandomFixture(20, 2, 1);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(SolveHtaBruteForce(*problem).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BruteForceTest, FindsObviousOptimum) {
  // Two disjoint-keyword tasks, one diversity-loving worker with
  // Xmax 2: optimal bundle is both tasks, motivation 2 * d = 2.
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(16, {1}));
  tasks.emplace_back(1, KeywordVector(16, {2}));
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(16, {9}),
                       MotivationWeights::DiversityOnly());
  auto problem = HtaProblem::Create(&tasks, &workers, 2);
  ASSERT_TRUE(problem.ok());
  auto best = SolveHtaBruteForce(*problem);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(best->motivation, 2.0, 1e-12);
  EXPECT_EQ(best->assignment.bundles[0].size(), 2u);
}

TEST(BruteForceTest, OptimumIsFeasible) {
  const Fixture f = RandomFixture(7, 2, 2);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  auto best = SolveHtaBruteForce(*problem);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, best->assignment).ok());
  EXPECT_NEAR(best->motivation, TotalMotivation(*problem, best->assignment),
              1e-12);
}

// Approximation-factor property sweep: on random small instances, both
// algorithms must (a) never beat the optimum and (b) achieve at least
// their guaranteed fraction of it. The paper's guarantees (1/4 for
// HTA-APP, 1/8 for HTA-GRE) hold in expectation over the random swap
// step, so we average over seeds.
struct ApproxCase {
  size_t tasks;
  size_t workers;
  size_t xmax;
  uint64_t seed;
};

class ApproximationSweep : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproximationSweep, BothAlgorithmsWithinGuarantees) {
  const ApproxCase c = GetParam();
  const Fixture f = RandomFixture(c.tasks, c.workers, c.seed);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, c.xmax);
  ASSERT_TRUE(problem.ok());
  auto best = SolveHtaBruteForce(*problem);
  ASSERT_TRUE(best.ok());
  const double opt = best->motivation;

  constexpr int kSeeds = 16;
  double app_sum = 0.0;
  double gre_sum = 0.0;
  for (int s = 0; s < kSeeds; ++s) {
    auto app = SolveHtaApp(*problem, 1000 + s);
    auto gre = SolveHtaGre(*problem, 1000 + s);
    ASSERT_TRUE(app.ok());
    ASSERT_TRUE(gre.ok());
    EXPECT_LE(app->stats.motivation, opt + 1e-9)
        << "HTA-APP beat the certified optimum";
    EXPECT_LE(gre->stats.motivation, opt + 1e-9)
        << "HTA-GRE beat the certified optimum";
    app_sum += app->stats.motivation;
    gre_sum += gre->stats.motivation;
  }
  if (opt > 0.0) {
    EXPECT_GE(app_sum / kSeeds, 0.25 * opt - 1e-9)
        << "HTA-APP below its 1/4 guarantee";
    EXPECT_GE(gre_sum / kSeeds, 0.125 * opt - 1e-9)
        << "HTA-GRE below its 1/8 guarantee";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, ApproximationSweep,
    ::testing::Values(ApproxCase{6, 2, 3, 1}, ApproxCase{6, 2, 3, 2},
                      ApproxCase{7, 2, 3, 3}, ApproxCase{8, 2, 4, 4},
                      ApproxCase{8, 2, 3, 5}, ApproxCase{9, 3, 3, 6},
                      ApproxCase{9, 3, 2, 7}, ApproxCase{10, 2, 5, 8},
                      ApproxCase{10, 3, 3, 9}, ApproxCase{6, 3, 2, 10},
                      ApproxCase{7, 3, 2, 11}, ApproxCase{8, 4, 2, 12}),
    [](const ::testing::TestParamInfo<ApproxCase>& info) {
      const ApproxCase& c = info.param;
      return "t" + std::to_string(c.tasks) + "_w" + std::to_string(c.workers) +
             "_x" + std::to_string(c.xmax) + "_s" + std::to_string(c.seed);
    });

// Pure-diversity corner: the KPART-style instance from the NP-hardness
// reduction (all workers alpha = 1). The algorithms must stay within
// their factors here too.
TEST(ApproximationCornerTest, PureDiversityWorkers) {
  Rng rng(42);
  std::vector<Task> tasks;
  for (size_t i = 0; i < 8; ++i) {
    KeywordVector v(32);
    for (int b = 0; b < 3; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(32)));
    }
    tasks.emplace_back(i, std::move(v));
  }
  std::vector<Worker> workers;
  for (size_t q = 0; q < 2; ++q) {
    workers.emplace_back(q, KeywordVector(32, {1}),
                         MotivationWeights::DiversityOnly());
  }
  auto problem = HtaProblem::Create(&tasks, &workers, 4);
  ASSERT_TRUE(problem.ok());
  auto best = SolveHtaBruteForce(*problem);
  ASSERT_TRUE(best.ok());
  auto app = SolveHtaApp(*problem, 3);
  ASSERT_TRUE(app.ok());
  EXPECT_GE(app->stats.motivation, 0.25 * best->motivation - 1e-9);
}

// Pure-relevance corner: with alpha = 0 the problem degenerates to a
// (greedy-solvable) selection; exact LSAP must find the true optimum.
TEST(ApproximationCornerTest, PureRelevanceWorkersExactlyOptimal) {
  const Fixture base = RandomFixture(8, 2, 77);
  std::vector<Worker> workers;
  for (const Worker& w : base.workers) {
    workers.emplace_back(w.id(), w.interests(),
                         MotivationWeights::RelevanceOnly());
  }
  auto problem = HtaProblem::Create(&base.tasks, &workers, 3);
  ASSERT_TRUE(problem.ok());
  auto best = SolveHtaBruteForce(*problem);
  ASSERT_TRUE(best.ok());
  auto app = SolveHtaApp(*problem, 5);
  ASSERT_TRUE(app.ok());
  // With no quadratic term, the auxiliary LSAP *is* the problem, so
  // HTA-APP is exact (the random swap exchanges tasks within M_B pairs,
  // which cannot change the linear objective when both land in the same
  // clique, but can when they differ — hence compare without swap).
  HtaSolverOptions options;
  options.lsap = LsapMethod::kExactJv;
  options.swap = SwapMode::kNone;
  auto exact = SolveHta(*problem, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->stats.motivation, best->motivation, 1e-9);
}

}  // namespace
}  // namespace hta
