// Batched/scalar equivalence net for the SoA distance kernels: on
// randomized instances, every consumer of DistanceBackend — the
// precomputed distance cache, the fused diversity-edge emission, the
// dense QAP materialization, the rel[t][q] relevance table, and the
// full HTA-APP / HTA-GRE solver pipelines — must produce bit-identical
// results under DistanceBackend::kBatched and DistanceBackend::kScalar,
// at every thread cap. This is what lets the batched kernels be the
// default: they are a pure performance change, invisible to results.
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "assign/local_search.h"
#include "core/distance_oracle.h"
#include "matching/max_weight_matching.h"
#include "qap/qap_view.h"
#include "util/rng.h"

namespace hta {
namespace {

// Force a multi-threaded global pool before first use so thread caps
// above 1 really fan out, even on single-core CI machines.
const bool kForcePoolSize = [] {
  setenv("HTA_THREADS", "4", /*overwrite=*/0);
  return true;
}();

const DistanceKind kAllKinds[] = {DistanceKind::kJaccard, DistanceKind::kDice,
                                  DistanceKind::kHamming,
                                  DistanceKind::kCosineAngular};
const size_t kThreadCaps[] = {0, 1, 2, 4};

struct Instance {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

// Universe 100 on purpose: a tail block with 36 padding bits, so the
// batched kernels run against rows where the invariant actually
// matters, not just whole-block universes.
Instance MakeInstance(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(100);
    const size_t bits = 2 + rng.NextBounded(8);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(100)));
    }
    inst.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(100);
    for (int b = 0; b < 6; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(100)));
    }
    const double alpha = rng.NextDouble();
    inst.workers.emplace_back(q, std::move(v),
                              MotivationWeights{alpha, 1.0 - alpha});
  }
  return inst;
}

TEST(BatchedKernelEquivalenceTest, PrecomputedCacheBitIdentical) {
  ASSERT_TRUE(kForcePoolSize);
  for (const DistanceKind kind : kAllKinds) {
    for (const uint64_t seed : {101u, 102u}) {
      const Instance inst = MakeInstance(90, 4, seed);
      auto scalar = TaskDistanceOracle::Precomputed(
          &inst.tasks, kind, size_t{4} << 30, /*max_threads=*/1,
          DistanceBackend::kScalar);
      ASSERT_TRUE(scalar.ok());
      for (const size_t cap : kThreadCaps) {
        auto batched = TaskDistanceOracle::Precomputed(
            &inst.tasks, kind, size_t{4} << 30, cap,
            DistanceBackend::kBatched);
        ASSERT_TRUE(batched.ok());
        for (size_t i = 0; i < inst.tasks.size(); ++i) {
          for (size_t j = 0; j < inst.tasks.size(); ++j) {
            ASSERT_EQ((*batched)(static_cast<TaskIndex>(i),
                                 static_cast<TaskIndex>(j)),
                      (*scalar)(static_cast<TaskIndex>(i),
                                static_cast<TaskIndex>(j)))
                << DistanceKindName(kind) << " cap " << cap << " pair ("
                << i << ", " << j << ")";
          }
        }
      }
    }
  }
}

TEST(BatchedKernelEquivalenceTest, DiversityEdgesBitIdentical) {
  for (const DistanceKind kind : kAllKinds) {
    for (const uint64_t seed : {111u, 112u}) {
      const Instance inst = MakeInstance(85, 3, seed);
      const TaskDistanceOracle oracle(&inst.tasks, kind);
      const std::vector<WeightedEdge> scalar = BuildDiversityEdges(
          oracle, /*max_threads=*/1, DistanceBackend::kScalar);
      for (const size_t cap : kThreadCaps) {
        const std::vector<WeightedEdge> batched =
            BuildDiversityEdges(oracle, cap, DistanceBackend::kBatched);
        ASSERT_EQ(batched.size(), scalar.size())
            << DistanceKindName(kind) << " cap " << cap;
        for (size_t e = 0; e < scalar.size(); ++e) {
          ASSERT_EQ(batched[e].u, scalar[e].u) << "edge " << e;
          ASSERT_EQ(batched[e].v, scalar[e].v) << "edge " << e;
          ASSERT_EQ(batched[e].weight, scalar[e].weight) << "edge " << e;
        }
      }
    }
  }
}

TEST(BatchedKernelEquivalenceTest, PrecomputedOracleBypassesBatchedPath) {
  // A precomputed oracle answers from its float cache; the batched
  // request must not silently rebuild from keyword vectors (the cache
  // holds floats, the kernels doubles — bypassing would change bits).
  const Instance inst = MakeInstance(60, 3, 121);
  auto pre = TaskDistanceOracle::Precomputed(&inst.tasks,
                                             DistanceKind::kJaccard);
  ASSERT_TRUE(pre.ok());
  const std::vector<WeightedEdge> batched =
      BuildDiversityEdges(*pre, /*max_threads=*/1, DistanceBackend::kBatched);
  const std::vector<WeightedEdge> scalar =
      BuildDiversityEdges(*pre, /*max_threads=*/1, DistanceBackend::kScalar);
  ASSERT_EQ(batched.size(), scalar.size());
  for (size_t e = 0; e < scalar.size(); ++e) {
    ASSERT_EQ(batched[e].weight, scalar[e].weight) << "edge " << e;
  }
}

TEST(BatchedKernelEquivalenceTest, DenseQapMatricesBitIdentical) {
  for (const uint64_t seed : {131u, 132u}) {
    const Instance inst = MakeInstance(40, 3, seed);
    auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/4);
    ASSERT_TRUE(problem.ok());
    const QapView view(&*problem);
    const DenseQapMatrices scalar = DenseQapMatrices::FromView(
        view, /*max_threads=*/1, DistanceBackend::kScalar);
    for (const size_t cap : kThreadCaps) {
      const DenseQapMatrices batched =
          DenseQapMatrices::FromView(view, cap, DistanceBackend::kBatched);
      ASSERT_EQ(batched.n, scalar.n);
      EXPECT_EQ(batched.a, scalar.a) << "cap " << cap;
      EXPECT_EQ(batched.b, scalar.b) << "cap " << cap;
      EXPECT_EQ(batched.c, scalar.c) << "cap " << cap;
    }
  }
}

TEST(BatchedKernelEquivalenceTest, RelevanceTableBitIdentical) {
  for (const DistanceKind kind : kAllKinds) {
    const Instance inst = MakeInstance(70, 5, 141);
    auto problem =
        HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/4, kind,
                           /*allow_non_metric=*/kind == DistanceKind::kDice);
    ASSERT_TRUE(problem.ok());
    const size_t cells = inst.tasks.size() * inst.workers.size();
    std::vector<double> scalar(cells);
    problem->FillRelevanceTable(&scalar, /*max_threads=*/1,
                                DistanceBackend::kScalar);
    for (const size_t cap : kThreadCaps) {
      std::vector<double> batched(cells);
      problem->FillRelevanceTable(&batched, cap, DistanceBackend::kBatched);
      EXPECT_EQ(batched, scalar)
          << DistanceKindName(kind) << " cap " << cap;
    }
  }
}

class SolverBackendEquivalence : public ::testing::TestWithParam<LsapMethod> {
};

TEST_P(SolverBackendEquivalence, AssignmentsBitIdenticalAcrossBackends) {
  for (const uint64_t seed : {151u, 152u, 153u}) {
    const Instance inst = MakeInstance(88, 4, seed);
    auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/5);
    ASSERT_TRUE(problem.ok());

    HtaSolverOptions options;
    options.lsap = GetParam();
    options.swap = SwapMode::kBestOfTwo;  // Deterministic swap phase.
    options.seed = seed;

    options.backend = DistanceBackend::kScalar;
    options.threads = 1;
    auto scalar = SolveHta(*problem, options);
    ASSERT_TRUE(scalar.ok());

    options.backend = DistanceBackend::kBatched;
    for (const size_t cap : {size_t{1}, size_t{0}}) {
      options.threads = cap;
      auto batched = SolveHta(*problem, options);
      ASSERT_TRUE(batched.ok());
      EXPECT_EQ(batched->assignment.bundles, scalar->assignment.bundles)
          << "threads " << cap;
      EXPECT_EQ(batched->stats.qap_objective, scalar->stats.qap_objective);
      EXPECT_EQ(batched->stats.motivation, scalar->stats.motivation);
      EXPECT_EQ(batched->stats.optimum_upper_bound,
                scalar->stats.optimum_upper_bound);
      EXPECT_EQ(batched->stats.certified_ratio,
                scalar->stats.certified_ratio);
      EXPECT_EQ(batched->stats.matched_pairs, scalar->stats.matched_pairs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLsapMethods, SolverBackendEquivalence,
                         ::testing::Values(LsapMethod::kExactJv,
                                           LsapMethod::kGreedy,
                                           LsapMethod::kExactStructured),
                         [](const ::testing::TestParamInfo<LsapMethod>& info) {
                           switch (info.param) {
                             case LsapMethod::kExactJv:
                               return "jv";
                             case LsapMethod::kGreedy:
                               return "greedy";
                             case LsapMethod::kExactStructured:
                               return "rect";
                           }
                           return "unknown";
                         });

TEST(BatchedKernelEquivalenceTest, LocalSearchBitIdenticalAcrossBackends) {
  const Instance inst = MakeInstance(60, 4, 161);
  auto problem = HtaProblem::Create(&inst.tasks, &inst.workers, /*xmax=*/4);
  ASSERT_TRUE(problem.ok());
  auto seeded = SolveHtaGre(*problem, /*seed=*/161);
  ASSERT_TRUE(seeded.ok());

  LocalSearchOptions options;
  options.backend = DistanceBackend::kScalar;
  options.threads = 1;
  auto scalar = ImproveAssignment(*problem, seeded->assignment, options);
  ASSERT_TRUE(scalar.ok());

  options.backend = DistanceBackend::kBatched;
  for (const size_t cap : {size_t{1}, size_t{0}}) {
    options.threads = cap;
    auto batched = ImproveAssignment(*problem, seeded->assignment, options);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batched->assignment.bundles, scalar->assignment.bundles)
        << "threads " << cap;
    EXPECT_EQ(batched->motivation, scalar->motivation);
    EXPECT_EQ(batched->applied_delta, scalar->applied_delta);
    EXPECT_EQ(batched->improving_moves, scalar->improving_moves);
  }
}

}  // namespace
}  // namespace hta
