// Property sweep across the whole solver configuration space:
// every (metric x LSAP method x swap mode x instance shape) combination
// must produce a feasible, deterministic, certificate-consistent
// assignment. This is the regression net that keeps the solver matrix
// honest as variants are added.
#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct SweepCase {
  DistanceKind metric;
  LsapMethod lsap;
  SwapMode swap;
  size_t tasks;
  size_t workers;
  size_t xmax;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string lsap;
  switch (c.lsap) {
    case LsapMethod::kExactJv:
      lsap = "jv";
      break;
    case LsapMethod::kGreedy:
      lsap = "greedy";
      break;
    case LsapMethod::kExactStructured:
      lsap = "rect";
      break;
  }
  std::string swap;
  switch (c.swap) {
    case SwapMode::kRandom:
      swap = "rand";
      break;
    case SwapMode::kBestOfTwo:
      swap = "best2";
      break;
    case SwapMode::kNone:
      swap = "none";
      break;
  }
  std::string name = DistanceKindName(c.metric) + "_" + lsap + "_" + swap +
                     "_t" + std::to_string(c.tasks) + "w" +
                     std::to_string(c.workers) + "x" + std::to_string(c.xmax);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class SolverSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void BuildFixture(const SweepCase& c) {
    Rng rng(c.seed);
    for (size_t i = 0; i < c.tasks; ++i) {
      KeywordVector v(48);
      const size_t bits = 2 + rng.NextBounded(5);
      for (size_t b = 0; b < bits; ++b) {
        v.Set(static_cast<KeywordId>(rng.NextBounded(48)));
      }
      tasks_.emplace_back(i, std::move(v));
    }
    for (size_t q = 0; q < c.workers; ++q) {
      KeywordVector v(48);
      for (int b = 0; b < 4; ++b) {
        v.Set(static_cast<KeywordId>(rng.NextBounded(48)));
      }
      const double alpha = rng.NextDouble();
      workers_.emplace_back(q, std::move(v),
                            MotivationWeights{alpha, 1.0 - alpha});
    }
  }

  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
};

TEST_P(SolverSweep, FeasibleDeterministicAndCertified) {
  const SweepCase c = GetParam();
  BuildFixture(c);
  auto problem = HtaProblem::Create(&tasks_, &workers_, c.xmax, c.metric,
                                    /*allow_non_metric=*/true);
  ASSERT_TRUE(problem.ok()) << problem.status();

  HtaSolverOptions options;
  options.lsap = c.lsap;
  options.swap = c.swap;
  options.seed = c.seed * 31 + 1;

  auto first = SolveHta(*problem, options);
  ASSERT_TRUE(first.ok()) << first.status();

  // Feasibility (C1 and C2).
  ASSERT_TRUE(ValidateAssignment(*problem, first->assignment).ok());

  // Determinism.
  auto second = SolveHta(*problem, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->assignment.bundles, second->assignment.bundles);
  EXPECT_DOUBLE_EQ(first->stats.qap_objective, second->stats.qap_objective);

  // Certificate consistency.
  EXPECT_GE(first->stats.optimum_upper_bound + 1e-9,
            first->stats.qap_objective);
  EXPECT_GE(first->stats.certified_ratio, 0.0);
  EXPECT_LE(first->stats.certified_ratio, 1.0 + 1e-9);

  // Objective bookkeeping: motivation <= QAP value of the permutation
  // (equal when every bundle is full and no padding exists).
  EXPECT_LE(first->stats.motivation, first->stats.qap_objective + 1e-9);
  EXPECT_GE(first->stats.motivation, 0.0);

  // Stats sanity.
  EXPECT_GE(first->stats.matching_seconds, 0.0);
  EXPECT_GE(first->stats.lsap_seconds, 0.0);
  if (c.tasks >= 2 * c.workers * c.xmax) {
    // Plenty of tasks: every bundle is full.
    for (const TaskBundle& b : first->assignment.bundles) {
      EXPECT_EQ(b.size(), c.xmax);
    }
  }
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  uint64_t seed = 1;
  for (DistanceKind metric :
       {DistanceKind::kJaccard, DistanceKind::kHamming,
        DistanceKind::kCosineAngular, DistanceKind::kDice}) {
    for (LsapMethod lsap : {LsapMethod::kExactJv, LsapMethod::kGreedy,
                            LsapMethod::kExactStructured}) {
      for (SwapMode swap :
           {SwapMode::kRandom, SwapMode::kBestOfTwo, SwapMode::kNone}) {
        // A comfortably-sized instance and a padded (scarce-task) one.
        cases.push_back(SweepCase{metric, lsap, swap, 40, 3, 4, seed++});
        cases.push_back(SweepCase{metric, lsap, swap, 7, 3, 4, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigurations, SolverSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace hta
