// The AssignmentAuditor contract: every deliberately corrupted
// assignment fails with the Status code and message of exactly the
// violated invariant, valid output passes, and the objective check
// rejects any claimed value outside the 1e-9 agreement band.
#include "assign/auditor.h"

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assign/hta_solver.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 5; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest() : fixture_(RandomFixture(20, 3, 7)) {
    auto problem = HtaProblem::Create(&fixture_.tasks, &fixture_.workers, 4);
    HTA_CHECK(problem.ok()) << problem.status();
    problem_.emplace(std::move(*problem));
    auto solved = SolveHtaGre(*problem_, 7);
    HTA_CHECK(solved.ok()) << solved.status();
    assignment_ = solved->assignment;
    motivation_ = solved->stats.motivation;
  }

  Fixture fixture_;
  std::optional<HtaProblem> problem_;
  Assignment assignment_;
  double motivation_ = 0.0;
};

TEST_F(AuditorTest, SolverOutputPassesFullAudit) {
  const AssignmentAuditor auditor(*problem_);
  EXPECT_TRUE(auditor.CheckStructure(assignment_).ok());
  EXPECT_TRUE(auditor.Audit(assignment_, motivation_).ok());
}

TEST_F(AuditorTest, WrongBundleCountIsInvalidArgument) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  corrupted.bundles.pop_back();
  const Status s = auditor.CheckStructure(corrupted);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("2 bundles for 3 workers"), std::string::npos)
      << s;
}

TEST_F(AuditorTest, InvalidTaskIndexIsOutOfRange) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  ASSERT_FALSE(corrupted.bundles[1].empty());
  corrupted.bundles[1][0] = static_cast<TaskIndex>(fixture_.tasks.size());
  const Status s = auditor.CheckStructure(corrupted);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_NE(s.message().find("invalid task index 20"), std::string::npos) << s;
}

TEST_F(AuditorTest, OverCapacityBundleIsC1Violation) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  // Append unassigned tasks to worker 0 until Xmax is exceeded.
  std::vector<bool> used(fixture_.tasks.size(), false);
  for (const TaskBundle& b : corrupted.bundles) {
    for (TaskIndex t : b) used[t] = true;
  }
  for (size_t t = 0; t < used.size() && corrupted.bundles[0].size() <= 4;
       ++t) {
    if (!used[t]) corrupted.bundles[0].push_back(static_cast<TaskIndex>(t));
  }
  ASSERT_GT(corrupted.bundles[0].size(), 4u);
  const Status s = auditor.CheckStructure(corrupted);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("C1 violated: worker 0"), std::string::npos) << s;
}

TEST_F(AuditorTest, DuplicateTaskAcrossBundlesIsC2Violation) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  ASSERT_FALSE(corrupted.bundles[0].empty());
  ASSERT_FALSE(corrupted.bundles[2].empty());
  corrupted.bundles[2][0] = corrupted.bundles[0][0];
  const Status s = auditor.CheckStructure(corrupted);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  const std::string expected =
      "C2 violated: task " + std::to_string(corrupted.bundles[0][0]) +
      " assigned to worker 0 and worker 2";
  EXPECT_NE(s.message().find(expected), std::string::npos) << s;
}

TEST_F(AuditorTest, DuplicateTaskWithinOneBundleIsC2Violation) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  ASSERT_GE(corrupted.bundles[1].size(), 2u);
  corrupted.bundles[1][1] = corrupted.bundles[1][0];
  const Status s = auditor.CheckStructure(corrupted);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("C2 violated"), std::string::npos) << s;
  EXPECT_NE(s.message().find("worker 1 and worker 1"), std::string::npos) << s;
}

TEST_F(AuditorTest, PerturbedObjectiveIsInternal) {
  const AssignmentAuditor auditor(*problem_);
  const Status s = auditor.Audit(assignment_, motivation_ + 1e-6);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("diverges from from-scratch recompute"),
            std::string::npos)
      << s;
}

TEST_F(AuditorTest, ObjectiveWithinToleranceBandPasses) {
  const AssignmentAuditor auditor(*problem_);
  const double scale = std::max(1.0, std::fabs(motivation_));
  EXPECT_TRUE(auditor
                  .CheckObjective(assignment_,
                                  motivation_ + 0.5e-9 * scale)
                  .ok());
  EXPECT_FALSE(auditor
                   .CheckObjective(assignment_,
                                   motivation_ + 4e-9 * scale)
                   .ok());
}

TEST_F(AuditorTest, NanClaimFailsTheObjectiveCheck) {
  const AssignmentAuditor auditor(*problem_);
  const Status s = auditor.CheckObjective(
      assignment_, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST_F(AuditorTest, StructureIsCheckedBeforeObjective) {
  const AssignmentAuditor auditor(*problem_);
  Assignment corrupted = assignment_;
  ASSERT_FALSE(corrupted.bundles[0].empty());
  ASSERT_FALSE(corrupted.bundles[1].empty());
  corrupted.bundles[1][0] = corrupted.bundles[0][0];
  // Both structure and objective are now wrong; the structural C2
  // violation must win.
  const Status s = auditor.Audit(corrupted, motivation_ + 1.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("C2 violated"), std::string::npos) << s;
}

TEST_F(AuditorTest, EmptyAssignmentOfRightShapePasses) {
  const AssignmentAuditor auditor(*problem_);
  Assignment empty;
  empty.bundles.assign(problem_->worker_count(), {});
  EXPECT_TRUE(auditor.Audit(empty, 0.0).ok());
}

}  // namespace
}  // namespace hta
