// Randomized differential audit: long sequences of replace / exchange /
// insert moves applied through BundleStatsCache, with every probed
// delta checked against the retained naive reference and the running
// incremental objective (initial + Σ applied deltas, and the
// cache-derived bundle sums) audited against a from-scratch Eq. 3
// recompute — across all four DistanceKinds. Any stale table entry,
// missed update, or wrong delta derivation surfaces as a divergence
// long before it would corrupt a final assignment.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assign/auditor.h"
#include "assign/hta_solver.h"
#include "assign/local_search.h"
#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 5; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

void ExpectDeltaAgrees(double incremental, double naive, const char* what,
                       size_t step) {
  const double tol =
      1e-9 * std::max({1.0, std::fabs(incremental), std::fabs(naive)});
  EXPECT_NEAR(incremental, naive, tol) << what << " delta at step " << step;
}

class AuditDifferentialTest : public ::testing::TestWithParam<DistanceKind> {};

// Applies `steps` random moves (improving or not — worsening moves
// stress the tables just as hard) through the cache, auditing as the
// per-pass wiring would every `audit_every` moves.
void DriveMoveSequence(const HtaProblem& problem, Assignment seed_assignment,
                       uint64_t seed, size_t steps, size_t audit_every) {
  Assignment assignment = seed_assignment;
  BundleStatsCache cache(problem, &assignment);
  const AssignmentAuditor auditor(problem);
  Rng rng(seed);

  std::vector<bool> assigned(problem.task_count(), false);
  for (const TaskBundle& b : assignment.bundles) {
    for (TaskIndex t : b) assigned[t] = true;
  }
  std::vector<TaskIndex> unassigned;
  for (size_t t = 0; t < problem.task_count(); ++t) {
    if (!assigned[t]) unassigned.push_back(static_cast<TaskIndex>(t));
  }

  double running = TotalMotivation(problem, assignment);
  const size_t worker_count = problem.worker_count();

  for (size_t step = 0; step < steps; ++step) {
    const uint64_t kind = rng.NextBounded(3);
    if (kind == 0 && !unassigned.empty()) {
      // Replace: a random slot takes a random unassigned task.
      const WorkerIndex q =
          static_cast<WorkerIndex>(rng.NextBounded(worker_count));
      TaskBundle& bundle = assignment.bundles[q];
      if (bundle.empty()) continue;
      const size_t pos = rng.NextBounded(bundle.size());
      const size_t u = rng.NextBounded(unassigned.size());
      const TaskIndex in = unassigned[u];
      const double delta = cache.ReplaceDelta(q, pos, in);
      ExpectDeltaAgrees(delta,
                        NaiveReplaceDelta(problem, bundle, pos, in, q),
                        "replace", step);
      const TaskIndex out = bundle[pos];
      cache.ApplyReplace(q, pos, in);
      unassigned[u] = out;
      running += delta;
    } else if (kind == 1 && worker_count >= 2) {
      // Exchange: swap random slots of two distinct workers.
      const WorkerIndex q1 =
          static_cast<WorkerIndex>(rng.NextBounded(worker_count));
      WorkerIndex q2 =
          static_cast<WorkerIndex>(rng.NextBounded(worker_count - 1));
      if (q2 >= q1) q2 = static_cast<WorkerIndex>(q2 + 1);
      TaskBundle& b1 = assignment.bundles[q1];
      TaskBundle& b2 = assignment.bundles[q2];
      if (b1.empty() || b2.empty()) continue;
      const size_t p1 = rng.NextBounded(b1.size());
      const size_t p2 = rng.NextBounded(b2.size());
      const double delta = cache.ExchangeDelta(q1, p1, q2, p2);
      const double naive = NaiveReplaceDelta(problem, b1, p1, b2[p2], q1) +
                           NaiveReplaceDelta(problem, b2, p2, b1[p1], q2);
      ExpectDeltaAgrees(delta, naive, "exchange", step);
      const TaskIndex t1 = b1[p1];
      const TaskIndex t2 = b2[p2];
      cache.ApplyReplace(q1, p1, t2);
      cache.ApplyReplace(q2, p2, t1);
      running += delta;
    } else if (!unassigned.empty()) {
      // Insert into a random worker with spare capacity.
      const WorkerIndex q =
          static_cast<WorkerIndex>(rng.NextBounded(worker_count));
      if (assignment.bundles[q].size() >= problem.xmax()) continue;
      const size_t u = rng.NextBounded(unassigned.size());
      const TaskIndex in = unassigned[u];
      const double delta = cache.InsertDelta(q, in);
      ExpectDeltaAgrees(
          delta, NaiveInsertDelta(problem, assignment.bundles[q], in, q),
          "insert", step);
      cache.ApplyInsert(q, in);
      unassigned[u] = unassigned.back();
      unassigned.pop_back();
      running += delta;
    }

    if (step % audit_every == 0 || step + 1 == steps) {
      ASSERT_TRUE(auditor.CheckStructure(assignment).ok()) << "step " << step;
      const Status tracked = auditor.CheckObjective(assignment, running);
      EXPECT_TRUE(tracked.ok()) << tracked << " at step " << step;
      const Status cached =
          auditor.CheckObjective(assignment, cache.CachedTotalMotivation());
      EXPECT_TRUE(cached.ok()) << cached << " at step " << step;
    }
  }
}

TEST_P(AuditDifferentialTest, LongMoveSequencesFromSolverSeeds) {
  const DistanceKind kind = GetParam();
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    const Fixture f = RandomFixture(28, 4, seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5, kind,
                                      /*allow_non_metric=*/true);
    ASSERT_TRUE(problem.ok()) << problem.status();
    auto gre = SolveHtaGre(*problem, seed);
    ASSERT_TRUE(gre.ok()) << gre.status();
    DriveMoveSequence(*problem, gre->assignment, seed * 101, /*steps=*/400,
                      /*audit_every=*/25);
  }
}

TEST_P(AuditDifferentialTest, LongMoveSequencesFromUnderCapacitySeeds) {
  // Spare capacity keeps the insert path live for most of the run and
  // exercises size-changing bundle statistics.
  const DistanceKind kind = GetParam();
  const Fixture f = RandomFixture(36, 3, 17);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 6, kind,
                                    /*allow_non_metric=*/true);
  ASSERT_TRUE(problem.ok()) << problem.status();
  Assignment partial;
  partial.bundles.assign(3, {});
  TaskIndex next = 0;
  for (size_t q = 0; q < 3; ++q) {
    for (size_t i = 0; i < q; ++i) partial.bundles[q].push_back(next++);
  }
  DriveMoveSequence(*problem, partial, 23, /*steps=*/500, /*audit_every=*/20);
}

TEST_P(AuditDifferentialTest, LocalSearchEndToEndTracksItsDeltas) {
  // The production pass loop itself: the reported applied_delta must
  // reconcile initial and final motivation within audit tolerance for
  // both evaluators and both scan modes.
  const DistanceKind kind = GetParam();
  const Fixture f = RandomFixture(32, 4, 29);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4, kind,
                                    /*allow_non_metric=*/true);
  ASSERT_TRUE(problem.ok()) << problem.status();
  auto gre = SolveHtaGre(*problem, 29);
  ASSERT_TRUE(gre.ok()) << gre.status();
  for (const LocalSearchEval eval : {LocalSearchEval::kIncremental,
                                     LocalSearchEval::kNaiveReference}) {
    for (const LocalSearchScan scan : {LocalSearchScan::kDeterministicBest,
                                       LocalSearchScan::kLegacySerial}) {
      LocalSearchOptions options;
      options.evaluation = eval;
      options.scan = scan;
      auto improved = ImproveAssignment(*problem, gre->assignment, options);
      ASSERT_TRUE(improved.ok()) << improved.status();
      const double tracked =
          improved->initial_motivation + improved->applied_delta;
      EXPECT_NEAR(tracked, improved->motivation,
                  1e-9 * std::max(1.0, std::fabs(improved->motivation)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistanceKinds, AuditDifferentialTest,
                         ::testing::Values(DistanceKind::kJaccard,
                                           DistanceKind::kDice,
                                           DistanceKind::kHamming,
                                           DistanceKind::kCosineAngular),
                         [](const auto& info) {
                           std::string name = DistanceKindName(info.param);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hta
