#include "assign/baselines.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

struct Fixture {
  std::vector<Task> tasks;
  std::vector<Worker> workers;
};

Fixture RandomFixture(size_t num_tasks, size_t num_workers, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    KeywordVector v(64);
    const size_t bits = 2 + rng.NextBounded(5);
    for (size_t b = 0; b < bits; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    f.tasks.emplace_back(i, std::move(v));
  }
  for (size_t q = 0; q < num_workers; ++q) {
    KeywordVector v(64);
    for (int b = 0; b < 4; ++b) {
      v.Set(static_cast<KeywordId>(rng.NextBounded(64)));
    }
    const double alpha = rng.NextDouble();
    f.workers.emplace_back(q, std::move(v),
                           MotivationWeights{alpha, 1.0 - alpha});
  }
  return f;
}

TEST(StrategyNameTest, AllNamesStable) {
  EXPECT_EQ(StrategyName(StrategyKind::kHtaGre), "hta-gre");
  EXPECT_EQ(StrategyName(StrategyKind::kHtaGreDiv), "hta-gre-div");
  EXPECT_EQ(StrategyName(StrategyKind::kHtaGreRel), "hta-gre-rel");
  EXPECT_EQ(StrategyName(StrategyKind::kRandom), "random");
}

TEST(FixedWeightsTest, DivOnlyIsFeasibleAndReportsTrueObjective) {
  const Fixture f = RandomFixture(30, 3, 1);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  auto result =
      SolveWithFixedWeights(*problem, MotivationWeights::DiversityOnly());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  // Reported motivation is computed under the workers' own weights.
  EXPECT_NEAR(result->stats.motivation,
              TotalMotivation(*problem, result->assignment), 1e-9);
}

TEST(FixedWeightsTest, DoesNotMutateInputWorkers) {
  const Fixture f = RandomFixture(20, 2, 2);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 3);
  ASSERT_TRUE(problem.ok());
  const double alpha_before = f.workers[0].weights().alpha;
  ASSERT_TRUE(
      SolveWithFixedWeights(*problem, MotivationWeights::RelevanceOnly())
          .ok());
  EXPECT_DOUBLE_EQ(f.workers[0].weights().alpha, alpha_before);
}

TEST(RandomAssignmentTest, FeasibleAndUsesCapacity) {
  const Fixture f = RandomFixture(50, 3, 3);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  Rng rng(9);
  auto result = SolveRandomAssignment(*problem, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
  EXPECT_EQ(result->assignment.AssignedTaskCount(), 15u);  // 3 * 5.
}

TEST(RandomAssignmentTest, FewTasksAllAssigned) {
  const Fixture f = RandomFixture(4, 3, 4);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  Rng rng(9);
  auto result = SolveRandomAssignment(*problem, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.AssignedTaskCount(), 4u);
}

TEST(RandomAssignmentTest, DifferentDrawsDiffer) {
  const Fixture f = RandomFixture(40, 3, 5);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 5);
  ASSERT_TRUE(problem.ok());
  Rng rng(10);
  auto a = SolveRandomAssignment(*problem, &rng);
  auto b = SolveRandomAssignment(*problem, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->assignment.bundles, b->assignment.bundles);
}

TEST(GreedyRelevanceTest, EachWorkerGetsTheirTopTask) {
  std::vector<Task> tasks;
  tasks.emplace_back(0, KeywordVector(16, {1, 2}));
  tasks.emplace_back(1, KeywordVector(16, {3, 4}));
  std::vector<Worker> workers;
  workers.emplace_back(0, KeywordVector(16, {1, 2}));  // Loves task 0.
  workers.emplace_back(1, KeywordVector(16, {3, 4}));  // Loves task 1.
  auto problem = HtaProblem::Create(&tasks, &workers, 1);
  ASSERT_TRUE(problem.ok());
  auto result = SolveGreedyRelevance(*problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.bundles[0], (TaskBundle{0}));
  EXPECT_EQ(result->assignment.bundles[1], (TaskBundle{1}));
}

TEST(GreedyRelevanceTest, FeasibleOnRandomInstances) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = RandomFixture(30, 3, 60 + seed);
    auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
    ASSERT_TRUE(problem.ok());
    auto result = SolveGreedyRelevance(*problem);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok());
    EXPECT_EQ(result->assignment.AssignedTaskCount(), 12u);
  }
}

TEST(StrategyDispatchTest, AllStrategiesProduceFeasibleAssignments) {
  const Fixture f = RandomFixture(40, 3, 7);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());
  Rng rng(3);
  for (StrategyKind kind :
       {StrategyKind::kHtaGre, StrategyKind::kHtaGreDiv,
        StrategyKind::kHtaGreRel, StrategyKind::kRandom}) {
    auto result = SolveWithStrategy(*problem, kind, 5, &rng);
    ASSERT_TRUE(result.ok()) << StrategyName(kind);
    EXPECT_TRUE(ValidateAssignment(*problem, result->assignment).ok())
        << StrategyName(kind);
  }
}

TEST(StrategyQualityTest, DivOnlyMaximizesDiversityRelOnlyRelevance) {
  // Sanity on objectives: under pure-diversity evaluation the DIV
  // strategy should beat the REL strategy, and vice versa.
  // HTA-GRE is a randomized 1/8-approximation, so compare strategy
  // means over several seeds rather than single draws.
  const Fixture f = RandomFixture(40, 3, 8);
  auto problem = HtaProblem::Create(&f.tasks, &f.workers, 4);
  ASSERT_TRUE(problem.ok());

  auto eval = [&](const Assignment& a, MotivationWeights w) {
    std::vector<Worker> evaluators;
    for (const Worker& worker : f.workers) {
      evaluators.emplace_back(worker.id(), worker.interests(), w);
    }
    auto eval_problem = HtaProblem::Create(&f.tasks, &evaluators, 4);
    return TotalMotivation(*eval_problem, a);
  };

  double div_on_div = 0.0, rel_on_div = 0.0;
  double div_on_rel = 0.0, rel_on_rel = 0.0;
  constexpr int kSeeds = 10;
  for (int s = 0; s < kSeeds; ++s) {
    auto div = SolveWithFixedWeights(*problem,
                                     MotivationWeights::DiversityOnly(), s);
    auto rel = SolveWithFixedWeights(*problem,
                                     MotivationWeights::RelevanceOnly(), s);
    ASSERT_TRUE(div.ok());
    ASSERT_TRUE(rel.ok());
    div_on_div += eval(div->assignment, MotivationWeights::DiversityOnly());
    rel_on_div += eval(rel->assignment, MotivationWeights::DiversityOnly());
    div_on_rel += eval(div->assignment, MotivationWeights::RelevanceOnly());
    rel_on_rel += eval(rel->assignment, MotivationWeights::RelevanceOnly());
  }
  EXPECT_GE(div_on_div, rel_on_div - 1e-9)
      << "diversity-only strategy must win under the diversity objective";
  EXPECT_GE(rel_on_rel, div_on_rel - 1e-9)
      << "relevance-only strategy must win under the relevance objective";
}

}  // namespace
}  // namespace hta
