#include "quality/aggregation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hta {
namespace {

AnswerRecord A(uint64_t question, uint64_t worker, uint32_t answer) {
  return AnswerRecord{question, worker, answer};
}

TEST(MajorityVoteTest, SimpleMajority) {
  auto r = MajorityVote({A(1, 10, 0), A(1, 11, 0), A(1, 12, 1)}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].question_id, 1u);
  EXPECT_EQ((*r)[0].answer, 0u);
  EXPECT_NEAR((*r)[0].confidence, 2.0 / 3.0, 1e-12);
}

TEST(MajorityVoteTest, TieBreaksTowardSmallestOption) {
  auto r = MajorityVote({A(1, 10, 2), A(1, 11, 1)}, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].answer, 1u);
}

TEST(MajorityVoteTest, MultipleQuestionsKeepOrder) {
  auto r = MajorityVote({A(5, 1, 0), A(9, 1, 1), A(5, 2, 0)}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].question_id, 5u);
  EXPECT_EQ((*r)[1].question_id, 9u);
}

TEST(MajorityVoteTest, RejectsBadInput) {
  EXPECT_FALSE(MajorityVote({}, 2).ok());
  EXPECT_FALSE(MajorityVote({A(1, 1, 0)}, 1).ok());
  EXPECT_FALSE(MajorityVote({A(1, 1, 5)}, 3).ok());
}

TEST(WeightedVoteTest, ReliableWorkerOutvotesTwoUnreliable) {
  std::unordered_map<uint64_t, double> reliability{
      {10, 0.95}, {11, 0.55}, {12, 0.55}};
  auto r = WeightedVote({A(1, 10, 0), A(1, 11, 1), A(1, 12, 1)}, 2,
                        reliability);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].answer, 0u)
      << "one 95% worker should outweigh two 55% workers";
}

TEST(WeightedVoteTest, DefaultReliabilityApplies) {
  auto r = WeightedVote({A(1, 10, 0), A(1, 11, 1), A(1, 12, 1)}, 2, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].answer, 1u);  // Equal weights: majority wins.
}

TEST(WeightedVoteTest, RejectsBadDefault) {
  EXPECT_FALSE(WeightedVote({A(1, 1, 0)}, 2, {}, 0.0).ok());
  EXPECT_FALSE(WeightedVote({A(1, 1, 0)}, 2, {}, 1.0).ok());
}

/// Builds a synthetic redundant-answer corpus: `questions` questions
/// with ground truth 0..num_options-1; each worker has a latent
/// reliability; answers drawn accordingly.
struct Corpus {
  std::vector<AnswerRecord> answers;
  std::unordered_map<uint64_t, uint32_t> ground_truth;
  std::unordered_map<uint64_t, double> latent_reliability;
};

Corpus MakeCorpus(size_t questions, size_t workers, uint32_t num_options,
                  uint64_t seed, double min_rel = 0.5, double max_rel = 0.95) {
  Corpus corpus;
  Rng rng(seed);
  std::vector<double> reliabilities;
  for (size_t w = 0; w < workers; ++w) {
    const double p = rng.Uniform(min_rel, max_rel);
    corpus.latent_reliability[w] = p;
    reliabilities.push_back(p);
  }
  for (size_t q = 0; q < questions; ++q) {
    const uint32_t truth = static_cast<uint32_t>(rng.NextBounded(num_options));
    corpus.ground_truth[q] = truth;
    for (size_t w = 0; w < workers; ++w) {
      uint32_t answer = truth;
      if (!rng.NextBool(reliabilities[w])) {
        // Uniform wrong option.
        answer = static_cast<uint32_t>(rng.NextBounded(num_options - 1));
        if (answer >= truth) ++answer;
      }
      corpus.answers.push_back(A(q, w, answer));
    }
  }
  return corpus;
}

TEST(DawidSkeneTest, RecoversReliabilityOrdering) {
  const Corpus corpus = MakeCorpus(300, 8, 3, 5, 0.45, 0.95);
  auto em = EstimateDawidSkene(corpus.answers, 3);
  ASSERT_TRUE(em.ok());
  EXPECT_TRUE(em->converged);
  // Estimated reliabilities correlate with latent ones: check the
  // best-vs-worst ordering.
  uint64_t latent_best = 0, latent_worst = 0;
  for (const auto& [w, p] : corpus.latent_reliability) {
    if (p > corpus.latent_reliability.at(latent_best)) latent_best = w;
    if (p < corpus.latent_reliability.at(latent_worst)) latent_worst = w;
  }
  EXPECT_GT(em->worker_reliability.at(latent_best),
            em->worker_reliability.at(latent_worst));
}

TEST(DawidSkeneTest, BeatsOrMatchesMajorityOnSkewedCrowds) {
  // A crowd with a few experts and many near-chance workers: EM should
  // aggregate at least as accurately as plain majority.
  const Corpus corpus = MakeCorpus(400, 10, 4, 11, 0.3, 0.95);
  auto majority = MajorityVote(corpus.answers, 4);
  auto em = EstimateDawidSkene(corpus.answers, 4);
  ASSERT_TRUE(majority.ok());
  ASSERT_TRUE(em.ok());
  auto majority_acc = AggregationAccuracy(*majority, corpus.ground_truth);
  auto em_acc = AggregationAccuracy(em->answers, corpus.ground_truth);
  ASSERT_TRUE(majority_acc.ok());
  ASSERT_TRUE(em_acc.ok());
  EXPECT_GE(*em_acc + 0.02, *majority_acc)
      << "EM fell clearly below majority vote";
  EXPECT_GT(*em_acc, 0.6);
}

TEST(DawidSkeneTest, PerfectWorkersYieldPerfectAnswers) {
  const Corpus corpus = MakeCorpus(50, 5, 3, 3, 0.999, 0.9999);
  auto em = EstimateDawidSkene(corpus.answers, 3);
  ASSERT_TRUE(em.ok());
  auto acc = AggregationAccuracy(em->answers, corpus.ground_truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(DawidSkeneTest, RejectsZeroIterations) {
  EmOptions options;
  options.max_iterations = 0;
  EXPECT_FALSE(EstimateDawidSkene({A(1, 1, 0)}, 2, options).ok());
}

TEST(AggregationAccuracyTest, SkipsUnknownAndFailsOnNoOverlap) {
  std::vector<AggregatedAnswer> answers{{1, 0, 1.0}, {2, 1, 1.0}};
  std::unordered_map<uint64_t, uint32_t> truth{{1, 0}, {3, 1}};
  auto acc = AggregationAccuracy(answers, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);  // Only question 1 scored.
  EXPECT_FALSE(AggregationAccuracy(answers, {{9, 0}}).ok());
}

TEST(WeightedVoteTest, LatentWeightsBeatMajorityOnVerySkewedCrowd) {
  // Give the weighted vote the *latent* reliabilities (oracle setting):
  // it must do at least as well as unweighted majority.
  const Corpus corpus = MakeCorpus(400, 9, 2, 21, 0.35, 0.95);
  auto majority = MajorityVote(corpus.answers, 2);
  auto weighted =
      WeightedVote(corpus.answers, 2, corpus.latent_reliability);
  ASSERT_TRUE(majority.ok());
  ASSERT_TRUE(weighted.ok());
  auto macc = AggregationAccuracy(*majority, corpus.ground_truth);
  auto wacc = AggregationAccuracy(*weighted, corpus.ground_truth);
  ASSERT_TRUE(macc.ok());
  ASSERT_TRUE(wacc.ok());
  EXPECT_GE(*wacc + 0.01, *macc);
}

}  // namespace
}  // namespace hta
