// A2 — Ablation: the random pair-swap step of Algorithm 1 (Lines
// 12-16). Compares no swap, the paper's random swap (averaged over
// seeds), and the derandomized best-of-two variant.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: pair-swap step",
                     "Algorithm 1 Lines 12-16 (random vs best-of-two vs none)");

  size_t tasks = 600;
  size_t workers = 20;
  size_t seeds = 8;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      tasks = 200;
      workers = 8;
      seeds = 4;
      break;
    case BenchScale::kDefault:
      break;
    case BenchScale::kPaper:
      tasks = 4000;
      workers = 100;
      break;
  }

  const auto workload = bench::MakeOfflineWorkload(tasks / 20, 20, workers);
  auto problem =
      HtaProblem::Create(&workload.catalog.tasks, &workload.workers, 10);
  HTA_CHECK(problem.ok()) << problem.status();

  TableWriter table({"lsap", "swap mode", "qap objective (mean)",
                     "qap objective (stddev)"});
  for (const LsapMethod lsap : {LsapMethod::kExactJv, LsapMethod::kGreedy}) {
    for (const SwapMode swap :
         {SwapMode::kNone, SwapMode::kRandom, SwapMode::kBestOfTwo}) {
      RunningStat stat;
      const size_t trials = swap == SwapMode::kRandom ? seeds : 1;
      for (size_t s = 0; s < trials; ++s) {
        HtaSolverOptions options;
        options.lsap = lsap;
        options.swap = swap;
        options.seed = 100 + s;
        auto result = SolveHta(*problem, options);
        HTA_CHECK(result.ok()) << result.status();
        stat.Add(result->stats.qap_objective);
      }
      const char* swap_name = swap == SwapMode::kNone
                                  ? "none"
                                  : (swap == SwapMode::kRandom
                                         ? "random (paper)"
                                         : "best-of-two");
      table.AddRow({lsap == LsapMethod::kExactJv ? "exact" : "greedy",
                    swap_name, FmtDouble(stat.mean(), 1),
                    FmtDouble(stat.stddev(), 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected: best-of-two >= no-swap always; the random swap's "
               "mean sits between them.\nThe swap step's contribution is "
               "what lifts the diversity term captured via M_B.\n";
  return 0;
}
