// E3 — Fig. 2c: response time vs number of workers at fixed |T|.
// Paper parameters: |W| = 30..350, |T| = 8,000, Xmax = 20. The paper
// observes HTA-APP's Hungarian phase slowing as workers are added
// (fewer 0-weight dual edges → fewer early terminations) while HTA-GRE
// is largely insensitive.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("fig2c: response time vs |W|",
                     "Fig. 2c (|T|=8000, Xmax=20)");

  std::vector<size_t> worker_counts;
  size_t tasks = 8000;
  size_t xmax = 20;
  size_t tasks_per_group = 200;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      worker_counts = {5, 10};
      tasks = 300;
      xmax = 5;
      tasks_per_group = 20;
      break;
    case BenchScale::kDefault:
      worker_counts = {10, 30, 60, 100, 140};
      tasks = 1000;
      xmax = 10;
      tasks_per_group = 50;
      break;
    case BenchScale::kPaper:
      worker_counts = {30, 100, 150, 200, 250, 300, 350};
      break;
  }

  TableWriter table({"|W|", "hta-app (s)", "hta-gre (s)"});
  for (size_t w : worker_counts) {
    const auto workload = bench::MakeOfflineWorkload(
        tasks / tasks_per_group, tasks_per_group, w);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    auto app = SolveHtaApp(*problem, 42);
    auto gre = SolveHtaGre(*problem, 42);
    HTA_CHECK(app.ok()) << app.status();
    HTA_CHECK(gre.ok()) << gre.status();
    table.AddRow({FmtInt(static_cast<long long>(w)),
                  FmtDouble(app->stats.total_seconds),
                  FmtDouble(gre->stats.total_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: hta-app response time grows with |W| "
               "(the exact LSAP works harder as\nmore columns carry "
               "profit); hta-gre stays nearly flat (paper Fig. 2c).\n";
  return 0;
}
