// A14 — Ablation: cross-iteration warm-start solve path. With
// HTA_WARM_START=1 the engine seeds each iteration's local search from
// the due worker's surviving bundle (carry-over + delta repair) instead
// of re-running matching + greedy LSAP from scratch; this bench drives
// the same scripted deployment cold and warm at three pool-churn rates
// (the fraction of a bundle completed between refreshes:
// refresh_after_completions / xmax) and compares mean per-iteration
// solve time and per-iteration motivation. The auditor is forced on for
// both modes, so every carried seed and final assignment is
// re-validated; the bench CHECK-fails if any warm refresh's bundle is
// worth less than the cold deployment's bundle at the same refresh (the
// objective-no-worse contract, checked at every churn rate).
//
// The two deployments diverge after their first differing assignment,
// so their *estimated* (alpha, beta) — and with them the solver
// objectives in IterationRecord — drift onto incomparable scales.
// Quality is therefore judged off-policy: after every refresh the bench
// re-scores the displayed bundle under the worker's fixed ground-truth
// weights (extra_random_tasks = 0, so the display is exactly the
// optimized bundle).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/distance_oracle.h"
#include "core/motivation.h"
#include "engine/assignment_service.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct DriveConfig {
  size_t catalog_size = 2000;
  size_t workers = 6;
  size_t rounds = 3;
  size_t xmax = 20;
  size_t sample_cap = 1200;
  uint64_t seed = 90210;
};

struct DriveStats {
  size_t solver_iterations = 0;
  double mean_solve_seconds = 0.0;
  double mean_quality = 0.0;
  /// Fixed-weight motivation of the displayed bundle after each
  /// refresh, in (round, worker) order — the deployment-independent
  /// quality scale the warm-vs-cold CHECK compares on.
  std::vector<double> qualities;
  size_t seeded = 0;
  size_t carried = 0;
  size_t repaired = 0;
};

DriveStats Drive(const hta::Catalog& catalog,
                 const std::vector<hta::Worker>& profiles,
                 const hta::TaskDistanceOracle& oracle, bool warm_start,
                 size_t refresh, const DriveConfig& config) {
  using namespace hta;
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.xmax = config.xmax;
  // Display exactly the optimized bundle so Displayed() is the object
  // the bench scores.
  options.extra_random_tasks = 0;
  options.refresh_after_completions = refresh;
  options.max_tasks_per_iteration = config.sample_cap;
  options.seed = config.seed;
  options.warm_cache = true;
  options.warm_start = warm_start;

  AssignmentService service(&catalog.tasks, options);
  HTA_CHECK_EQ(service.options().warm_start, warm_start);

  std::vector<uint64_t> ids;
  ids.reserve(config.workers);
  for (size_t w = 0; w < config.workers; ++w) {
    ids.push_back(service.RegisterWorker(profiles[w].interests()));
  }
  DriveStats stats;
  // Each round every worker completes exactly `refresh` tasks, firing
  // one refresh solve per (worker, round) with a bundle churn of
  // refresh / xmax; the freshly displayed bundle is then scored under
  // the worker's ground-truth weights.
  for (size_t round = 0; round < config.rounds; ++round) {
    for (size_t w = 0; w < ids.size(); ++w) {
      const uint64_t id = ids[w];
      for (size_t c = 0; c < refresh; ++c) {
        const std::vector<size_t> displayed = service.Displayed(id);
        HTA_CHECK(!displayed.empty());
        HTA_CHECK(service.NotifyCompleted(id, displayed.front()).ok());
      }
      TaskBundle bundle;
      for (const size_t t : service.Displayed(id)) {
        bundle.push_back(static_cast<TaskIndex>(t));
      }
      stats.qualities.push_back(Motivation(bundle, profiles[w], oracle));
    }
  }

  double solve_sum = 0.0;
  for (const IterationRecord& record : service.iterations()) {
    if (record.task_count == 0) continue;  // Cold-start random bundles.
    ++stats.solver_iterations;
    solve_sum += record.solve_seconds;
    if (record.warm_seeded) ++stats.seeded;
    stats.carried += record.carried_tasks;
    stats.repaired += record.repaired_slots;
  }
  if (stats.solver_iterations > 0) {
    stats.mean_solve_seconds =
        solve_sum / static_cast<double>(stats.solver_iterations);
  }
  double quality_sum = 0.0;
  for (const double q : stats.qualities) quality_sum += q;
  if (!stats.qualities.empty()) {
    stats.mean_quality =
        quality_sum / static_cast<double>(stats.qualities.size());
  }
  return stats;
}

}  // namespace

int main() {
  using namespace hta;
  // The carry-over contract is only meaningful audited: force the
  // auditor on (before anything latches AuditEnabled) unless the caller
  // explicitly chose otherwise. And since this bench *is* the warm-start
  // comparison, it owns the knob — a global HTA_WARM_START would force
  // both arms onto one path.
  setenv("HTA_AUDIT", "1", /*overwrite=*/0);
  unsetenv("HTA_WARM_START");
  unsetenv("HTA_WARM_CACHE");  // warm_start requires the warm caches.
  bench::PrintBanner(
      "ablation: cross-iteration warm-start solve path",
      "online service under churn (Section V-C setup, warm-start extension)");

  DriveConfig config;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      config.catalog_size = 1000;
      config.workers = 3;
      config.rounds = 2;
      config.sample_cap = 400;
      break;
    case BenchScale::kDefault:
      break;  // Struct defaults.
    case BenchScale::kPaper:
      config.catalog_size = 10000;
      config.workers = 8;
      config.rounds = 4;
      break;
  }

  const bench::OfflineWorkload workload = bench::MakeOfflineWorkload(
      std::max<size_t>(config.catalog_size / 100, 1), 100, config.workers,
      /*seed=*/7 + config.catalog_size);
  // On-the-fly oracle is plenty for scoring Xmax-sized bundles.
  const TaskDistanceOracle oracle(&workload.catalog.tasks,
                                  DistanceKind::kJaccard);

  // Churn = refresh_after_completions / xmax: the bundle fraction a
  // worker completes before their refresh fires.
  const std::vector<size_t> refresh_steps = {config.xmax / 20,  // 5%
                                             config.xmax / 5,   // 20%
                                             config.xmax / 2};  // 50%
  TableWriter table({"churn", "mode", "solves", "mean solve (ms)",
                     "mean bundle motivation", "carried", "repaired",
                     "solve speedup"});
  for (const size_t refresh : refresh_steps) {
    const double churn = static_cast<double>(refresh) /
                         static_cast<double>(config.xmax);
    const DriveStats cold = Drive(workload.catalog, workload.workers, oracle,
                                  /*warm_start=*/false, refresh, config);
    const DriveStats warm = Drive(workload.catalog, workload.workers, oracle,
                                  /*warm_start=*/true, refresh, config);
    HTA_CHECK_EQ(warm.solver_iterations, cold.solver_iterations)
        << "warm start must not change the deployment's solve schedule";
    HTA_CHECK_EQ(warm.qualities.size(), cold.qualities.size());
    // Objective-no-worse, per refresh: the warm solve starts from the
    // carried bundles and only ever improves them, while the cold solve
    // rebuilds from scratch over a sample that lacks those survivors.
    for (size_t i = 0; i < warm.qualities.size(); ++i) {
      HTA_CHECK_GE(warm.qualities[i], cold.qualities[i] - 1e-9)
          << "warm refresh " << i << " fell below cold";
    }

    const double speedup = warm.mean_solve_seconds > 0.0
                               ? cold.mean_solve_seconds /
                                     warm.mean_solve_seconds
                               : 0.0;
    for (const bool is_warm : {false, true}) {
      const DriveStats& stats = is_warm ? warm : cold;
      table.AddRow({FmtDouble(churn * 100.0, 0) + "%",
                    is_warm ? "warm" : "cold",
                    FmtInt(static_cast<long long>(stats.solver_iterations)),
                    FmtDouble(stats.mean_solve_seconds * 1e3, 3),
                    FmtDouble(stats.mean_quality, 4),
                    FmtInt(static_cast<long long>(stats.carried)),
                    FmtInt(static_cast<long long>(stats.repaired)),
                    is_warm ? FmtDouble(speedup, 2) : "1.00"});
      bench::AppendBenchJson(
          "ablation_warm_start",
          {{"catalog",
            bench::JsonNum(static_cast<double>(config.catalog_size))},
           {"churn", bench::JsonNum(churn)},
           {"mode", bench::JsonStr(is_warm ? "warm" : "cold")},
           {"sample_cap",
            bench::JsonNum(static_cast<double>(config.sample_cap))},
           {"solver_iterations",
            bench::JsonNum(static_cast<double>(stats.solver_iterations))},
           {"mean_solve_seconds", bench::JsonNum(stats.mean_solve_seconds)},
           {"mean_bundle_motivation", bench::JsonNum(stats.mean_quality)},
           {"carried_tasks",
            bench::JsonNum(static_cast<double>(stats.carried))},
           {"repaired_slots",
            bench::JsonNum(static_cast<double>(stats.repaired))}},
          stats.mean_solve_seconds *
              static_cast<double>(stats.solver_iterations));
    }
    bench::AppendBenchJson(
        "ablation_warm_start",
        {{"catalog", bench::JsonNum(static_cast<double>(config.catalog_size))},
         {"churn", bench::JsonNum(churn)},
         {"mode", bench::JsonStr("summary")},
         {"sample_cap",
          bench::JsonNum(static_cast<double>(config.sample_cap))},
         {"solve_speedup", bench::JsonNum(speedup)}},
        (cold.mean_solve_seconds + warm.mean_solve_seconds) *
            static_cast<double>(cold.solver_iterations));
  }
  table.Print(std::cout);
  std::cout << "\nexpected: warm-started solves skip matching and the "
               "auxiliary LSAP, refining the\ncarried bundles instead — at "
               "low churn (most of the bundle survives) mean solve\ntime "
               "drops several-fold while no refreshed bundle is ever worth "
               "less than the\ncold deployment's at the same refresh "
               "(CHECKed above under fixed ground-truth\nweights, auditor "
               "on).\n";
  return 0;
}
