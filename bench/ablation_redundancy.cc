// A9 — Extension: redundancy and answer aggregation. The paper scores
// single contributions against ground truth; production platforms
// assign each question to k workers and aggregate. This bench sweeps
// the redundancy factor and compares plain majority voting against
// one-coin Dawid-Skene EM, with worker accuracies drawn from the same
// behavioral ranges as the online simulation.
#include <iostream>

#include "bench/bench_common.h"
#include "quality/aggregation.h"
#include "sim/behavior.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: redundancy + aggregation (extension)",
                     "beyond the paper: multi-worker quality assurance");

  size_t questions = 600;
  size_t workers = 40;
  std::vector<size_t> redundancies{1, 3, 5, 9};
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      questions = 100;
      workers = 12;
      redundancies = {1, 3};
      break;
    case BenchScale::kDefault:
      break;
    case BenchScale::kPaper:
      questions = 2000;
      workers = 100;
      break;
  }
  constexpr uint32_t kNumOptions = 4;

  Rng rng(77);
  // Latent worker accuracies from the behavioral parameter ranges.
  std::vector<double> accuracy;
  for (size_t w = 0; w < workers; ++w) {
    const BehaviorParams p = SampleBehaviorParams(&rng);
    accuracy.push_back(p.base_accuracy);
  }

  TableWriter table({"redundancy", "majority acc", "EM acc",
                     "EM reliability RMSE"});
  for (size_t k : redundancies) {
    std::vector<AnswerRecord> answers;
    std::unordered_map<uint64_t, uint32_t> truth;
    for (size_t q = 0; q < questions; ++q) {
      const uint32_t correct =
          static_cast<uint32_t>(rng.NextBounded(kNumOptions));
      truth[q] = correct;
      const std::vector<size_t> chosen =
          rng.SampleWithoutReplacement(workers, k);
      for (size_t w : chosen) {
        uint32_t answer = correct;
        if (!rng.NextBool(accuracy[w])) {
          answer = static_cast<uint32_t>(rng.NextBounded(kNumOptions - 1));
          if (answer >= correct) ++answer;
        }
        answers.push_back(AnswerRecord{q, static_cast<uint64_t>(w), answer});
      }
    }
    auto majority = MajorityVote(answers, kNumOptions);
    auto em = EstimateDawidSkene(answers, kNumOptions);
    HTA_CHECK(majority.ok()) << majority.status();
    HTA_CHECK(em.ok()) << em.status();
    auto majority_acc = AggregationAccuracy(*majority, truth);
    auto em_acc = AggregationAccuracy(em->answers, truth);
    HTA_CHECK(majority_acc.ok());
    HTA_CHECK(em_acc.ok());
    double rmse = 0.0;
    size_t n = 0;
    for (const auto& [worker, estimated] : em->worker_reliability) {
      const double diff = estimated - accuracy[worker];
      rmse += diff * diff;
      ++n;
    }
    rmse = n > 0 ? std::sqrt(rmse / static_cast<double>(n)) : 0.0;
    table.AddRow({FmtInt(static_cast<long long>(k)),
                  FmtPercent(*majority_acc), FmtPercent(*em_acc),
                  FmtDouble(rmse, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected: accuracy climbs with redundancy; EM matches or "
               "beats majority and its reliability\nestimates tighten "
               "(RMSE falls) as each worker answers more questions.\n";
  return 0;
}
