// A5 — Micro-benchmarks (google-benchmark): the hot kernels under the
// HTA pipeline — distance computation, set-diversity evaluation, greedy
// matching, and the LSAP solvers at small n.
#include <benchmark/benchmark.h>

#include "core/motivation.h"
#include "matching/lsap.h"
#include "matching/max_weight_matching.h"
#include "sim/catalog.h"
#include "util/rng.h"

namespace hta {
namespace {

Catalog MakeCatalog(size_t tasks) {
  CatalogOptions options;
  options.num_groups = std::max<size_t>(tasks / 20, 1);
  options.tasks_per_group = 20;
  options.vocabulary_size = 1000;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

void BM_JaccardDistance(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const size_t n = catalog.size();
  size_t i = 0;
  for (auto _ : state) {
    const double d = PairwiseTaskDiversity(
        DistanceKind::kJaccard, catalog.tasks[i % n],
        catalog.tasks[(i * 7 + 1) % n]);
    benchmark::DoNotOptimize(d);
    ++i;
  }
}
BENCHMARK(BM_JaccardDistance);

void BM_SetDiversity(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  TaskBundle bundle;
  for (TaskIndex t = 0; t < state.range(0); ++t) {
    bundle.push_back(static_cast<TaskIndex>((t * 3) % catalog.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetDiversity(bundle, oracle));
  }
}
BENCHMARK(BM_SetDiversity)->Arg(5)->Arg(15)->Arg(40);

void BM_PrecomputedOracleLookup(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const size_t n = catalog.size();
  auto oracle =
      TaskDistanceOracle::Precomputed(&catalog.tasks, DistanceKind::kJaccard);
  HTA_CHECK(oracle.ok());
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*oracle)(static_cast<TaskIndex>(i % n),
                  static_cast<TaskIndex>((i * 13 + 1) % n)));
    ++i;
  }
}
BENCHMARK(BM_PrecomputedOracleLookup);

void BM_GreedyMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Catalog catalog = MakeCatalog(n);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingOnTaskGraph(oracle));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(100)->Arg(200)->Arg(400);

void BM_LsapJv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n);
  for (double& v : m) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLsapJv(n, DenseProfit(n, &m)));
  }
}
BENCHMARK(BM_LsapJv)->Arg(50)->Arg(100)->Arg(200);

void BM_LsapGreedy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n);
  for (double& v : m) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLsapGreedy(n, DenseProfit(n, &m)));
  }
}
BENCHMARK(BM_LsapGreedy)->Arg(50)->Arg(100)->Arg(200);

void BM_LsapStructured(benchmark::State& state) {
  // HTA-shaped instance: profits confined to the first n/4 columns.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n, 0.0);
  std::vector<size_t> cols;
  for (size_t j = 0; j < n / 4; ++j) {
    cols.push_back(j);
    for (size_t i = 0; i < n; ++i) m[i * n + j] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveLsapStructured(n, DenseProfit(n, &m), cols));
  }
}
BENCHMARK(BM_LsapStructured)->Arg(100)->Arg(200)->Arg(400);

void BM_MotivationEval(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  const Worker worker(0, catalog.tasks[0].keywords(),
                      MotivationWeights{0.4, 0.6});
  TaskBundle bundle;
  for (TaskIndex t = 0; t < 15; ++t) {
    bundle.push_back(static_cast<TaskIndex>((t * 7) % catalog.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Motivation(bundle, worker, oracle));
  }
}
BENCHMARK(BM_MotivationEval);

}  // namespace
}  // namespace hta

BENCHMARK_MAIN();
