// A5 — Micro-benchmarks (google-benchmark): the hot kernels under the
// HTA pipeline — distance computation, set-diversity evaluation, greedy
// matching, the LSAP solvers at small n, and the local-search delta
// evaluators (incremental tables vs the naive reference).
#include <benchmark/benchmark.h>

#include <memory>

#include "assign/local_search.h"
#include "core/motivation.h"
#include "matching/lsap.h"
#include "matching/max_weight_matching.h"
#include "sim/catalog.h"
#include "util/rng.h"

namespace hta {
namespace {

Catalog MakeCatalog(size_t tasks) {
  CatalogOptions options;
  options.num_groups = std::max<size_t>(tasks / 20, 1);
  options.tasks_per_group = 20;
  options.vocabulary_size = 1000;
  auto c = GenerateCatalog(options);
  HTA_CHECK(c.ok());
  return std::move(*c);
}

void BM_JaccardDistance(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const size_t n = catalog.size();
  size_t i = 0;
  for (auto _ : state) {
    const double d = PairwiseTaskDiversity(
        DistanceKind::kJaccard, catalog.tasks[i % n],
        catalog.tasks[(i * 7 + 1) % n]);
    benchmark::DoNotOptimize(d);
    ++i;
  }
}
BENCHMARK(BM_JaccardDistance);

void BM_SetDiversity(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  TaskBundle bundle;
  for (TaskIndex t = 0; t < state.range(0); ++t) {
    bundle.push_back(static_cast<TaskIndex>((t * 3) % catalog.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetDiversity(bundle, oracle));
  }
}
BENCHMARK(BM_SetDiversity)->Arg(5)->Arg(15)->Arg(40);

void BM_PrecomputedOracleLookup(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const size_t n = catalog.size();
  auto oracle =
      TaskDistanceOracle::Precomputed(&catalog.tasks, DistanceKind::kJaccard);
  HTA_CHECK(oracle.ok());
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*oracle)(static_cast<TaskIndex>(i % n),
                  static_cast<TaskIndex>((i * 13 + 1) % n)));
    ++i;
  }
}
BENCHMARK(BM_PrecomputedOracleLookup);

void BM_GreedyMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Catalog catalog = MakeCatalog(n);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingOnTaskGraph(oracle));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(100)->Arg(200)->Arg(400);

void BM_LsapJv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n);
  for (double& v : m) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLsapJv(n, DenseProfit(n, &m)));
  }
}
BENCHMARK(BM_LsapJv)->Arg(50)->Arg(100)->Arg(200);

void BM_LsapGreedy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n);
  for (double& v : m) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLsapGreedy(n, DenseProfit(n, &m)));
  }
}
BENCHMARK(BM_LsapGreedy)->Arg(50)->Arg(100)->Arg(200);

void BM_LsapStructured(benchmark::State& state) {
  // HTA-shaped instance: profits confined to the first n/4 columns.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> m(n * n, 0.0);
  std::vector<size_t> cols;
  for (size_t j = 0; j < n / 4; ++j) {
    cols.push_back(j);
    for (size_t i = 0; i < n; ++i) m[i * n + j] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveLsapStructured(n, DenseProfit(n, &m), cols));
  }
}
BENCHMARK(BM_LsapStructured)->Arg(100)->Arg(200)->Arg(400);

/// Fixture for the delta-evaluation kernels: a 256-task catalog, 8
/// workers, and an assignment whose bundles hold `bundle_size` tasks
/// each; the remaining tasks are probe candidates.
struct DeltaFixture {
  Catalog catalog;
  std::vector<Worker> workers;
  std::unique_ptr<HtaProblem> problem;
  Assignment assignment;

  explicit DeltaFixture(size_t bundle_size) : catalog(MakeCatalog(256)) {
    Rng rng(11);
    for (WorkerIndex q = 0; q < 8; ++q) {
      const double alpha = 0.2 + 0.6 * rng.NextDouble();
      workers.emplace_back(q, catalog.tasks[q * 3].keywords(),
                           MotivationWeights{alpha, 1.0 - alpha});
    }
    auto p = HtaProblem::Create(&catalog.tasks, &workers, bundle_size);
    HTA_CHECK(p.ok()) << p.status();
    problem = std::make_unique<HtaProblem>(std::move(*p));
    assignment.bundles.assign(workers.size(), {});
    TaskIndex next = 0;
    for (TaskBundle& bundle : assignment.bundles) {
      for (size_t i = 0; i < bundle_size; ++i) bundle.push_back(next++);
    }
  }
};

void BM_ReplaceDeltaIncremental(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const BundleStatsCache cache(*f.problem, &f.assignment);
  const size_t first_free = f.workers.size() * state.range(0);
  size_t i = 0;
  for (auto _ : state) {
    const TaskIndex in = static_cast<TaskIndex>(
        first_free + (i * 7) % (f.catalog.size() - first_free));
    benchmark::DoNotOptimize(
        cache.ReplaceDelta(static_cast<WorkerIndex>(i % f.workers.size()),
                           i % static_cast<size_t>(state.range(0)), in));
    ++i;
  }
}
BENCHMARK(BM_ReplaceDeltaIncremental)->Arg(5)->Arg(20);

void BM_ReplaceDeltaNaive(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const size_t first_free = f.workers.size() * state.range(0);
  size_t i = 0;
  for (auto _ : state) {
    const WorkerIndex q = static_cast<WorkerIndex>(i % f.workers.size());
    const TaskIndex in = static_cast<TaskIndex>(
        first_free + (i * 7) % (f.catalog.size() - first_free));
    benchmark::DoNotOptimize(
        NaiveReplaceDelta(*f.problem, f.assignment.bundles[q],
                          i % static_cast<size_t>(state.range(0)), in, q));
    ++i;
  }
}
BENCHMARK(BM_ReplaceDeltaNaive)->Arg(5)->Arg(20);

void BM_InsertDeltaIncremental(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const BundleStatsCache cache(*f.problem, &f.assignment);
  const size_t first_free = f.workers.size() * state.range(0);
  size_t i = 0;
  for (auto _ : state) {
    const TaskIndex in = static_cast<TaskIndex>(
        first_free + (i * 7) % (f.catalog.size() - first_free));
    benchmark::DoNotOptimize(cache.InsertDelta(
        static_cast<WorkerIndex>(i % f.workers.size()), in));
    ++i;
  }
}
BENCHMARK(BM_InsertDeltaIncremental)->Arg(5)->Arg(20);

void BM_InsertDeltaNaive(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const size_t first_free = f.workers.size() * state.range(0);
  size_t i = 0;
  for (auto _ : state) {
    const WorkerIndex q = static_cast<WorkerIndex>(i % f.workers.size());
    const TaskIndex in = static_cast<TaskIndex>(
        first_free + (i * 7) % (f.catalog.size() - first_free));
    benchmark::DoNotOptimize(
        NaiveInsertDelta(*f.problem, f.assignment.bundles[q], in, q));
    ++i;
  }
}
BENCHMARK(BM_InsertDeltaNaive)->Arg(5)->Arg(20);

void BM_ExchangeDeltaIncremental(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const BundleStatsCache cache(*f.problem, &f.assignment);
  const size_t bundle_size = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const WorkerIndex q1 = static_cast<WorkerIndex>(i % (f.workers.size() - 1));
    benchmark::DoNotOptimize(
        cache.ExchangeDelta(q1, i % bundle_size,
                            static_cast<WorkerIndex>(q1 + 1),
                            (i * 3 + 1) % bundle_size));
    ++i;
  }
}
BENCHMARK(BM_ExchangeDeltaIncremental)->Arg(5)->Arg(20);

void BM_ExchangeDeltaNaive(benchmark::State& state) {
  DeltaFixture f(static_cast<size_t>(state.range(0)));
  const size_t bundle_size = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const WorkerIndex q1 = static_cast<WorkerIndex>(i % (f.workers.size() - 1));
    const WorkerIndex q2 = static_cast<WorkerIndex>(q1 + 1);
    const size_t p1 = i % bundle_size;
    const size_t p2 = (i * 3 + 1) % bundle_size;
    const TaskBundle& b1 = f.assignment.bundles[q1];
    const TaskBundle& b2 = f.assignment.bundles[q2];
    benchmark::DoNotOptimize(
        NaiveReplaceDelta(*f.problem, b1, p1, b2[p2], q1) +
        NaiveReplaceDelta(*f.problem, b2, p2, b1[p1], q2));
    ++i;
  }
}
BENCHMARK(BM_ExchangeDeltaNaive)->Arg(5)->Arg(20);

void BM_MotivationEval(benchmark::State& state) {
  const Catalog catalog = MakeCatalog(256);
  const TaskDistanceOracle oracle(&catalog.tasks, DistanceKind::kJaccard);
  const Worker worker(0, catalog.tasks[0].keywords(),
                      MotivationWeights{0.4, 0.6});
  TaskBundle bundle;
  for (TaskIndex t = 0; t < 15; ++t) {
    bundle.push_back(static_cast<TaskIndex>((t * 7) % catalog.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Motivation(bundle, worker, oracle));
  }
}
BENCHMARK(BM_MotivationEval);

}  // namespace
}  // namespace hta

BENCHMARK_MAIN();
