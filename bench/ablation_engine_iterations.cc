// A13 — Ablation: warm vs cold engine iterations. The assignment
// service's warm catalog cache (packed catalog rows + persistent
// distance triangle + zero-copy subset views) amortizes per-iteration
// problem construction across the deployment; this bench drives a
// scripted deployment against the same catalog twice — warm and cold —
// and compares per-iteration setup (problem-construction) and total
// iteration time. Both runs are bit-identical in every assignment; the
// bench CHECK-fails if the objective streams diverge.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "engine/assignment_service.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct DriveConfig {
  size_t workers = 6;
  size_t rounds = 3;
  size_t completions_per_round = 4;
  size_t sample_cap = 800;
  uint64_t seed = 31337;
};

struct DriveStats {
  size_t solver_iterations = 0;
  double mean_setup_seconds = 0.0;
  double mean_solve_seconds = 0.0;
  double build_seconds = 0.0;  // Service construction (cache build).
  double total_seconds = 0.0;
  double motivation_sum = 0.0;  // Bit-identity probe across modes.
};

DriveStats Drive(const hta::Catalog& catalog,
                 const std::vector<hta::Worker>& profiles, bool warm,
                 const DriveConfig& config) {
  using namespace hta;
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.xmax = 10;
  options.extra_random_tasks = 3;
  options.refresh_after_completions = config.completions_per_round;
  options.max_tasks_per_iteration = config.sample_cap;
  options.seed = config.seed;
  options.warm_cache = warm;

  DriveStats stats;
  WallTimer total_timer;
  WallTimer build_timer;
  AssignmentService service(&catalog.tasks, options);
  stats.build_seconds = build_timer.ElapsedSeconds();

  std::vector<uint64_t> ids;
  ids.reserve(profiles.size());
  for (size_t w = 0; w < config.workers; ++w) {
    ids.push_back(service.RegisterWorker(profiles[w].interests()));
  }
  // Each round every worker submits enough completions to trigger a
  // refresh, so each (worker, round) pair costs one strategy solve.
  for (size_t round = 0; round < config.rounds; ++round) {
    for (uint64_t id : ids) {
      for (size_t c = 0; c < config.completions_per_round; ++c) {
        const std::vector<size_t> displayed = service.Displayed(id);
        if (displayed.empty()) break;
        HTA_CHECK(service.NotifyCompleted(id, displayed.front()).ok());
      }
    }
  }
  stats.total_seconds = total_timer.ElapsedSeconds();

  double setup_sum = 0.0;
  double solve_sum = 0.0;
  for (const IterationRecord& record : service.iterations()) {
    if (record.task_count == 0) continue;  // Cold-start random bundles.
    ++stats.solver_iterations;
    setup_sum += record.setup_seconds;
    solve_sum += record.solve_seconds;
    stats.motivation_sum += record.motivation;
  }
  if (stats.solver_iterations > 0) {
    stats.mean_setup_seconds =
        setup_sum / static_cast<double>(stats.solver_iterations);
    stats.mean_solve_seconds =
        solve_sum / static_cast<double>(stats.solver_iterations);
  }
  return stats;
}

}  // namespace

int main() {
  using namespace hta;
  // This ablation certifies the cache layer's bit-identity, which by
  // design does not survive the assignment-changing warm-start path —
  // pin it off even if the launch environment opted in globally
  // (ablation_warm_start is the bench for that path).
  setenv("HTA_WARM_START", "0", /*overwrite=*/1);
  bench::PrintBanner("ablation: warm vs cold engine iterations",
                     "online service cost per iteration (Section V-C setup)");

  std::vector<size_t> catalog_sizes;
  DriveConfig config;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      catalog_sizes = {1000, 2000};
      config.workers = 3;
      config.rounds = 2;
      config.sample_cap = 400;
      break;
    case BenchScale::kDefault:
      catalog_sizes = {2000, 10000};
      config.workers = 6;
      config.rounds = 3;
      config.sample_cap = 1200;
      break;
    case BenchScale::kPaper:
      catalog_sizes = {2000, 10000, 50000};
      config.workers = 8;
      config.rounds = 4;
      config.sample_cap = 1200;
      break;
  }

  TableWriter table({"catalog", "mode", "cache build (s)", "solves",
                     "mean setup (ms)", "mean solve (ms)", "setup speedup"});
  for (const size_t catalog_size : catalog_sizes) {
    const bench::OfflineWorkload workload = bench::MakeOfflineWorkload(
        std::max<size_t>(catalog_size / 100, 1), 100, config.workers,
        /*seed=*/7 + catalog_size);

    const DriveStats cold = Drive(workload.catalog, workload.workers,
                                  /*warm=*/false, config);
    const DriveStats warm = Drive(workload.catalog, workload.workers,
                                  /*warm=*/true, config);
    // Warm and cold must be bit-identical deployments: same solves,
    // same objective stream.
    HTA_CHECK_EQ(warm.solver_iterations, cold.solver_iterations);
    HTA_CHECK_EQ(warm.motivation_sum, cold.motivation_sum);

    const double setup_speedup =
        warm.mean_setup_seconds > 0.0
            ? cold.mean_setup_seconds / warm.mean_setup_seconds
            : 0.0;
    for (const bool is_warm : {false, true}) {
      const DriveStats& stats = is_warm ? warm : cold;
      table.AddRow({FmtInt(static_cast<long long>(catalog_size)),
                    is_warm ? "warm" : "cold",
                    FmtDouble(stats.build_seconds, 3),
                    FmtInt(static_cast<long long>(stats.solver_iterations)),
                    FmtDouble(stats.mean_setup_seconds * 1e3, 3),
                    FmtDouble(stats.mean_solve_seconds * 1e3, 3),
                    is_warm ? FmtDouble(setup_speedup, 2) : "1.00"});
      bench::AppendBenchJson(
          "ablation_engine_iterations",
          {{"catalog", bench::JsonNum(static_cast<double>(catalog_size))},
           {"mode", bench::JsonStr(is_warm ? "warm" : "cold")},
           {"sample_cap",
            bench::JsonNum(static_cast<double>(config.sample_cap))},
           {"solver_iterations",
            bench::JsonNum(static_cast<double>(stats.solver_iterations))},
           {"build_seconds", bench::JsonNum(stats.build_seconds)},
           {"mean_setup_seconds", bench::JsonNum(stats.mean_setup_seconds)},
           {"mean_solve_seconds", bench::JsonNum(stats.mean_solve_seconds)}},
          stats.total_seconds);
    }
    // The speedup is a property of the warm/cold *pair*, not of either
    // mode's run — stamping it on both rows used to make the cold row
    // claim the warm row's ratio. One summary record carries it.
    bench::AppendBenchJson(
        "ablation_engine_iterations",
        {{"catalog", bench::JsonNum(static_cast<double>(catalog_size))},
         {"mode", bench::JsonStr("summary")},
         {"sample_cap", bench::JsonNum(static_cast<double>(config.sample_cap))},
         {"setup_speedup", bench::JsonNum(setup_speedup)}},
        cold.total_seconds + warm.total_seconds);
  }
  table.Print(std::cout);
  std::cout << "\nexpected: identical assignments in both modes (the bench "
               "CHECKs the objective\nstream); warm iterations skip the "
               "per-iteration task materialization, so mean\nsetup drops "
               "several-fold and the one-time cache build amortizes across "
               "the\ndeployment.\n";
  return 0;
}
