// A4 — Ablation: the distance metric behind d() and rel(). The paper
// uses Jaccard and requires a metric for its guarantees; this bench
// compares metrics (and the non-metric Dice) on the same workload.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: distance metric",
                     "Section II metric choice (Jaccard default)");

  size_t tasks = 600;
  size_t workers = 20;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      tasks = 200;
      workers = 8;
      break;
    case BenchScale::kDefault:
      break;
    case BenchScale::kPaper:
      tasks = 4000;
      workers = 100;
      break;
  }
  const auto workload = bench::MakeOfflineWorkload(tasks / 20, 20, workers);

  TableWriter table({"metric", "is metric", "hta-gre motivation",
                     "hta-app motivation", "gre/app", "gre time (ms)"});
  for (const DistanceKind kind :
       {DistanceKind::kJaccard, DistanceKind::kHamming,
        DistanceKind::kCosineAngular, DistanceKind::kDice}) {
    auto problem = HtaProblem::Create(&workload.catalog.tasks,
                                      &workload.workers, 10, kind,
                                      /*allow_non_metric=*/true);
    HTA_CHECK(problem.ok()) << problem.status();
    auto gre = SolveHtaGre(*problem, 42);
    auto app = SolveHtaApp(*problem, 42);
    HTA_CHECK(gre.ok()) << gre.status();
    HTA_CHECK(app.ok()) << app.status();
    table.AddRow({DistanceKindName(kind), IsMetric(kind) ? "yes" : "NO",
                  FmtDouble(gre->stats.motivation, 1),
                  FmtDouble(app->stats.motivation, 1),
                  FmtDouble(gre->stats.motivation / app->stats.motivation, 3),
                  FmtDouble(gre->stats.total_seconds * 1e3, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nnote: absolute objectives are not comparable across "
               "metrics (different scales);\nthe gre/app ratio staying "
               "near 1 shows the greedy approximation is metric-robust.\n"
               "Dice is included to show the pipeline runs on non-metrics "
               "too — without guarantees.\n";
  return 0;
}
