// E1 — Fig. 2a: response time vs number of tasks, with the per-phase
// breakdown (Matching vs LSAP) the paper plots as stacked bars.
// Paper parameters: |T| = 4,000..10,000 (200 tasks/group), |W| = 200,
// Xmax = 20. Default scale shrinks |T| so the cubic HTA-APP phase stays
// laptop-friendly; the asymptotic separation is already visible.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("fig2a: response time vs |T|",
                     "Fig. 2a (|W|=200, Xmax=20, 200 task groups)");

  std::vector<size_t> task_counts;
  size_t workers = 200;
  size_t xmax = 20;
  size_t tasks_per_group = 200;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      task_counts = {200, 400};
      workers = 10;
      xmax = 5;
      tasks_per_group = 20;
      break;
    case BenchScale::kDefault:
      task_counts = {400, 800, 1200, 1600};
      workers = 40;
      xmax = 10;
      tasks_per_group = 50;
      break;
    case BenchScale::kPaper:
      task_counts = {4000, 5000, 6000, 7000, 8000, 9000, 10000};
      break;
  }

  TableWriter table({"|T|", "algo", "matching (s)", "lsap (s)", "total (s)"});
  for (size_t n : task_counts) {
    const auto workload = bench::MakeOfflineWorkload(
        n / tasks_per_group, tasks_per_group, workers);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    for (const bool use_app : {true, false}) {
      auto result =
          use_app ? SolveHtaApp(*problem, 42) : SolveHtaGre(*problem, 42);
      HTA_CHECK(result.ok()) << result.status();
      table.AddRow({FmtInt(static_cast<long long>(n)),
                    use_app ? "hta-app" : "hta-gre",
                    FmtDouble(result->stats.matching_seconds),
                    FmtDouble(result->stats.lsap_seconds),
                    FmtDouble(result->stats.total_seconds)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: hta-app's LSAP phase grows ~|T|^3 while "
               "hta-gre grows ~|T|^2 log |T|;\nthe matching phase is "
               "identical for both (paper: hta-gre wins, gap widens with "
               "|T|).\n";
  return 0;
}
