// A7 — Ablation: sequential vs concurrent sessions. The paper's live
// deployment ran HITs concurrently, so one assignment iteration pools
// several available workers (|W^i| > 1); this bench quantifies the
// pooling and checks that the headline strategy ranking survives
// concurrency.
#include <iostream>

#include "bench/bench_common.h"
#include "sim/online_experiment.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: sequential vs concurrent sessions",
                     "deployment realism (paper ran overlapping HITs)");

  OnlineExperimentOptions options;
  options.seed = 4242;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      options.sessions_per_strategy = 3;
      options.session.max_minutes = 6.0;
      options.catalog.num_groups = 15;
      options.catalog.tasks_per_group = 40;
      break;
    case BenchScale::kDefault:
      options.sessions_per_strategy = 10;
      options.session.max_minutes = 20.0;
      break;
    case BenchScale::kPaper:
      options.sessions_per_strategy = 20;
      options.session.max_minutes = 30.0;
      break;
  }
  options.strategies = {StrategyKind::kHtaGre, StrategyKind::kHtaGreRel,
                        StrategyKind::kHtaGreDiv};

  TableWriter table({"mode", "strategy", "quality", "tasks",
                     "mean session (min)", "peak sessions"});
  for (const bool concurrent : {false, true}) {
    OnlineExperimentOptions run_options = options;
    run_options.concurrent_sessions = concurrent;
    run_options.arrival_rate_per_min = 1.0;
    if (concurrent) run_options.service.min_batch_workers = 3;
    const OnlineExperimentResult result = RunOnlineExperiment(run_options);
    for (const StrategyCurves& c : result.curves) {
      const double quality =
          c.total_questions > 0
              ? static_cast<double>(c.total_correct) / c.total_questions
              : 0.0;
      table.AddRow({concurrent ? "concurrent" : "sequential",
                    StrategyName(c.kind), FmtPercent(quality),
                    FmtInt(static_cast<long long>(c.total_tasks)),
                    FmtDouble(Summarize(c.session_duration_minutes).mean, 1),
                    FmtInt(static_cast<long long>(c.max_concurrent_sessions))});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected: the strategy ranking (div best quality, rel "
               "worst, gre best compromise)\nis stable across both session "
               "schedules; concurrent iterations pool several workers\ninto "
               "one HTA solve.\n";
  return 0;
}
