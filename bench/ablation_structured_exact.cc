// A6 — Extension: the structured exact LSAP (rectangular solve over
// worker-clique columns only) vs the paper's square exact solve and
// the greedy approximation, inside the full HTA pipeline. Shows that
// exactness does not require the cubic cost the paper pays — the
// HTA profit matrix is low-rank in columns.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: structured exact LSAP (extension)",
                     "beyond the paper: exact solve in O((|W|Xmax)^2 |T|)");

  std::vector<size_t> sizes;
  size_t workers = 40;
  size_t xmax = 10;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {200, 400};
      workers = 10;
      xmax = 5;
      break;
    case BenchScale::kDefault:
      sizes = {400, 800, 1600};
      break;
    case BenchScale::kPaper:
      sizes = {2000, 4000, 8000};
      workers = 200;
      xmax = 20;
      break;
  }

  TableWriter table({"|T|", "variant", "lsap (s)", "total (s)",
                     "qap objective"});
  for (size_t n : sizes) {
    const auto workload = bench::MakeOfflineWorkload(n / 20, 20, workers);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    for (const LsapMethod method :
         {LsapMethod::kExactJv, LsapMethod::kExactStructured,
          LsapMethod::kGreedy}) {
      HtaSolverOptions options;
      options.lsap = method;
      options.swap = SwapMode::kNone;  // Isolate the LSAP contribution.
      auto result = SolveHta(*problem, options);
      HTA_CHECK(result.ok()) << result.status();
      table.AddRow({FmtInt(static_cast<long long>(n)), SolverName(options),
                    FmtDouble(result->stats.lsap_seconds),
                    FmtDouble(result->stats.total_seconds),
                    FmtDouble(result->stats.qap_objective, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected: hta-app+rect solves the auxiliary LSAP to the "
               "same optimum as hta-app (both exact;\nfinal objectives may "
               "differ slightly across tie-equivalent optima) at a fraction "
               "of the LSAP\ntime; greedy remains fastest but approximate.\n";
  return 0;
}
