// A1 — Ablation: LSAP solver choice inside the HTA pipeline. Compares
// the exact Jonker-Volgenant solve (HTA-APP), the simple Hungarian
// reference, the greedy 1/2-approximation (HTA-GRE), and the auction
// heuristic on the same auxiliary LSAP instances.
#include <iostream>

#include "bench/bench_common.h"
#include "matching/lsap.h"
#include "matching/max_weight_matching.h"
#include "qap/qap_view.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: LSAP solvers",
                     "design choice behind HTA-APP vs HTA-GRE (Section IV)");

  std::vector<size_t> sizes;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {100, 200};
      break;
    case BenchScale::kDefault:
      sizes = {200, 400, 800};
      break;
    case BenchScale::kPaper:
      sizes = {500, 1000, 2000, 4000};
      break;
  }

  TableWriter table(
      {"n", "solver", "profit", "vs exact", "time (ms)"});
  for (size_t n : sizes) {
    const auto workload =
        bench::MakeOfflineWorkload(n / 20, 20, std::max<size_t>(n / 40, 2));
    auto problem = HtaProblem::Create(&workload.catalog.tasks,
                                      &workload.workers, 10);
    HTA_CHECK(problem.ok()) << problem.status();
    const QapView view(&*problem);

    // Build the same auxiliary profit HTA uses (Algorithm 1, Line 10).
    const GraphMatching mb = GreedyMatchingOnTaskGraph(problem->oracle());
    std::vector<double> bm(view.n(), 0.0);
    for (const auto& [u, v] : mb.edges) {
      bm[u] = bm[v] = problem->oracle()(u, v);
    }
    auto profit = [&](size_t k, size_t l) {
      return bm[k] * view.DegA(l) + view.C(k, l);
    };
    const size_t dim = view.n();
    std::vector<double> dense(dim * dim);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) dense[i * dim + j] = profit(i, j);
    }

    double exact_profit = 0.0;
    auto run = [&](const char* name, auto solve) {
      WallTimer timer;
      const LsapSolution s = solve();
      const double ms = timer.ElapsedMillis();
      if (std::string(name) == "jv (exact)") exact_profit = s.profit;
      table.AddRow({FmtInt(static_cast<long long>(dim)), name,
                    FmtDouble(s.profit, 1),
                    exact_profit > 0.0
                        ? FmtDouble(s.profit / exact_profit, 4)
                        : "-",
                    FmtDouble(ms, 1)});
    };
    run("jv (exact)", [&] { return SolveLsapJv(dim, profit); });
    run("hungarian (exact)", [&] { return SolveLsapHungarian(dim, dense); });
    run("greedy (1/2)", [&] {
      const std::vector<size_t> cols = view.WorkerColumns();
      return SolveLsapGreedy(dim, profit, &cols);
    });
    run("auction", [&] { return SolveLsapAuction(dim, dense); });
  }
  table.Print(std::cout);
  std::cout << "\nexpected: exact solvers agree; greedy trades a few "
               "percent of profit for a large speedup;\nauction is "
               "near-exact but slower than greedy on these degenerate "
               "(many-zero-column) instances.\n";
  return 0;
}
