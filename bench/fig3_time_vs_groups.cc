// E4 — Fig. 3: effect of task diversity — response time vs the number
// of task groups at a fixed number of tasks. More groups → more
// distinct pairwise diversities → more distinct f_{k,l} values → the
// exact LSAP loses its early-termination shortcuts; the greedy LSAP is
// oblivious. (Paper caption: |T| = 10^3, |W| = 300, Xmax = 20; the
// text mentions 10^4 — we follow the caption at paper scale and note
// the discrepancy in EXPERIMENTS.md.)
#include <algorithm>
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("fig3: response time vs #task groups",
                     "Fig. 3 (|T|=1000, |W|=300, Xmax=20)");

  std::vector<size_t> group_counts;
  size_t tasks = 1000;
  size_t workers = 300;
  size_t xmax = 20;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      group_counts = {5, 50};
      tasks = 300;
      workers = 10;
      xmax = 5;
      break;
    case BenchScale::kDefault:
      group_counts = {10, 100, 400, 1200};
      tasks = 1200;
      workers = 40;
      xmax = 10;
      break;
    case BenchScale::kPaper:
      group_counts = {10, 100, 1000, 10000};
      tasks = 10000;
      break;
  }

  TableWriter table({"#groups", "hta-app (s)", "hta-gre (s)"});
  for (size_t groups : group_counts) {
    const size_t effective_groups = std::min(groups, tasks);
    const auto workload = bench::MakeOfflineWorkload(
        effective_groups, tasks / effective_groups, workers);
    // Fix xmax so every sweep point solves the same-sized problem.
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    auto app = SolveHtaApp(*problem, 42);
    auto gre = SolveHtaGre(*problem, 42);
    HTA_CHECK(app.ok()) << app.status();
    HTA_CHECK(gre.ok()) << gre.status();
    table.AddRow({FmtInt(static_cast<long long>(groups)),
                  FmtDouble(app->stats.total_seconds),
                  FmtDouble(gre->stats.total_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: hta-app slows as groups (task diversity) "
               "increase; hta-gre is oblivious\nto the diversity of f "
               "values (paper Fig. 3).\n";
  return 0;
}
