// A12 — Ablation: batched SoA distance kernels (core/packed_set.h) vs
// the per-pair scalar VectorDistance path, for every DistanceKind, over
// the three hot sweep shapes behind the Fig. 2 scaling runs:
//   all_pairs   — the triangular precomputed-cache fill
//                 (TaskDistanceOracle::Precomputed);
//   edges       — the fused positive-weight diversity-edge emission
//                 (BuildDiversityEdges);
//   one_vs_many — one task's distance row against the whole catalog
//                 (dense QAP B rows, online re-solve probes).
// Every comparison also asserts the two paths produce identical
// results, so the bench doubles as a coarse equivalence check.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/distance_oracle.h"
#include "core/packed_set.h"
#include "matching/max_weight_matching.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: batched vs scalar distance kernels",
                     "O(|T|^2) / O(|T|*|W|) sweeps behind Fig. 2");

  std::vector<size_t> sizes;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {500};
      break;
    case BenchScale::kDefault:
      sizes = {2000, 4000};
      break;
    case BenchScale::kPaper:
      sizes = {2000, 4000, 10000};
      break;
  }
  // The edge list holds ~n^2/2 12-byte entries: ~96 MB at |T| = 4000
  // but ~600 MB at 10^4, so the edge-emission comparison caps at 4000
  // (the cache-fill sweep covers the larger sizes).
  constexpr size_t kEdgeSweepCap = 4000;
  // Query rows timed by the one-vs-many sweep.
  constexpr size_t kQueryRows = 64;

  const DistanceKind kinds[] = {DistanceKind::kJaccard, DistanceKind::kDice,
                                DistanceKind::kHamming,
                                DistanceKind::kCosineAngular};

  TableWriter table({"|T|", "kind", "sweep", "max_threads", "scalar (ms)",
                     "batched (ms)", "speedup"});

  const auto record = [&](size_t n, DistanceKind kind, const char* sweep,
                          size_t max_threads, double scalar_ms,
                          double batched_ms) {
    table.AddRow({FmtInt(static_cast<long long>(n)), DistanceKindName(kind),
                  sweep, FmtInt(static_cast<long long>(max_threads)),
                  FmtDouble(scalar_ms, 1), FmtDouble(batched_ms, 1),
                  FmtDouble(scalar_ms / batched_ms, 2)});
    for (const bool batched : {false, true}) {
      bench::AppendBenchJson(
          "ablation_distance_kernels",
          {{"n", bench::JsonNum(static_cast<double>(n))},
           {"kind", bench::JsonStr(DistanceKindName(kind))},
           {"sweep", bench::JsonStr(sweep)},
           {"kernel", bench::JsonStr(batched ? "batched" : "scalar")},
           {"max_threads",
            bench::JsonNum(static_cast<double>(max_threads))},
           {"speedup", bench::JsonNum(scalar_ms / batched_ms)}},
          (batched ? batched_ms : scalar_ms) / 1000.0);
    }
  };

  for (const size_t n : sizes) {
    const auto workload = bench::MakeOfflineWorkload(n / 20, 20, n / 40);
    const std::vector<Task>& tasks = workload.catalog.tasks;
    const TaskDistanceOracle* oracle = nullptr;

    for (const DistanceKind kind : kinds) {
      const TaskDistanceOracle on_the_fly(&tasks, kind);
      oracle = &on_the_fly;

      // --- all_pairs: triangular precomputed-cache fill, serial and
      // pool-parallel (the fill partitions deterministically, so the
      // caches are identical).
      for (const size_t max_threads : {size_t{1}, size_t{0}}) {
        WallTimer timer;
        auto scalar = TaskDistanceOracle::Precomputed(
            &tasks, kind, size_t{4} << 30, max_threads,
            DistanceBackend::kScalar);
        const double scalar_ms = timer.ElapsedMillis();
        HTA_CHECK(scalar.ok()) << scalar.status();
        timer.Restart();
        auto batched = TaskDistanceOracle::Precomputed(
            &tasks, kind, size_t{4} << 30, max_threads,
            DistanceBackend::kBatched);
        const double batched_ms = timer.ElapsedMillis();
        HTA_CHECK(batched.ok()) << batched.status();
        for (size_t i = 0; i < tasks.size(); i += 97) {
          for (size_t j = i + 1; j < tasks.size(); j += 101) {
            HTA_CHECK((*scalar)(static_cast<TaskIndex>(i),
                                static_cast<TaskIndex>(j)) ==
                      (*batched)(static_cast<TaskIndex>(i),
                                 static_cast<TaskIndex>(j)))
                << "cache mismatch at (" << i << ", " << j << ")";
          }
        }
        record(n, kind, "all_pairs", max_threads, scalar_ms, batched_ms);
      }

      // --- edges: fused positive-weight emission vs per-pair oracle
      // calls, single-thread (the acceptance configuration).
      if (n <= kEdgeSweepCap) {
        WallTimer timer;
        const std::vector<WeightedEdge> scalar_edges = BuildDiversityEdges(
            *oracle, /*max_threads=*/1, DistanceBackend::kScalar);
        const double scalar_ms = timer.ElapsedMillis();
        timer.Restart();
        const std::vector<WeightedEdge> batched_edges = BuildDiversityEdges(
            *oracle, /*max_threads=*/1, DistanceBackend::kBatched);
        const double batched_ms = timer.ElapsedMillis();
        HTA_CHECK(scalar_edges.size() == batched_edges.size());
        for (size_t e = 0; e < scalar_edges.size(); ++e) {
          HTA_CHECK(scalar_edges[e].u == batched_edges[e].u &&
                    scalar_edges[e].v == batched_edges[e].v &&
                    scalar_edges[e].weight == batched_edges[e].weight)
              << "edge mismatch at " << e;
        }
        record(n, kind, "edges", 1, scalar_ms, batched_ms);
      }

      // --- one_vs_many: kQueryRows distance rows against the catalog.
      {
        const PackedSetMatrix packed = PackedSetMatrix::FromTasks(tasks);
        const size_t rows = std::min(tasks.size(), kQueryRows);
        std::vector<double> scalar_row(tasks.size());
        std::vector<double> batched_row(tasks.size());
        WallTimer timer;
        for (size_t i = 0; i < rows; ++i) {
          for (size_t j = 0; j < tasks.size(); ++j) {
            scalar_row[j] =
                i == j ? 0.0 : PairwiseTaskDiversity(kind, tasks[i], tasks[j]);
          }
        }
        const double scalar_ms = timer.ElapsedMillis();
        timer.Restart();
        for (size_t i = 0; i < rows; ++i) {
          OneVsManyDistances(packed, i, kind, batched_row.data(),
                             /*max_threads=*/1);
        }
        const double batched_ms = timer.ElapsedMillis();
        // batched_row holds the last queried row; re-derive its scalar
        // twin for the equivalence check.
        const size_t last = rows - 1;
        for (size_t j = 0; j < tasks.size(); ++j) {
          const double expect =
              last == j ? 0.0
                        : PairwiseTaskDiversity(kind, tasks[last], tasks[j]);
          HTA_CHECK(batched_row[j] == expect)
              << "one-vs-many mismatch at (" << last << ", " << j << ")";
        }
        record(n, kind, "one_vs_many", 1, scalar_ms, batched_ms);
      }
    }
  }

  table.Print(std::cout);
  std::cout << "\nexpected: the batched SoA kernels beat the per-pair "
               "scalar path by >= 5x on the\nall-pairs and edge sweeps "
               "(one fused popcount loop per pair, no virtual-call or\n"
               "pointer-chasing overhead); speedups persist at every "
               "thread count because both\npaths parallelize over the "
               "same deterministic partition.\n";
  return 0;
}
