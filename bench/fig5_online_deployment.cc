// E5/E6/E7 — Fig. 5a/5b/5c: the online deployment, reproduced on the
// simulated crowd platform. Prints the three minute-binned series the
// paper plots (cumulative % correct answers, cumulative completed
// tasks, worker retention) plus the significance tests reported in
// Section V-C.
#include <iostream>

#include "bench/bench_common.h"
#include "sim/online_experiment.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner(
      "fig5: online deployment (quality / throughput / retention)",
      "Fig. 5a-5c (20 sessions/strategy, 30-min sessions, Xmax=15 + 5 "
      "random)");

  OnlineExperimentOptions options;
  options.seed = 1234;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      options.sessions_per_strategy = 3;
      options.session.max_minutes = 6.0;
      options.catalog.num_groups = 20;
      options.catalog.tasks_per_group = 25;
      break;
    case BenchScale::kDefault:
      options.sessions_per_strategy = 12;
      options.session.max_minutes = 30.0;
      break;
    case BenchScale::kPaper:
      options.sessions_per_strategy = 20;
      options.session.max_minutes = 30.0;
      break;
  }

  const OnlineExperimentResult result = RunOnlineExperiment(options);

  // --- Fig. 5a: cumulative % correct answers over time. -----------------
  std::cout << "--- fig5a: cumulative % correct answers ---\n";
  {
    TableWriter table({"minute", "hta-gre", "hta-gre-rel", "hta-gre-div",
                       "random"});
    const auto& gre = result.ForStrategy(StrategyKind::kHtaGre);
    const auto& rel = result.ForStrategy(StrategyKind::kHtaGreRel);
    const auto& div = result.ForStrategy(StrategyKind::kHtaGreDiv);
    const auto& rnd = result.ForStrategy(StrategyKind::kRandom);
    for (size_t b = 0; b < gre.minutes.size(); b += 3) {
      table.AddRow({FmtInt(static_cast<long long>(gre.minutes[b])),
                    FmtDouble(gre.cumulative_correct_pct[b], 1),
                    FmtDouble(rel.cumulative_correct_pct[b], 1),
                    FmtDouble(div.cumulative_correct_pct[b], 1),
                    FmtDouble(rnd.cumulative_correct_pct[b], 1)});
    }
    table.Print(std::cout);
  }

  // --- Fig. 5b: cumulative completed tasks. ----------------------------
  std::cout << "\n--- fig5b: cumulative completed tasks ---\n";
  {
    TableWriter table({"minute", "hta-gre", "hta-gre-rel", "hta-gre-div",
                       "random"});
    const auto& gre = result.ForStrategy(StrategyKind::kHtaGre);
    const auto& rel = result.ForStrategy(StrategyKind::kHtaGreRel);
    const auto& div = result.ForStrategy(StrategyKind::kHtaGreDiv);
    const auto& rnd = result.ForStrategy(StrategyKind::kRandom);
    for (size_t b = 0; b < gre.minutes.size(); b += 3) {
      table.AddRow({FmtInt(static_cast<long long>(gre.minutes[b])),
                    FmtDouble(gre.cumulative_completed[b], 0),
                    FmtDouble(rel.cumulative_completed[b], 0),
                    FmtDouble(div.cumulative_completed[b], 0),
                    FmtDouble(rnd.cumulative_completed[b], 0)});
    }
    table.Print(std::cout);
  }

  // --- Fig. 5c: worker retention. ---------------------------------------
  std::cout << "\n--- fig5c: % sessions still active after x minutes ---\n";
  {
    TableWriter table({"minute", "hta-gre", "hta-gre-rel", "hta-gre-div",
                       "random"});
    const auto& gre = result.ForStrategy(StrategyKind::kHtaGre);
    const auto& rel = result.ForStrategy(StrategyKind::kHtaGreRel);
    const auto& div = result.ForStrategy(StrategyKind::kHtaGreDiv);
    const auto& rnd = result.ForStrategy(StrategyKind::kRandom);
    for (size_t b = 0; b < gre.minutes.size(); b += 3) {
      table.AddRow({FmtInt(static_cast<long long>(gre.minutes[b])),
                    FmtDouble(gre.retention_pct[b], 0),
                    FmtDouble(rel.retention_pct[b], 0),
                    FmtDouble(div.retention_pct[b], 0),
                    FmtDouble(rnd.retention_pct[b], 0)});
    }
    table.Print(std::cout);
  }

  // --- Summary & significance tests (Section V-C). ----------------------
  std::cout << "\n--- summary ---\n";
  TableWriter summary({"strategy", "quality", "tasks", "mean session (min)",
                       "mean alpha (end)"});
  for (const StrategyCurves& c : result.curves) {
    const double quality =
        c.total_questions > 0
            ? static_cast<double>(c.total_correct) / c.total_questions
            : 0.0;
    summary.AddRow({StrategyName(c.kind), FmtPercent(quality),
                    FmtInt(static_cast<long long>(c.total_tasks)),
                    FmtDouble(Summarize(c.session_duration_minutes).mean, 1),
                    c.kind == StrategyKind::kHtaGre
                        ? FmtDouble(c.mean_alpha_estimate_end)
                        : "-"});
  }
  summary.Print(std::cout);

  const auto& gre = result.ForStrategy(StrategyKind::kHtaGre);
  const auto& rel = result.ForStrategy(StrategyKind::kHtaGreRel);
  const auto& div = result.ForStrategy(StrategyKind::kHtaGreDiv);
  auto z_div_gre = TwoProportionZTest(div.total_correct, div.total_questions,
                                      gre.total_correct, gre.total_questions);
  auto z_gre_rel = TwoProportionZTest(gre.total_correct, gre.total_questions,
                                      rel.total_correct, rel.total_questions);
  auto u_tasks = MannWhitneyUTest(gre.tasks_per_session,
                                  div.tasks_per_session);
  auto u_duration = MannWhitneyUTest(gre.session_duration_minutes,
                                     rel.session_duration_minutes);
  std::cout << "\nsignificance (paper Section V-C analogues):\n";
  if (z_div_gre.ok()) {
    std::cout << "  quality div vs gre: two-proportion Z p = "
              << FmtDouble(z_div_gre->p_value) << "\n";
  }
  if (z_gre_rel.ok()) {
    std::cout << "  quality gre vs rel: two-proportion Z p = "
              << FmtDouble(z_gre_rel->p_value) << "\n";
  }
  if (u_tasks.ok()) {
    std::cout << "  tasks/session gre vs div: Mann-Whitney U p = "
              << FmtDouble(u_tasks->p_value) << "\n";
  }
  if (u_duration.ok()) {
    std::cout << "  session duration gre vs rel: Mann-Whitney U p = "
              << FmtDouble(u_duration->p_value) << "\n";
  }

  std::cout << "\nexpected shape (paper Fig. 5): hta-gre-div best quality; "
               "hta-gre-rel worst on all three;\nhta-gre best throughput "
               "and retention — the adaptive compromise.\n";
  return 0;
}
