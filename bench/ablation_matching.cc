// A3 — Ablation: the M_B construction (Algorithm 1, Line 2). Greedy
// sorted-edge matching (the paper's choice) vs Drake-Hougardy
// path-growing: both are 1/2-approximations, but with different
// constants and costs.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "matching/max_weight_matching.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: M_B matching algorithm",
                     "Algorithm 1 Line 2 (greedy vs path-growing)");

  std::vector<size_t> sizes;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {200};
      break;
    case BenchScale::kDefault:
      sizes = {400, 800, 1600};
      break;
    case BenchScale::kPaper:
      sizes = {1000, 2000, 4000, 8000};
      break;
  }

  TableWriter table({"|T|", "method", "matching weight", "time (ms)",
                     "end-to-end motivation"});
  for (size_t n : sizes) {
    const auto workload = bench::MakeOfflineWorkload(n / 20, 20, n / 40);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, 10);
    HTA_CHECK(problem.ok()) << problem.status();

    // Direct matching comparison on B. BuildDiversityEdges keeps only
    // w > 0 edges (zero-weight pairs can never enter either matching),
    // which avoids materializing the full n(n-1)/2 edge list.
    const std::vector<WeightedEdge> edges =
        BuildDiversityEdges(problem->oracle());
    for (const bool greedy : {true, false}) {
      WallTimer timer;
      const GraphMatching m = greedy
                                  ? GreedyMaxWeightMatching(n, edges)
                                  : PathGrowingMatching(n, edges);
      const double ms = timer.ElapsedMillis();

      HtaSolverOptions options;
      options.matching =
          greedy ? MatchingMethod::kGreedy : MatchingMethod::kPathGrowing;
      auto result = SolveHta(*problem, options);
      HTA_CHECK(result.ok()) << result.status();

      table.AddRow({FmtInt(static_cast<long long>(n)),
                    greedy ? "greedy" : "path-growing",
                    FmtDouble(m.total_weight, 1), FmtDouble(ms, 1),
                    FmtDouble(result->stats.motivation, 1)});
      bench::AppendBenchJson(
          "ablation_matching",
          {{"n", bench::JsonNum(static_cast<double>(n))},
           {"method", bench::JsonStr(greedy ? "greedy" : "path-growing")},
           {"matching_weight", bench::JsonNum(m.total_weight)},
           {"motivation", bench::JsonNum(result->stats.motivation)}},
          ms / 1000.0);
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected: greedy finds a slightly heavier matching (it "
               "sorts globally); path-growing\navoids the sort. End-to-end "
               "motivation differs marginally — the paper's greedy choice "
               "is safe.\n";
  return 0;
}
