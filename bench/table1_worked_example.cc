// E8 — Table I + Examples 1-3: prints the paper's running example —
// the relevance table, the matrices A and C of Fig. 1, the greedy
// matching M_B, the auxiliary LSAP profits, and a full HTA-APP solve.
#include <iostream>

#include "assign/hta_solver.h"
#include "matching/max_weight_matching.h"
#include "qap/qap_view.h"
#include "util/table.h"

int main() {
  using namespace hta;
  std::cout << "=== table1: the paper's worked example (Table I, Fig. 1, "
               "Examples 1-3) ===\n\n";

  std::vector<Task> tasks;
  for (uint64_t i = 0; i < 8; ++i) {
    tasks.emplace_back(i, KeywordVector(8, {static_cast<KeywordId>(i)}),
                       "t" + std::to_string(i + 1), kNoTaskGroup, 0.05);
  }
  std::vector<Worker> workers;
  workers.emplace_back(1, KeywordVector(8, {0}), MotivationWeights{0.2, 0.8});
  workers.emplace_back(2, KeywordVector(8, {1}), MotivationWeights{0.6, 0.3});

  const std::vector<double> relevance{
      0.28, 0.30, 0.25, 0.00, 0.20, 0.20, 0.43, 0.25,
      0.67, 0.25, 0.40, 0.00, 0.00, 0.00, 0.40, 0.40,
  };
  std::vector<double> distances(64, 0.7);
  for (int i = 0; i < 8; ++i) distances[i * 8 + i] = 0.0;
  auto set_d = [&](int a, int b, double v) {
    distances[a * 8 + b] = v;
    distances[b * 8 + a] = v;
  };
  set_d(3, 7, 1.0);
  set_d(0, 5, 1.0);
  set_d(2, 1, 0.86);
  set_d(6, 4, 0.8);

  auto problem =
      HtaProblem::CreateWithMatrices(&tasks, &workers, 3, distances,
                                     relevance);
  HTA_CHECK(problem.ok()) << problem.status();

  // Table I.
  std::cout << "--- Table I: rel(t, w) ---\n";
  {
    TableWriter table({"", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"});
    for (size_t q = 0; q < 2; ++q) {
      std::vector<std::string> row{"w" + std::to_string(q + 1)};
      for (TaskIndex t = 0; t < 8; ++t) {
        row.push_back(FmtDouble(
            problem->Relevance(t, static_cast<WorkerIndex>(q)), 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  // Fig. 1: matrices A and C.
  const QapView view(&*problem);
  auto print_matrix = [&](const char* name, auto accessor) {
    std::cout << "\n--- Fig. 1: matrix " << name << " ---\n";
    std::vector<std::string> header{""};
    for (int l = 0; l < 8; ++l) header.push_back("v" + std::to_string(l + 1));
    TableWriter table(header);
    for (size_t k = 0; k < 8; ++k) {
      std::vector<std::string> row{"t" + std::to_string(k + 1)};
      for (size_t l = 0; l < 8; ++l) {
        row.push_back(FmtDouble(accessor(k, l), 3));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  };
  print_matrix("A", [&](size_t k, size_t l) { return view.A(k, l); });
  print_matrix("C", [&](size_t k, size_t l) { return view.C(k, l); });

  // Example 3: M_B and the auxiliary profits.
  const GraphMatching mb = GreedyMatchingOnTaskGraph(problem->oracle());
  std::cout << "\n--- Example 3: greedy matching M_B ---\n";
  for (const auto& [u, v] : mb.edges) {
    std::cout << "  (t" << u + 1 << ", t" << v + 1
              << ")  d = " << FmtDouble(problem->oracle()(u, v), 2) << "\n";
  }
  std::vector<double> bm(8, 0.0);
  for (const auto& [u, v] : mb.edges) {
    bm[u] = bm[v] = problem->oracle()(u, v);
  }
  const double f11 = bm[0] * view.DegA(0) + view.C(0, 0);
  std::cout << "  f_{1,1} = bM(t1) * degA_1 + c_{1,1} = " << FmtDouble(f11, 3)
            << "   (paper: 0.848)\n";

  // Full solves.
  std::cout << "\n--- full solves ---\n";
  for (const bool use_app : {true, false}) {
    auto result =
        use_app ? SolveHtaApp(*problem, 42) : SolveHtaGre(*problem, 42);
    HTA_CHECK(result.ok()) << result.status();
    std::cout << (use_app ? "hta-app" : "hta-gre") << ": motivation = "
              << FmtDouble(result->stats.motivation, 3) << ", bundles:";
    for (size_t q = 0; q < 2; ++q) {
      std::cout << "  w" << q + 1 << " <-";
      for (TaskIndex t : result->assignment.bundles[q]) {
        std::cout << " t" << t + 1;
      }
    }
    std::cout << "\n";
  }
  return 0;
}
