// A10 — Ablation: the bundle cap Xmax (constraint C1). The paper fixes
// Xmax = 20 offline and 15 online; this bench sweeps it. Larger caps
// grow each clique quadratically in the QAP (more diversity pairs per
// worker) and stretch the solvers' second phase.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: bundle cap Xmax (C1)",
                     "sensitivity of objective and cost to Xmax");

  size_t tasks = 1200;
  size_t workers = 24;
  std::vector<size_t> xmaxes{5, 10, 20, 40};
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      tasks = 300;
      workers = 8;
      xmaxes = {5, 10};
      break;
    case BenchScale::kDefault:
      break;
    case BenchScale::kPaper:
      tasks = 8000;
      workers = 100;
      break;
  }

  const auto workload = bench::MakeOfflineWorkload(tasks / 20, 20, workers);
  TableWriter table({"Xmax", "slots", "gre motivation", "motiv/slot",
                     "gre time (s)", "certified ratio"});
  for (size_t xmax : xmaxes) {
    auto problem = HtaProblem::Create(&workload.catalog.tasks,
                                      &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    auto result = SolveHtaGre(*problem, 42);
    HTA_CHECK(result.ok()) << result.status();
    const size_t slots = workers * xmax;
    table.AddRow({FmtInt(static_cast<long long>(xmax)),
                  FmtInt(static_cast<long long>(slots)),
                  FmtDouble(result->stats.motivation, 1),
                  FmtDouble(result->stats.motivation /
                                static_cast<double>(slots),
                            2),
                  FmtDouble(result->stats.total_seconds, 3),
                  FmtDouble(result->stats.certified_ratio, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected: total motivation grows superlinearly in Xmax "
               "(quadratic diversity pairs per\nbundle) while per-slot "
               "motivation rises with bundle size — until the task pool "
               "limits choice.\n";
  return 0;
}
