// A8 — Extension: local-search refinement on top of the paper's
// algorithms. Measures how much objective head-room HTA-GRE leaves,
// how much of HTA-APP's advantage a few cheap refinement passes
// recover, and what the incremental O(1)-delta evaluator buys over the
// naive reference (which re-derives every probe from the bundles).
#include <iostream>
#include <string>

#include "assign/local_search.h"
#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: local-search refinement (extension)",
                     "beyond the paper: anytime improvement of HTA-GRE");

  std::vector<size_t> sizes;
  size_t workers = 30;
  size_t xmax = 10;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {200};
      workers = 8;
      xmax = 5;
      break;
    case BenchScale::kDefault:
      sizes = {400, 800};
      break;
    case BenchScale::kPaper:
      sizes = {2000, 4000};
      workers = 100;
      xmax = 20;
      break;
  }

  TableWriter table({"|T|", "variant", "motivation", "vs hta-app",
                     "passes/s", "time (s)"});
  for (size_t n : sizes) {
    const auto workload = bench::MakeOfflineWorkload(n / 20, 20, workers);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();

    auto app = SolveHtaApp(*problem, 42);
    HTA_CHECK(app.ok()) << app.status();
    const double app_motivation = app->stats.motivation;

    auto add_row = [&](const std::string& name, double motivation,
                       double passes_per_sec, double seconds) {
      table.AddRow({FmtInt(static_cast<long long>(n)), name,
                    FmtDouble(motivation, 1),
                    FmtDouble(motivation / app_motivation, 3),
                    passes_per_sec > 0.0 ? FmtDouble(passes_per_sec, 2) : "-",
                    FmtDouble(seconds, 3)});
    };
    add_row("hta-app", app_motivation, 0.0, app->stats.total_seconds);

    auto gre = SolveHtaGre(*problem, 42);
    HTA_CHECK(gre.ok()) << gre.status();
    add_row("hta-gre", gre->stats.motivation, 0.0, gre->stats.total_seconds);

    // Refinement variants: both delta evaluators under the default
    // deterministic scan (identical moves, so the timing ratio is the
    // pure delta-evaluation speedup), plus the legacy serial scan.
    struct Variant {
      const char* name;
      LocalSearchEval eval;
      LocalSearchScan scan;
    };
    const Variant variants[] = {
        {"+ls incremental det-scan", LocalSearchEval::kIncremental,
         LocalSearchScan::kDeterministicBest},
        {"+ls incremental legacy-scan", LocalSearchEval::kIncremental,
         LocalSearchScan::kLegacySerial},
        {"+ls naive det-scan", LocalSearchEval::kNaiveReference,
         LocalSearchScan::kDeterministicBest},
    };
    double incremental_seconds = 0.0;
    double naive_seconds = 0.0;
    for (const Variant& v : variants) {
      LocalSearchOptions refine;
      refine.max_passes = 4;
      refine.evaluation = v.eval;
      refine.scan = v.scan;
      WallTimer refine_timer;
      auto improved = ImproveAssignment(*problem, gre->assignment, refine);
      HTA_CHECK(improved.ok()) << improved.status();
      const double seconds = refine_timer.ElapsedSeconds();
      const double passes_per_sec =
          seconds > 0.0 ? static_cast<double>(improved->passes) / seconds
                        : 0.0;
      add_row(v.name, improved->motivation, passes_per_sec,
              gre->stats.total_seconds + seconds);
      bench::AppendBenchJson(
          "ablation_local_search",
          {{"n", bench::JsonNum(static_cast<double>(n))},
           {"workers", bench::JsonNum(static_cast<double>(workers))},
           {"xmax", bench::JsonNum(static_cast<double>(xmax))},
           {"variant", bench::JsonStr(v.name)},
           {"passes", bench::JsonNum(static_cast<double>(improved->passes))},
           {"motivation", bench::JsonNum(improved->motivation)}},
          seconds);
      if (v.eval == LocalSearchEval::kIncremental &&
          v.scan == LocalSearchScan::kDeterministicBest) {
        incremental_seconds = seconds;
      }
      if (v.eval == LocalSearchEval::kNaiveReference) {
        naive_seconds = seconds;
      }
    }
    if (incremental_seconds > 0.0) {
      std::cout << "|T|=" << n << ": delta-eval speedup (naive/incremental, "
                << "same moves) = "
                << FmtDouble(naive_seconds / incremental_seconds, 1) << "x\n";
    }
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nexpected: refinement not only closes the gre/app gap but "
               "typically exceeds hta-app —\nboth paper algorithms optimize "
               "a *linear proxy* (the auxiliary LSAP) of the quadratic\n"
               "objective, while local search improves the true objective "
               "directly. The incremental\nevaluator replays the naive "
               "reference move-for-move at a fraction of the cost.\n";
  return 0;
}
