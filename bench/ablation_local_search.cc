// A8 — Extension: local-search refinement on top of the paper's
// algorithms. Measures how much objective head-room HTA-GRE leaves and
// how much of HTA-APP's advantage a few cheap refinement passes
// recover.
#include <iostream>

#include "assign/local_search.h"
#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: local-search refinement (extension)",
                     "beyond the paper: anytime improvement of HTA-GRE");

  std::vector<size_t> sizes;
  size_t workers = 30;
  size_t xmax = 10;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {200};
      workers = 8;
      xmax = 5;
      break;
    case BenchScale::kDefault:
      sizes = {400, 800};
      break;
    case BenchScale::kPaper:
      sizes = {2000, 4000};
      workers = 100;
      xmax = 20;
      break;
  }

  TableWriter table({"|T|", "variant", "motivation", "vs hta-app",
                     "time (s)"});
  for (size_t n : sizes) {
    const auto workload = bench::MakeOfflineWorkload(n / 20, 20, workers);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();

    auto app = SolveHtaApp(*problem, 42);
    HTA_CHECK(app.ok()) << app.status();
    const double app_motivation = app->stats.motivation;

    auto add_row = [&](const char* name, double motivation, double seconds) {
      table.AddRow({FmtInt(static_cast<long long>(n)), name,
                    FmtDouble(motivation, 1),
                    FmtDouble(motivation / app_motivation, 3),
                    FmtDouble(seconds, 3)});
    };
    add_row("hta-app", app_motivation, app->stats.total_seconds);

    auto gre = SolveHtaGre(*problem, 42);
    HTA_CHECK(gre.ok()) << gre.status();
    add_row("hta-gre", gre->stats.motivation, gre->stats.total_seconds);

    WallTimer refine_timer;
    LocalSearchOptions refine;
    refine.max_passes = 4;
    auto improved = ImproveAssignment(*problem, gre->assignment, refine);
    HTA_CHECK(improved.ok()) << improved.status();
    add_row("hta-gre + local search", improved->motivation,
            gre->stats.total_seconds + refine_timer.ElapsedSeconds());
  }
  table.Print(std::cout);
  std::cout << "\nexpected: refinement not only closes the gre/app gap but "
               "typically exceeds hta-app —\nboth paper algorithms optimize "
               "a *linear proxy* (the auxiliary LSAP) of the quadratic\n"
               "objective, while local search improves the true objective "
               "directly.\n";
  return 0;
}
