#ifndef HTA_BENCH_BENCH_COMMON_H_
#define HTA_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <vector>

#include "sim/catalog.h"
#include "sim/worker_gen.h"
#include "util/check.h"
#include "util/env.h"

namespace hta::bench {

/// Builds the AMT-like offline workload of Section V-B: `num_groups`
/// task groups with `tasks_per_group` tasks each, and synthetic workers
/// with five uniform keywords and random (alpha, beta).
struct OfflineWorkload {
  Catalog catalog;
  std::vector<Worker> workers;
};

inline OfflineWorkload MakeOfflineWorkload(size_t num_groups,
                                           size_t tasks_per_group,
                                           size_t num_workers,
                                           uint64_t seed = 7) {
  CatalogOptions catalog_options;
  catalog_options.num_groups = num_groups;
  catalog_options.tasks_per_group = tasks_per_group;
  catalog_options.vocabulary_size = 1000;
  catalog_options.seed = seed;
  auto catalog = GenerateCatalog(catalog_options);
  HTA_CHECK(catalog.ok()) << catalog.status();

  WorkerGenOptions worker_options;
  worker_options.count = num_workers;
  worker_options.seed = seed + 1;
  auto workers = GenerateWorkers(worker_options, *catalog);
  HTA_CHECK(workers.ok()) << workers.status();

  OfflineWorkload w;
  w.catalog = std::move(*catalog);
  w.workers = std::move(*workers);
  return w;
}

/// Prints the standard bench banner with the active scale.
inline void PrintBanner(const char* title, const char* paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n"
            << "scale: " << BenchScaleName(GetBenchScale())
            << "  (set HTA_BENCH_SCALE=smoke|default|paper)\n\n";
}

}  // namespace hta::bench

#endif  // HTA_BENCH_BENCH_COMMON_H_
