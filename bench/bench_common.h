#ifndef HTA_BENCH_BENCH_COMMON_H_
#define HTA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/catalog.h"
#include "sim/worker_gen.h"
#include "util/check.h"
#include "util/env.h"
#include "util/json.h"
#include "util/metrics.h"

namespace hta::bench {

/// Builds the AMT-like offline workload of Section V-B: `num_groups`
/// task groups with `tasks_per_group` tasks each, and synthetic workers
/// with five uniform keywords and random (alpha, beta).
struct OfflineWorkload {
  Catalog catalog;
  std::vector<Worker> workers;
};

inline OfflineWorkload MakeOfflineWorkload(size_t num_groups,
                                           size_t tasks_per_group,
                                           size_t num_workers,
                                           uint64_t seed = 7) {
  CatalogOptions catalog_options;
  catalog_options.num_groups = num_groups;
  catalog_options.tasks_per_group = tasks_per_group;
  catalog_options.vocabulary_size = 1000;
  catalog_options.seed = seed;
  auto catalog = GenerateCatalog(catalog_options);
  HTA_CHECK(catalog.ok()) << catalog.status();

  WorkerGenOptions worker_options;
  worker_options.count = num_workers;
  worker_options.seed = seed + 1;
  auto workers = GenerateWorkers(worker_options, *catalog);
  HTA_CHECK(workers.ok()) << workers.status();

  OfflineWorkload w;
  w.catalog = std::move(*catalog);
  w.workers = std::move(*workers);
  return w;
}

/// Prints the standard bench banner with the active scale.
inline void PrintBanner(const char* title, const char* paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n"
            << "scale: " << BenchScaleName(GetBenchScale())
            << "  (set HTA_BENCH_SCALE=smoke|default|paper)\n\n";
}

/// JSON fragment for a numeric param value. NaN/Inf have no JSON
/// representation and serialize as null (util/json.h).
inline std::string JsonNum(double v) { return JsonNumber(v); }

/// JSON fragment for a string param value (quoted, fully escaped —
/// including control characters, which a backslash-only escape pass
/// used to emit verbatim and thereby corrupt the record).
inline std::string JsonStr(const std::string& s) { return JsonQuote(s); }

/// The thread count the global pool actually runs with: HTA_THREADS
/// when set, otherwise the hardware concurrency (what util/parallel.h
/// resolves "auto" to).
inline int ResolvedBenchThreads() {
  const int requested = GetHtaThreads();
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Appends one machine-readable record to the file named by
/// HTA_BENCH_JSON (JSON Lines; one object per line):
///   {"bench": ..., "scale": ..., "threads": ...,
///    "hardware_concurrency": ..., "params": {...}, "seconds": ...}
/// `threads` is the resolved HTA_THREADS value (hardware concurrency
/// when unset) and `hardware_concurrency` the machine's parallelism, so
/// records written in different environments stay comparable. No-op
/// when the variable is unset. Param values are raw JSON fragments —
/// build them with JsonNum / JsonStr. With HTA_METRICS=1 the record
/// additionally carries a "metrics" object: the full registry snapshot
/// at append time (metrics::SnapshotJson()).
inline void AppendBenchJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    double seconds) {
  const std::string path = GetEnvOr("HTA_BENCH_JSON", "");
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  HTA_CHECK(out.good()) << "cannot open HTA_BENCH_JSON file: " << path;
  out << "{\"bench\": " << JsonStr(bench)
      << ", \"scale\": " << JsonStr(BenchScaleName(GetBenchScale()))
      << ", \"threads\": " << ResolvedBenchThreads()
      << ", \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ", \"params\": {";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out << ", ";
    out << JsonStr(params[i].first) << ": " << params[i].second;
  }
  out << "}, \"seconds\": " << JsonNum(seconds);
  if (metrics::Enabled()) {
    out << ", \"metrics\": " << metrics::SnapshotJson();
  }
  out << "}\n";
}

}  // namespace hta::bench

#endif  // HTA_BENCH_BENCH_COMMON_H_
