// E2 — Fig. 2b: objective function value vs number of tasks for
// HTA-APP and HTA-GRE. The paper's observation: the greedy LSAP does
// not hurt the objective — both curves nearly coincide.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace hta;
  bench::PrintBanner("fig2b: objective value vs |T|",
                     "Fig. 2b (|W|=200, Xmax=20, 200 task groups)");

  std::vector<size_t> task_counts;
  size_t workers = 200;
  size_t xmax = 20;
  size_t tasks_per_group = 200;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      task_counts = {200, 400};
      workers = 10;
      xmax = 5;
      tasks_per_group = 20;
      break;
    case BenchScale::kDefault:
      task_counts = {400, 800, 1200, 1600};
      workers = 40;
      xmax = 10;
      tasks_per_group = 50;
      break;
    case BenchScale::kPaper:
      task_counts = {4000, 5000, 6000, 7000, 8000, 9000, 10000};
      break;
  }

  TableWriter table(
      {"|T|", "hta-app objective", "hta-gre objective", "gre/app"});
  for (size_t n : task_counts) {
    const auto workload = bench::MakeOfflineWorkload(
        n / tasks_per_group, tasks_per_group, workers);
    auto problem =
        HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
    HTA_CHECK(problem.ok()) << problem.status();
    auto app = SolveHtaApp(*problem, 42);
    auto gre = SolveHtaGre(*problem, 42);
    HTA_CHECK(app.ok()) << app.status();
    HTA_CHECK(gre.ok()) << gre.status();
    table.AddRow(
        {FmtInt(static_cast<long long>(n)),
         FmtDouble(app->stats.motivation, 1),
         FmtDouble(gre->stats.motivation, 1),
         FmtDouble(gre->stats.motivation / app->stats.motivation, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: both algorithms report very similar "
               "objective values (ratio ~1.0),\nconfirming the paper's "
               "finding that the greedy strategy does not hurt the "
               "objective.\n";
  return 0;
}
