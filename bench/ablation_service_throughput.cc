// A15 — Ablation: sharded serving throughput. The solver-internal hot
// paths are parallel, but a single AssignmentService serializes every
// registration, completion, and iteration; this bench drives the same
// concurrent deployment against (a) the plain service, (b) a
// ShardedAssignmentService with 1 shard — CHECKed bit-identical to (a),
// session for session and event for event — and (c) sharded services
// with rising shard counts, each driven by one load thread per shard.
// Shard s solves over its own catalog slice, so per-iteration work
// shrinks with the shard count *and* shards serve concurrently;
// sustained completions/sec is the headline, with p50/p99 solve
// latency from the util/metrics histograms alongside.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "engine/sharded_service.h"
#include "sim/behavior.h"
#include "sim/sharded_deployment.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace hta;

struct ThroughputConfig {
  size_t catalog_groups = 100;
  size_t tasks_per_group = 100;
  size_t workers = 8;
  double session_minutes = 10.0;
  double arrival_rate_per_min = 1.5;
  size_t refresh_after_completions = 3;
  std::vector<size_t> shard_counts = {2, 4};
  uint64_t seed = 20240915;
};

struct RunOutcome {
  DeploymentResult result;
  double wall_seconds = 0.0;
  size_t completions = 0;
  double motivation_sum = 0.0;  // Bit-identity probe across services.
  double p50_solve_seconds = 0.0;
  double p99_solve_seconds = 0.0;
};

AssignmentServiceOptions ServiceOptions(const ThroughputConfig& config,
                                        size_t catalog_size,
                                        EventLog* event_log) {
  AssignmentServiceOptions options;
  options.strategy = StrategyKind::kHtaGre;
  options.xmax = 10;
  options.extra_random_tasks = 3;
  options.refresh_after_completions = config.refresh_after_completions;
  // A serving deployment considers its whole (shard) catalog per
  // iteration — the 300-task sampling cap is the offline cost-control
  // knob, and capping here would hand every shard count the same
  // instance size and hide exactly the effect under measurement.
  options.max_tasks_per_iteration = catalog_size;
  // One solver thread per shard: shards are the unit of concurrency,
  // and serial solves never contend on the global compute pool.
  options.solver_threads = 1;
  options.seed = config.seed;
  options.event_log = event_log;
  return options;
}

/// Fresh behavioral workers for one run. Workers are stateful (boredom,
/// history, RNG), so every run must rebuild them from the same seeds to
/// face the same population.
std::vector<BehavioralWorker> MakeBehavioral(
    const Catalog& catalog, const std::vector<Worker>& profiles,
    uint64_t seed) {
  std::vector<BehavioralWorker> behavioral;
  behavioral.reserve(profiles.size());
  for (size_t s = 0; s < profiles.size(); ++s) {
    Rng param_rng(seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
    const BehaviorParams params = SampleBehaviorParams(&param_rng);
    behavioral.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                            profiles[s], params, param_rng.Fork(17));
  }
  return behavioral;
}

size_t CountCompletions(const DeploymentResult& result) {
  size_t completions = 0;
  for (const SessionResult& session : result.sessions) {
    completions += session.events.size();
  }
  return completions;
}

double MotivationSum(const std::vector<IterationRecord>& records) {
  double sum = 0.0;
  for (const IterationRecord& record : records) sum += record.motivation;
  return sum;
}

/// Captures p50/p99 of engine.solve_seconds for the run bracketed by
/// the caller's ResetForTesting(): the quantile helper reads the
/// snapshot buckets, so the math lives in util/metrics, not here.
void FillSolveQuantiles(RunOutcome* outcome) {
  for (const metrics::MetricValue& value : metrics::Snapshot()) {
    if (value.name == "engine.solve_seconds") {
      outcome->p50_solve_seconds = value.ValueAtQuantile(0.50);
      outcome->p99_solve_seconds = value.ValueAtQuantile(0.99);
    }
  }
}

RunOutcome RunUnsharded(const ThroughputConfig& config,
                        const Catalog& catalog,
                        const std::vector<Worker>& profiles,
                        EventLog* event_log) {
  std::vector<BehavioralWorker> behavioral =
      MakeBehavioral(catalog, profiles, config.seed + 5);
  AssignmentService service(
      &catalog.tasks, ServiceOptions(config, catalog.size(), event_log));
  ConcurrentDeploymentOptions deployment;
  deployment.arrival_rate_per_min = config.arrival_rate_per_min;
  deployment.session.max_minutes = config.session_minutes;
  deployment.seed = config.seed + 99;

  metrics::ResetForTesting();
  RunOutcome outcome;
  WallTimer timer;
  outcome.result =
      RunConcurrentDeployment(&service, catalog, &behavioral, deployment);
  outcome.wall_seconds = timer.ElapsedSeconds();
  FillSolveQuantiles(&outcome);
  outcome.completions = CountCompletions(outcome.result);
  outcome.motivation_sum = MotivationSum(service.iterations());
  return outcome;
}

RunOutcome RunSharded(const ThroughputConfig& config, const Catalog& catalog,
                      const std::vector<Worker>& profiles, size_t shards,
                      size_t driver_threads, EventLog* event_log) {
  std::vector<BehavioralWorker> behavioral =
      MakeBehavioral(catalog, profiles, config.seed + 5);
  ShardedServiceOptions options;
  options.service = ServiceOptions(config, catalog.size(), event_log);
  options.num_shards = shards;
  ShardedAssignmentService service(&catalog.tasks, options);
  HTA_CHECK_EQ(service.num_shards(), shards);
  ShardedDeploymentOptions deployment;
  deployment.arrival_rate_per_min = config.arrival_rate_per_min;
  deployment.session.max_minutes = config.session_minutes;
  deployment.seed = config.seed + 99;
  deployment.driver_threads = driver_threads;

  metrics::ResetForTesting();
  RunOutcome outcome;
  WallTimer timer;
  outcome.result =
      RunShardedDeployment(&service, catalog, &behavioral, deployment);
  outcome.wall_seconds = timer.ElapsedSeconds();
  FillSolveQuantiles(&outcome);
  outcome.completions = CountCompletions(outcome.result);
  for (size_t s = 0; s < service.num_shards(); ++s) {
    outcome.motivation_sum += MotivationSum(service.shard(s).iterations());
  }
  return outcome;
}

void CheckBitIdentical(const RunOutcome& unsharded, const RunOutcome& one_shard,
                       const EventLog& unsharded_log,
                       const EventLog& one_shard_log) {
  HTA_CHECK_EQ(one_shard.completions, unsharded.completions);
  HTA_CHECK_EQ(one_shard.motivation_sum, unsharded.motivation_sum);
  HTA_CHECK_EQ(one_shard.result.iterations, unsharded.result.iterations);
  HTA_CHECK_EQ(one_shard.result.max_concurrent_sessions,
               unsharded.result.max_concurrent_sessions);
  HTA_CHECK_EQ(one_shard_log.size(), unsharded_log.size());
  for (size_t i = 0; i < unsharded_log.size(); ++i) {
    const LoggedEvent& a = unsharded_log.events()[i];
    const LoggedEvent& b = one_shard_log.events()[i];
    HTA_CHECK_EQ(a.minute, b.minute);
    HTA_CHECK_EQ(a.worker_id, b.worker_id);
    HTA_CHECK(a.kind == b.kind);
    HTA_CHECK(a.task_ids == b.task_ids);
  }
}

}  // namespace

int main() {
  // The bench sweeps shard and thread counts itself; environment
  // overrides would silently retarget every run. Warm start changes
  // assignments (and shrinks solves) — pin it off so the measured
  // effect is sharding alone, as in A13.
  unsetenv("HTA_SHARDS");
  unsetenv("HTA_DRIVER_THREADS");
  setenv("HTA_WARM_START", "0", /*overwrite=*/1);
  bench::PrintBanner("ablation: sharded serving throughput",
                     "serving-layer scale-out (ROADMAP north star; "
                     "Section V-C deployment shape)");

  ThroughputConfig config;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      config.catalog_groups = 20;
      config.tasks_per_group = 100;
      config.workers = 6;
      config.session_minutes = 5.0;
      config.shard_counts = {4};
      break;
    case BenchScale::kDefault:
      break;  // 10^4-task catalog, shard counts {2, 4}.
    case BenchScale::kPaper:
      config.catalog_groups = 200;
      config.workers = 12;
      config.session_minutes = 15.0;
      config.shard_counts = {2, 4, 8};
      break;
  }
  const size_t catalog_size = config.catalog_groups * config.tasks_per_group;

  CatalogOptions catalog_options;
  catalog_options.num_groups = config.catalog_groups;
  catalog_options.tasks_per_group = config.tasks_per_group;
  catalog_options.vocabulary_size = 400;
  catalog_options.seed = config.seed;
  auto catalog_or = GenerateCatalog(catalog_options);
  HTA_CHECK(catalog_or.ok()) << catalog_or.status();
  const Catalog& catalog = *catalog_or;

  WorkerGenOptions worker_options;
  worker_options.count = config.workers;
  worker_options.seed = config.seed + 1;
  auto profiles_or = GenerateWorkers(worker_options, catalog);
  HTA_CHECK(profiles_or.ok()) << profiles_or.status();
  const std::vector<Worker>& profiles = *profiles_or;

  // Latency histograms on for every run (restored before the JSON
  // appends so records stay lean when the caller left metrics off).
  const bool metrics_were_enabled = metrics::Enabled();
  metrics::OverrideEnabled(true);

  EventLog unsharded_log;
  const RunOutcome unsharded =
      RunUnsharded(config, catalog, profiles, &unsharded_log);
  EventLog one_shard_log;
  const RunOutcome one_shard = RunSharded(config, catalog, profiles,
                                          /*shards=*/1, /*driver_threads=*/1,
                                          &one_shard_log);
  // The safety net this subsystem ships with: one shard *is* the
  // unsharded service — same sessions, same solves, same audit trail.
  CheckBitIdentical(unsharded, one_shard, unsharded_log, one_shard_log);
  std::cout << "1-shard bit-identity vs unsharded service: OK ("
            << unsharded_log.size() << " audit events match)\n\n";

  std::vector<std::pair<size_t, RunOutcome>> sharded_runs;
  for (const size_t shards : config.shard_counts) {
    EventLog log;
    sharded_runs.emplace_back(
        shards, RunSharded(config, catalog, profiles, shards,
                           /*driver_threads=*/shards, &log));
  }
  metrics::OverrideEnabled(metrics_were_enabled);

  const double base_rate =
      static_cast<double>(one_shard.completions) / one_shard.wall_seconds;
  TableWriter table({"shards", "drv thr", "completions", "compl/sec",
                     "speedup", "p50 solve (ms)", "p99 solve (ms)",
                     "peak sessions"});
  const auto add_row = [&](size_t shards, size_t threads,
                           const RunOutcome& run) {
    const double rate =
        static_cast<double>(run.completions) / run.wall_seconds;
    table.AddRow({FmtInt(static_cast<long long>(shards)),
                  FmtInt(static_cast<long long>(threads)),
                  FmtInt(static_cast<long long>(run.completions)),
                  FmtDouble(rate, 1), FmtDouble(rate / base_rate, 2),
                  FmtDouble(run.p50_solve_seconds * 1e3, 3),
                  FmtDouble(run.p99_solve_seconds * 1e3, 3),
                  FmtInt(static_cast<long long>(
                      run.result.max_concurrent_sessions))});
    bench::AppendBenchJson(
        "ablation_service_throughput",
        {{"shards", bench::JsonNum(static_cast<double>(shards))},
         {"driver_threads", bench::JsonNum(static_cast<double>(threads))},
         {"catalog", bench::JsonNum(static_cast<double>(catalog_size))},
         {"workers", bench::JsonNum(static_cast<double>(config.workers))},
         {"completions", bench::JsonNum(static_cast<double>(run.completions))},
         {"completions_per_sec_speedup", bench::JsonNum(rate / base_rate)},
         {"p50_solve_seconds", bench::JsonNum(run.p50_solve_seconds)},
         {"p99_solve_seconds", bench::JsonNum(run.p99_solve_seconds)}},
        run.wall_seconds);
  };
  add_row(1, 1, one_shard);
  for (const auto& [shards, run] : sharded_runs) add_row(shards, shards, run);
  table.Print(std::cout);

  std::cout << "\nexpected: one shard reproduces the unsharded deployment "
               "bit-for-bit (CHECKed\nabove); at S shards each iteration "
               "solves over ~1/S of the catalog and shards\nserve "
               "concurrently, so sustained completions/sec rises several-"
               "fold and solve\nlatency quantiles drop. Sharded deployments "
               "differ from the 1-shard one (each\nshard is its own "
               "marketplace) but are bit-identical across driver-thread "
               "caps\nand HTA_THREADS — engine/sharded_equivalence_test "
               "pins that.\n";
  return 0;
}
