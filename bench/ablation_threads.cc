// A11 — Ablation: serial vs multi-threaded execution of the parallel
// compute layer (util/parallel.h). Times each parallelized hot kernel
// — the O(|T|^2) pairwise-distance precompute, the diversity edge
// build, the QAP objective — and the end-to-end HTA-APP solve, first
// capped to one thread and then across the full pool, and checks the
// determinism contract: every output must be bit-identical.
//
// Thread count comes from HTA_THREADS (default: hardware concurrency);
// run with HTA_THREADS=1 to sanity-check the fully serial pool. On a
// single-core host the "parallel" columns measure pool overhead, not
// speedup.
#include <iostream>

#include "assign/hta_solver.h"
#include "bench/bench_common.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hta;
  bench::PrintBanner("ablation: serial vs multi-threaded kernels",
                     "parallel compute layer (extension; paper is serial)");

  size_t tasks = 4000;
  size_t workers = 100;
  size_t xmax = 10;
  size_t tasks_per_group = 50;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      tasks = 600;
      workers = 20;
      xmax = 5;
      tasks_per_group = 20;
      break;
    case BenchScale::kDefault:
      break;
    case BenchScale::kPaper:
      tasks = 10000;
      workers = 200;
      xmax = 20;
      tasks_per_group = 200;
      break;
  }

  const size_t pool_threads = ThreadPool::Global().thread_count();
  std::cout << "|T| = " << tasks << ", |W| = " << workers
            << ", Xmax = " << xmax << ", pool threads = " << pool_threads
            << "  (set HTA_THREADS=N)\n\n";

  const auto workload = bench::MakeOfflineWorkload(
      tasks / tasks_per_group, tasks_per_group, workers);
  auto problem =
      HtaProblem::Create(&workload.catalog.tasks, &workload.workers, xmax);
  HTA_CHECK(problem.ok()) << problem.status();

  TableWriter table({"kernel", "serial (s)", "parallel (s)", "speedup",
                     "identical"});
  WallTimer timer;
  auto add_row = [&](const char* kernel, double serial_s, double parallel_s,
                     bool identical) {
    table.AddRow({kernel, FmtDouble(serial_s), FmtDouble(parallel_s),
                  FmtDouble(parallel_s > 0.0 ? serial_s / parallel_s : 0.0),
                  identical ? "yes" : "NO"});
    HTA_CHECK(identical) << kernel
                         << ": parallel result diverged from serial";
  };

  // O(|T|^2) pairwise-distance precompute (row blocks).
  timer.Restart();
  auto oracle_serial = TaskDistanceOracle::Precomputed(
      &workload.catalog.tasks, DistanceKind::kJaccard, size_t{4} << 30,
      /*max_threads=*/1);
  const double precompute_serial = timer.ElapsedSeconds();
  HTA_CHECK(oracle_serial.ok()) << oracle_serial.status();
  timer.Restart();
  auto oracle_parallel = TaskDistanceOracle::Precomputed(
      &workload.catalog.tasks, DistanceKind::kJaccard);
  const double precompute_parallel = timer.ElapsedSeconds();
  HTA_CHECK(oracle_parallel.ok()) << oracle_parallel.status();
  bool oracle_identical = true;
  for (size_t i = 0; i < tasks && oracle_identical; i += 7) {
    for (size_t j = i + 1; j < tasks; j += 13) {
      if ((*oracle_serial)(static_cast<TaskIndex>(i),
                           static_cast<TaskIndex>(j)) !=
          (*oracle_parallel)(static_cast<TaskIndex>(i),
                             static_cast<TaskIndex>(j))) {
        oracle_identical = false;
        break;
      }
    }
  }
  add_row("distance precompute", precompute_serial, precompute_parallel,
          oracle_identical);

  // Diversity edge build (sharded row blocks).
  timer.Restart();
  const auto edges_serial = BuildDiversityEdges(*oracle_serial,
                                                /*max_threads=*/1);
  const double edges_serial_s = timer.ElapsedSeconds();
  timer.Restart();
  const auto edges_parallel = BuildDiversityEdges(*oracle_parallel);
  const double edges_parallel_s = timer.ElapsedSeconds();
  bool edges_identical = edges_serial.size() == edges_parallel.size();
  for (size_t e = 0; edges_identical && e < edges_serial.size(); ++e) {
    edges_identical = edges_serial[e].u == edges_parallel[e].u &&
                      edges_serial[e].v == edges_parallel[e].v &&
                      edges_serial[e].weight == edges_parallel[e].weight;
  }
  add_row("diversity edges", edges_serial_s, edges_parallel_s,
          edges_identical);

  // QAP objective (blocked linear + per-clique reductions) on the
  // identity permutation.
  const QapView view(&*problem);
  std::vector<int32_t> perm(view.n());
  for (size_t k = 0; k < perm.size(); ++k) perm[k] = static_cast<int32_t>(k);
  timer.Restart();
  const double obj_serial = view.Objective(perm, /*max_threads=*/1);
  const double obj_serial_s = timer.ElapsedSeconds();
  timer.Restart();
  const double obj_parallel = view.Objective(perm);
  const double obj_parallel_s = timer.ElapsedSeconds();
  add_row("qap objective", obj_serial_s, obj_parallel_s,
          obj_serial == obj_parallel);

  // End-to-end HTA-APP (matching + tabulated-profit JV + extraction).
  HtaSolverOptions options;
  options.lsap = LsapMethod::kExactJv;
  options.seed = 42;
  options.threads = 1;
  timer.Restart();
  auto solve_serial = SolveHta(*problem, options);
  const double solve_serial_s = timer.ElapsedSeconds();
  HTA_CHECK(solve_serial.ok()) << solve_serial.status();
  options.threads = 0;
  timer.Restart();
  auto solve_parallel = SolveHta(*problem, options);
  const double solve_parallel_s = timer.ElapsedSeconds();
  HTA_CHECK(solve_parallel.ok()) << solve_parallel.status();
  add_row("SolveHtaApp end-to-end", solve_serial_s, solve_parallel_s,
          solve_serial->stats.qap_objective ==
                  solve_parallel->stats.qap_objective &&
              solve_serial->stats.certified_ratio ==
                  solve_parallel->stats.certified_ratio &&
              solve_serial->assignment.bundles ==
                  solve_parallel->assignment.bundles);

  table.Print(std::cout);
  std::cout << "\nexpected shape: on an N-core host the distance precompute "
               "approaches Nx speedup\n(embarrassingly parallel rows); edge "
               "build and objective scale similarly but\ntouch more memory "
               "per flop. The identical column certifies the determinism\n"
               "contract: HTA_THREADS only changes wall time, never "
               "results.\n";
  return 0;
}
