#ifndef HTA_SIM_SHARDED_DEPLOYMENT_H_
#define HTA_SIM_SHARDED_DEPLOYMENT_H_

#include <vector>

#include "engine/sharded_service.h"
#include "sim/concurrent_deployment.h"

namespace hta {

/// Configuration of a sharded concurrent deployment. Arrival process
/// and session shape match ConcurrentDeploymentOptions (same defaults,
/// same seed semantics — the arrival stream is bit-identical to the
/// unsharded driver's for equal (worker count, rate, seed)).
struct ShardedDeploymentOptions {
  double arrival_rate_per_min = 0.75;
  SessionConfig session;
  uint64_t seed = 99;
  /// Load-generating threads. 0 = read HTA_DRIVER_THREADS (default 1);
  /// always clamped to [1, num_shards] — a shard's event loop is
  /// serial, threads only parallelize *across* shards.
  size_t driver_threads = 0;
};

/// Runs a concurrent deployment against a sharded service: workers are
/// routed to shards by their interest hash, and each shard's discrete-
/// event loop (the same loop RunConcurrentDeployment uses) runs
/// independently — on `driver_threads` threads, thread t driving
/// shards t, t + T, ... Per-shard event streams are merged after the
/// run in deterministic (timestamp, worker_id) order into the caller's
/// EventLog and the DeploymentResult, so the result is bit-identical
/// for any driver-thread cap and any HTA_THREADS.
///
/// Note the sharded simulation is a *different* (equally valid)
/// deployment than the unsharded one unless num_shards == 1: each
/// shard solves over its own catalog slice. With one shard the result
/// is bit-identical to RunConcurrentDeployment on the wrapped service.
DeploymentResult RunShardedDeployment(ShardedAssignmentService* service,
                                      const Catalog& catalog,
                                      std::vector<BehavioralWorker>* workers,
                                      const ShardedDeploymentOptions& options);

}  // namespace hta

#endif  // HTA_SIM_SHARDED_DEPLOYMENT_H_
