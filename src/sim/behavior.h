#ifndef HTA_SIM_BEHAVIOR_H_
#define HTA_SIM_BEHAVIOR_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/task.h"
#include "core/worker.h"
#include "util/rng.h"

namespace hta {

/// Latent parameters of a simulated worker's behavior.
///
/// The model replaces the paper's live AMT workers with mechanisms the
/// paper itself hypothesizes (Section V-C):
///  * preference   — a latent (alpha*, beta*) drives which displayed
///                   task the worker picks next (logit choice on
///                   marginal diversity + relevance);
///  * boredom      — "providing relevant tasks only may induce
///                   boredom": a boredom level rises when consecutive
///                   tasks are similar and depresses answer accuracy;
///  * choice cost  — "too much diversity results in overhead in
///                   choosing tasks": per-task time grows with the
///                   diversity of the displayed set;
///  * retention    — the per-task hazard of quitting falls with the
///                   realized utility of recent picks and rises with
///                   boredom.
///
/// The headline strategy ranking of Fig. 5 is *emergent* from these
/// mechanisms, not hard-coded.
struct BehaviorParams {
  double alpha_latent = 0.5;         ///< True diversity preference in [0,1].
  double base_accuracy = 0.78;       ///< Accuracy floor component.
  double relevance_accuracy_boost = 0.07;  ///< Accuracy gain at rel = 1.
  double boredom_accuracy_penalty = 0.35;  ///< Accuracy loss at boredom = 1.
  double boredom_gain = 0.5;         ///< Boredom added per unit similarity
                                     ///< above the threshold, scaled by
                                     ///< the worker's diversity
                                     ///< preference (2 * alpha_latent).
  double boredom_decay = 0.1;        ///< Boredom removed per unit
                                     ///< dissimilarity below threshold.
  double boredom_threshold = 0.42;   ///< Similarity above this bores.
  double base_task_seconds = 28.0;   ///< Median work time per task.
  double time_jitter_sigma = 0.35;   ///< Lognormal sigma on work time.
  double choice_overhead_seconds = 30.0;  ///< Extra seconds at displayed
                                          ///< diversity = 1.
  double base_leave_hazard = 0.07;   ///< Quit probability per task at
                                     ///< neutral utility.
  double utility_retention = 0.18;   ///< Hazard reduction at utility 1.
  double boredom_leave_hazard = 0.09;  ///< Extra hazard at boredom 1.
  double choice_fatigue_hazard = 0.04;  ///< Extra hazard at choice effort
                                        ///< 1 (decision fatigue: a diverse
                                        ///< displayed set with nothing
                                        ///< appealing in it).
  double choice_noise = 0.15;        ///< Gumbel temperature of the pick.
};

/// Draws per-worker behavior parameters around the defaults, with the
/// latent preference alpha* uniform in [0.15, 0.85].
BehaviorParams SampleBehaviorParams(Rng* rng);

/// Stateful behavioral worker driven by the crowd simulator.
class BehavioralWorker {
 public:
  BehavioralWorker(const std::vector<Task>* catalog, DistanceKind kind,
                   Worker profile, BehaviorParams params, Rng rng);

  const Worker& profile() const { return profile_; }
  const BehaviorParams& params() const { return params_; }
  double boredom() const { return boredom_; }
  size_t completed_count() const { return history_.size(); }

  /// Picks the next task among the displayed catalog indices (logit on
  /// latent utility). Requires a non-empty choice set.
  size_t ChooseTask(const std::vector<size_t>& displayed);

  /// Seconds spent completing `catalog_task`, including the choice
  /// overhead induced by the displayed set's diversity.
  double CompletionSeconds(size_t catalog_task,
                           const std::vector<size_t>& displayed);

  /// Simulates answering one question of the task; updates nothing.
  bool AnswerQuestionCorrectly(size_t catalog_task);

  /// Records the completion: updates boredom, history and recent
  /// utility.
  void RecordCompletion(size_t catalog_task);

  /// Whether the worker abandons the session after this task.
  bool DecidesToLeave();

  /// The latent utility the worker derives from a candidate task given
  /// their history (used by tests).
  double LatentUtility(size_t catalog_task) const;

 private:
  double DistanceTo(size_t a, size_t b) const;
  double RecentDiversityGain(size_t candidate) const;
  double Relevance(size_t catalog_task) const;

  const std::vector<Task>* catalog_;
  DistanceKind kind_;
  Worker profile_;
  BehaviorParams params_;
  Rng rng_;

  std::vector<size_t> history_;  // Completed catalog tasks, in order.
  double boredom_ = 0.0;
  double recent_utility_ = 0.5;
  double last_choice_effort_ = 0.0;  // Diversity x (1 - appeal) last seen.

  /// History window used for the marginal-diversity part of utility.
  static constexpr size_t kRecentWindow = 3;
};

}  // namespace hta

#endif  // HTA_SIM_BEHAVIOR_H_
