#include "sim/concurrent_deployment.h"

#include <numeric>

#include "sim/deployment_loop.h"
#include "util/check.h"
#include "util/rng.h"

namespace hta {

namespace sim_internal {

DeploymentMetrics& Dm() {
  static DeploymentMetrics* m = new DeploymentMetrics();
  return *m;
}

}  // namespace sim_internal

std::vector<double> PoissonArrivalMinutes(size_t count, double rate_per_min,
                                          uint64_t seed) {
  std::vector<double> arrivals(count);
  Rng rng(seed);
  double arrival = 0.0;
  for (size_t slot = 0; slot < count; ++slot) {
    arrival += rng.NextExponential(rate_per_min);
    arrivals[slot] = arrival;
  }
  return arrivals;
}

DeploymentResult RunConcurrentDeployment(
    AssignmentService* service, const Catalog& catalog,
    std::vector<BehavioralWorker>* workers,
    const ConcurrentDeploymentOptions& options) {
  HTA_CHECK(service != nullptr);
  HTA_CHECK(workers != nullptr);
  HTA_CHECK_GT(options.arrival_rate_per_min, 0.0);

  DeploymentResult result;
  result.sessions.resize(workers->size());
  if (workers->empty()) return result;

  const std::vector<double> arrivals = PoissonArrivalMinutes(
      workers->size(), options.arrival_rate_per_min, options.seed);
  std::vector<size_t> slots(workers->size());
  std::iota(slots.begin(), slots.end(), size_t{0});

  const sim_internal::LoopStats stats = sim_internal::RunDeploymentLoop(
      service, catalog, workers, slots, arrivals, options.session,
      &result.sessions);
  result.deployment_minutes = stats.deployment_minutes;
  result.max_concurrent_sessions = stats.peak_concurrent;

  // Deployment aggregate stats.
  result.iterations = service->iteration_count();
  double pooled_sum = 0.0;
  size_t pooled_count = 0;
  for (const IterationRecord& record : service->iterations()) {
    if (record.task_count > 0) {  // Solver-backed iteration.
      pooled_sum += static_cast<double>(record.worker_count);
      ++pooled_count;
    }
    result.total_setup_seconds += record.setup_seconds;
    result.total_solve_seconds += record.solve_seconds;
  }
  result.mean_workers_per_iteration =
      pooled_count > 0 ? pooled_sum / static_cast<double>(pooled_count) : 0.0;
  return result;
}

}  // namespace hta
