#include "sim/concurrent_deployment.h"

#include <algorithm>
#include <queue>

#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace hta {

namespace {

/// Deployment observability: event-queue shape and session churn. The
/// simulation loop is serial, so gauges are exact; counters are
/// per-event and thus deterministic for a given seed.
struct DeploymentMetrics {
  metrics::Counter arrivals{"deployment.arrivals"};
  metrics::Counter expirations{"deployment.expirations"};
  metrics::Counter events_processed{"deployment.events_processed"};
  metrics::Gauge queue_depth{"deployment.queue_depth"};
  metrics::Gauge concurrent_sessions{"deployment.concurrent_sessions"};
};

DeploymentMetrics& Dm() {
  static DeploymentMetrics* m = new DeploymentMetrics();
  return *m;
}

enum class EventKind { kArrival, kTaskDone, kSessionExpired };

struct Event {
  double minute;
  size_t worker_slot;
  EventKind kind;
  uint64_t sequence;  // Tie-break for deterministic ordering.
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.minute != b.minute) return a.minute > b.minute;
    return a.sequence > b.sequence;
  }
};

struct WorkerRun {
  uint64_t service_id = 0;
  double arrival_minute = 0.0;
  double busy_until = 0.0;
  size_t current_task = 0;
  bool active = false;
  SessionResult session;
};

}  // namespace

DeploymentResult RunConcurrentDeployment(
    AssignmentService* service, const Catalog& catalog,
    std::vector<BehavioralWorker>* workers,
    const ConcurrentDeploymentOptions& options) {
  HTA_CHECK(service != nullptr);
  HTA_CHECK(workers != nullptr);
  HTA_CHECK_GT(options.arrival_rate_per_min, 0.0);

  DeploymentResult result;
  result.sessions.resize(workers->size());
  if (workers->empty()) return result;

  Rng arrivals_rng(options.seed);
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::vector<WorkerRun> runs(workers->size());
  uint64_t sequence = 0;

  double arrival = 0.0;
  for (size_t slot = 0; slot < workers->size(); ++slot) {
    arrival += arrivals_rng.NextExponential(options.arrival_rate_per_min);
    runs[slot].arrival_minute = arrival;
    queue.push(Event{arrival, slot, EventKind::kArrival, sequence++});
  }

  size_t concurrent = 0;
  size_t peak_concurrent = 0;

  // Ends the session; records duration and frees the worker's slot.
  // Every caller has already advanced the service clock to `minute`, so
  // Deregister (and its audit-log record) lands at the same service
  // time as the recorded session end.
  auto end_session = [&](size_t slot, double minute, bool voluntary) {
    HTA_DCHECK_EQ(minute, service->clock_minutes());
    WorkerRun& run = runs[slot];
    if (!run.active) return;
    run.active = false;
    run.session.worker_id = run.service_id;
    run.session.left_voluntarily = voluntary;
    run.session.arrival_minute = run.arrival_minute;
    run.session.ended_minute = minute;
    run.session.duration_minutes = std::min(
        minute - run.arrival_minute, options.session.max_minutes);
    service->Deregister(run.service_id);
    result.sessions[slot] = run.session;
    result.deployment_minutes = std::max(result.deployment_minutes, minute);
    --concurrent;
    Dm().concurrent_sessions.Set(static_cast<int64_t>(concurrent));
  };

  // Picks the next task for the worker and schedules its completion.
  // If nothing is displayed the session ends now; if the session cap
  // would be crossed mid-task the task is not submitted and the worker
  // idles out their HIT — the already-queued kSessionExpired event
  // ends the session at the cap, once the service clock has actually
  // advanced there. (Ending it here used to Deregister at a service
  // clock earlier than the recorded session end.)
  auto schedule_next = [&](size_t slot, double minute) {
    WorkerRun& run = runs[slot];
    BehavioralWorker& worker = (*workers)[slot];
    const std::vector<size_t> displayed = service->Displayed(run.service_id);
    if (displayed.empty()) {
      end_session(slot, minute, /*voluntary=*/false);
      return;
    }
    const size_t chosen = worker.ChooseTask(displayed);
    const double spent =
        worker.CompletionSeconds(chosen, displayed) / 60.0;
    const double done_at = minute + spent;
    if (done_at - run.arrival_minute > options.session.max_minutes) {
      return;  // Allotted time expires mid-task; wait for expiry event.
    }
    run.current_task = chosen;
    run.busy_until = done_at;
    queue.push(Event{done_at, slot, EventKind::kTaskDone, sequence++});
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    Dm().events_processed.Add();
    Dm().queue_depth.Set(static_cast<int64_t>(queue.size()));
    WorkerRun& run = runs[event.worker_slot];
    BehavioralWorker& worker = (*workers)[event.worker_slot];

    switch (event.kind) {
      case EventKind::kArrival: {
        service->AdvanceClock(event.minute);
        Dm().arrivals.Add();
        run.service_id =
            service->RegisterWorker(worker.profile().interests());
        run.active = true;
        ++concurrent;
        peak_concurrent = std::max(peak_concurrent, concurrent);
        Dm().concurrent_sessions.Set(static_cast<int64_t>(concurrent));
        // The session's hard deadline is fixed at arrival; processing
        // expiry as a queued event keeps Deregister on the same
        // non-decreasing service clock as every other transition.
        queue.push(Event{event.minute + options.session.max_minutes,
                         event.worker_slot, EventKind::kSessionExpired,
                         sequence++});
        schedule_next(event.worker_slot, event.minute);
        break;
      }
      case EventKind::kSessionExpired: {
        if (!run.active) break;
        service->AdvanceClock(event.minute);
        Dm().expirations.Add();
        end_session(event.worker_slot, event.minute, /*voluntary=*/false);
        break;
      }
      case EventKind::kTaskDone: {
        if (!run.active) break;
        service->AdvanceClock(event.minute);
        const size_t task = run.current_task;
        CompletionEvent completion;
        completion.session_minute = event.minute - run.arrival_minute;
        completion.wall_minute = event.minute;
        completion.worker_id = run.service_id;
        completion.catalog_task = task;
        completion.questions =
            static_cast<int>(catalog.questions_per_task[task]);
        for (int q = 0; q < completion.questions; ++q) {
          if (worker.AnswerQuestionCorrectly(task)) ++completion.correct;
        }
        worker.RecordCompletion(task);
        run.session.events.push_back(completion);
        HTA_CHECK(service->NotifyCompleted(run.service_id, task).ok());
        if (worker.DecidesToLeave()) {
          end_session(event.worker_slot, event.minute, /*voluntary=*/true);
        } else {
          schedule_next(event.worker_slot, event.minute);
        }
        break;
      }
    }
  }

  // Deployment aggregate stats.
  result.iterations = service->iteration_count();
  double pooled_sum = 0.0;
  size_t pooled_count = 0;
  for (const IterationRecord& record : service->iterations()) {
    if (record.task_count > 0) {  // Solver-backed iteration.
      pooled_sum += static_cast<double>(record.worker_count);
      ++pooled_count;
    }
    result.total_setup_seconds += record.setup_seconds;
    result.total_solve_seconds += record.solve_seconds;
  }
  result.mean_workers_per_iteration =
      pooled_count > 0 ? pooled_sum / static_cast<double>(pooled_count) : 0.0;
  result.max_concurrent_sessions = static_cast<double>(peak_concurrent);
  return result;
}

}  // namespace hta
