#include "sim/catalog.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace hta {

namespace {

/// Realistic AMT/CrowdFlower-flavored group titles, cycled across
/// groups (Section V-C lists task kinds like tweet classification,
/// image transcription, sentiment analysis, entity resolution).
constexpr const char* kKindNames[] = {
    "tweet classification",      "web search relevance",
    "image transcription",       "sentiment analysis",
    "entity resolution",         "news information extraction",
    "audio transcription",       "video tagging",
    "product categorization",    "receipt digitization",
    "logo moderation",           "address verification",
    "language identification",   "spam detection",
    "survey about shopping",     "handwriting recognition",
    "medical text highlighting", "sports highlights tagging",
    "recipe ingredient listing", "business listing dedup",
    "emoji intent labeling",     "map point validation",
};
constexpr size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

std::vector<KeywordId> DrawDistinctKeywords(const ZipfSampler& zipf,
                                            size_t count, Rng* rng) {
  std::vector<KeywordId> out;
  std::vector<bool> seen(zipf.n(), false);
  size_t guard = 0;
  while (out.size() < count && guard < count * 200 + 100) {
    ++guard;
    const size_t id = zipf.Sample(rng->NextDouble());
    if (!seen[id]) {
      seen[id] = true;
      out.push_back(static_cast<KeywordId>(id));
    }
  }
  // Zipf tails can make rejection slow for large draws; fill linearly.
  for (size_t id = 0; out.size() < count && id < zipf.n(); ++id) {
    if (!seen[id]) {
      seen[id] = true;
      out.push_back(static_cast<KeywordId>(id));
    }
  }
  return out;
}

}  // namespace

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  HTA_CHECK_GT(n, size_t{0});
  HTA_CHECK_GE(exponent, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(double u) const {
  HTA_DCHECK(u >= 0.0 && u < 1.0);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

Result<Catalog> GenerateCatalog(const CatalogOptions& options) {
  if (options.vocabulary_size == 0) {
    return Status::InvalidArgument("vocabulary_size must be > 0");
  }
  if (options.num_groups == 0 || options.tasks_per_group == 0) {
    return Status::InvalidArgument("need at least one group and one task");
  }
  if (options.keywords_per_group + options.extra_keywords_per_task >
      options.vocabulary_size) {
    return Status::InvalidArgument(
        "group profile + jitter exceeds vocabulary size");
  }
  if (options.min_reward_usd > options.max_reward_usd ||
      options.min_reward_usd < 0.0) {
    return Status::InvalidArgument("invalid reward range");
  }
  if (options.min_questions > options.max_questions ||
      options.min_questions == 0) {
    return Status::InvalidArgument("invalid question range");
  }

  Catalog catalog;
  for (size_t i = 0; i < options.vocabulary_size; ++i) {
    catalog.space.Intern("kw" + std::to_string(i));
  }

  Rng rng(options.seed);
  const ZipfSampler zipf(options.vocabulary_size, options.zipf_exponent);

  catalog.tasks.reserve(options.num_groups * options.tasks_per_group);
  catalog.questions_per_task.reserve(catalog.tasks.capacity());
  uint64_t next_id = 0;
  for (size_t g = 0; g < options.num_groups; ++g) {
    const std::vector<KeywordId> profile =
        DrawDistinctKeywords(zipf, options.keywords_per_group, &rng);
    const std::string group_title =
        std::string(kKindNames[g % kKindCount]) + " #" + std::to_string(g);
    const double group_reward =
        rng.Uniform(options.min_reward_usd, options.max_reward_usd);
    for (size_t t = 0; t < options.tasks_per_group; ++t) {
      KeywordVector keywords(options.vocabulary_size, profile);
      for (size_t e = 0; e < options.extra_keywords_per_task; ++e) {
        keywords.Set(
            static_cast<KeywordId>(zipf.Sample(rng.NextDouble())));
      }
      catalog.tasks.emplace_back(next_id++, std::move(keywords), group_title,
                                 static_cast<TaskGroupId>(g), group_reward);
      catalog.questions_per_task.push_back(static_cast<uint16_t>(
          rng.UniformInt(static_cast<int64_t>(options.min_questions),
                         static_cast<int64_t>(options.max_questions))));
    }
  }
  return catalog;
}

}  // namespace hta
