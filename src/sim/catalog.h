#ifndef HTA_SIM_CATALOG_H_
#define HTA_SIM_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/keyword_space.h"
#include "core/task.h"
#include "util/result.h"

namespace hta {

/// Parameters of the synthetic AMT-like catalog.
///
/// The paper's offline experiments crawl 152,221 task groups from AMT
/// and sweep (#task groups) x (#tasks per group); the proprietary crawl
/// is replaced by a generator exposing exactly those structural knobs:
/// each group has a keyword profile (its "HIT group" metadata) shared
/// by all member tasks with small per-task jitter, and keyword
/// popularity follows a Zipf law as in real marketplaces.
struct CatalogOptions {
  size_t num_groups = 200;
  size_t tasks_per_group = 20;
  /// Keyword vocabulary size R. The generator interns "kw0".."kw{R-1}"
  /// plus nothing else, so universe_size == vocabulary_size.
  size_t vocabulary_size = 1000;
  /// Keywords in a group's profile.
  size_t keywords_per_group = 6;
  /// Extra per-task keywords drawn on top of the group profile.
  size_t extra_keywords_per_task = 2;
  /// Zipf exponent for keyword popularity (0 = uniform).
  double zipf_exponent = 1.05;
  /// Micro-task reward range (the paper's tasks pay $0.01-$0.12).
  double min_reward_usd = 0.01;
  double max_reward_usd = 0.12;
  /// Questions per task (a task may have several; Section V-C).
  size_t min_questions = 1;
  size_t max_questions = 3;
  uint64_t seed = 7;
};

/// A generated catalog: the keyword universe, the tasks, and per-task
/// question counts (ground truth is implicit — the simulator draws
/// answer correctness per question).
struct Catalog {
  KeywordSpace space;
  std::vector<Task> tasks;
  std::vector<uint16_t> questions_per_task;

  size_t size() const { return tasks.size(); }
};

/// Generates a catalog. Fails with InvalidArgument on degenerate
/// options (empty vocabulary, zero groups/tasks, profile larger than
/// the vocabulary, reward/question ranges inverted).
Result<Catalog> GenerateCatalog(const CatalogOptions& options);

/// Samples from {0, .., n-1} with Zipf(s) popularity. Exposed for the
/// worker generator and tests.
class ZipfSampler {
 public:
  /// `exponent` >= 0; 0 degenerates to uniform.
  ZipfSampler(size_t n, double exponent);

  /// Draws one index using `u` uniform in [0, 1).
  size_t Sample(double u) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace hta

#endif  // HTA_SIM_CATALOG_H_
