#include "sim/worker_gen.h"

#include <algorithm>

#include "util/rng.h"

namespace hta {

Result<std::vector<Worker>> GenerateWorkers(const WorkerGenOptions& options,
                                            const Catalog& catalog) {
  const size_t universe = catalog.space.size();
  if (options.keywords_per_worker > universe) {
    return Status::InvalidArgument(
        "keywords_per_worker exceeds vocabulary size");
  }
  if (options.group_affinity < 0.0 || options.group_affinity > 1.0) {
    return Status::InvalidArgument("group_affinity must be in [0, 1]");
  }
  Rng rng(options.seed);
  std::vector<Worker> workers;
  workers.reserve(options.count);
  for (size_t q = 0; q < options.count; ++q) {
    KeywordVector interests(universe);
    size_t from_group = 0;
    if (options.group_affinity > 0.0 && !catalog.tasks.empty()) {
      // Adopt keywords of a random task's group profile.
      const size_t anchor =
          static_cast<size_t>(rng.NextBounded(catalog.tasks.size()));
      std::vector<KeywordId> anchor_ids =
          catalog.tasks[anchor].keywords().ToIds();
      rng.Shuffle(&anchor_ids);
      const size_t want = static_cast<size_t>(
          options.group_affinity *
          static_cast<double>(options.keywords_per_worker));
      for (KeywordId id : anchor_ids) {
        if (from_group >= want) break;
        if (!interests.Test(id)) {
          interests.Set(id);
          ++from_group;
        }
      }
    }
    size_t have = from_group;
    size_t guard = 0;
    while (have < options.keywords_per_worker && guard < 100000) {
      ++guard;
      const KeywordId id = static_cast<KeywordId>(rng.NextBounded(universe));
      if (!interests.Test(id)) {
        interests.Set(id);
        ++have;
      }
    }
    MotivationWeights weights{0.5, 0.5};
    if (options.random_weights) {
      const double alpha = rng.NextDouble();
      weights = MotivationWeights{alpha, 1.0 - alpha};
    }
    workers.emplace_back(static_cast<uint64_t>(q), std::move(interests),
                         weights);
  }
  return workers;
}

}  // namespace hta
