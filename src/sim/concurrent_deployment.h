#ifndef HTA_SIM_CONCURRENT_DEPLOYMENT_H_
#define HTA_SIM_CONCURRENT_DEPLOYMENT_H_

#include <vector>

#include "sim/crowd_sim.h"

namespace hta {

/// Configuration of a concurrent deployment: workers arrive over time
/// (Poisson process) and their sessions overlap, so an assignment
/// iteration can pool several due workers into one HTA solve — the
/// W^i sets of Problem 1 with |W^i| > 1, as in the paper's live AMT
/// deployment where multiple HITs ran at once. (`RunSession` by
/// contrast runs sessions one at a time.)
struct ConcurrentDeploymentOptions {
  /// Mean worker arrivals per minute.
  double arrival_rate_per_min = 0.75;
  SessionConfig session;
  uint64_t seed = 99;
};

/// Deployment-level diagnostics on top of the per-session results.
struct DeploymentResult {
  std::vector<SessionResult> sessions;  ///< One per worker, arrival order.
  double deployment_minutes = 0.0;      ///< Wall-clock until the last
                                        ///< session ended.
  size_t iterations = 0;                ///< Service iterations performed.
  double mean_workers_per_iteration = 0.0;  ///< Mean |W^i| over
                                            ///< solver-backed iterations.
  size_t max_concurrent_sessions = 0;       ///< Peak simultaneous workers
                                            ///< (a count of sessions).
  /// Summed problem-construction time across iterations (the part the
  /// service's warm catalog cache amortizes; see IterationRecord).
  double total_setup_seconds = 0.0;
  /// Summed end-to-end iteration time (setup + solve + bookkeeping).
  double total_solve_seconds = 0.0;
};

/// Cumulative Poisson-process arrival times (minutes) for `count`
/// workers: the canonical arrival stream every deployment driver —
/// unsharded or sharded — draws from `Rng(seed)` in slot order, so the
/// same (count, rate, seed) triple always produces the same schedule.
std::vector<double> PoissonArrivalMinutes(size_t count, double rate_per_min,
                                          uint64_t seed);

/// Runs a concurrent deployment: each worker in `workers` arrives at a
/// Poisson-process time and works a session against the shared
/// `service`. Event-driven; deterministic given the option seed and the
/// workers' own streams.
DeploymentResult RunConcurrentDeployment(
    AssignmentService* service, const Catalog& catalog,
    std::vector<BehavioralWorker>* workers,
    const ConcurrentDeploymentOptions& options);

}  // namespace hta

#endif  // HTA_SIM_CONCURRENT_DEPLOYMENT_H_
