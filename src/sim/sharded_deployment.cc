#include "sim/sharded_deployment.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "sim/deployment_loop.h"
#include "util/check.h"
#include "util/env.h"

namespace hta {

namespace {

/// Adapts one shard of a ShardedAssignmentService to the Service
/// concept of RunDeploymentLoop: clock calls touch only this shard's
/// clock, and the DCHECK pins every registered worker to the expected
/// shard (the loop only simulates slots routed here).
struct ShardHandle {
  ShardedAssignmentService* service;
  size_t shard;

  void AdvanceClock(double minute) {
    service->AdvanceShardClock(shard, minute);
  }
  uint64_t RegisterWorker(const KeywordVector& interests) {
    const uint64_t id = service->RegisterWorker(interests);
    HTA_DCHECK_EQ(service->ShardOfWorker(id), shard);
    return id;
  }
  std::vector<size_t> Displayed(uint64_t worker_id) const {
    return service->Displayed(worker_id);
  }
  Status NotifyCompleted(uint64_t worker_id, size_t catalog_index) {
    return service->NotifyCompleted(worker_id, catalog_index);
  }
  void Deregister(uint64_t worker_id) { service->Deregister(worker_id); }
  double clock_minutes() const {
    return service->shard_clock_minutes(shard);
  }
};

/// Peak simultaneous sessions across the whole deployment via a
/// sweepline over (arrival, end) intervals: at equal minutes arrivals
/// count before ends, matching the live counting of the event loop
/// (an arrival event always precedes a same-minute session end in the
/// queue's (minute, sequence) order because arrivals are pre-queued
/// with the lowest sequences).
size_t PeakConcurrentSessions(const std::vector<SessionResult>& sessions) {
  std::vector<std::pair<double, int>> points;
  points.reserve(2 * sessions.size());
  for (const SessionResult& session : sessions) {
    points.emplace_back(session.arrival_minute, +1);
    points.emplace_back(session.ended_minute, -1);
  }
  std::sort(points.begin(), points.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second > b.second;  // +1 before -1.
            });
  size_t concurrent = 0;
  size_t peak = 0;
  for (const auto& [minute, delta] : points) {
    if (delta > 0) {
      peak = std::max(peak, ++concurrent);
    } else {
      --concurrent;
    }
  }
  return peak;
}

}  // namespace

DeploymentResult RunShardedDeployment(ShardedAssignmentService* service,
                                      const Catalog& catalog,
                                      std::vector<BehavioralWorker>* workers,
                                      const ShardedDeploymentOptions& options) {
  HTA_CHECK(service != nullptr);
  HTA_CHECK(workers != nullptr);
  HTA_CHECK_GT(options.arrival_rate_per_min, 0.0);

  DeploymentResult result;
  result.sessions.resize(workers->size());
  if (workers->empty()) return result;

  const size_t num_shards = service->num_shards();
  int64_t requested = static_cast<int64_t>(options.driver_threads);
  if (requested == 0) requested = GetEnvIntOr("HTA_DRIVER_THREADS", 1);
  const size_t driver_threads = std::min(
      num_shards, static_cast<size_t>(std::max<int64_t>(1, requested)));

  // The canonical arrival stream (slot order, one Rng): a sharded run
  // hands every worker the same arrival minute the unsharded driver
  // would, no matter how slots scatter across shards.
  const std::vector<double> arrivals = PoissonArrivalMinutes(
      workers->size(), options.arrival_rate_per_min, options.seed);

  // Route slots to shards by interest hash, ascending slot order within
  // each shard (the per-shard loop's event sequences depend on it).
  std::vector<std::vector<size_t>> shard_slots(num_shards);
  for (size_t slot = 0; slot < workers->size(); ++slot) {
    shard_slots[service->ShardForInterests(
                    (*workers)[slot].profile().interests())]
        .push_back(slot);
  }

  // Each shard's loop is fully self-contained — own slots, own service
  // shard, own event queue — so any thread may run it with identical
  // results; threads exist purely to overlap wall-clock across shards.
  std::vector<sim_internal::LoopStats> stats(num_shards);
  const auto run_shard = [&](size_t s) {
    ShardHandle handle{service, s};
    stats[s] = sim_internal::RunDeploymentLoop(
        &handle, catalog, workers, shard_slots[s], arrivals, options.session,
        &result.sessions);
  };
  if (driver_threads == 1) {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(driver_threads);
    for (size_t t = 0; t < driver_threads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t s = t; s < num_shards; s += driver_threads) run_shard(s);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // All aggregation below is post-join, single-threaded, fixed shard
  // order — this is where driver-thread scheduling stops mattering.
  service->FlushEventLog();
  double pooled_sum = 0.0;
  size_t pooled_count = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    result.deployment_minutes =
        std::max(result.deployment_minutes, stats[s].deployment_minutes);
    const AssignmentService& shard = service->shard(s);
    result.iterations += shard.iteration_count();
    for (const IterationRecord& record : shard.iterations()) {
      if (record.task_count > 0) {  // Solver-backed iteration.
        pooled_sum += static_cast<double>(record.worker_count);
        ++pooled_count;
      }
      result.total_setup_seconds += record.setup_seconds;
      result.total_solve_seconds += record.solve_seconds;
    }
  }
  result.mean_workers_per_iteration =
      pooled_count > 0 ? pooled_sum / static_cast<double>(pooled_count) : 0.0;
  result.max_concurrent_sessions =
      num_shards == 1 ? stats[0].peak_concurrent
                      : PeakConcurrentSessions(result.sessions);
  return result;
}

}  // namespace hta
