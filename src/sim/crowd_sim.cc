#include "sim/crowd_sim.h"

#include "util/check.h"

namespace hta {

size_t SessionResult::questions_total() const {
  size_t total = 0;
  for (const auto& e : events) total += static_cast<size_t>(e.questions);
  return total;
}

size_t SessionResult::questions_correct() const {
  size_t total = 0;
  for (const auto& e : events) total += static_cast<size_t>(e.correct);
  return total;
}

SessionResult RunSession(AssignmentService* service, const Catalog& catalog,
                         BehavioralWorker* worker,
                         const SessionConfig& config) {
  HTA_CHECK(service != nullptr);
  HTA_CHECK(worker != nullptr);

  SessionResult session;
  // Sessions share one service; its audit clock is deployment-global
  // while `minutes` below is session-relative.
  const double clock_origin = service->clock_minutes();
  const uint64_t worker_id =
      service->RegisterWorker(worker->profile().interests());
  session.worker_id = worker_id;

  double minutes = 0.0;
  while (minutes < config.max_minutes) {
    const std::vector<size_t> displayed = service->Displayed(worker_id);
    if (displayed.empty()) break;  // Platform ran out of tasks.

    const size_t chosen = worker->ChooseTask(displayed);
    const double spent_minutes =
        worker->CompletionSeconds(chosen, displayed) / 60.0;
    if (minutes + spent_minutes > config.max_minutes) {
      // The allotted time expires mid-task; the task is not submitted
      // (workers must submit the HIT before the deadline).
      minutes = config.max_minutes;
      break;
    }
    minutes += spent_minutes;
    service->AdvanceClock(clock_origin + minutes);

    CompletionEvent event;
    event.session_minute = minutes;
    event.wall_minute = clock_origin + minutes;
    event.worker_id = worker_id;
    event.catalog_task = chosen;
    event.questions = static_cast<int>(catalog.questions_per_task[chosen]);
    for (int q = 0; q < event.questions; ++q) {
      if (worker->AnswerQuestionCorrectly(chosen)) ++event.correct;
    }
    worker->RecordCompletion(chosen);
    session.events.push_back(event);

    HTA_CHECK(service->NotifyCompleted(worker_id, chosen).ok());

    if (worker->DecidesToLeave()) {
      session.left_voluntarily = true;
      break;
    }
  }

  // `minutes` already equals the cap when the allotted time expired;
  // it is smaller when the worker left or the platform ran dry.
  session.duration_minutes = minutes;
  session.arrival_minute = clock_origin;
  // The session ends at the last completion's clock; the cap-expiry
  // sentinel above does not advance the service clock (no event was
  // submitted at the deadline).
  session.ended_minute = service->clock_minutes();
  service->Deregister(worker_id);
  return session;
}

}  // namespace hta
