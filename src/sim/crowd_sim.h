#ifndef HTA_SIM_CROWD_SIM_H_
#define HTA_SIM_CROWD_SIM_H_

#include <cstdint>
#include <vector>

#include "engine/assignment_service.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "util/result.h"

namespace hta {

/// One completed task within a session.
struct CompletionEvent {
  double minute = 0.0;       ///< Session-relative completion time.
  uint64_t worker_id = 0;    ///< Service-assigned worker id.
  size_t catalog_task = 0;
  int questions = 0;
  int correct = 0;
};

/// One worker's work session (one HIT in the paper's deployment).
struct SessionResult {
  uint64_t worker_id = 0;
  double duration_minutes = 0.0;
  bool left_voluntarily = false;  ///< false = hit the session time cap.
  std::vector<CompletionEvent> events;

  size_t tasks_completed() const { return events.size(); }
  size_t questions_total() const;
  size_t questions_correct() const;
};

/// Session limits (the paper's HITs allot 30 minutes).
struct SessionConfig {
  double max_minutes = 30.0;
};

/// Runs one worker session against an AssignmentService: repeatedly
/// choose a displayed task with the behavioral model, spend time,
/// answer its questions, notify the service, and possibly leave.
///
/// The service outlives the call and accumulates state across sessions
/// (the task pool depletes, as on a real platform).
SessionResult RunSession(AssignmentService* service, const Catalog& catalog,
                         BehavioralWorker* worker,
                         const SessionConfig& config);

}  // namespace hta

#endif  // HTA_SIM_CROWD_SIM_H_
