#ifndef HTA_SIM_CROWD_SIM_H_
#define HTA_SIM_CROWD_SIM_H_

#include <cstdint>
#include <vector>

#include "engine/assignment_service.h"
#include "sim/behavior.h"
#include "sim/catalog.h"
#include "util/result.h"

namespace hta {

/// One completed task within a session.
struct CompletionEvent {
  /// Completion time relative to the session's start. Session-local
  /// analyses (dropout curves, time-in-HIT binning) read this field.
  double session_minute = 0.0;
  /// Completion time on the service's wall clock — the deployment-
  /// global, non-decreasing timeline. This (not session_minute) is the
  /// timestamp that matches the service's audit EventLog, whose append
  /// contract requires non-decreasing minutes across *all* workers.
  double wall_minute = 0.0;
  uint64_t worker_id = 0;    ///< Service-assigned worker id.
  size_t catalog_task = 0;
  int questions = 0;
  int correct = 0;
};

/// One worker's work session (one HIT in the paper's deployment).
struct SessionResult {
  uint64_t worker_id = 0;
  double duration_minutes = 0.0;
  /// Deployment wall-clock bounds of the session. `ended_minute` is the
  /// service-clock time Deregister ran at (arrival + duration); for a
  /// single RunSession the origin is the service clock at registration.
  double arrival_minute = 0.0;
  double ended_minute = 0.0;
  bool left_voluntarily = false;  ///< false = hit the session time cap.
  std::vector<CompletionEvent> events;

  size_t tasks_completed() const { return events.size(); }
  size_t questions_total() const;
  size_t questions_correct() const;
};

/// Session limits (the paper's HITs allot 30 minutes).
struct SessionConfig {
  double max_minutes = 30.0;
};

/// Runs one worker session against an AssignmentService: repeatedly
/// choose a displayed task with the behavioral model, spend time,
/// answer its questions, notify the service, and possibly leave.
///
/// The service outlives the call and accumulates state across sessions
/// (the task pool depletes, as on a real platform).
SessionResult RunSession(AssignmentService* service, const Catalog& catalog,
                         BehavioralWorker* worker,
                         const SessionConfig& config);

}  // namespace hta

#endif  // HTA_SIM_CROWD_SIM_H_
