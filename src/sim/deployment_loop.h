#ifndef HTA_SIM_DEPLOYMENT_LOOP_H_
#define HTA_SIM_DEPLOYMENT_LOOP_H_

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/crowd_sim.h"
#include "util/check.h"
#include "util/metrics.h"

namespace hta {
namespace sim_internal {

/// Deployment observability: event-queue shape and session churn.
/// Counters are per-event and thus deterministic for a given seed
/// (striped, exact under concurrent driver threads); gauges are exact
/// when one loop runs, last-write-wins when sharded loops interleave.
struct DeploymentMetrics {
  metrics::Counter arrivals{"deployment.arrivals"};
  metrics::Counter expirations{"deployment.expirations"};
  metrics::Counter events_processed{"deployment.events_processed"};
  metrics::Gauge queue_depth{"deployment.queue_depth"};
  metrics::Gauge concurrent_sessions{"deployment.concurrent_sessions"};
};

/// The process-wide instance (defined in concurrent_deployment.cc).
DeploymentMetrics& Dm();

enum class EventKind { kArrival, kTaskDone, kSessionExpired };

struct Event {
  double minute;
  size_t run_index;  ///< Index into this loop's local runs, not a slot.
  EventKind kind;
  uint64_t sequence;  // Tie-break for deterministic ordering.
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.minute != b.minute) return a.minute > b.minute;
    return a.sequence > b.sequence;
  }
};

struct WorkerRun {
  uint64_t service_id = 0;
  double arrival_minute = 0.0;
  double busy_until = 0.0;
  size_t current_task = 0;
  bool active = false;
  SessionResult session;
};

/// Aggregates of one event loop: wall-clock horizon and the peak
/// simultaneous sessions *within this loop's slot subset*.
struct LoopStats {
  double deployment_minutes = 0.0;
  size_t peak_concurrent = 0;
};

/// The discrete-event deployment loop, shared by the single-service
/// driver (RunConcurrentDeployment) and the per-shard loops of
/// RunShardedDeployment. `Service` is anything with the serving
/// surface: AdvanceClock(double), RegisterWorker(interests) -> id,
/// Displayed(id) -> catalog indices, NotifyCompleted(id, index) ->
/// Status, Deregister(id), clock_minutes(). `slots` selects which
/// workers this loop simulates (indices into *workers / *sessions);
/// `arrival_minutes` is indexed by slot and pre-computed by the caller
/// so a sharded run consumes the exact arrival stream of the unsharded
/// one. Results land in (*sessions)[slot] — disjoint slot subsets make
/// concurrent loops write disjoint elements.
template <typename Service>
LoopStats RunDeploymentLoop(Service* service, const Catalog& catalog,
                            std::vector<BehavioralWorker>* workers,
                            const std::vector<size_t>& slots,
                            const std::vector<double>& arrival_minutes,
                            const SessionConfig& session_config,
                            std::vector<SessionResult>* sessions) {
  LoopStats stats;
  if (slots.empty()) return stats;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::vector<WorkerRun> runs(slots.size());
  uint64_t sequence = 0;

  for (size_t i = 0; i < slots.size(); ++i) {
    runs[i].arrival_minute = arrival_minutes[slots[i]];
    queue.push(Event{runs[i].arrival_minute, i, EventKind::kArrival,
                     sequence++});
  }

  size_t concurrent = 0;

  // Ends the session; records duration and frees the worker's slot.
  // Every caller has already advanced the service clock to `minute`, so
  // Deregister (and its audit-log record) lands at the same service
  // time as the recorded session end.
  auto end_session = [&](size_t run_index, double minute, bool voluntary) {
    HTA_DCHECK_EQ(minute, service->clock_minutes());
    WorkerRun& run = runs[run_index];
    if (!run.active) return;
    run.active = false;
    run.session.worker_id = run.service_id;
    run.session.left_voluntarily = voluntary;
    run.session.arrival_minute = run.arrival_minute;
    run.session.ended_minute = minute;
    run.session.duration_minutes =
        std::min(minute - run.arrival_minute, session_config.max_minutes);
    service->Deregister(run.service_id);
    (*sessions)[slots[run_index]] = run.session;
    stats.deployment_minutes = std::max(stats.deployment_minutes, minute);
    --concurrent;
    Dm().concurrent_sessions.Set(static_cast<int64_t>(concurrent));
  };

  // Picks the next task for the worker and schedules its completion.
  // If nothing is displayed the session ends now; if the session cap
  // would be crossed mid-task the task is not submitted and the worker
  // idles out their HIT — the already-queued kSessionExpired event
  // ends the session at the cap, once the service clock has actually
  // advanced there. (Ending it here used to Deregister at a service
  // clock earlier than the recorded session end.)
  auto schedule_next = [&](size_t run_index, double minute) {
    WorkerRun& run = runs[run_index];
    BehavioralWorker& worker = (*workers)[slots[run_index]];
    const std::vector<size_t> displayed = service->Displayed(run.service_id);
    if (displayed.empty()) {
      end_session(run_index, minute, /*voluntary=*/false);
      return;
    }
    const size_t chosen = worker.ChooseTask(displayed);
    const double spent = worker.CompletionSeconds(chosen, displayed) / 60.0;
    const double done_at = minute + spent;
    if (done_at - run.arrival_minute > session_config.max_minutes) {
      return;  // Allotted time expires mid-task; wait for expiry event.
    }
    run.current_task = chosen;
    run.busy_until = done_at;
    queue.push(Event{done_at, run_index, EventKind::kTaskDone, sequence++});
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    Dm().events_processed.Add();
    Dm().queue_depth.Set(static_cast<int64_t>(queue.size()));
    WorkerRun& run = runs[event.run_index];
    BehavioralWorker& worker = (*workers)[slots[event.run_index]];

    switch (event.kind) {
      case EventKind::kArrival: {
        service->AdvanceClock(event.minute);
        Dm().arrivals.Add();
        run.service_id =
            service->RegisterWorker(worker.profile().interests());
        run.active = true;
        ++concurrent;
        stats.peak_concurrent = std::max(stats.peak_concurrent, concurrent);
        Dm().concurrent_sessions.Set(static_cast<int64_t>(concurrent));
        // The session's hard deadline is fixed at arrival; processing
        // expiry as a queued event keeps Deregister on the same
        // non-decreasing service clock as every other transition.
        queue.push(Event{event.minute + session_config.max_minutes,
                         event.run_index, EventKind::kSessionExpired,
                         sequence++});
        schedule_next(event.run_index, event.minute);
        break;
      }
      case EventKind::kSessionExpired: {
        if (!run.active) break;
        service->AdvanceClock(event.minute);
        Dm().expirations.Add();
        end_session(event.run_index, event.minute, /*voluntary=*/false);
        break;
      }
      case EventKind::kTaskDone: {
        if (!run.active) break;
        service->AdvanceClock(event.minute);
        const size_t task = run.current_task;
        CompletionEvent completion;
        completion.session_minute = event.minute - run.arrival_minute;
        completion.wall_minute = event.minute;
        completion.worker_id = run.service_id;
        completion.catalog_task = task;
        completion.questions =
            static_cast<int>(catalog.questions_per_task[task]);
        for (int q = 0; q < completion.questions; ++q) {
          if (worker.AnswerQuestionCorrectly(task)) ++completion.correct;
        }
        worker.RecordCompletion(task);
        run.session.events.push_back(completion);
        HTA_CHECK(service->NotifyCompleted(run.service_id, task).ok());
        if (worker.DecidesToLeave()) {
          end_session(event.run_index, event.minute, /*voluntary=*/true);
        } else {
          schedule_next(event.run_index, event.minute);
        }
        break;
      }
    }
  }

  return stats;
}

}  // namespace sim_internal
}  // namespace hta

#endif  // HTA_SIM_DEPLOYMENT_LOOP_H_
