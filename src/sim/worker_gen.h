#ifndef HTA_SIM_WORKER_GEN_H_
#define HTA_SIM_WORKER_GEN_H_

#include <vector>

#include "core/worker.h"
#include "sim/catalog.h"
#include "util/result.h"

namespace hta {

/// Synthetic worker population, per Section V-B: "For each worker w, we
/// use a pseudo-random uniform generator to choose five keywords ...
/// for each worker, we pick a random alpha and beta in [0, 1]".
struct WorkerGenOptions {
  size_t count = 200;
  size_t keywords_per_worker = 5;
  /// If true, (alpha, beta) is a random point with alpha uniform in
  /// [0, 1] and beta = 1 - alpha (the simulated "previous iteration"
  /// estimate); if false all workers start at the (0.5, 0.5) prior.
  bool random_weights = true;
  /// Fraction of each worker's keywords drawn from a randomly chosen
  /// task group profile rather than the raw vocabulary. 0 reproduces
  /// the paper's uniform choice; > 0 makes relevance structurally
  /// meaningful for the online simulation.
  double group_affinity = 0.0;
  uint64_t seed = 11;
};

/// Generates workers over the catalog's keyword universe. Worker ids
/// run from 0 to count-1. Fails if keywords_per_worker exceeds the
/// vocabulary.
Result<std::vector<Worker>> GenerateWorkers(const WorkerGenOptions& options,
                                            const Catalog& catalog);

}  // namespace hta

#endif  // HTA_SIM_WORKER_GEN_H_
