#ifndef HTA_SIM_ONLINE_EXPERIMENT_H_
#define HTA_SIM_ONLINE_EXPERIMENT_H_

#include <vector>

#include "assign/baselines.h"
#include "sim/concurrent_deployment.h"
#include "sim/crowd_sim.h"
#include "sim/worker_gen.h"
#include "util/stats.h"

namespace hta {

/// Configuration of the online-deployment reproduction (Section V-C /
/// Fig. 5). Defaults follow the paper: 20 work sessions per strategy,
/// 30-minute sessions, Xmax = 15 with 5 extra random tasks. The
/// embedded service runs with its warm catalog cache on by default
/// (see AssignmentServiceOptions::warm_cache) — bit-identical curves
/// to the cold path, with per-iteration setup amortized to the subset
/// remap; set service.warm_cache = false (or HTA_WARM_CACHE=0) to
/// force the cold reference path.
struct OnlineExperimentOptions {
  std::vector<StrategyKind> strategies = {
      StrategyKind::kHtaGre, StrategyKind::kHtaGreRel,
      StrategyKind::kHtaGreDiv, StrategyKind::kRandom};
  size_t sessions_per_strategy = 20;
  /// If true, sessions overlap (Poisson arrivals at `arrival_rate`) so
  /// assignment iterations pool multiple workers, as in the paper's
  /// live deployment; if false, sessions run back to back.
  bool concurrent_sessions = false;
  double arrival_rate_per_min = 0.75;
  SessionConfig session;
  CatalogOptions catalog;
  WorkerGenOptions workers;
  AssignmentServiceOptions service;
  uint64_t seed = 1234;

  OnlineExperimentOptions() {
    // A catalog big enough that 20 sessions cannot drain it, shaped
    // like the CrowdFlower set (many kinds, shared group keywords).
    // Iteration samples must be large enough relative to group size
    // that a worker's best-matching group is actually on the table —
    // otherwise the relevance-only strategy cannot express itself.
    catalog.num_groups = 20;
    catalog.tasks_per_group = 200;
    catalog.vocabulary_size = 400;
    workers.count = sessions_per_strategy;
    workers.group_affinity = 1.0;  // Make relevance signal meaningful.
    service.xmax = 15;
    service.extra_random_tasks = 5;
    service.max_tasks_per_iteration = 800;
  }
};

/// Per-strategy minute-binned curves, exactly the series of Fig. 5.
struct StrategyCurves {
  StrategyKind kind = StrategyKind::kHtaGre;
  /// Minute grid 0..max_minutes (inclusive, integer minutes).
  std::vector<double> minutes;
  /// Fig. 5a: cumulative % of questions answered correctly by time x,
  /// pooled over sessions (NaN-free: 0 until the first answer).
  std::vector<double> cumulative_correct_pct;
  /// Fig. 5b: cumulative completed tasks by time x, pooled.
  std::vector<double> cumulative_completed;
  /// Fig. 5c: % of sessions still running at time x.
  std::vector<double> retention_pct;

  // Totals & per-session samples for significance testing.
  size_t total_tasks = 0;
  size_t total_questions = 0;
  size_t total_correct = 0;
  std::vector<double> tasks_per_session;
  std::vector<double> session_duration_minutes;
  double mean_alpha_estimate_end = 0.0;  ///< Final alpha estimates (adaptive).

  // Service-side cost accounting for this strategy's deployment.
  size_t service_iterations = 0;        ///< Assignment iterations run.
  double total_setup_seconds = 0.0;     ///< Summed problem-construction time.
  double total_solve_seconds = 0.0;     ///< Summed iteration time.
  /// Peak simultaneous sessions: 1 when sessions run back to back,
  /// DeploymentResult::max_concurrent_sessions when they overlap.
  size_t max_concurrent_sessions = 1;
};

/// Full experiment output.
struct OnlineExperimentResult {
  std::vector<StrategyCurves> curves;  // Same order as options.strategies.

  /// Finds a strategy's curves; CHECK-fails if absent.
  const StrategyCurves& ForStrategy(StrategyKind kind) const;
};

/// Runs the experiment: for each strategy, a fresh catalog + service,
/// the same simulated worker population (identical seeds across
/// strategies for paired comparison), sessions run sequentially.
OnlineExperimentResult RunOnlineExperiment(
    const OnlineExperimentOptions& options);

}  // namespace hta

#endif  // HTA_SIM_ONLINE_EXPERIMENT_H_
