#include "sim/behavior.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace hta {

BehaviorParams SampleBehaviorParams(Rng* rng) {
  BehaviorParams p;
  p.alpha_latent = rng->Uniform(0.15, 0.85);
  p.base_accuracy = rng->Uniform(0.72, 0.84);
  p.relevance_accuracy_boost = rng->Uniform(0.04, 0.10);
  p.boredom_accuracy_penalty = rng->Uniform(0.28, 0.42);
  p.base_task_seconds = rng->Uniform(20.0, 40.0);
  p.choice_overhead_seconds = rng->Uniform(22.0, 38.0);
  p.base_leave_hazard = rng->Uniform(0.055, 0.085);
  return p;
}

BehavioralWorker::BehavioralWorker(const std::vector<Task>* catalog,
                                   DistanceKind kind, Worker profile,
                                   BehaviorParams params, Rng rng)
    : catalog_(catalog),
      kind_(kind),
      profile_(std::move(profile)),
      params_(params),
      rng_(rng) {
  HTA_CHECK(catalog != nullptr);
}

double BehavioralWorker::DistanceTo(size_t a, size_t b) const {
  return PairwiseTaskDiversity(kind_, (*catalog_)[a], (*catalog_)[b]);
}

double BehavioralWorker::Relevance(size_t catalog_task) const {
  return TaskRelevance(kind_, (*catalog_)[catalog_task], profile_);
}

double BehavioralWorker::RecentDiversityGain(size_t candidate) const {
  if (history_.empty()) return 0.5;  // Neutral: nothing to differ from.
  const size_t window = std::min(history_.size(), kRecentWindow);
  double sum = 0.0;
  for (size_t k = 0; k < window; ++k) {
    sum += DistanceTo(candidate, history_[history_.size() - 1 - k]);
  }
  return sum / static_cast<double>(window);
}

double BehavioralWorker::LatentUtility(size_t catalog_task) const {
  const double alpha = params_.alpha_latent;
  return alpha * RecentDiversityGain(catalog_task) +
         (1.0 - alpha) * Relevance(catalog_task);
}

size_t BehavioralWorker::ChooseTask(const std::vector<size_t>& displayed) {
  HTA_CHECK(!displayed.empty());
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_task = displayed[0];
  for (size_t t : displayed) {
    const double score =
        LatentUtility(t) + params_.choice_noise * rng_.NextGumbel();
    if (score > best_score) {
      best_score = score;
      best_task = t;
    }
  }
  return best_task;
}

double BehavioralWorker::CompletionSeconds(
    size_t catalog_task, const std::vector<size_t>& displayed) {
  // Choice overhead: scanning a diverse option set costs time, and the
  // scan ends once something appealing is found — so the overhead
  // shrinks with the utility of the task eventually chosen. A diverse
  // wall of unappealing tasks is the slowest case (the paper's "too
  // much diversity results in overhead in choosing tasks").
  double displayed_diversity = 0.0;
  if (displayed.size() >= 2) {
    double sum = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < displayed.size(); ++i) {
      for (size_t j = i + 1; j < displayed.size(); ++j) {
        sum += DistanceTo(displayed[i], displayed[j]);
        ++pairs;
      }
    }
    displayed_diversity = sum / static_cast<double>(pairs);
  }
  const double appeal = std::clamp(LatentUtility(catalog_task), 0.0, 1.0);
  last_choice_effort_ = displayed_diversity * (1.0 - appeal);
  const double choice_seconds =
      params_.choice_overhead_seconds * last_choice_effort_;
  const double work_seconds =
      params_.base_task_seconds *
      std::exp(params_.time_jitter_sigma * rng_.NextGaussian());
  return choice_seconds + work_seconds;
}

bool BehavioralWorker::AnswerQuestionCorrectly(size_t catalog_task) {
  const double accuracy = std::clamp(
      params_.base_accuracy +
          params_.relevance_accuracy_boost * Relevance(catalog_task) -
          params_.boredom_accuracy_penalty * boredom_,
      0.05, 0.98);
  return rng_.NextBool(accuracy);
}

void BehavioralWorker::RecordCompletion(size_t catalog_task) {
  // Monotony is judged against the recent window, not just the last
  // task: alternating between two near-duplicate clusters is still
  // repetitive work. The window mean keeps a genuinely mixed sequence
  // below the boredom threshold.
  double similarity = 0.0;
  const size_t window = std::min(history_.size(), kRecentWindow);
  for (size_t k = 0; k < window; ++k) {
    similarity +=
        1.0 - DistanceTo(catalog_task, history_[history_.size() - 1 - k]);
  }
  if (window > 0) similarity /= static_cast<double>(window);
  // Sensitivity to monotony scales with the worker's own diversity
  // preference (Hackman-Oldham skill variety): diversity-seekers are
  // exactly the workers demotivated by repetitive work, while
  // relevance-seekers tolerate it.
  const double sensitivity = 2.0 * params_.alpha_latent;
  if (similarity > params_.boredom_threshold) {
    boredom_ += sensitivity * params_.boredom_gain *
                (similarity - params_.boredom_threshold);
  } else {
    boredom_ -= params_.boredom_decay * (params_.boredom_threshold - similarity);
  }
  boredom_ = std::clamp(boredom_, 0.0, 1.0);
  recent_utility_ = LatentUtility(catalog_task);
  history_.push_back(catalog_task);
}

bool BehavioralWorker::DecidesToLeave() {
  const double hazard = std::clamp(
      params_.base_leave_hazard -
          params_.utility_retention * recent_utility_ +
          params_.boredom_leave_hazard * boredom_ +
          params_.choice_fatigue_hazard * last_choice_effort_,
      0.002, 0.5);
  return rng_.NextBool(hazard);
}

}  // namespace hta
