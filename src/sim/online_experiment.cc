#include "sim/online_experiment.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hta {

const StrategyCurves& OnlineExperimentResult::ForStrategy(
    StrategyKind kind) const {
  for (const auto& c : curves) {
    if (c.kind == kind) return c;
  }
  HTA_CHECK(false) << "strategy " << StrategyName(kind) << " not in result";
  return curves.front();  // Unreachable.
}

namespace {

StrategyCurves BuildCurves(StrategyKind kind,
                           const std::vector<SessionResult>& sessions,
                           double max_minutes) {
  StrategyCurves c;
  c.kind = kind;
  const size_t bins = static_cast<size_t>(std::ceil(max_minutes)) + 1;
  c.minutes.resize(bins);
  for (size_t b = 0; b < bins; ++b) c.minutes[b] = static_cast<double>(b);

  std::vector<double> correct(bins, 0.0);
  std::vector<double> questions(bins, 0.0);
  std::vector<double> completed(bins, 0.0);
  for (const SessionResult& s : sessions) {
    c.tasks_per_session.push_back(static_cast<double>(s.tasks_completed()));
    c.session_duration_minutes.push_back(s.duration_minutes);
    c.total_tasks += s.tasks_completed();
    c.total_questions += s.questions_total();
    c.total_correct += s.questions_correct();
    for (const CompletionEvent& e : s.events) {
      const size_t bin = std::min(
          bins - 1, static_cast<size_t>(std::ceil(e.session_minute)));
      correct[bin] += e.correct;
      questions[bin] += e.questions;
      completed[bin] += 1.0;
    }
  }

  c.cumulative_correct_pct.resize(bins, 0.0);
  c.cumulative_completed.resize(bins, 0.0);
  c.retention_pct.resize(bins, 0.0);
  double cum_correct = 0.0;
  double cum_questions = 0.0;
  double cum_completed = 0.0;
  for (size_t b = 0; b < bins; ++b) {
    cum_correct += correct[b];
    cum_questions += questions[b];
    cum_completed += completed[b];
    c.cumulative_correct_pct[b] =
        cum_questions > 0.0 ? 100.0 * cum_correct / cum_questions : 0.0;
    c.cumulative_completed[b] = cum_completed;
    size_t alive = 0;
    for (const SessionResult& s : sessions) {
      if (s.duration_minutes >= static_cast<double>(b)) ++alive;
    }
    c.retention_pct[b] = sessions.empty()
                             ? 0.0
                             : 100.0 * static_cast<double>(alive) /
                                   static_cast<double>(sessions.size());
  }
  return c;
}

}  // namespace

OnlineExperimentResult RunOnlineExperiment(
    const OnlineExperimentOptions& options) {
  OnlineExperimentResult result;
  Rng master(options.seed);

  for (StrategyKind kind : options.strategies) {
    // Fresh catalog and service per strategy (identical seeds: the same
    // tasks), so strategies face the same marketplace.
    auto catalog_or = GenerateCatalog(options.catalog);
    HTA_CHECK(catalog_or.ok()) << catalog_or.status();
    const Catalog& catalog = *catalog_or;

    WorkerGenOptions worker_options = options.workers;
    worker_options.count = options.sessions_per_strategy;
    auto workers_or = GenerateWorkers(worker_options, catalog);
    HTA_CHECK(workers_or.ok()) << workers_or.status();

    AssignmentServiceOptions service_options = options.service;
    service_options.strategy = kind;
    service_options.metric = DistanceKind::kJaccard;
    AssignmentService service(&catalog.tasks, service_options);

    // Same behavioral workers across strategies: parameters and
    // behavior streams derive from the master seed and session index
    // only.
    std::vector<BehavioralWorker> behavioral;
    behavioral.reserve(options.sessions_per_strategy);
    for (size_t s = 0; s < options.sessions_per_strategy; ++s) {
      Rng param_rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
      const BehaviorParams params = SampleBehaviorParams(&param_rng);
      behavioral.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                              (*workers_or)[s], params, param_rng.Fork(17));
    }

    std::vector<SessionResult> sessions;
    sessions.reserve(options.sessions_per_strategy);
    double alpha_sum = 0.0;
    size_t alpha_count = 0;
    size_t max_concurrent = 1;  // Back-to-back sessions never overlap.
    if (options.concurrent_sessions) {
      ConcurrentDeploymentOptions deployment;
      deployment.arrival_rate_per_min = options.arrival_rate_per_min;
      deployment.session = options.session;
      deployment.seed = options.seed + 101;
      DeploymentResult run = RunConcurrentDeployment(&service, catalog,
                                                     &behavioral, deployment);
      sessions = std::move(run.sessions);
      max_concurrent = run.max_concurrent_sessions;
      if (kind == StrategyKind::kHtaGre) {
        for (const SessionResult& session : sessions) {
          alpha_sum += service.CurrentWeights(session.worker_id).alpha;
          ++alpha_count;
        }
      }
    } else {
      for (size_t s = 0; s < options.sessions_per_strategy; ++s) {
        const SessionResult session = RunSession(&service, catalog,
                                                 &behavioral[s],
                                                 options.session);
        if (kind == StrategyKind::kHtaGre) {
          alpha_sum += service.CurrentWeights(session.worker_id).alpha;
          ++alpha_count;
        }
        sessions.push_back(session);
      }
    }

    StrategyCurves curves =
        BuildCurves(kind, sessions, options.session.max_minutes);
    curves.mean_alpha_estimate_end =
        alpha_count > 0 ? alpha_sum / static_cast<double>(alpha_count) : 0.0;
    curves.max_concurrent_sessions = max_concurrent;
    curves.service_iterations = service.iteration_count();
    for (const IterationRecord& record : service.iterations()) {
      curves.total_setup_seconds += record.setup_seconds;
      curves.total_solve_seconds += record.solve_seconds;
    }
    result.curves.push_back(std::move(curves));
  }
  return result;
}

}  // namespace hta
