#ifndef HTA_CORE_MOTIVATION_H_
#define HTA_CORE_MOTIVATION_H_

#include <vector>

#include "core/distance_oracle.h"
#include "core/task.h"
#include "core/worker.h"

namespace hta {

/// A bundle of task indices assigned to one worker (T'_w).
using TaskBundle = std::vector<TaskIndex>;

/// Task diversity TD(T') = sum over unordered pairs of d(t_k, t_l)
/// (Eq. 1). Quadratic in |T'|.
double SetDiversity(const TaskBundle& bundle, const TaskDistanceOracle& d);

/// Task relevance TR(T', w) = sum over t in T' of rel(t, w) (Eq. 2).
double SetRelevance(const TaskBundle& bundle, const std::vector<Task>& tasks,
                    const Worker& worker, DistanceKind kind);

/// Same, resolving tasks through the oracle (works in every oracle
/// mode, including shared-subset views with no local task vector).
double SetRelevance(const TaskBundle& bundle, const TaskDistanceOracle& d,
                    const Worker& worker);

/// Expected motivation of worker w for a bundle T' (Eq. 3):
///
///   motiv(T', w) = 2 * alpha_w * TD(T') + beta_w * (|T'| - 1) * TR(T', w)
///
/// The 2 and (|T'| - 1) factors normalize the quadratic diversity term
/// against the linear relevance term, following Gollapudi & Sharma.
/// An empty bundle has motivation 0; note that a singleton bundle also
/// has motivation 0 (|T'| - 1 == 0 and no pairs), matching the paper's
/// formulation.
double Motivation(const TaskBundle& bundle, const Worker& worker,
                  const TaskDistanceOracle& d);

/// Marginal diversity gain of completing `task` after `completed`
/// (Section III): sum over t_k in `completed` of d(task, t_k).
double DiversityMarginalGain(TaskIndex task, const TaskBundle& completed,
                             const TaskDistanceOracle& d);

/// Relevance gain of completing `task`: rel(task, w).
double RelevanceGain(TaskIndex task, const std::vector<Task>& tasks,
                     const Worker& worker, DistanceKind kind);

}  // namespace hta

#endif  // HTA_CORE_MOTIVATION_H_
