#include "core/catalog_cache.h"

#include <algorithm>

namespace hta {

namespace {

metrics::Counter& TileFills() {
  static metrics::Counter* counter =
      new metrics::Counter("catalog_cache.tile_fills");
  return *counter;
}

metrics::Counter& UncachedComputes() {
  static metrics::Counter* counter =
      new metrics::Counter("catalog_cache.uncached_computes");
  return *counter;
}

}  // namespace

CatalogCache::CatalogCache(const std::vector<Task>* catalog, DistanceKind kind)
    : CatalogCache(catalog, kind, Options{}) {}

CatalogCache::CatalogCache(const std::vector<Task>* catalog, DistanceKind kind,
                           Options options)
    : catalog_(catalog), kind_(kind) {
  HTA_CHECK(catalog != nullptr);
  packed_ = PackedSetMatrix::FromTasks(*catalog);
  const size_t n = catalog->size();
  if (!options.enable_distance_cache || n < 2) return;
  const size_t pairs = n * (n - 1) / 2;
  // Budget check by division: `pairs * sizeof(double)` can wrap size_t
  // for large n and then wrongly pass the comparison.
  if (pairs > options.max_distance_cache_bytes / sizeof(double)) return;
  tile_cols_ = (n + kTileRows - 1) / kTileRows;
  tile_count_ = tile_cols_ * tile_cols_;
  tri_ = std::make_unique_for_overwrite<double[]>(pairs);
  // Value-initialized: every tile starts empty.
  tile_state_ = std::make_unique<std::atomic<uint8_t>[]>(tile_count_);
}

void CatalogCache::FillRelevanceRow(const KeywordVector& interests,
                                    double* out, size_t max_threads) const {
  HTA_CHECK_EQ(interests.universe_size(), packed_.universe_size());
  const PackedSetMatrix one = PackedSetMatrix::FromVectors({interests});
  // rel[t * 1 + 0] = 1 - d(catalog row t, interests row 0): with a
  // single b-row the rectangular kernel's output *is* the row.
  RectangularRelevance(packed_, one, kind_, out, max_threads);
}

size_t CatalogCache::filled_tiles() const {
  if (tile_state_ == nullptr) return 0;
  size_t filled = 0;
  for (size_t t = 0; t < tile_count_; ++t) {
    if (tile_state_[t].load(std::memory_order_acquire) != 0) ++filled;
  }
  return filled;
}

double CatalogCache::ComputeDistance(size_t i, size_t j) const {
  UncachedComputes().Add();
  return packed_internal::WithKind(kind_, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const size_t inter = packed_internal::IntersectionPopcount(
        packed_.row(i), packed_.row(j), packed_.row_blocks());
    return packed_internal::DistanceFromCounts<K>(
        inter, packed_.count(i), packed_.count(j), packed_.universe_size());
  });
}

bool CatalogCache::FillTile(size_t tile) const {
  std::lock_guard<std::mutex> lock(fill_mutex_);
  // Double-checked: another thread may have published the tile while
  // this one waited on the mutex.
  if (tile_state_[tile].load(std::memory_order_relaxed) != 0) return false;
  TileFills().Add();
  const size_t n = catalog_->size();
  const size_t row_lo = (tile / tile_cols_) * kTileRows;
  const size_t col_lo = (tile % tile_cols_) * kTileRows;
  const size_t row_hi = std::min(row_lo + kTileRows, n);
  const size_t col_hi = std::min(col_lo + kTileRows, n);
  packed_internal::WithKind(kind_, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const size_t nb = packed_.row_blocks();
    const size_t universe = packed_.universe_size();
    uint32_t inter[kTileRows];
    for (size_t i = row_lo; i < row_hi; ++i) {
      const size_t j_lo = std::max(col_lo, i + 1);
      if (j_lo >= col_hi) continue;
      packed_internal::IntersectRowCounts(packed_.row(i), packed_.row(j_lo),
                                          nb, col_hi - j_lo, inter);
      double* seg = tri_.get() + TriIndex(i, j_lo);
      const size_t ca = packed_.count(i);
      for (size_t j = j_lo; j < col_hi; ++j) {
        seg[j - j_lo] = packed_internal::DistanceFromCounts<K>(
            inter[j - j_lo], ca, packed_.count(j), universe);
      }
    }
  });
  // Publish: every write above happens-before a reader's acquire load.
  tile_state_[tile].store(1, std::memory_order_release);
  return true;
}

}  // namespace hta
