#ifndef HTA_CORE_KEYWORD_VECTOR_H_
#define HTA_CORE_KEYWORD_VECTOR_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/keyword_space.h"
#include "util/check.h"

namespace hta {

/// A Boolean vector <t(s_1), ..., t(s_R)> over a keyword space
/// (Section II), stored as packed 64-bit blocks.
///
/// All set operations needed by the distance kernels — intersection,
/// union, symmetric difference cardinalities — are popcount loops over
/// the blocks, which keeps pairwise-distance evaluation cheap enough to
/// compute matrices B on the fly for the |T| = 10^4 sweeps.
///
/// Vectors compare and combine only within the same universe size; the
/// caller guarantees both operands came from the same KeywordSpace.
class KeywordVector {
 public:
  /// An all-zero vector over a universe of `universe_size` keywords.
  explicit KeywordVector(size_t universe_size = 0)
      : universe_size_(universe_size),
        blocks_((universe_size + 63) / 64, 0) {}

  /// Builds a vector with the given keyword ids set. Ids must be within
  /// the universe.
  KeywordVector(size_t universe_size, std::initializer_list<KeywordId> ids)
      : KeywordVector(universe_size) {
    for (KeywordId id : ids) Set(id);
  }
  KeywordVector(size_t universe_size, const std::vector<KeywordId>& ids)
      : KeywordVector(universe_size) {
    for (KeywordId id : ids) Set(id);
  }

  size_t universe_size() const { return universe_size_; }

  /// Sets / clears / tests one keyword bit. Requires id < universe_size.
  void Set(KeywordId id) {
    HTA_DCHECK_LT(static_cast<size_t>(id), universe_size_);
    blocks_[id >> 6] |= (uint64_t{1} << (id & 63));
    DCheckTailInvariant();
  }
  void Clear(KeywordId id) {
    HTA_DCHECK_LT(static_cast<size_t>(id), universe_size_);
    blocks_[id >> 6] &= ~(uint64_t{1} << (id & 63));
    DCheckTailInvariant();
  }
  bool Test(KeywordId id) const {
    HTA_DCHECK_LT(static_cast<size_t>(id), universe_size_);
    return (blocks_[id >> 6] >> (id & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t b : blocks_) total += static_cast<size_t>(std::popcount(b));
    return total;
  }

  bool Empty() const {
    for (uint64_t b : blocks_) {
      if (b != 0) return false;
    }
    return true;
  }

  /// |a AND b|. Requires equal universe sizes.
  static size_t IntersectionCount(const KeywordVector& a,
                                  const KeywordVector& b) {
    HTA_DCHECK_EQ(a.universe_size_, b.universe_size_);
    size_t total = 0;
    for (size_t i = 0; i < a.blocks_.size(); ++i) {
      total += static_cast<size_t>(std::popcount(a.blocks_[i] & b.blocks_[i]));
    }
    return total;
  }

  /// |a OR b|.
  static size_t UnionCount(const KeywordVector& a, const KeywordVector& b) {
    HTA_DCHECK_EQ(a.universe_size_, b.universe_size_);
    size_t total = 0;
    for (size_t i = 0; i < a.blocks_.size(); ++i) {
      total += static_cast<size_t>(std::popcount(a.blocks_[i] | b.blocks_[i]));
    }
    return total;
  }

  /// |a XOR b| (Hamming distance numerator).
  static size_t SymmetricDifferenceCount(const KeywordVector& a,
                                         const KeywordVector& b) {
    HTA_DCHECK_EQ(a.universe_size_, b.universe_size_);
    size_t total = 0;
    for (size_t i = 0; i < a.blocks_.size(); ++i) {
      total += static_cast<size_t>(std::popcount(a.blocks_[i] ^ b.blocks_[i]));
    }
    return total;
  }

  /// The packed 64-bit blocks, little-endian within each block: bit k of
  /// block i is keyword id 64*i + k. The batched SoA kernels
  /// (core/packed_set.h) copy rows out of this representation.
  const std::vector<uint64_t>& blocks() const { return blocks_; }

  /// The ids of all set bits, ascending.
  std::vector<KeywordId> ToIds() const;

  /// Debug rendering like "{2, 5, 17}".
  std::string ToString() const;

  friend bool operator==(const KeywordVector& a, const KeywordVector& b) {
    return a.universe_size_ == b.universe_size_ && a.blocks_ == b.blocks_;
  }

 private:
  /// Tail-block invariant: bits at positions >= universe_size in the
  /// last block are always zero. Count() and the popcount kernels rely
  /// on this; a stray high bit would silently skew every cardinality.
  void DCheckTailInvariant() const {
#ifndef NDEBUG
    const size_t tail = universe_size_ & 63;
    if (tail != 0 && !blocks_.empty()) {
      HTA_DCHECK_EQ(blocks_.back() >> tail, uint64_t{0});
    }
#endif
  }

  size_t universe_size_;
  std::vector<uint64_t> blocks_;
};

}  // namespace hta

#endif  // HTA_CORE_KEYWORD_VECTOR_H_
