#include "core/distance.h"

#include <algorithm>
#include <cmath>

namespace hta {

std::string DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return "jaccard";
    case DistanceKind::kDice:
      return "dice";
    case DistanceKind::kHamming:
      return "hamming";
    case DistanceKind::kCosineAngular:
      return "cosine-angular";
  }
  return "unknown";
}

bool IsMetric(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kJaccard:
    case DistanceKind::kHamming:
    case DistanceKind::kCosineAngular:
      return true;
    case DistanceKind::kDice:
      return false;
  }
  return false;
}

namespace {

double JaccardDistance(const KeywordVector& a, const KeywordVector& b) {
  const size_t uni = KeywordVector::UnionCount(a, b);
  if (uni == 0) return 0.0;  // Both empty: identical.
  const size_t inter = KeywordVector::IntersectionCount(a, b);
  return 1.0 -
         static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceDistance(const KeywordVector& a, const KeywordVector& b) {
  const size_t ca = a.Count();
  const size_t cb = b.Count();
  if (ca + cb == 0) return 0.0;
  const size_t inter = KeywordVector::IntersectionCount(a, b);
  return 1.0 - 2.0 * static_cast<double>(inter) /
                   static_cast<double>(ca + cb);
}

double HammingDistance(const KeywordVector& a, const KeywordVector& b) {
  if (a.universe_size() == 0) return 0.0;
  return static_cast<double>(KeywordVector::SymmetricDifferenceCount(a, b)) /
         static_cast<double>(a.universe_size());
}

double CosineAngularDistance(const KeywordVector& a, const KeywordVector& b) {
  const size_t ca = a.Count();
  const size_t cb = b.Count();
  if (ca == 0 && cb == 0) return 0.0;
  if (ca == 0 || cb == 0) return 1.0;  // Orthogonal to everything.
  const size_t inter = KeywordVector::IntersectionCount(a, b);
  const double cosine = static_cast<double>(inter) /
                        std::sqrt(static_cast<double>(ca) *
                                  static_cast<double>(cb));
  // Binary vectors have cosine in [0, 1]; the angle lies in [0, pi/2].
  // Normalizing by pi/2 maps the angular metric to [0, 1].
  const double clamped = std::clamp(cosine, 0.0, 1.0);
  constexpr double kHalfPi = 1.5707963267948966;
  return std::acos(clamped) / kHalfPi;
}

}  // namespace

double VectorDistance(DistanceKind kind, const KeywordVector& a,
                      const KeywordVector& b) {
  HTA_DCHECK_EQ(a.universe_size(), b.universe_size());
  switch (kind) {
    case DistanceKind::kJaccard:
      return JaccardDistance(a, b);
    case DistanceKind::kDice:
      return DiceDistance(a, b);
    case DistanceKind::kHamming:
      return HammingDistance(a, b);
    case DistanceKind::kCosineAngular:
      return CosineAngularDistance(a, b);
  }
  return 0.0;
}

}  // namespace hta
