#ifndef HTA_CORE_TASK_H_
#define HTA_CORE_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/keyword_vector.h"

namespace hta {

/// Dense index of a task within a TaskSet / iteration (0-based).
using TaskIndex = uint32_t;

/// Identifier of a task group (AMT "HIT group"): tasks from the same
/// group share most of their keywords. Group count is the diversity
/// knob swept by Fig. 3.
using TaskGroupId = uint32_t;

constexpr TaskGroupId kNoTaskGroup = static_cast<TaskGroupId>(-1);

/// A crowdsourcing micro-task (Section II): a Boolean keyword vector
/// plus descriptive metadata. Keywords reflect the task's content and
/// requirements ("audio", "English", "tagging", ...).
class Task {
 public:
  Task(uint64_t id, KeywordVector keywords)
      : id_(id), keywords_(std::move(keywords)) {}

  Task(uint64_t id, KeywordVector keywords, std::string title,
       TaskGroupId group, double reward_usd)
      : id_(id),
        keywords_(std::move(keywords)),
        title_(std::move(title)),
        group_(group),
        reward_usd_(reward_usd) {}

  /// Stable external identifier (unique across the whole catalog).
  uint64_t id() const { return id_; }

  /// The keyword vector <t(s_1), ..., t(s_R)>.
  const KeywordVector& keywords() const { return keywords_; }

  /// Human-readable title (may be empty for synthetic tasks).
  const std::string& title() const { return title_; }

  /// Task group, or kNoTaskGroup.
  TaskGroupId group() const { return group_; }

  /// Micro-task reward in dollars (papers' range: $0.01-$0.15).
  double reward_usd() const { return reward_usd_; }

 private:
  uint64_t id_;
  KeywordVector keywords_;
  std::string title_;
  TaskGroupId group_ = kNoTaskGroup;
  double reward_usd_ = 0.0;
};

}  // namespace hta

#endif  // HTA_CORE_TASK_H_
