#ifndef HTA_CORE_PACKED_SET_H_
#define HTA_CORE_PACKED_SET_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/keyword_vector.h"
#include "core/task.h"
#include "core/worker.h"
#include "util/check.h"

namespace hta {

/// Selects between the batched SoA distance kernels below and the
/// per-pair scalar VectorDistance path. Both produce bit-identical
/// results (the batched kernels replicate the scalar arithmetic exactly,
/// see packed_internal::DistanceFromCounts); kScalar survives as the
/// reference implementation for the equivalence suite and the
/// scalar-vs-batched ablation bench.
enum class DistanceBackend {
  kBatched,
  kScalar,
};

/// A whole collection of Boolean keyword vectors stored as a
/// structure-of-arrays bit-matrix: one contiguous buffer of 64-bit
/// blocks, each row padded to a multiple of kBlockPad blocks (padding
/// zero), plus precomputed per-row popcounts.
///
/// This is the substrate of the batched distance kernels: every
/// DistanceKind needs only the intersection popcount of a pair plus the
/// two row counts (union = ca + cb - inter, symmetric difference =
/// ca + cb - 2*inter), so a single unrolled AND-popcount sweep over the
/// padded rows yields any distance, with no pointer chasing through
/// Task/KeywordVector and no per-pair function call.
class PackedSetMatrix {
 public:
  /// Rows are padded to a multiple of this many 64-bit blocks so the
  /// popcount inner loop can be unrolled 4-wide with no tail handling.
  static constexpr size_t kBlockPad = 4;

  PackedSetMatrix() = default;

  /// Packs the keyword vectors of `tasks` (row r = tasks[r].keywords()).
  static PackedSetMatrix FromTasks(const std::vector<Task>& tasks);

  /// Packs the interest vectors of `workers` (row r = interests()).
  static PackedSetMatrix FromWorkers(const std::vector<Worker>& workers);

  /// Packs arbitrary vectors; all must share one universe size.
  static PackedSetMatrix FromVectors(const std::vector<KeywordVector>& vecs);

  /// Gathers `count` rows of `src` (row r = src row rows[r]) into a new
  /// matrix. A straight block copy plus a count copy — bitwise identical
  /// to re-packing the corresponding keyword vectors, with no popcount
  /// recomputation. The substrate of zero-copy catalog subset views.
  static PackedSetMatrix GatherRows(const PackedSetMatrix& src,
                                    const size_t* rows, size_t count);

  size_t rows() const { return rows_; }
  size_t universe_size() const { return universe_size_; }

  /// Padded blocks per row (a multiple of kBlockPad, or 0 when empty).
  size_t row_blocks() const { return row_blocks_; }

  /// Pointer to the first block of row `r`.
  const uint64_t* row(size_t r) const {
    HTA_DCHECK_LT(r, rows_);
    return blocks_.data() + r * row_blocks_;
  }

  /// Popcount of row `r`.
  uint32_t count(size_t r) const {
    HTA_DCHECK_LT(r, rows_);
    return counts_[r];
  }

 private:
  void PackRow(size_t r, const KeywordVector& v);
  static PackedSetMatrix WithShape(size_t rows, size_t universe_size);

  size_t rows_ = 0;
  size_t universe_size_ = 0;
  size_t row_blocks_ = 0;
  std::vector<uint64_t> blocks_;  // rows_ * row_blocks_ entries.
  std::vector<uint32_t> counts_;  // rows_ entries.
};

namespace packed_internal {

/// |a AND b| over `nb` blocks; nb must be a multiple of kBlockPad (the
/// matrix pads rows, so passing row_blocks() is always valid). Four
/// independent accumulators keep the popcount chain out of the loop's
/// critical path and let the compiler vectorize.
inline size_t IntersectionPopcount(const uint64_t* a, const uint64_t* b,
                                   size_t nb) {
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (size_t k = 0; k < nb; k += 4) {
    s0 += static_cast<uint64_t>(std::popcount(a[k] & b[k]));
    s1 += static_cast<uint64_t>(std::popcount(a[k + 1] & b[k + 1]));
    s2 += static_cast<uint64_t>(std::popcount(a[k + 2] & b[k + 2]));
    s3 += static_cast<uint64_t>(std::popcount(a[k + 3] & b[k + 3]));
  }
  return static_cast<size_t>(s0 + s1 + s2 + s3);
}

/// Intersection popcounts of row `a` against `count` contiguous packed
/// rows starting at `rows` (stride nb blocks): out[r] = |a AND rows_r|.
/// This is the one ISA-sensitive primitive of the batched kernels — the
/// implementation is function-multi-versioned (baseline / hardware
/// POPCNT / AVX-512 VPOPCNTQ where the toolchain supports it), and the
/// result is an exact integer on every path, so kernel outputs never
/// depend on the clone the dynamic linker resolves.
void IntersectRowCounts(const uint64_t* a, const uint64_t* rows, size_t nb,
                        size_t count, uint32_t* out);

/// j-rows swept per IntersectRowCounts call by the fused emission and
/// one-vs-many kernels: big enough to amortize the out-of-line call,
/// small enough that the count buffer lives on the stack.
inline constexpr size_t kCountTile = 256;

/// Distance of a pair from its intersection popcount and the two row
/// counts. Each branch replicates the corresponding function in
/// distance.cc expression-for-expression — same integer intermediates,
/// same double operations in the same order — so the result is
/// bit-identical to VectorDistance for every input pair.
template <DistanceKind K>
inline double DistanceFromCounts(size_t inter, size_t ca, size_t cb,
                                 size_t universe) {
  if constexpr (K == DistanceKind::kJaccard) {
    const size_t uni = ca + cb - inter;
    if (uni == 0) return 0.0;  // Both empty: identical.
    return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
  } else if constexpr (K == DistanceKind::kDice) {
    if (ca + cb == 0) return 0.0;
    return 1.0 - 2.0 * static_cast<double>(inter) /
                     static_cast<double>(ca + cb);
  } else if constexpr (K == DistanceKind::kHamming) {
    if (universe == 0) return 0.0;
    return static_cast<double>(ca + cb - 2 * inter) /
           static_cast<double>(universe);
  } else {
    static_assert(K == DistanceKind::kCosineAngular);
    if (ca == 0 && cb == 0) return 0.0;
    if (ca == 0 || cb == 0) return 1.0;  // Orthogonal to everything.
    const double cosine = static_cast<double>(inter) /
                          std::sqrt(static_cast<double>(ca) *
                                    static_cast<double>(cb));
    const double clamped = std::clamp(cosine, 0.0, 1.0);
    constexpr double kHalfPi = 1.5707963267948966;
    return std::acos(clamped) / kHalfPi;
  }
}

/// Hoists the DistanceKind switch out of kernel inner loops: invokes
/// `fn` with a std::integral_constant<DistanceKind, K> so the body can
/// instantiate DistanceFromCounts<K> at compile time.
template <typename Fn>
decltype(auto) WithKind(DistanceKind kind, Fn&& fn) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return fn(std::integral_constant<DistanceKind,
                                       DistanceKind::kJaccard>{});
    case DistanceKind::kDice:
      return fn(std::integral_constant<DistanceKind, DistanceKind::kDice>{});
    case DistanceKind::kHamming:
      return fn(
          std::integral_constant<DistanceKind, DistanceKind::kHamming>{});
    case DistanceKind::kCosineAngular:
      return fn(std::integral_constant<DistanceKind,
                                       DistanceKind::kCosineAngular>{});
  }
  HTA_CHECK(false) << "unknown DistanceKind";
  return fn(std::integral_constant<DistanceKind, DistanceKind::kJaccard>{});
}

}  // namespace packed_internal

/// Fills out[j] = d(row i, row j) for every j in [0, m.rows()), with
/// out[i] = 0. Parallelized over fixed column blocks on the global pool
/// (`max_threads` caps threads, 0 = pool size); each block writes a
/// disjoint slice of `out`, so the result is bit-identical at any
/// thread count.
void OneVsManyDistances(const PackedSetMatrix& m, size_t i, DistanceKind kind,
                        double* out, size_t max_threads = 0);

/// Fills the packed strict-upper-triangle float cache used by
/// TaskDistanceOracle::Precomputed: for i < j, cache[i*n - i*(i+1)/2 +
/// (j-i-1)] = float(d(row i, row j)). Parallelized over fixed row
/// blocks (each row owns a disjoint cache segment); within a block the
/// sweep is cache-blocked over column tiles so a tile of j-rows stays
/// resident while every i-row of the block streams against it.
void AllPairsDistancesUpper(const PackedSetMatrix& m, DistanceKind kind,
                            float* cache, size_t max_threads = 0);

/// Fills out[i * b.rows() + j] = 1.0 - d(a row i, b row j) — the dense
/// relevance table rel[t][q] when `a` packs tasks and `b` packs worker
/// interests. Requires equal universe sizes. Parallelized over fixed
/// a-row blocks; bit-identical to TaskRelevance at any thread count.
void RectangularRelevance(const PackedSetMatrix& a, const PackedSetMatrix& b,
                          DistanceKind kind, double* out,
                          size_t max_threads = 0);

/// Fused "distance + weight > 0 filter" sweep of one row against all
/// higher-indexed rows: calls emit(j, w) with w = float(d(row i, row
/// j)) for every j > i whose w is positive, in ascending j order. Tiles
/// of kCountTile j-rows go through the multi-versioned popcount
/// primitive into a stack buffer; distances derive from the counts and
/// are filtered without ever touching memory. Serial by design —
/// BuildDiversityEdges parallelizes over rows and calls this per row
/// inside its blocks.
template <typename Emit>
inline void EmitPositiveDistancesInRow(const PackedSetMatrix& m, size_t i,
                                       DistanceKind kind, Emit&& emit) {
  packed_internal::WithKind(kind, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const uint64_t* ri = m.row(i);
    const size_t nb = m.row_blocks();
    const size_t ca = m.count(i);
    const size_t n = m.rows();
    const size_t universe = m.universe_size();
    uint32_t inter[packed_internal::kCountTile];
    for (size_t j0 = i + 1; j0 < n; j0 += packed_internal::kCountTile) {
      const size_t len = std::min(packed_internal::kCountTile, n - j0);
      packed_internal::IntersectRowCounts(ri, m.row(j0), nb, len, inter);
      for (size_t r = 0; r < len; ++r) {
        const float w = static_cast<float>(
            packed_internal::DistanceFromCounts<K>(inter[r], ca,
                                                   m.count(j0 + r),
                                                   universe));
        if (w > 0.0f) emit(j0 + r, w);
      }
    }
  });
}

}  // namespace hta

#endif  // HTA_CORE_PACKED_SET_H_
