#ifndef HTA_CORE_WORKER_H_
#define HTA_CORE_WORKER_H_

#include <cstdint>
#include <string>

#include "core/keyword_vector.h"
#include "util/check.h"

namespace hta {

/// Dense index of a worker within an iteration's worker set (0-based).
using WorkerIndex = uint32_t;

/// The (alpha, beta) preference weights of Eq. 3: alpha scales task
/// diversity, beta scales task relevance, alpha + beta = 1. Observed
/// and re-estimated each iteration by the adaptive engine.
struct MotivationWeights {
  double alpha = 0.5;
  double beta = 0.5;

  /// Returns weights normalized so alpha + beta = 1; if both are zero,
  /// falls back to (0.5, 0.5).
  static MotivationWeights Normalized(double alpha_raw, double beta_raw) {
    HTA_CHECK(alpha_raw >= 0.0 && beta_raw >= 0.0)
        << "motivation weights must be non-negative";
    const double sum = alpha_raw + beta_raw;
    if (sum <= 0.0) return MotivationWeights{0.5, 0.5};
    return MotivationWeights{alpha_raw / sum, beta_raw / sum};
  }

  /// Pure-diversity weights (the HTA-GRE-DIV strategy).
  static MotivationWeights DiversityOnly() { return {1.0, 0.0}; }

  /// Pure-relevance weights (the HTA-GRE-REL strategy).
  static MotivationWeights RelevanceOnly() { return {0.0, 1.0}; }
};

/// A crowd worker (Section II): a Boolean vector of expressed keyword
/// interests plus the current motivation-weight estimate.
class Worker {
 public:
  Worker(uint64_t id, KeywordVector interests)
      : id_(id), interests_(std::move(interests)) {}

  Worker(uint64_t id, KeywordVector interests, MotivationWeights weights)
      : id_(id), interests_(std::move(interests)), weights_(weights) {}

  /// Stable external identifier.
  uint64_t id() const { return id_; }

  /// The interest vector <w(s_1), ..., w(s_R)>.
  const KeywordVector& interests() const { return interests_; }

  /// Current (alpha^i_w, beta^i_w) estimate.
  const MotivationWeights& weights() const { return weights_; }
  void set_weights(MotivationWeights weights) { weights_ = weights; }

 private:
  uint64_t id_;
  KeywordVector interests_;
  MotivationWeights weights_;
};

}  // namespace hta

#endif  // HTA_CORE_WORKER_H_
