#ifndef HTA_CORE_CATALOG_CACHE_H_
#define HTA_CORE_CATALOG_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/packed_set.h"
#include "core/task.h"
#include "util/check.h"
#include "util/metrics.h"

namespace hta {

namespace catalog_cache_metrics {

/// Distance queries served straight from a published tile. Counted in
/// the inline hot path, so the accessor is header-inline; the counter
/// itself is a function-local static shared across TUs.
inline metrics::Counter& TriHits() {
  static metrics::Counter counter("catalog_cache.tri_hits");
  return counter;
}

}  // namespace catalog_cache_metrics

/// Warm per-catalog caches shared across assignment iterations.
///
/// An online deployment solves one HTA instance per engine iteration
/// over a catalog that never changes, so everything derivable from the
/// catalog alone is computed once here and reused forever:
///
///  * a PackedSetMatrix over every catalog task (the SoA substrate of
///    the batched distance kernels — built eagerly, O(|catalog|));
///  * optionally, a persistent upper-triangular task-distance cache in
///    *double* precision, budget-gated and filled lazily one
///    kTileRows x kTileRows tile at a time on first query. Task x task
///    distances are worker-independent, so a filled tile stays valid
///    for the lifetime of the deployment.
///
/// The cache stores doubles (not the float cache of
/// TaskDistanceOracle::Precomputed) because warm iterations must be
/// bit-identical to the cold path, whose on-the-fly oracle returns full
/// double distances. Every cached value is produced by
/// packed_internal::DistanceFromCounts, which replicates distance.cc
/// expression-for-expression, so a cache hit equals a fresh
/// PairwiseTaskDiversity call bit-for-bit.
///
/// Thread safety: Distance() may be called concurrently from the
/// solver's parallel phases. Tile states are published with
/// release/acquire ordering and fills are serialized by a mutex
/// (double-checked), so readers never observe a partially written tile.
/// Values are pure functions of the catalog, hence independent of fill
/// order and thread count.
class CatalogCache {
 public:
  /// Rows per side of one lazily filled distance tile. Matches the
  /// L1-resident column tiling of AllPairsDistancesUpper.
  static constexpr size_t kTileRows = 128;

  struct Options {
    /// Whether to allocate the persistent triangular distance cache at
    /// all (the packed matrix is always built).
    bool enable_distance_cache = true;
    /// Budget for the triangular double cache; catalogs whose strict
    /// upper triangle exceeds it fall back to computing distances from
    /// the packed rows on every query.
    size_t max_distance_cache_bytes = size_t{1} << 30;
  };

  /// Builds the warm cache over `catalog` (not owned; must outlive the
  /// cache). Packs every keyword row eagerly; allocates (but does not
  /// fill) the triangular cache when it fits the budget. The two-arg
  /// overload uses default Options (defined out of line: an in-class
  /// `= Options{}` default argument needs the still-incomplete class).
  CatalogCache(const std::vector<Task>* catalog, DistanceKind kind,
               Options options);
  CatalogCache(const std::vector<Task>* catalog, DistanceKind kind);

  CatalogCache(const CatalogCache&) = delete;
  CatalogCache& operator=(const CatalogCache&) = delete;

  const std::vector<Task>& catalog() const { return *catalog_; }
  const Task& task(size_t catalog_index) const {
    HTA_DCHECK_LT(catalog_index, catalog_->size());
    return (*catalog_)[catalog_index];
  }
  DistanceKind kind() const { return kind_; }

  /// The packed catalog rows (row r = catalog[r].keywords()).
  const PackedSetMatrix& packed() const { return packed_; }

  /// Whether the persistent triangular cache was allocated (budget and
  /// option permitting).
  bool distance_cache_enabled() const { return tri_ != nullptr; }

  /// Tiles filled so far (diagnostic; exact only when quiescent).
  size_t filled_tiles() const;
  size_t tile_count() const { return tile_count_; }

  /// Fills out[t] = 1 - d(catalog[t], interests) for every catalog
  /// task — one worker's full relevance row, the unit the engine's
  /// SessionRelevanceCache computes once per registration and gathers
  /// from on every later iteration. Runs the batched rectangular
  /// relevance kernel over the already-packed catalog rows, so the
  /// values are bit-identical to TaskRelevance (and to any
  /// RectangularRelevance sweep over a subset of the catalog) at every
  /// `max_threads` cap. `out` must hold catalog().size() doubles;
  /// `interests` must share the catalog's keyword universe.
  void FillRelevanceRow(const KeywordVector& interests, double* out,
                        size_t max_threads = 0) const;

  /// d(catalog[i], catalog[j]), bit-identical to PairwiseTaskDiversity.
  /// With the triangular cache enabled, the first query touching a tile
  /// fills that whole tile; later queries are one load.
  double Distance(size_t i, size_t j) const {
    HTA_DCHECK_LT(i, catalog_->size());
    HTA_DCHECK_LT(j, catalog_->size());
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    if (tri_ != nullptr) {
      const size_t tile = (i / kTileRows) * tile_cols_ + j / kTileRows;
      if (tile_state_[tile].load(std::memory_order_acquire) == 0) {
        // Exactly one query performs the fill and counts as the miss
        // (inside FillTile); racers that lose the fill are hits. Hit +
        // fill totals are therefore exact whatever the interleaving.
        if (!FillTile(tile)) catalog_cache_metrics::TriHits().Add();
      } else {
        catalog_cache_metrics::TriHits().Add();
      }
      return tri_[TriIndex(i, j)];
    }
    return ComputeDistance(i, j);
  }

 private:
  /// Packed index into the strict upper triangle (requires i < j);
  /// same layout as TaskDistanceOracle's float cache.
  size_t TriIndex(size_t i, size_t j) const {
    return i * catalog_->size() - i * (i + 1) / 2 + (j - i - 1);
  }

  /// Computes d(i, j) from the packed rows (no cache). i != j.
  double ComputeDistance(size_t i, size_t j) const;

  /// Fills every upper-triangle entry of `tile` and publishes it.
  /// Serialized by fill_mutex_; rechecks the state under the lock.
  /// Returns true when this call performed the fill, false when another
  /// thread published the tile first.
  bool FillTile(size_t tile) const;

  const std::vector<Task>* catalog_;
  DistanceKind kind_;
  PackedSetMatrix packed_;
  size_t tile_cols_ = 0;   // Tile-grid columns: ceil(|catalog| / kTileRows).
  size_t tile_count_ = 0;  // tile_cols_^2 (only the upper wedge is used).
  // Lazily filled triangular cache. make_unique_for_overwrite leaves
  // the pages untouched until a tile fill actually writes them.
  mutable std::unique_ptr<double[]> tri_;
  // 0 = empty, 1 = filled-and-published.
  mutable std::unique_ptr<std::atomic<uint8_t>[]> tile_state_;
  mutable std::mutex fill_mutex_;
};

/// A zero-copy view of a subset of a CatalogCache's tasks, addressed by
/// dense local indices 0..size()-1 — the per-iteration task sample of
/// the assignment engine. Holds only the local->catalog index remap (no
/// Task copies), so constructing an HtaProblem from it is O(|sample|)
/// instead of O(|sample| * dictionary).
///
/// The view does not own the cache; both the cache and its catalog must
/// outlive the view, and the view must outlive any TaskDistanceOracle /
/// HtaProblem built on top of it.
class CatalogSubsetView {
 public:
  /// `local_to_catalog[k]` is the catalog index of local task k. The
  /// indices need not be contiguous or sorted (the engine passes its
  /// sampled available set, which is sorted ascending but sparse).
  CatalogSubsetView(const CatalogCache* cache,
                    std::vector<size_t> local_to_catalog)
      : cache_(cache), local_to_catalog_(std::move(local_to_catalog)) {
    HTA_CHECK(cache != nullptr);
#ifndef NDEBUG
    for (size_t c : local_to_catalog_) HTA_DCHECK_LT(c, cache->catalog().size());
#endif
  }

  size_t size() const { return local_to_catalog_.size(); }
  size_t catalog_index(size_t local) const {
    HTA_DCHECK_LT(local, local_to_catalog_.size());
    return local_to_catalog_[local];
  }
  const std::vector<size_t>& catalog_indices() const {
    return local_to_catalog_;
  }
  const Task& task(size_t local) const {
    return cache_->task(catalog_index(local));
  }
  DistanceKind kind() const { return cache_->kind(); }
  const CatalogCache& cache() const { return *cache_; }

  /// d(task(local_i), task(local_j)) through the shared cache.
  double Distance(size_t local_i, size_t local_j) const {
    return cache_->Distance(catalog_index(local_i), catalog_index(local_j));
  }

  /// Gathers the subset's packed rows from the catalog matrix —
  /// bitwise identical to PackedSetMatrix::FromTasks over copies of the
  /// subset's tasks, but a straight row copy with no re-popcounting.
  PackedSetMatrix GatherPackedRows() const {
    return PackedSetMatrix::GatherRows(cache_->packed(),
                                       local_to_catalog_.data(),
                                       local_to_catalog_.size());
  }

 private:
  const CatalogCache* cache_;
  std::vector<size_t> local_to_catalog_;
};

}  // namespace hta

#endif  // HTA_CORE_CATALOG_CACHE_H_
