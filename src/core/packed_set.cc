#include "core/packed_set.h"

#include "util/parallel.h"

namespace hta {

namespace packed_internal {

// Function multi-versioning for the popcount sweep. GCC on x86-64
// Linux resolves the best clone at load time via ifunc: the baseline
// x86-64 ABI must assume libgcc popcount calls, hardware POPCNT drops
// that to one instruction per block, and AVX-512 VPOPCNTQ lets the
// whole inner loop vectorize 8 blocks per instruction. All clones
// produce the same exact integers, so kernel results are independent of
// which clone the dynamic linker picks. Sanitizer builds skip the
// attribute (ifunc resolvers run before the runtime is initialized).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define HTA_POPCOUNT_CLONES \
  __attribute__((target_clones("arch=icelake-server", "popcnt", "default")))
#else
#define HTA_POPCOUNT_CLONES
#endif

HTA_POPCOUNT_CLONES
void IntersectRowCounts(const uint64_t* a, const uint64_t* rows, size_t nb,
                        size_t count, uint32_t* out) {
  for (size_t r = 0; r < count; ++r) {
    const uint64_t* b = rows + r * nb;
    // Single-accumulator reduction: the shape the vectorizer turns into
    // a vpopcntq reduction; nb is a multiple of kBlockPad.
    uint64_t sum = 0;
    for (size_t k = 0; k < nb; ++k) {
      sum += static_cast<uint64_t>(std::popcount(a[k] & b[k]));
    }
    out[r] = static_cast<uint32_t>(sum);
  }
}

#undef HTA_POPCOUNT_CLONES

}  // namespace packed_internal

namespace {

/// Column-tile width (in rows) of the cache-blocked all-pairs sweep. At
/// the paper's vocabulary scale (universe ~1000 keywords -> 16 padded
/// blocks = 128 bytes/row) a tile is ~16 KiB of j-rows plus their
/// counts — resident in L1 while every i-row of a 16-row block streams
/// against it. Fixed, never derived from the thread count, so tiling is
/// a pure traversal-order change inside disjoint per-row segments.
constexpr size_t kPairTileRows = 128;

/// Column grain of the one-vs-many sweep: blocks of this many j indices
/// form the fixed partition ParallelFor distributes.
constexpr size_t kOneVsManyGrain = 256;

/// Row grain of the all-pairs and rectangular sweeps (matches the
/// precomputed-oracle fill so the partition stays balanced on the
/// shrinking rows of the triangle).
constexpr size_t kRowGrain = 16;

}  // namespace

PackedSetMatrix PackedSetMatrix::WithShape(size_t rows,
                                           size_t universe_size) {
  PackedSetMatrix m;
  m.rows_ = rows;
  m.universe_size_ = universe_size;
  const size_t blocks = (universe_size + 63) / 64;
  m.row_blocks_ = (blocks + kBlockPad - 1) / kBlockPad * kBlockPad;
  m.blocks_.assign(rows * m.row_blocks_, 0);
  m.counts_.assign(rows, 0);
  return m;
}

void PackedSetMatrix::PackRow(size_t r, const KeywordVector& v) {
  HTA_DCHECK_EQ(v.universe_size(), universe_size_);
  const std::vector<uint64_t>& src = v.blocks();
  uint64_t* dst = blocks_.data() + r * row_blocks_;
  uint32_t count = 0;
  for (size_t k = 0; k < src.size(); ++k) {
    dst[k] = src[k];
    count += static_cast<uint32_t>(std::popcount(src[k]));
  }
  counts_[r] = count;
}

PackedSetMatrix PackedSetMatrix::FromTasks(const std::vector<Task>& tasks) {
  PackedSetMatrix m = WithShape(
      tasks.size(), tasks.empty() ? 0 : tasks[0].keywords().universe_size());
  for (size_t r = 0; r < tasks.size(); ++r) {
    m.PackRow(r, tasks[r].keywords());
  }
  return m;
}

PackedSetMatrix PackedSetMatrix::FromWorkers(
    const std::vector<Worker>& workers) {
  PackedSetMatrix m = WithShape(
      workers.size(),
      workers.empty() ? 0 : workers[0].interests().universe_size());
  for (size_t r = 0; r < workers.size(); ++r) {
    m.PackRow(r, workers[r].interests());
  }
  return m;
}

PackedSetMatrix PackedSetMatrix::GatherRows(const PackedSetMatrix& src,
                                            const size_t* rows,
                                            size_t count) {
  PackedSetMatrix m = WithShape(count, src.universe_size());
  HTA_DCHECK_EQ(m.row_blocks_, src.row_blocks_);
  for (size_t r = 0; r < count; ++r) {
    HTA_DCHECK_LT(rows[r], src.rows());
    std::copy_n(src.row(rows[r]), src.row_blocks_,
                m.blocks_.data() + r * m.row_blocks_);
    m.counts_[r] = src.counts_[rows[r]];
  }
  return m;
}

PackedSetMatrix PackedSetMatrix::FromVectors(
    const std::vector<KeywordVector>& vecs) {
  PackedSetMatrix m =
      WithShape(vecs.size(), vecs.empty() ? 0 : vecs[0].universe_size());
  for (size_t r = 0; r < vecs.size(); ++r) {
    m.PackRow(r, vecs[r]);
  }
  return m;
}

void OneVsManyDistances(const PackedSetMatrix& m, size_t i, DistanceKind kind,
                        double* out, size_t max_threads) {
  HTA_DCHECK_LT(i, m.rows());
  packed_internal::WithKind(kind, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const uint64_t* ri = m.row(i);
    const size_t nb = m.row_blocks();
    const size_t ca = m.count(i);
    const size_t universe = m.universe_size();
    static_assert(kOneVsManyGrain <= packed_internal::kCountTile);
    ParallelFor(
        0, m.rows(), kOneVsManyGrain,
        [&](size_t j_begin, size_t j_end) {
          uint32_t inter[packed_internal::kCountTile];
          packed_internal::IntersectRowCounts(ri, m.row(j_begin), nb,
                                              j_end - j_begin, inter);
          for (size_t j = j_begin; j < j_end; ++j) {
            out[j] = packed_internal::DistanceFromCounts<K>(
                inter[j - j_begin], ca, m.count(j), universe);
          }
          if (i >= j_begin && i < j_end) out[i] = 0.0;
        },
        max_threads);
  });
}

void AllPairsDistancesUpper(const PackedSetMatrix& m, DistanceKind kind,
                            float* cache, size_t max_threads) {
  const size_t n = m.rows();
  if (n < 2) return;
  packed_internal::WithKind(kind, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const size_t nb = m.row_blocks();
    const size_t universe = m.universe_size();
    // Row i owns the disjoint cache segment starting at
    // i*n - i*(i+1)/2 (entry j is at offset j-i-1), exactly the layout
    // TaskDistanceOracle::Precomputed fills; write order within a
    // segment is irrelevant, which is what permits the column tiling.
    ParallelFor(
        0, n, kRowGrain,
        [&](size_t row_begin, size_t row_end) {
          uint32_t inter[kPairTileRows];
          for (size_t j_tile = row_begin + 1; j_tile < n;
               j_tile += kPairTileRows) {
            const size_t j_hi = std::min(j_tile + kPairTileRows, n);
            for (size_t i = row_begin; i < row_end; ++i) {
              const size_t j_lo = std::max(j_tile, i + 1);
              if (j_lo >= j_hi) continue;
              const uint64_t* ri = m.row(i);
              const size_t ca = m.count(i);
              float* seg = cache + (i * n - i * (i + 1) / 2);
              packed_internal::IntersectRowCounts(ri, m.row(j_lo), nb,
                                                  j_hi - j_lo, inter);
              for (size_t j = j_lo; j < j_hi; ++j) {
                seg[j - i - 1] = static_cast<float>(
                    packed_internal::DistanceFromCounts<K>(
                        inter[j - j_lo], ca, m.count(j), universe));
              }
            }
          }
        },
        max_threads);
  });
}

void RectangularRelevance(const PackedSetMatrix& a, const PackedSetMatrix& b,
                          DistanceKind kind, double* out,
                          size_t max_threads) {
  if (a.rows() == 0 || b.rows() == 0) return;
  HTA_DCHECK_EQ(a.universe_size(), b.universe_size());
  const size_t cols = b.rows();
  packed_internal::WithKind(kind, [&](auto kind_tag) {
    constexpr DistanceKind K = decltype(kind_tag)::value;
    const size_t nb = a.row_blocks();
    const size_t universe = a.universe_size();
    ParallelFor(
        0, a.rows(), kRowGrain,
        [&](size_t row_begin, size_t row_end) {
          // The b side is one contiguous run of rows, so each a-row
          // takes a single sweep; the count buffer is per block, sized
          // to the worker set (typically |W| << |T|).
          std::vector<uint32_t> inter(cols);
          for (size_t i = row_begin; i < row_end; ++i) {
            const uint64_t* ri = a.row(i);
            const size_t ca = a.count(i);
            double* row_out = out + i * cols;
            packed_internal::IntersectRowCounts(ri, b.row(0), nb, cols,
                                                inter.data());
            for (size_t j = 0; j < cols; ++j) {
              row_out[j] =
                  1.0 - packed_internal::DistanceFromCounts<K>(
                            inter[j], ca, b.count(j), universe);
            }
          }
        },
        max_threads);
  });
}

}  // namespace hta
