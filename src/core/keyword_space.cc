#include "core/keyword_space.h"

#include "util/check.h"

namespace hta {

KeywordId KeywordSpace::Intern(std::string_view keyword) {
  auto it = index_.find(std::string(keyword));
  if (it != index_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(names_.size());
  names_.emplace_back(keyword);
  index_.emplace(names_.back(), id);
  return id;
}

Result<KeywordId> KeywordSpace::Find(std::string_view keyword) const {
  auto it = index_.find(std::string(keyword));
  if (it == index_.end()) {
    return Status::NotFound("keyword not interned: " + std::string(keyword));
  }
  return it->second;
}

bool KeywordSpace::Contains(std::string_view keyword) const {
  return index_.find(std::string(keyword)) != index_.end();
}

const std::string& KeywordSpace::Name(KeywordId id) const {
  HTA_CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[id];
}

}  // namespace hta
