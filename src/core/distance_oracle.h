#ifndef HTA_CORE_DISTANCE_ORACLE_H_
#define HTA_CORE_DISTANCE_ORACLE_H_

#include <utility>
#include <vector>

#include "core/catalog_cache.h"
#include "core/distance.h"
#include "core/packed_set.h"
#include "core/task.h"
#include "util/result.h"

namespace hta {

/// Answers pairwise-task-diversity queries d(t_k, t_l) over a fixed task
/// set — the (implicit) matrix B of the MAXQAP mapping (Eq. 5).
///
/// Three modes:
///  * on-the-fly  — each query recomputes the distance (O(R/64) popcounts);
///                  zero memory, right choice for |T| in the thousands.
///  * precomputed — a packed upper-triangular float cache, built once in
///                  O(|T|^2); right choice when the same pair is hit many
///                  times (brute-force solver, repeated objective evals).
///  * shared subset — queries forward through a CatalogSubsetView into a
///                  persistent CatalogCache (index remap, no Task
///                  copies); the warm path of the online engine. Answers
///                  are bit-identical to the on-the-fly mode over copies
///                  of the subset's tasks.
///
/// The oracle pins the DistanceKind so every component of one experiment
/// agrees on the metric.
class TaskDistanceOracle {
 public:
  /// On-the-fly oracle over `tasks` (not owned; must outlive the oracle).
  TaskDistanceOracle(const std::vector<Task>* tasks, DistanceKind kind);

  /// Builds a precomputed oracle. Fails with ResourceExhausted if the
  /// triangular cache would exceed `max_cache_bytes`. The O(|T|^2)
  /// fill runs on the global thread pool, parallelized over row
  /// blocks; `max_threads` caps the threads used (0 = pool size, 1 =
  /// serial). Every row writes a disjoint cache segment, so the cache
  /// is bit-identical for any thread count. `backend` selects the
  /// batched SoA sweep (default) or the per-pair scalar reference path;
  /// both fill the cache with bit-identical floats.
  static Result<TaskDistanceOracle> Precomputed(
      const std::vector<Task>* tasks, DistanceKind kind,
      size_t max_cache_bytes = size_t{4} << 30, size_t max_threads = 0,
      DistanceBackend backend = DistanceBackend::kBatched);

  /// Builds an oracle from an explicit dense row-major |T| x |T|
  /// distance matrix instead of computing distances from keywords. The
  /// paper allows d() to be any metric; this entry point lets callers
  /// plug externally-defined distances (it also reproduces the paper's
  /// worked example, whose Table I values are given, not derived).
  /// Fails unless the matrix is symmetric with a zero diagonal and
  /// non-negative entries. `kind` is recorded for the relevance side.
  static Result<TaskDistanceOracle> FromDenseMatrix(
      const std::vector<Task>* tasks, DistanceKind kind,
      const std::vector<double>& matrix);

  /// Subset-view oracle: queries in local indices [0, view->size())
  /// answer from the view's shared catalog cache. The view (and its
  /// cache and catalog) is not owned and must outlive the oracle.
  static TaskDistanceOracle FromSharedCache(const CatalogSubsetView* view);

  /// d(t_i, t_j). Requires i, j < task_count(). d(i, i) == 0.
  double operator()(TaskIndex i, TaskIndex j) const {
    if (i == j) return 0.0;
    if (view_ != nullptr) return view_->Distance(i, j);
    if (!cache_.empty()) {
      return cache_[TriIndex(i, j)];
    }
    return PairwiseTaskDiversity(kind_, (*tasks_)[i], (*tasks_)[j]);
  }

  size_t task_count() const {
    return view_ != nullptr ? view_->size() : tasks_->size();
  }
  DistanceKind kind() const { return kind_; }
  bool is_precomputed() const { return !cache_.empty(); }
  bool is_shared_subset() const { return view_ != nullptr; }

  /// Whether the oracle owns a pointer to a materialized task vector
  /// (false in shared-subset mode, where tasks live in the catalog).
  bool has_local_tasks() const { return tasks_ != nullptr; }

  /// The task behind index `i` — works in every mode (remaps through
  /// the subset view when present).
  const Task& task(TaskIndex i) const {
    if (view_ != nullptr) return view_->task(i);
    return (*tasks_)[i];
  }

  /// The materialized task vector. Only valid when has_local_tasks();
  /// shared-subset consumers must go through task(i).
  const std::vector<Task>& tasks() const {
    HTA_CHECK(tasks_ != nullptr)
        << "oracle has no local task vector (shared-subset mode)";
    return *tasks_;
  }

  /// The oracle's task rows as a packed SoA matrix: gathered from the
  /// shared catalog matrix in subset mode (O(|subset|) row copies),
  /// packed from the task vector otherwise. Rows are bitwise identical
  /// either way, so batched kernels run unchanged on top.
  PackedSetMatrix PackedRows() const;

 private:
  explicit TaskDistanceOracle(const CatalogSubsetView* view)
      : tasks_(nullptr), kind_(view->kind()), view_(view) {}

  /// Packed index into the strict upper triangle (i < j).
  size_t TriIndex(TaskIndex i, TaskIndex j) const {
    if (i > j) std::swap(i, j);
    const size_t n = tasks_->size();
    const size_t si = i;
    const size_t sj = j;
    // Row i starts after all previous rows: i*n - i*(i+1)/2, offset j-i-1.
    return si * n - si * (si + 1) / 2 + (sj - si - 1);
  }

  const std::vector<Task>* tasks_;
  DistanceKind kind_;
  std::vector<float> cache_;             // Empty outside precomputed mode.
  const CatalogSubsetView* view_ = nullptr;  // Null outside subset mode.
};

}  // namespace hta

#endif  // HTA_CORE_DISTANCE_ORACLE_H_
