#include "core/distance_oracle.h"

#include <string>

#include "util/parallel.h"

namespace hta {

TaskDistanceOracle::TaskDistanceOracle(const std::vector<Task>* tasks,
                                       DistanceKind kind)
    : tasks_(tasks), kind_(kind) {
  HTA_CHECK(tasks != nullptr);
}

Result<TaskDistanceOracle> TaskDistanceOracle::Precomputed(
    const std::vector<Task>* tasks, DistanceKind kind, size_t max_cache_bytes,
    size_t max_threads, DistanceBackend backend) {
  HTA_CHECK(tasks != nullptr);
  const size_t n = tasks->size();
  const size_t pairs = n * (n - 1) / 2;
  // Budget check by division: `pairs * sizeof(float)` can wrap size_t
  // for large n and then wrongly pass the comparison.
  if (pairs > max_cache_bytes / sizeof(float)) {
    return Status::ResourceExhausted(
        "precomputed distance cache for " + std::to_string(n) +
        " tasks needs " + std::to_string(pairs) + " float entries > limit " +
        std::to_string(max_cache_bytes) + " bytes");
  }
  TaskDistanceOracle oracle(tasks, kind);
  oracle.cache_.resize(pairs);
  float* cache = oracle.cache_.data();
  if (backend == DistanceBackend::kBatched) {
    // The batched SoA sweep fills the same triangular layout with the
    // same floats (packed_internal::DistanceFromCounts replicates the
    // scalar arithmetic), tiled for cache residency.
    const PackedSetMatrix packed = PackedSetMatrix::FromTasks(*tasks);
    AllPairsDistancesUpper(packed, kind, cache, max_threads);
    return oracle;
  }
  // Row i owns the disjoint cache segment [i*n - i*(i+1)/2, +n-1-i),
  // so row blocks write without overlap and the fill is bit-identical
  // for any thread count. Small row grain keeps the (shrinking) rows
  // of the triangle balanced across blocks.
  ParallelFor(
      0, n, /*grain=*/16,
      [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          size_t at = i * n - i * (i + 1) / 2;
          for (size_t j = i + 1; j < n; ++j) {
            cache[at++] = static_cast<float>(
                PairwiseTaskDiversity(kind, (*tasks)[i], (*tasks)[j]));
          }
        }
      },
      max_threads);
  return oracle;
}

TaskDistanceOracle TaskDistanceOracle::FromSharedCache(
    const CatalogSubsetView* view) {
  HTA_CHECK(view != nullptr);
  return TaskDistanceOracle(view);
}

PackedSetMatrix TaskDistanceOracle::PackedRows() const {
  if (view_ != nullptr) return view_->GatherPackedRows();
  return PackedSetMatrix::FromTasks(*tasks_);
}

Result<TaskDistanceOracle> TaskDistanceOracle::FromDenseMatrix(
    const std::vector<Task>* tasks, DistanceKind kind,
    const std::vector<double>& matrix) {
  HTA_CHECK(tasks != nullptr);
  const size_t n = tasks->size();
  if (matrix.size() != n * n) {
    return Status::InvalidArgument(
        "distance matrix must be |T| x |T| = " + std::to_string(n * n) +
        " entries, got " + std::to_string(matrix.size()));
  }
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i * n + i] != 0.0) {
      return Status::InvalidArgument("distance matrix diagonal must be zero");
    }
    for (size_t j = i + 1; j < n; ++j) {
      if (matrix[i * n + j] != matrix[j * n + i]) {
        return Status::InvalidArgument("distance matrix must be symmetric");
      }
      if (matrix[i * n + j] < 0.0) {
        return Status::InvalidArgument(
            "distance matrix entries must be non-negative");
      }
    }
  }
  TaskDistanceOracle oracle(tasks, kind);
  oracle.cache_.resize(n >= 2 ? n * (n - 1) / 2 : 0);
  size_t at = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      oracle.cache_[at++] = static_cast<float>(matrix[i * n + j]);
    }
  }
  return oracle;
}

}  // namespace hta
