#include "core/keyword_vector.h"

namespace hta {

std::vector<KeywordId> KeywordVector::ToIds() const {
  std::vector<KeywordId> ids;
  for (size_t block = 0; block < blocks_.size(); ++block) {
    uint64_t bits = blocks_[block];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      ids.push_back(static_cast<KeywordId>(block * 64 + bit));
      bits &= bits - 1;
    }
  }
  return ids;
}

std::string KeywordVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (KeywordId id : ToIds()) {
    if (!first) out += ", ";
    out += std::to_string(id);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace hta
