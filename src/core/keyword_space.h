#ifndef HTA_CORE_KEYWORD_SPACE_H_
#define HTA_CORE_KEYWORD_SPACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace hta {

/// Identifier of an interned keyword. Dense: ids are assigned 0, 1, ...
/// in interning order.
using KeywordId = uint32_t;

/// The keyword dictionary S = {s_1, ..., s_R} of Section II.
///
/// Tasks and workers are Boolean vectors over this space; interning
/// keyword strings once lets every vector be a compact bitset and every
/// distance computation a handful of popcounts.
///
/// Not thread-safe for concurrent interning; build the space up front,
/// then share it read-only.
class KeywordSpace {
 public:
  KeywordSpace() = default;

  /// Returns the id of `keyword`, interning it if new.
  KeywordId Intern(std::string_view keyword);

  /// Returns the id of an already-interned keyword, or NotFound.
  Result<KeywordId> Find(std::string_view keyword) const;

  /// True iff the keyword has been interned.
  bool Contains(std::string_view keyword) const;

  /// The string for an id. Requires id < size().
  const std::string& Name(KeywordId id) const;

  /// Number of interned keywords (the dimensionality R).
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, KeywordId> index_;
  std::vector<std::string> names_;
};

}  // namespace hta

#endif  // HTA_CORE_KEYWORD_SPACE_H_
