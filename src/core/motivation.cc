#include "core/motivation.h"

namespace hta {

double SetDiversity(const TaskBundle& bundle, const TaskDistanceOracle& d) {
  double total = 0.0;
  for (size_t k = 0; k < bundle.size(); ++k) {
    for (size_t l = k + 1; l < bundle.size(); ++l) {
      total += d(bundle[k], bundle[l]);
    }
  }
  return total;
}

double SetRelevance(const TaskBundle& bundle, const std::vector<Task>& tasks,
                    const Worker& worker, DistanceKind kind) {
  double total = 0.0;
  for (TaskIndex t : bundle) {
    HTA_DCHECK_LT(static_cast<size_t>(t), tasks.size());
    total += TaskRelevance(kind, tasks[t], worker);
  }
  return total;
}

double SetRelevance(const TaskBundle& bundle, const TaskDistanceOracle& d,
                    const Worker& worker) {
  double total = 0.0;
  for (TaskIndex t : bundle) {
    HTA_DCHECK_LT(static_cast<size_t>(t), d.task_count());
    total += TaskRelevance(d.kind(), d.task(t), worker);
  }
  return total;
}

double Motivation(const TaskBundle& bundle, const Worker& worker,
                  const TaskDistanceOracle& d) {
  if (bundle.empty()) return 0.0;
  const double td = SetDiversity(bundle, d);
  const double tr = SetRelevance(bundle, d, worker);
  const double size_minus_one = static_cast<double>(bundle.size()) - 1.0;
  return 2.0 * worker.weights().alpha * td +
         worker.weights().beta * size_minus_one * tr;
}

double DiversityMarginalGain(TaskIndex task, const TaskBundle& completed,
                             const TaskDistanceOracle& d) {
  double total = 0.0;
  for (TaskIndex prev : completed) total += d(task, prev);
  return total;
}

double RelevanceGain(TaskIndex task, const std::vector<Task>& tasks,
                     const Worker& worker, DistanceKind kind) {
  HTA_DCHECK_LT(static_cast<size_t>(task), tasks.size());
  return TaskRelevance(kind, tasks[task], worker);
}

}  // namespace hta
