#ifndef HTA_CORE_DISTANCE_H_
#define HTA_CORE_DISTANCE_H_

#include <string>

#include "core/keyword_vector.h"
#include "core/task.h"
#include "core/worker.h"

namespace hta {

/// Distance functions between Boolean keyword vectors.
///
/// The paper uses Jaccard for both pairwise task diversity d(t_k, t_l)
/// and the relevance distance d_rel(t, w), and the approximation
/// guarantees of HTA-APP / HTA-GRE require d() to satisfy the triangle
/// inequality. Jaccard, normalized Hamming, and angular-cosine are
/// metrics; Dice (Sorensen) is provided for ablation precisely because
/// it is NOT a metric — tests and the metric ablation bench demonstrate
/// the difference.
enum class DistanceKind {
  kJaccard,
  kDice,
  kHamming,
  kCosineAngular,
};

/// Stable name ("jaccard", "dice", ...).
std::string DistanceKindName(DistanceKind kind);

/// True iff the distance satisfies the metric axioms (in particular the
/// triangle inequality) on Boolean vectors.
bool IsMetric(DistanceKind kind);

/// Distance in [0, 1] between two Boolean vectors of the same universe.
/// Two empty vectors are at distance 0 for all kinds.
double VectorDistance(DistanceKind kind, const KeywordVector& a,
                      const KeywordVector& b);

/// Pairwise task diversity d(t_k, t_l) = 1 - J(t_k, t_l) (Section II),
/// generalized over the selected distance kind.
inline double PairwiseTaskDiversity(DistanceKind kind, const Task& a,
                                    const Task& b) {
  return VectorDistance(kind, a.keywords(), b.keywords());
}

/// Task relevance rel(t, w) = 1 - d_rel(t, w) (Section II).
inline double TaskRelevance(DistanceKind kind, const Task& task,
                            const Worker& worker) {
  return 1.0 - VectorDistance(kind, task.keywords(), worker.interests());
}

}  // namespace hta

#endif  // HTA_CORE_DISTANCE_H_
