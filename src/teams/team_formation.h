#ifndef HTA_TEAMS_TEAM_FORMATION_H_
#define HTA_TEAMS_TEAM_FORMATION_H_

#include <cstddef>
#include <vector>

#include "core/distance.h"
#include "core/task.h"
#include "core/worker.h"
#include "util/result.h"

namespace hta {

/// Motivation-aware team formation for collaborative tasks — the
/// paper's stated future work (Section VII): "extend this work to
/// collaborative tasks ... forming the most motivated team to complete
/// a task ... depend[ing] on the availability of workers with
/// complementary skills."
///
/// A collaborative task needs `team_size` workers. A team is scored by
/// three ingredients, mirroring the paper's diversity/relevance duality
/// at the team level:
///  * coverage         — fraction of the task's required keywords
///                       covered by the union of member interests
///                       (monotone submodular);
///  * complementarity  — mean pairwise distance between member
///                       interests (a diverse team brings different
///                       skills — the team analogue of task diversity);
///  * relevance        — mean rel(task, member) (each member
///                       individually matched to the task).
struct CollaborativeTask {
  Task task;
  size_t team_size = 2;
};

/// Relative weights of the three score terms; they need not sum to 1.
struct TeamScoreWeights {
  double coverage = 1.0;
  double complementarity = 0.5;
  double relevance = 0.25;
};

/// One team per collaborative task, in input task order. Teams may be
/// smaller than requested when eligible workers run out.
struct TeamAssignment {
  std::vector<std::vector<WorkerIndex>> teams;

  size_t TotalMembers() const {
    size_t total = 0;
    for (const auto& team : teams) total += team.size();
    return total;
  }
};

/// Fraction of `task`'s keywords covered by the union of the members'
/// interests; 1.0 for tasks with no keywords.
double TeamCoverage(const Task& task, const std::vector<WorkerIndex>& members,
                    const std::vector<Worker>& workers);

/// The full team score under `weights` (see above). Empty teams score
/// 0.
double TeamScore(const Task& task, const std::vector<WorkerIndex>& members,
                 const std::vector<Worker>& workers,
                 const TeamScoreWeights& weights, DistanceKind kind);

/// Greedy team formation: tasks are processed in input order; each team
/// is grown by repeatedly adding the worker with the best marginal
/// score gain. With pure coverage weights this is the classic greedy
/// submodular maximization with its (1 - 1/e) guarantee per task.
///
/// Workers join at most one team unless `allow_overlap`. Fails with
/// InvalidArgument on empty inputs or a zero team size.
Result<TeamAssignment> FormTeamsGreedy(
    const std::vector<CollaborativeTask>& tasks,
    const std::vector<Worker>& workers, const TeamScoreWeights& weights,
    DistanceKind kind = DistanceKind::kJaccard, bool allow_overlap = false);

/// Exact team formation by exhaustive search over member subsets, one
/// task at a time in input order (so it is exact per task given earlier
/// choices, matching what the greedy approximates). Exponential; limited
/// to <= 12 workers and team sizes <= 5.
Result<TeamAssignment> FormTeamsBruteForce(
    const std::vector<CollaborativeTask>& tasks,
    const std::vector<Worker>& workers, const TeamScoreWeights& weights,
    DistanceKind kind = DistanceKind::kJaccard, bool allow_overlap = false);

}  // namespace hta

#endif  // HTA_TEAMS_TEAM_FORMATION_H_
