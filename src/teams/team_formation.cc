#include "teams/team_formation.h"

#include <algorithm>

#include "util/check.h"

namespace hta {

double TeamCoverage(const Task& task, const std::vector<WorkerIndex>& members,
                    const std::vector<Worker>& workers) {
  const size_t required = task.keywords().Count();
  if (required == 0) return 1.0;
  KeywordVector covered(task.keywords().universe_size());
  for (WorkerIndex m : members) {
    HTA_DCHECK_LT(static_cast<size_t>(m), workers.size());
    for (KeywordId id : workers[m].interests().ToIds()) {
      if (task.keywords().Test(id)) covered.Set(id);
    }
  }
  return static_cast<double>(covered.Count()) /
         static_cast<double>(required);
}

double TeamScore(const Task& task, const std::vector<WorkerIndex>& members,
                 const std::vector<Worker>& workers,
                 const TeamScoreWeights& weights, DistanceKind kind) {
  if (members.empty()) return 0.0;
  const double coverage = TeamCoverage(task, members, workers);

  double complementarity = 0.0;
  if (members.size() >= 2) {
    double sum = 0.0;
    size_t pairs = 0;
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        sum += VectorDistance(kind, workers[members[a]].interests(),
                              workers[members[b]].interests());
        ++pairs;
      }
    }
    complementarity = sum / static_cast<double>(pairs);
  }

  double relevance = 0.0;
  for (WorkerIndex m : members) {
    relevance += TaskRelevance(kind, task, workers[m]);
  }
  relevance /= static_cast<double>(members.size());

  return weights.coverage * coverage +
         weights.complementarity * complementarity +
         weights.relevance * relevance;
}

namespace {

Status ValidateInputs(const std::vector<CollaborativeTask>& tasks,
                      const std::vector<Worker>& workers) {
  if (tasks.empty()) {
    return Status::InvalidArgument("team formation needs at least one task");
  }
  if (workers.empty()) {
    return Status::InvalidArgument("team formation needs workers");
  }
  for (const CollaborativeTask& t : tasks) {
    if (t.team_size == 0) {
      return Status::InvalidArgument("team_size must be >= 1");
    }
  }
  return Status::OK();
}

}  // namespace

Result<TeamAssignment> FormTeamsGreedy(
    const std::vector<CollaborativeTask>& tasks,
    const std::vector<Worker>& workers, const TeamScoreWeights& weights,
    DistanceKind kind, bool allow_overlap) {
  HTA_RETURN_IF_ERROR(ValidateInputs(tasks, workers));
  TeamAssignment assignment;
  assignment.teams.reserve(tasks.size());
  std::vector<bool> taken(workers.size(), false);

  for (const CollaborativeTask& ct : tasks) {
    std::vector<WorkerIndex> team;
    while (team.size() < ct.team_size) {
      double best_gain = 0.0;
      size_t best_worker = workers.size();
      const double base = TeamScore(ct.task, team, workers, weights, kind);
      for (size_t w = 0; w < workers.size(); ++w) {
        if (!allow_overlap && taken[w]) continue;
        if (std::find(team.begin(), team.end(), static_cast<WorkerIndex>(w)) !=
            team.end()) {
          continue;
        }
        team.push_back(static_cast<WorkerIndex>(w));
        const double gain =
            TeamScore(ct.task, team, workers, weights, kind) - base;
        team.pop_back();
        if (best_worker == workers.size() || gain > best_gain) {
          best_gain = gain;
          best_worker = w;
        }
      }
      if (best_worker == workers.size()) break;  // Nobody left.
      team.push_back(static_cast<WorkerIndex>(best_worker));
      if (!allow_overlap) taken[best_worker] = true;
    }
    assignment.teams.push_back(std::move(team));
  }
  return assignment;
}

namespace {

void SearchTeams(const CollaborativeTask& ct,
                 const std::vector<Worker>& workers,
                 const TeamScoreWeights& weights, DistanceKind kind,
                 const std::vector<bool>& taken, size_t next,
                 std::vector<WorkerIndex>* team, double* best_score,
                 std::vector<WorkerIndex>* best_team) {
  if (team->size() == ct.team_size) {
    const double score = TeamScore(ct.task, *team, workers, weights, kind);
    if (score > *best_score) {
      *best_score = score;
      *best_team = *team;
    }
    return;
  }
  for (size_t w = next; w < workers.size(); ++w) {
    if (taken[w]) continue;
    team->push_back(static_cast<WorkerIndex>(w));
    SearchTeams(ct, workers, weights, kind, taken, w + 1, team, best_score,
                best_team);
    team->pop_back();
  }
  // Also consider smaller teams when not enough workers remain; the
  // caller handles that by accepting the best complete subset found,
  // falling back to whatever partial team the final evaluation sees.
}

}  // namespace

Result<TeamAssignment> FormTeamsBruteForce(
    const std::vector<CollaborativeTask>& tasks,
    const std::vector<Worker>& workers, const TeamScoreWeights& weights,
    DistanceKind kind, bool allow_overlap) {
  HTA_RETURN_IF_ERROR(ValidateInputs(tasks, workers));
  if (workers.size() > 12) {
    return Status::InvalidArgument(
        "brute-force team formation limited to 12 workers");
  }
  for (const CollaborativeTask& t : tasks) {
    if (t.team_size > 5) {
      return Status::InvalidArgument(
          "brute-force team formation limited to team_size <= 5");
    }
  }
  TeamAssignment assignment;
  assignment.teams.reserve(tasks.size());
  std::vector<bool> taken(workers.size(), false);
  for (const CollaborativeTask& ct : tasks) {
    std::vector<WorkerIndex> team;
    std::vector<WorkerIndex> best_team;
    double best_score = -1.0;
    SearchTeams(ct, workers, weights, kind, taken, 0, &team, &best_score,
                &best_team);
    if (best_team.empty()) {
      // Fewer free workers than team_size: take everyone who is left.
      for (size_t w = 0; w < workers.size(); ++w) {
        if (!taken[w]) best_team.push_back(static_cast<WorkerIndex>(w));
      }
    }
    if (!allow_overlap) {
      for (WorkerIndex m : best_team) taken[m] = true;
    }
    assignment.teams.push_back(std::move(best_team));
  }
  return assignment;
}

}  // namespace hta
