#ifndef HTA_MATCHING_LSAP_H_
#define HTA_MATCHING_LSAP_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "matching/matching_types.h"
#include "util/check.h"

namespace hta {

/// Linear Sum Assignment Problem solvers (maximization): given an
/// n x n profit function, find a permutation pi maximizing
/// sum_i profit(i, pi(i)).
///
/// Four solvers, trading exactness for speed:
///  * SolveLsapJv        — exact, Jonker-Volgenant shortest augmenting
///                         path, O(n^3) worst case but fast in practice;
///                         this is the "Hungarian algorithm" phase of
///                         HTA-APP (the paper adapts Carpaneto et al.).
///  * SolveLsapHungarian — exact, simple O(n^3) Hungarian with
///                         potentials; slower, used as an independent
///                         reference implementation in tests.
///  * SolveLsapGreedy    — the paper's GREEDYMATCHING on the complete
///                         bipartite LSAP graph: 1/2-approximation in
///                         O(n^2 log n); this is the HTA-GRE phase.
///  * SolveLsapAuction   — Bertsekas auction with epsilon scaling;
///                         near-optimal heuristic, ablation A1 only.
///
/// All profits must be finite; greedy additionally assumes profits
/// >= 0 (true for HTA: motivation terms are non-negative).
///
/// Solvers are templates over the profit functor so that HTA-APP can
/// evaluate profits on the fly (f_{k,l} = bM(t_k) * degA_l + c_{k,l},
/// Algorithm 1 Line 10) without materializing an n x n matrix.

namespace lsap_internal {

inline LsapSolution FinishSolution(std::vector<int32_t> row_to_col, size_t n,
                                   double profit) {
  LsapSolution s;
  s.row_to_col = std::move(row_to_col);
  s.col_to_row.assign(n, -1);
  for (size_t i = 0; i < n; ++i) {
    HTA_CHECK_GE(s.row_to_col[i], 0);
    HTA_CHECK(s.col_to_row[static_cast<size_t>(s.row_to_col[i])] == -1)
        << "row_to_col is not a permutation";
    s.col_to_row[static_cast<size_t>(s.row_to_col[i])] =
        static_cast<int32_t>(i);
  }
  s.profit = profit;
  return s;
}

}  // namespace lsap_internal

/// Exact LSAP via the Jonker-Volgenant algorithm (column reduction,
/// reduction transfer, augmenting row reduction, then shortest
/// augmenting paths). Internally minimizes cost = -profit.
template <typename ProfitFn>
LsapSolution SolveLsapJv(size_t n, const ProfitFn& profit) {
  if (n == 0) return lsap_internal::FinishSolution({}, 0, 0.0);
  const double kInf = std::numeric_limits<double>::infinity();
  auto cost = [&](size_t i, size_t j) { return -profit(i, j); };

  std::vector<int32_t> rowsol(n, -1);
  std::vector<int32_t> colsol(n, -1);
  std::vector<double> v(n, 0.0);
  std::vector<int32_t> matches(n, 0);

  // 1. Column reduction (reverse column order).
  for (size_t jj = n; jj-- > 0;) {
    double min_cost = cost(0, jj);
    size_t imin = 0;
    for (size_t i = 1; i < n; ++i) {
      const double c = cost(i, jj);
      if (c < min_cost) {
        min_cost = c;
        imin = i;
      }
    }
    v[jj] = min_cost;
    if (++matches[imin] == 1) {
      rowsol[imin] = static_cast<int32_t>(jj);
      colsol[jj] = static_cast<int32_t>(imin);
    }
  }

  // 2. Reduction transfer from single-assigned rows.
  std::vector<int32_t> free_rows;
  free_rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (matches[i] == 0) {
      free_rows.push_back(static_cast<int32_t>(i));
    } else if (matches[i] == 1) {
      const size_t j1 = static_cast<size_t>(rowsol[i]);
      double min_reduced = kInf;
      for (size_t j = 0; j < n; ++j) {
        if (j != j1) min_reduced = std::min(min_reduced, cost(i, j) - v[j]);
      }
      if (min_reduced != kInf) v[j1] -= min_reduced;
    }
  }

  // 3. Augmenting row reduction: two sweeps over the free rows.
  for (int sweep = 0; sweep < 2 && n >= 2; ++sweep) {
    size_t k = 0;
    const size_t prev_free_count = free_rows.size();
    std::vector<int32_t> next_free;
    while (k < prev_free_count) {
      const size_t i = static_cast<size_t>(free_rows[k++]);
      // Two smallest reduced costs in row i.
      double umin = cost(i, 0) - v[0];
      size_t j1 = 0;
      double usubmin = kInf;
      size_t j2 = n;  // invalid
      for (size_t j = 1; j < n; ++j) {
        const double h = cost(i, j) - v[j];
        if (h < usubmin) {
          if (h >= umin) {
            usubmin = h;
            j2 = j;
          } else {
            usubmin = umin;
            j2 = j1;
            umin = h;
            j1 = j;
          }
        }
      }
      int32_t displaced = colsol[j1];
      if (umin < usubmin) {
        v[j1] -= usubmin - umin;
      } else if (displaced >= 0 && j2 < n) {
        j1 = j2;
        displaced = colsol[j1];
      }
      rowsol[i] = static_cast<int32_t>(j1);
      colsol[j1] = static_cast<int32_t>(i);
      if (displaced >= 0) {
        if (umin < usubmin) {
          free_rows[--k] = displaced;  // Reconsider immediately.
        } else {
          next_free.push_back(displaced);
        }
      }
    }
    free_rows = std::move(next_free);
  }

  // 4. Shortest augmenting paths for the remaining free rows.
  std::vector<double> d(n);
  std::vector<int32_t> pred(n);
  std::vector<size_t> collist(n);
  for (int32_t free_row : free_rows) {
    const size_t freerow = static_cast<size_t>(free_row);
    for (size_t j = 0; j < n; ++j) {
      d[j] = cost(freerow, j) - v[j];
      pred[j] = free_row;
      collist[j] = j;
    }
    size_t low = 0;
    size_t up = 0;
    bool found = false;
    size_t endofpath = 0;
    double min_d = 0.0;
    while (!found) {
      if (up == low) {
        min_d = d[collist[up]];
        ++up;
        for (size_t k = up; k < n; ++k) {
          const size_t j = collist[k];
          const double h = d[j];
          if (h <= min_d) {
            if (h < min_d) {
              up = low;
              min_d = h;
            }
            collist[k] = collist[up];
            collist[up++] = j;
          }
        }
        for (size_t k = low; k < up; ++k) {
          if (colsol[collist[k]] < 0) {
            endofpath = collist[k];
            found = true;
            break;
          }
        }
      }
      if (!found) {
        const size_t j1 = collist[low++];
        const size_t i = static_cast<size_t>(colsol[j1]);
        const double h = cost(i, j1) - v[j1] - min_d;
        for (size_t k = up; k < n; ++k) {
          const size_t j = collist[k];
          const double v2 = cost(i, j) - v[j] - h;
          if (v2 < d[j]) {
            pred[j] = static_cast<int32_t>(i);
            if (v2 == min_d) {
              if (colsol[j] < 0) {
                endofpath = j;
                found = true;
                break;
              }
              collist[k] = collist[up];
              collist[up++] = j;
            }
            d[j] = v2;
          }
        }
      }
    }
    // Price update for scanned columns; columns popped at the current
    // minimum level contribute zero, so updating all of collist[0..low)
    // matches the classic formulation.
    for (size_t k = 0; k < low; ++k) {
      const size_t j1 = collist[k];
      v[j1] += d[j1] - min_d;
    }
    // Augment along the alternating path back to freerow.
    int32_t i;
    size_t j = endofpath;
    do {
      i = pred[j];
      colsol[j] = i;
      const int32_t j_prev = rowsol[static_cast<size_t>(i)];
      rowsol[static_cast<size_t>(i)] = static_cast<int32_t>(j);
      j = static_cast<size_t>(j_prev);
    } while (i != free_row);
  }

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += profit(i, static_cast<size_t>(rowsol[i]));
  }
  return lsap_internal::FinishSolution(std::move(rowsol), n, total);
}

/// The paper's greedy LSAP (Section IV-C): treat the LSAP as a maximum
/// weight perfect matching on the complete bipartite graph and run
/// GREEDYMATCHING — pick the globally heaviest free (row, col) pair,
/// repeat. 1/2-approximation; O(n^2 log n).
///
/// Requires profits >= 0. Only strictly-positive entries need sorting:
/// once they are exhausted, any completion of the permutation adds zero
/// profit, so remaining rows take remaining columns in index order
/// (deterministic). When `positive_cols` is non-null it must list every
/// column that contains a positive profit; passing it narrows the sort
/// from n^2 to n * |positive_cols| entries — the structured fast path
/// used by HTA-GRE, where only worker-clique columns carry profit.
template <typename ProfitFn>
LsapSolution SolveLsapGreedy(size_t n, const ProfitFn& profit,
                             const std::vector<size_t>* positive_cols =
                                 nullptr) {
  struct Entry {
    float w;
    uint32_t row;
    uint32_t col;
  };
  std::vector<Entry> entries;
  auto scan_col = [&](size_t j) {
    for (size_t i = 0; i < n; ++i) {
      const double p = profit(i, j);
      HTA_DCHECK_GE(p, 0.0);
      if (p > 0.0) {
        entries.push_back(Entry{static_cast<float>(p),
                                static_cast<uint32_t>(i),
                                static_cast<uint32_t>(j)});
      }
    }
  };
  if (positive_cols != nullptr) {
    for (size_t j : *positive_cols) scan_col(j);
  } else {
    for (size_t j = 0; j < n; ++j) scan_col(j);
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });

  std::vector<int32_t> row_to_col(n, -1);
  std::vector<bool> col_used(n, false);
  double total = 0.0;
  for (const Entry& e : entries) {
    if (row_to_col[e.row] == -1 && !col_used[e.col]) {
      row_to_col[e.row] = static_cast<int32_t>(e.col);
      col_used[e.col] = true;
      total += profit(e.row, e.col);
    }
  }
  // Complete the permanent with zero-profit pairs, in index order.
  size_t next_col = 0;
  for (size_t i = 0; i < n; ++i) {
    if (row_to_col[i] != -1) continue;
    while (col_used[next_col]) ++next_col;
    row_to_col[i] = static_cast<int32_t>(next_col);
    col_used[next_col] = true;
    total += profit(i, next_col);
  }
  return lsap_internal::FinishSolution(std::move(row_to_col), n, total);
}

/// Structured exact LSAP: exploits the HTA profit structure in which
/// only a known subset of columns (the |W| * Xmax worker-clique
/// columns) can carry non-zero profit. Solves the rectangular
/// assignment of profitable columns to rows exactly — O(m^2 n) for m
/// profitable columns instead of the square solver's O(n^3) — then
/// completes the permutation with zero-profit pairs in index order.
///
/// Produces the same optimal profit as SolveLsapJv whenever every
/// column outside `profitable_cols` is all-zero (verified by tests).
/// This is the solver behind the HTA-APP+rect extension (ablation A6);
/// the paper's own implementation pays the square-Hungarian cost.
///
/// Requires profits >= 0 and `profitable_cols` distinct and < n.
template <typename ProfitFn>
LsapSolution SolveLsapStructured(size_t n, const ProfitFn& profit,
                                 const std::vector<size_t>& profitable_cols) {
  const size_t m = profitable_cols.size();
  HTA_CHECK_LE(m, n);
  if (m == 0) {
    // Nothing profitable: identity permutation.
    std::vector<int32_t> row_to_col(n);
    for (size_t i = 0; i < n; ++i) row_to_col[i] = static_cast<int32_t>(i);
    return lsap_internal::FinishSolution(std::move(row_to_col), n, 0.0);
  }
  const double kInf = std::numeric_limits<double>::infinity();
  // Transposed rectangular problem: "rows" are the m profitable
  // columns, "cols" are the n tasks. Minimize cost = -profit.
  auto cost = [&](size_t r, size_t c) {
    return -profit(c, profitable_cols[r]);
  };

  // Shortest-augmenting-path rectangular assignment (scipy-style).
  std::vector<double> u(m, 0.0), v(n, 0.0);
  std::vector<int32_t> col4row(m, -1);  // task assigned to each column-row.
  std::vector<int32_t> row4col(n, -1);
  std::vector<double> shortest(n);
  std::vector<int32_t> pred(n);
  std::vector<bool> sr(m), sc(n);
  std::vector<size_t> remaining(n);

  for (size_t cur = 0; cur < m; ++cur) {
    std::fill(shortest.begin(), shortest.end(), kInf);
    std::fill(sr.begin(), sr.end(), false);
    std::fill(sc.begin(), sc.end(), false);
    size_t num_remaining = n;
    for (size_t j = 0; j < n; ++j) remaining[j] = n - 1 - j;

    double min_val = 0.0;
    size_t i = cur;
    int64_t sink = -1;
    while (sink == -1) {
      sr[i] = true;
      size_t index = num_remaining;  // Invalid until set.
      double lowest = kInf;
      for (size_t it = 0; it < num_remaining; ++it) {
        const size_t j = remaining[it];
        const double r = min_val + cost(i, j) - u[i] - v[j];
        if (r < shortest[j]) {
          pred[j] = static_cast<int32_t>(i);
          shortest[j] = r;
        }
        // Pick the minimum; prefer unassigned columns on ties so the
        // augmentation terminates as early as possible.
        if (index == num_remaining || shortest[j] < lowest ||
            (shortest[j] == lowest && row4col[j] == -1)) {
          lowest = shortest[j];
          index = it;
        }
      }
      HTA_CHECK(index < num_remaining && lowest < kInf)
          << "structured LSAP infeasible";
      min_val = lowest;
      const size_t j = remaining[index];
      if (row4col[j] == -1) {
        sink = static_cast<int64_t>(j);
      } else {
        i = static_cast<size_t>(row4col[j]);
      }
      sc[j] = true;
      remaining[index] = remaining[--num_remaining];
    }

    u[cur] += min_val;
    for (size_t r = 0; r < m; ++r) {
      if (sr[r] && r != cur) {
        u[r] += min_val - shortest[static_cast<size_t>(col4row[r])];
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (sc[j]) v[j] -= min_val - shortest[j];
    }

    // Augment along the path back from the sink.
    size_t j = static_cast<size_t>(sink);
    while (true) {
      const size_t r = static_cast<size_t>(pred[j]);
      row4col[j] = static_cast<int32_t>(r);
      const int32_t old = col4row[r];
      col4row[r] = static_cast<int32_t>(j);
      if (r == cur) break;
      HTA_DCHECK_GE(old, 0);
      j = static_cast<size_t>(old);
    }
  }

  // Assemble the full n x n permutation: profitable columns get their
  // optimal rows; all other (zero) columns are filled in index order.
  std::vector<int32_t> row_to_col(n, -1);
  double total = 0.0;
  for (size_t r = 0; r < m; ++r) {
    const size_t task = static_cast<size_t>(col4row[r]);
    row_to_col[task] = static_cast<int32_t>(profitable_cols[r]);
    total += profit(task, profitable_cols[r]);
  }
  std::vector<bool> col_used(n, false);
  for (size_t c : profitable_cols) col_used[c] = true;
  size_t next_col = 0;
  for (size_t task = 0; task < n; ++task) {
    if (row_to_col[task] != -1) continue;
    while (col_used[next_col]) ++next_col;
    row_to_col[task] = static_cast<int32_t>(next_col);
    col_used[next_col] = true;
    total += profit(task, next_col);
  }
  return lsap_internal::FinishSolution(std::move(row_to_col), n, total);
}

/// Exact LSAP over a dense row-major profit matrix, simple O(n^3)
/// Hungarian with potentials. Independent of SolveLsapJv; the two are
/// cross-checked in tests.
LsapSolution SolveLsapHungarian(size_t n, const std::vector<double>& profit);

/// Bertsekas auction algorithm with epsilon scaling (maximization).
/// Near-optimal on real-valued profits (optimal when profit gaps exceed
/// the final epsilon); provided for ablation A1.
LsapSolution SolveLsapAuction(size_t n, const std::vector<double>& profit);

/// Convenience adapter: dense row-major matrix as a profit functor.
class DenseProfit {
 public:
  DenseProfit(size_t n, const std::vector<double>* matrix)
      : n_(n), matrix_(matrix) {
    HTA_CHECK_EQ(matrix->size(), n * n);
  }
  double operator()(size_t i, size_t j) const { return (*matrix_)[i * n_ + j]; }

 private:
  size_t n_;
  const std::vector<double>* matrix_;
};

}  // namespace hta

#endif  // HTA_MATCHING_LSAP_H_
