#include "matching/lsap.h"

#include <cmath>

namespace hta {

LsapSolution SolveLsapHungarian(size_t n, const std::vector<double>& profit) {
  HTA_CHECK_EQ(profit.size(), n * n);
  if (n == 0) return lsap_internal::FinishSolution({}, 0, 0.0);
  const double kInf = std::numeric_limits<double>::infinity();
  // Classic O(n^3) Hungarian with potentials, 1-indexed internally;
  // minimizes cost = -profit.
  auto cost = [&](size_t i, size_t j) { return -profit[i * n + j]; };

  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);    // p[j] = row matched to column j.
  std::vector<size_t> way(n + 1, 0);  // Alternating-path parents.
  // Scratch for the augmenting search, reset (not reallocated) per row.
  std::vector<double> minv(n + 1);
  std::vector<bool> used(n + 1);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int32_t> row_to_col(n, -1);
  double total = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    row_to_col[p[j] - 1] = static_cast<int32_t>(j - 1);
    total += profit[(p[j] - 1) * n + (j - 1)];
  }
  return lsap_internal::FinishSolution(std::move(row_to_col), n, total);
}

LsapSolution SolveLsapAuction(size_t n, const std::vector<double>& profit) {
  HTA_CHECK_EQ(profit.size(), n * n);
  if (n == 0) return lsap_internal::FinishSolution({}, 0, 0.0);

  double max_abs = 0.0;
  for (double p : profit) max_abs = std::max(max_abs, std::abs(p));
  if (max_abs == 0.0) max_abs = 1.0;

  std::vector<double> price(n, 0.0);
  std::vector<int32_t> row_to_col(n, -1);
  std::vector<int32_t> col_to_row(n, -1);

  // Epsilon scaling: start coarse, finish below the resolution at which
  // misassignments could flip the result for well-separated profits.
  const double eps_final = max_abs / (4.0 * static_cast<double>(n));
  double eps = std::max(eps_final, max_abs / 4.0);
  while (true) {
    std::fill(row_to_col.begin(), row_to_col.end(), -1);
    std::fill(col_to_row.begin(), col_to_row.end(), -1);
    std::vector<size_t> unassigned;
    unassigned.reserve(n);
    for (size_t i = 0; i < n; ++i) unassigned.push_back(i);

    while (!unassigned.empty()) {
      const size_t i = unassigned.back();
      unassigned.pop_back();
      // Best and second-best net value for bidder i.
      double best = -std::numeric_limits<double>::infinity();
      double second = best;
      size_t best_j = 0;
      for (size_t j = 0; j < n; ++j) {
        const double value = profit[i * n + j] - price[j];
        if (value > best) {
          second = best;
          best = value;
          best_j = j;
        } else if (value > second) {
          second = value;
        }
      }
      const double increment =
          (n == 1 ? eps : best - second) + eps;
      price[best_j] += increment;
      const int32_t displaced = col_to_row[best_j];
      col_to_row[best_j] = static_cast<int32_t>(i);
      row_to_col[i] = static_cast<int32_t>(best_j);
      if (displaced >= 0) {
        row_to_col[static_cast<size_t>(displaced)] = -1;
        unassigned.push_back(static_cast<size_t>(displaced));
      }
    }
    if (eps <= eps_final) break;
    eps = std::max(eps_final, eps / 4.0);
  }

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += profit[i * n + static_cast<size_t>(row_to_col[i])];
  }
  return lsap_internal::FinishSolution(std::move(row_to_col), n, total);
}

}  // namespace hta
