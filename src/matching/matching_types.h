#ifndef HTA_MATCHING_MATCHING_TYPES_H_
#define HTA_MATCHING_MATCHING_TYPES_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace hta {

/// Dense vertex id within a matching problem.
using VertexId = uint32_t;

/// An undirected weighted edge. Weights are non-negative throughout
/// libhta (distances and motivation profits are >= 0).
struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  float weight = 0.0f;
};

/// Result of a (general-graph) matching computation.
struct GraphMatching {
  /// mate[v] is the matched partner of v, or kUnmatched.
  std::vector<int32_t> mate;
  /// The matched edges, each listed once (u < v).
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// Sum of matched edge weights.
  double total_weight = 0.0;

  static constexpr int32_t kUnmatched = -1;

  /// True iff v is covered by the matching.
  bool IsMatched(VertexId v) const {
    return v < mate.size() && mate[v] != kUnmatched;
  }
};

/// Result of a linear sum assignment (square, n x n, maximization).
struct LsapSolution {
  /// row_to_col[i] = column assigned to row i (a permutation).
  std::vector<int32_t> row_to_col;
  /// col_to_row[j] = row assigned to column j (inverse permutation).
  std::vector<int32_t> col_to_row;
  /// Total profit of the assignment.
  double profit = 0.0;
};

}  // namespace hta

#endif  // HTA_MATCHING_MATCHING_TYPES_H_
