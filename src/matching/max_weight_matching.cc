#include "matching/max_weight_matching.h"

#include <algorithm>

#include "util/check.h"

namespace hta {

namespace {

bool EdgeHeavier(const WeightedEdge& a, const WeightedEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

GraphMatching MakeEmptyMatching(size_t vertex_count) {
  GraphMatching m;
  m.mate.assign(vertex_count, GraphMatching::kUnmatched);
  return m;
}

void AddMatchedEdge(GraphMatching* m, VertexId u, VertexId v, double w) {
  m->mate[u] = static_cast<int32_t>(v);
  m->mate[v] = static_cast<int32_t>(u);
  m->edges.emplace_back(std::min(u, v), std::max(u, v));
  m->total_weight += w;
}

}  // namespace

GraphMatching GreedyMaxWeightMatching(size_t vertex_count,
                                      std::vector<WeightedEdge> edges) {
  GraphMatching m = MakeEmptyMatching(vertex_count);
  std::sort(edges.begin(), edges.end(), EdgeHeavier);
  for (const WeightedEdge& e : edges) {
    HTA_DCHECK_LT(static_cast<size_t>(e.u), vertex_count);
    HTA_DCHECK_LT(static_cast<size_t>(e.v), vertex_count);
    if (e.u == e.v) continue;
    if (m.mate[e.u] == GraphMatching::kUnmatched &&
        m.mate[e.v] == GraphMatching::kUnmatched) {
      AddMatchedEdge(&m, e.u, e.v, e.weight);
    }
  }
  return m;
}

GraphMatching GreedyMatchingOnTaskGraph(const TaskDistanceOracle& oracle) {
  const size_t n = oracle.task_count();
  std::vector<WeightedEdge> edges;
  if (n >= 2) edges.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      edges.push_back(WeightedEdge{
          static_cast<VertexId>(i), static_cast<VertexId>(j),
          static_cast<float>(
              oracle(static_cast<TaskIndex>(i), static_cast<TaskIndex>(j)))});
    }
  }
  return GreedyMaxWeightMatching(n, std::move(edges));
}

GraphMatching PathGrowingMatching(size_t vertex_count,
                                  const std::vector<WeightedEdge>& edges) {
  // Adjacency lists with removal-by-flag; each vertex keeps its incident
  // edge indices.
  std::vector<std::vector<size_t>> adjacency(vertex_count);
  for (size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].u == edges[e].v) continue;
    adjacency[edges[e].u].push_back(e);
    adjacency[edges[e].v].push_back(e);
  }
  std::vector<bool> removed(vertex_count, false);

  // Two alternating tentative matchings; the heavier one wins.
  std::vector<WeightedEdge> matchings[2];
  double weights[2] = {0.0, 0.0};

  for (VertexId start = 0; start < vertex_count; ++start) {
    if (removed[start]) continue;
    VertexId x = start;
    int side = 0;
    while (true) {
      // Heaviest incident edge to a non-removed neighbor.
      double best_w = -1.0;
      VertexId best_y = 0;
      const WeightedEdge* best_edge = nullptr;
      for (size_t ei : adjacency[x]) {
        const WeightedEdge& e = edges[ei];
        const VertexId y = (e.u == x) ? e.v : e.u;
        if (removed[y]) continue;
        if (e.weight > best_w ||
            (e.weight == best_w && best_edge != nullptr && y < best_y)) {
          best_w = e.weight;
          best_y = y;
          best_edge = &e;
        }
      }
      removed[x] = true;
      if (best_edge == nullptr) break;
      matchings[side].push_back(*best_edge);
      weights[side] += best_edge->weight;
      side = 1 - side;
      x = best_y;
    }
  }

  const int winner = weights[0] >= weights[1] ? 0 : 1;
  GraphMatching m = MakeEmptyMatching(vertex_count);
  for (const WeightedEdge& e : matchings[winner]) {
    // Paths alternate sides, so same-side edges are vertex-disjoint.
    HTA_DCHECK(m.mate[e.u] == GraphMatching::kUnmatched);
    HTA_DCHECK(m.mate[e.v] == GraphMatching::kUnmatched);
    AddMatchedEdge(&m, e.u, e.v, e.weight);
  }
  return m;
}

namespace {

void ExactMatchingSearch(const std::vector<WeightedEdge>& edges, size_t next,
                         std::vector<int32_t>* mate, double weight_so_far,
                         std::vector<size_t>* chosen, double* best_weight,
                         std::vector<size_t>* best_chosen) {
  if (weight_so_far > *best_weight) {
    *best_weight = weight_so_far;
    *best_chosen = *chosen;
  }
  for (size_t e = next; e < edges.size(); ++e) {
    const WeightedEdge& edge = edges[e];
    if (edge.u == edge.v) continue;
    if ((*mate)[edge.u] != GraphMatching::kUnmatched ||
        (*mate)[edge.v] != GraphMatching::kUnmatched) {
      continue;
    }
    (*mate)[edge.u] = static_cast<int32_t>(edge.v);
    (*mate)[edge.v] = static_cast<int32_t>(edge.u);
    chosen->push_back(e);
    ExactMatchingSearch(edges, e + 1, mate, weight_so_far + edge.weight,
                        chosen, best_weight, best_chosen);
    chosen->pop_back();
    (*mate)[edge.u] = GraphMatching::kUnmatched;
    (*mate)[edge.v] = GraphMatching::kUnmatched;
  }
}

}  // namespace

GraphMatching ExactMaxWeightMatchingBruteForce(
    size_t vertex_count, const std::vector<WeightedEdge>& edges) {
  HTA_CHECK_LE(vertex_count, size_t{12})
      << "brute-force matching is exponential; use it only on tiny graphs";
  std::vector<int32_t> mate(vertex_count, GraphMatching::kUnmatched);
  std::vector<size_t> chosen;
  std::vector<size_t> best_chosen;
  double best_weight = 0.0;
  ExactMatchingSearch(edges, 0, &mate, 0.0, &chosen, &best_weight,
                      &best_chosen);
  GraphMatching m = MakeEmptyMatching(vertex_count);
  for (size_t e : best_chosen) {
    AddMatchedEdge(&m, edges[e].u, edges[e].v, edges[e].weight);
  }
  return m;
}

}  // namespace hta
