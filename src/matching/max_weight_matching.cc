#include "matching/max_weight_matching.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>

#include "util/check.h"
#include "util/parallel.h"

namespace hta {

namespace {

/// Rows per shard when building the diversity edge list in parallel.
constexpr size_t kEdgeRowGrain = 16;

bool EdgeHeavier(const WeightedEdge& a, const WeightedEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

GraphMatching MakeEmptyMatching(size_t vertex_count) {
  GraphMatching m;
  m.mate.assign(vertex_count, GraphMatching::kUnmatched);
  return m;
}

void AddMatchedEdge(GraphMatching* m, VertexId u, VertexId v, double w) {
  m->mate[u] = static_cast<int32_t>(v);
  m->mate[v] = static_cast<int32_t>(u);
  m->edges.emplace_back(std::min(u, v), std::max(u, v));
  m->total_weight += w;
}

}  // namespace

GraphMatching GreedyMaxWeightMatching(size_t vertex_count,
                                      std::vector<WeightedEdge> edges,
                                      size_t max_threads) {
  GraphMatching m = MakeEmptyMatching(vertex_count);
  // EdgeHeavier is a strict total order on distinct edges, so the
  // stable parallel sort reproduces the historical std::sort sequence
  // exactly (equal elements are bitwise-identical structs).
  ParallelStableSort(&edges, EdgeHeavier, max_threads);
  for (const WeightedEdge& e : edges) {
    HTA_DCHECK_LT(static_cast<size_t>(e.u), vertex_count);
    HTA_DCHECK_LT(static_cast<size_t>(e.v), vertex_count);
    if (e.u == e.v) continue;
    if (m.mate[e.u] == GraphMatching::kUnmatched &&
        m.mate[e.v] == GraphMatching::kUnmatched) {
      AddMatchedEdge(&m, e.u, e.v, e.weight);
    }
  }
  return m;
}

std::vector<WeightedEdge> BuildDiversityEdges(const TaskDistanceOracle& d,
                                              size_t max_threads,
                                              DistanceBackend backend) {
  const size_t n = d.task_count();
  if (n < 2) return {};
  // The fused SoA sweep applies only when distances come from keyword
  // vectors; a precomputed (or dense-matrix) oracle already answers
  // from its float cache, which the kernels must not bypass.
  const bool batched =
      backend == DistanceBackend::kBatched && !d.is_precomputed();
  // PackedRows packs the oracle's rows in local-vector mode and gathers
  // them from the shared catalog matrix in subset mode; either way the
  // rows (and thus the emitted edges) are bitwise identical.
  const PackedSetMatrix packed = batched ? d.PackedRows() : PackedSetMatrix();
  // Padding vertices have zero weight to everything and can never
  // enter a maximum-weight matching built from positive edges, so only
  // real task pairs are scanned. Each fixed block of kEdgeRowGrain
  // rows fills its own shard (reserved at the block's exact pair
  // count); shards concatenate in block order, reproducing the serial
  // row-major edge order bit-for-bit at any thread count.
  const size_t num_blocks = parallel_internal::BlockCount(0, n, kEdgeRowGrain);
  // Batched shards are uninitialized byte buffers written through a
  // bump pointer: at kernel throughput, the value-initializing memset
  // of vector::resize and the capacity checks of push_back both cost
  // more than the fused distance sweep itself.
  struct RawShard {
    std::unique_ptr<std::byte[]> bytes;
    size_t count = 0;
    const WeightedEdge* data() const {
      return reinterpret_cast<const WeightedEdge*>(bytes.get());
    }
  };
  std::vector<RawShard> raw_shards(batched ? num_blocks : 0);
  std::vector<std::vector<WeightedEdge>> shards(batched ? 0 : num_blocks);
  ParallelFor(
      0, num_blocks, /*grain=*/1,
      [&](size_t block) {
        const parallel_internal::BlockRange rows =
            parallel_internal::BlockAt(0, n, kEdgeRowGrain, block);
        // Rows [b, e) hold sum_{i=b}^{e-1} (n - 1 - i) pairs.
        const size_t span = rows.end - rows.begin;
        const size_t pairs = span * (n - 1) -
                             (rows.end * (rows.end - 1) / 2 -
                              rows.begin * (rows.begin - 1) / 2);
        if (batched) {
          RawShard& shard = raw_shards[block];
          shard.bytes = std::make_unique_for_overwrite<std::byte[]>(
              pairs * sizeof(WeightedEdge));
          std::byte* base = shard.bytes.get();
          size_t emitted = 0;
          for (size_t i = rows.begin; i < rows.end; ++i) {
            EmitPositiveDistancesInRow(
                packed, i, d.kind(), [&](size_t j, float w) {
                  ::new (base + emitted * sizeof(WeightedEdge))
                      WeightedEdge{static_cast<VertexId>(i),
                                   static_cast<VertexId>(j), w};
                  ++emitted;
                });
          }
          shard.count = emitted;
          return;
        }
        std::vector<WeightedEdge>& shard = shards[block];
        shard.reserve(pairs);
        for (size_t i = rows.begin; i < rows.end; ++i) {
          for (size_t j = i + 1; j < n; ++j) {
            const float w = static_cast<float>(
                d(static_cast<TaskIndex>(i), static_cast<TaskIndex>(j)));
            if (w > 0.0f) {
              shard.push_back(WeightedEdge{static_cast<VertexId>(i),
                                           static_cast<VertexId>(j), w});
            }
          }
        }
      },
      max_threads);
  size_t total = 0;
  for (const auto& shard : raw_shards) total += shard.count;
  for (const auto& shard : shards) total += shard.size();
  std::vector<WeightedEdge> edges;
  edges.reserve(total);
  for (const auto& shard : raw_shards) {
    edges.insert(edges.end(), shard.data(), shard.data() + shard.count);
  }
  for (const auto& shard : shards) {
    edges.insert(edges.end(), shard.begin(), shard.end());
  }
  return edges;
}

GraphMatching GreedyMatchingOnTaskGraph(const TaskDistanceOracle& oracle,
                                        size_t max_threads,
                                        DistanceBackend backend) {
  return GreedyMaxWeightMatching(
      oracle.task_count(), BuildDiversityEdges(oracle, max_threads, backend),
      max_threads);
}

GraphMatching PathGrowingMatching(size_t vertex_count,
                                  const std::vector<WeightedEdge>& edges) {
  // Adjacency lists with removal-by-flag; each vertex keeps its incident
  // edge indices.
  std::vector<std::vector<size_t>> adjacency(vertex_count);
  for (size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].u == edges[e].v) continue;
    adjacency[edges[e].u].push_back(e);
    adjacency[edges[e].v].push_back(e);
  }
  std::vector<bool> removed(vertex_count, false);

  // Two alternating tentative matchings; the heavier one wins.
  std::vector<WeightedEdge> matchings[2];
  double weights[2] = {0.0, 0.0};

  for (VertexId start = 0; start < vertex_count; ++start) {
    if (removed[start]) continue;
    VertexId x = start;
    int side = 0;
    while (true) {
      // Heaviest incident edge to a non-removed neighbor.
      double best_w = -1.0;
      VertexId best_y = 0;
      const WeightedEdge* best_edge = nullptr;
      for (size_t ei : adjacency[x]) {
        const WeightedEdge& e = edges[ei];
        const VertexId y = (e.u == x) ? e.v : e.u;
        if (removed[y]) continue;
        if (e.weight > best_w ||
            (e.weight == best_w && best_edge != nullptr && y < best_y)) {
          best_w = e.weight;
          best_y = y;
          best_edge = &e;
        }
      }
      removed[x] = true;
      if (best_edge == nullptr) break;
      matchings[side].push_back(*best_edge);
      weights[side] += best_edge->weight;
      side = 1 - side;
      x = best_y;
    }
  }

  const int winner = weights[0] >= weights[1] ? 0 : 1;
  GraphMatching m = MakeEmptyMatching(vertex_count);
  for (const WeightedEdge& e : matchings[winner]) {
    // Paths alternate sides, so same-side edges are vertex-disjoint.
    HTA_DCHECK(m.mate[e.u] == GraphMatching::kUnmatched);
    HTA_DCHECK(m.mate[e.v] == GraphMatching::kUnmatched);
    AddMatchedEdge(&m, e.u, e.v, e.weight);
  }
  return m;
}

namespace {

void ExactMatchingSearch(const std::vector<WeightedEdge>& edges, size_t next,
                         std::vector<int32_t>* mate, double weight_so_far,
                         std::vector<size_t>* chosen, double* best_weight,
                         std::vector<size_t>* best_chosen) {
  if (weight_so_far > *best_weight) {
    *best_weight = weight_so_far;
    *best_chosen = *chosen;
  }
  for (size_t e = next; e < edges.size(); ++e) {
    const WeightedEdge& edge = edges[e];
    if (edge.u == edge.v) continue;
    if ((*mate)[edge.u] != GraphMatching::kUnmatched ||
        (*mate)[edge.v] != GraphMatching::kUnmatched) {
      continue;
    }
    (*mate)[edge.u] = static_cast<int32_t>(edge.v);
    (*mate)[edge.v] = static_cast<int32_t>(edge.u);
    chosen->push_back(e);
    ExactMatchingSearch(edges, e + 1, mate, weight_so_far + edge.weight,
                        chosen, best_weight, best_chosen);
    chosen->pop_back();
    (*mate)[edge.u] = GraphMatching::kUnmatched;
    (*mate)[edge.v] = GraphMatching::kUnmatched;
  }
}

}  // namespace

GraphMatching ExactMaxWeightMatchingBruteForce(
    size_t vertex_count, const std::vector<WeightedEdge>& edges) {
  HTA_CHECK_LE(vertex_count, size_t{12})
      << "brute-force matching is exponential; use it only on tiny graphs";
  std::vector<int32_t> mate(vertex_count, GraphMatching::kUnmatched);
  std::vector<size_t> chosen;
  std::vector<size_t> best_chosen;
  double best_weight = 0.0;
  ExactMatchingSearch(edges, 0, &mate, 0.0, &chosen, &best_weight,
                      &best_chosen);
  GraphMatching m = MakeEmptyMatching(vertex_count);
  for (size_t e : best_chosen) {
    AddMatchedEdge(&m, edges[e].u, edges[e].v, edges[e].weight);
  }
  return m;
}

}  // namespace hta
