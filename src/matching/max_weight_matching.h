#ifndef HTA_MATCHING_MAX_WEIGHT_MATCHING_H_
#define HTA_MATCHING_MAX_WEIGHT_MATCHING_H_

#include <vector>

#include "core/distance_oracle.h"
#include "matching/matching_types.h"

namespace hta {

/// GREEDYMATCHING (Section IV-C): repeatedly select the heaviest
/// remaining edge whose endpoints are both free. A classic
/// 1/2-approximation for maximum weight matching, O(|E| log |V|).
///
/// Ties are broken deterministically by (weight desc, u asc, v asc), so
/// results are reproducible across runs and platforms. The O(|E| log
/// |E|) sort — the phase-1 bottleneck at paper scale — runs as a
/// pool-backed stable merge sort (util/parallel.h) whose output is
/// bit-identical to the serial sort at any thread count; `max_threads`
/// caps the threads used (0 = pool size, 1 = serial).
GraphMatching GreedyMaxWeightMatching(size_t vertex_count,
                                      std::vector<WeightedEdge> edges,
                                      size_t max_threads = 0);

/// Builds the edge list of the task-diversity graph B (Eq. 5):
/// vertices are tasks, weights are pairwise diversities from the
/// oracle. Only positive-weight pairs are kept (zero-diversity pairs
/// can never contribute to a maximum-weight matching), in row-major
/// order. Row blocks are scanned in parallel into per-block shards
/// sized from the exact per-block pair counts and concatenated in
/// block order, so the returned list is bit-identical to a serial
/// row-major scan for any thread count. `max_threads` caps the threads
/// used (0 = pool size, 1 = serial). With the default kBatched backend
/// an on-the-fly oracle is swept by the fused SoA emission kernel
/// (core/packed_set.h) instead of per-pair oracle calls — same edges,
/// same order; precomputed / dense-matrix oracles always read their
/// float cache regardless of backend.
std::vector<WeightedEdge> BuildDiversityEdges(
    const TaskDistanceOracle& d, size_t max_threads = 0,
    DistanceBackend backend = DistanceBackend::kBatched);

/// Greedy matching on the task-diversity graph B: BuildDiversityEdges
/// followed by GreedyMaxWeightMatching. Unlike the paper's description
/// it does not materialize the ~n²/2 zero-weight pairs (600 MB of
/// edges at |T| = 10⁴ buys only weight-0 matches).
GraphMatching GreedyMatchingOnTaskGraph(
    const TaskDistanceOracle& oracle, size_t max_threads = 0,
    DistanceBackend backend = DistanceBackend::kBatched);

/// Path-growing algorithm of Drake & Hougardy: also a 1/2-approximation
/// but linear in |E| after adjacency construction — provided as an
/// ablation alternative to GreedyMaxWeightMatching (bench A3).
GraphMatching PathGrowingMatching(size_t vertex_count,
                                  const std::vector<WeightedEdge>& edges);

/// Exact maximum weight matching by exhaustive search. Exponential —
/// only valid for tiny graphs (vertex_count <= 12); used by property
/// tests to validate the 1/2-approximation bound of the greedy methods.
GraphMatching ExactMaxWeightMatchingBruteForce(
    size_t vertex_count, const std::vector<WeightedEdge>& edges);

}  // namespace hta

#endif  // HTA_MATCHING_MAX_WEIGHT_MATCHING_H_
