#ifndef HTA_MATCHING_MAX_WEIGHT_MATCHING_H_
#define HTA_MATCHING_MAX_WEIGHT_MATCHING_H_

#include <vector>

#include "core/distance_oracle.h"
#include "matching/matching_types.h"

namespace hta {

/// GREEDYMATCHING (Section IV-C): repeatedly select the heaviest
/// remaining edge whose endpoints are both free. A classic
/// 1/2-approximation for maximum weight matching, O(|E| log |V|).
///
/// Ties are broken deterministically by (weight desc, u asc, v asc), so
/// results are reproducible across runs and platforms.
GraphMatching GreedyMaxWeightMatching(size_t vertex_count,
                                      std::vector<WeightedEdge> edges);

/// Greedy matching on the complete task-diversity graph B (Eq. 5):
/// vertices are tasks, edge weights are pairwise diversities from the
/// oracle. Materializes the O(|T|^2) edge list, as in the paper's
/// implementation.
GraphMatching GreedyMatchingOnTaskGraph(const TaskDistanceOracle& oracle);

/// Path-growing algorithm of Drake & Hougardy: also a 1/2-approximation
/// but linear in |E| after adjacency construction — provided as an
/// ablation alternative to GreedyMaxWeightMatching (bench A3).
GraphMatching PathGrowingMatching(size_t vertex_count,
                                  const std::vector<WeightedEdge>& edges);

/// Exact maximum weight matching by exhaustive search. Exponential —
/// only valid for tiny graphs (vertex_count <= 12); used by property
/// tests to validate the 1/2-approximation bound of the greedy methods.
GraphMatching ExactMaxWeightMatchingBruteForce(
    size_t vertex_count, const std::vector<WeightedEdge>& edges);

}  // namespace hta

#endif  // HTA_MATCHING_MAX_WEIGHT_MATCHING_H_
