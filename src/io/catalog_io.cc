#include "io/catalog_io.h"

#include <cstdlib>

#include "io/csv.h"
#include "util/table.h"

namespace hta {

namespace {

std::string JoinKeywordNames(const KeywordVector& vector,
                             const KeywordSpace& space) {
  std::string out;
  bool first = true;
  for (KeywordId id : vector.ToIds()) {
    if (!first) out += ';';
    out += space.Name(id);
    first = false;
  }
  return out;
}

std::vector<std::string> SplitSemicolons(const std::string& joined) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : joined) {
    if (ch == ';') {
      if (!current.empty()) parts.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) parts.push_back(std::move(current));
  return parts;
}

Result<double> ParseDouble(const std::string& raw) {
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed number: '" + raw + "'");
  }
  return value;
}

Result<long long> ParseInt(const std::string& raw) {
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed integer: '" + raw + "'");
  }
  return value;
}

}  // namespace

Status SaveCatalogCsv(const Catalog& catalog, const std::string& path) {
  CsvFile file;
  file.header = {"id", "title", "group", "reward_usd", "questions",
                 "keywords"};
  file.rows.reserve(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    const Task& task = catalog.tasks[i];
    file.rows.push_back(
        {FmtInt(static_cast<long long>(task.id())), task.title(),
         task.group() == kNoTaskGroup
             ? ""
             : FmtInt(static_cast<long long>(task.group())),
         FmtDouble(task.reward_usd(), 4),
         FmtInt(static_cast<long long>(catalog.questions_per_task[i])),
         JoinKeywordNames(task.keywords(), catalog.space)});
  }
  return WriteCsvFile(path, file);
}

Result<Catalog> LoadCatalogCsv(const std::string& path) {
  HTA_ASSIGN_OR_RETURN(const CsvFile file, ReadCsvFile(path));
  const std::vector<std::string> expected = {"id",         "title",
                                             "group",      "reward_usd",
                                             "questions",  "keywords"};
  if (file.header != expected) {
    return Status::InvalidArgument("unexpected catalog CSV header in " +
                                   path);
  }
  Catalog catalog;
  // Two passes: intern all keywords first so universe_size is final
  // before any vector is built.
  for (const auto& row : file.rows) {
    for (const std::string& kw : SplitSemicolons(row[5])) {
      catalog.space.Intern(kw);
    }
  }
  const size_t universe = catalog.space.size();
  catalog.tasks.reserve(file.rows.size());
  catalog.questions_per_task.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    HTA_ASSIGN_OR_RETURN(const long long id, ParseInt(row[0]));
    TaskGroupId group = kNoTaskGroup;
    if (!row[2].empty()) {
      HTA_ASSIGN_OR_RETURN(const long long g, ParseInt(row[2]));
      group = static_cast<TaskGroupId>(g);
    }
    HTA_ASSIGN_OR_RETURN(const double reward, ParseDouble(row[3]));
    HTA_ASSIGN_OR_RETURN(const long long questions, ParseInt(row[4]));
    if (questions < 1) {
      return Status::InvalidArgument("task " + row[0] +
                                     " must have >= 1 question");
    }
    KeywordVector keywords(universe);
    for (const std::string& kw : SplitSemicolons(row[5])) {
      keywords.Set(catalog.space.Find(kw).value());
    }
    catalog.tasks.emplace_back(static_cast<uint64_t>(id), std::move(keywords),
                               row[1], group, reward);
    catalog.questions_per_task.push_back(static_cast<uint16_t>(questions));
  }
  return catalog;
}

Result<Deployment> LoadDeployment(const std::string& tasks_path,
                                  const std::string& workers_path) {
  HTA_ASSIGN_OR_RETURN(const CsvFile worker_file, ReadCsvFile(workers_path));
  const std::vector<std::string> expected = {"id", "alpha", "beta",
                                             "interests"};
  if (worker_file.header != expected) {
    return Status::InvalidArgument("unexpected worker CSV header in " +
                                   workers_path);
  }
  Deployment deployment;
  {
    // The catalog loader interns task keywords; extend the space with
    // worker-only keywords BEFORE task vectors are built so every
    // vector shares one universe. Easiest correct order: pre-scan the
    // worker file, then load the catalog with those keywords already
    // interned is not possible through LoadCatalogCsv (it builds a
    // fresh space), so instead rebuild task vectors after widening.
    HTA_ASSIGN_OR_RETURN(Catalog narrow, LoadCatalogCsv(tasks_path));
    for (const auto& row : worker_file.rows) {
      for (const std::string& kw : SplitSemicolons(row[3])) {
        narrow.space.Intern(kw);
      }
    }
    const size_t task_universe =
        narrow.tasks.empty() ? 0
                             : narrow.tasks.front().keywords().universe_size();
    if (narrow.space.size() == task_universe) {
      // No new keywords: vectors are already in the right universe.
      deployment.catalog = std::move(narrow);
    } else {
      // Rebuild task vectors in the widened universe.
      Catalog widened;
      widened.space = std::move(narrow.space);
      widened.questions_per_task = std::move(narrow.questions_per_task);
      const size_t universe = widened.space.size();
      widened.tasks.reserve(narrow.tasks.size());
      for (const Task& task : narrow.tasks) {
        KeywordVector keywords(universe, task.keywords().ToIds());
        widened.tasks.emplace_back(task.id(), std::move(keywords),
                                   task.title(), task.group(),
                                   task.reward_usd());
      }
      deployment.catalog = std::move(widened);
    }
  }
  HTA_ASSIGN_OR_RETURN(
      deployment.workers,
      LoadWorkersCsv(workers_path, deployment.catalog.space));
  return deployment;
}

Status SaveWorkersCsv(const std::vector<Worker>& workers,
                      const KeywordSpace& space, const std::string& path) {
  CsvFile file;
  file.header = {"id", "alpha", "beta", "interests"};
  file.rows.reserve(workers.size());
  for (const Worker& worker : workers) {
    if (worker.interests().universe_size() != space.size()) {
      return Status::InvalidArgument(
          "worker " + std::to_string(worker.id()) +
          " uses a different keyword universe than the catalog");
    }
    file.rows.push_back({FmtInt(static_cast<long long>(worker.id())),
                         FmtDouble(worker.weights().alpha, 6),
                         FmtDouble(worker.weights().beta, 6),
                         JoinKeywordNames(worker.interests(), space)});
  }
  return WriteCsvFile(path, file);
}

Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path,
                                           const KeywordSpace& space) {
  HTA_ASSIGN_OR_RETURN(const CsvFile file, ReadCsvFile(path));
  const std::vector<std::string> expected = {"id", "alpha", "beta",
                                             "interests"};
  if (file.header != expected) {
    return Status::InvalidArgument("unexpected worker CSV header in " + path);
  }
  std::vector<Worker> workers;
  workers.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    HTA_ASSIGN_OR_RETURN(const long long id, ParseInt(row[0]));
    HTA_ASSIGN_OR_RETURN(const double alpha, ParseDouble(row[1]));
    HTA_ASSIGN_OR_RETURN(const double beta, ParseDouble(row[2]));
    KeywordVector interests(space.size());
    for (const std::string& kw : SplitSemicolons(row[3])) {
      HTA_ASSIGN_OR_RETURN(const KeywordId kid, space.Find(kw));
      interests.Set(kid);
    }
    workers.emplace_back(static_cast<uint64_t>(id), std::move(interests),
                         MotivationWeights{alpha, beta});
  }
  return workers;
}

Status SaveEventLogCsv(const EventLog& log, const std::string& path) {
  CsvFile file;
  file.header = {"minute", "worker_id", "kind", "task_ids"};
  file.rows.reserve(log.size());
  for (const LoggedEvent& event : log.events()) {
    std::string ids;
    for (size_t i = 0; i < event.task_ids.size(); ++i) {
      if (i > 0) ids += ';';
      ids += FmtInt(static_cast<long long>(event.task_ids[i]));
    }
    std::string kind;
    switch (event.kind) {
      case LoggedEvent::Kind::kDisplayed:
        kind = "displayed";
        break;
      case LoggedEvent::Kind::kCompleted:
        kind = "completed";
        break;
      case LoggedEvent::Kind::kRegistered:
        kind = "registered";
        break;
      case LoggedEvent::Kind::kDeregistered:
        kind = "deregistered";
        break;
    }
    file.rows.push_back(
        {FmtDouble(event.minute, 6),
         FmtInt(static_cast<long long>(event.worker_id)), std::move(kind),
         ids});
  }
  return WriteCsvFile(path, file);
}

Result<EventLog> LoadEventLogCsv(const std::string& path) {
  HTA_ASSIGN_OR_RETURN(const CsvFile file, ReadCsvFile(path));
  const std::vector<std::string> expected = {"minute", "worker_id", "kind",
                                             "task_ids"};
  if (file.header != expected) {
    return Status::InvalidArgument("unexpected event log CSV header in " +
                                   path);
  }
  EventLog log;
  for (const auto& row : file.rows) {
    HTA_ASSIGN_OR_RETURN(const double minute, ParseDouble(row[0]));
    HTA_ASSIGN_OR_RETURN(const long long worker, ParseInt(row[1]));
    std::vector<uint64_t> ids;
    for (const std::string& raw : SplitSemicolons(row[3])) {
      HTA_ASSIGN_OR_RETURN(const long long id, ParseInt(raw));
      ids.push_back(static_cast<uint64_t>(id));
    }
    if (row[2] == "displayed") {
      log.RecordDisplayed(minute, static_cast<uint64_t>(worker),
                          std::move(ids));
    } else if (row[2] == "completed") {
      if (ids.size() != 1) {
        return Status::InvalidArgument(
            "completed event must reference exactly one task");
      }
      log.RecordCompleted(minute, static_cast<uint64_t>(worker), ids[0]);
    } else if (row[2] == "registered") {
      log.RecordRegistered(minute, static_cast<uint64_t>(worker));
    } else if (row[2] == "deregistered") {
      log.RecordDeregistered(minute, static_cast<uint64_t>(worker));
    } else {
      return Status::InvalidArgument("unknown event kind '" + row[2] + "'");
    }
  }
  return log;
}

Status SaveAssignmentCsv(const Assignment& assignment,
                         const std::vector<Worker>& workers,
                         const std::vector<Task>& tasks,
                         const std::string& path) {
  if (assignment.bundles.size() != workers.size()) {
    return Status::InvalidArgument(
        "assignment bundle count does not match worker count");
  }
  CsvFile file;
  file.header = {"worker_id", "task_id"};
  for (size_t q = 0; q < assignment.bundles.size(); ++q) {
    for (TaskIndex t : assignment.bundles[q]) {
      if (static_cast<size_t>(t) >= tasks.size()) {
        return Status::OutOfRange("assignment references invalid task index");
      }
      file.rows.push_back(
          {FmtInt(static_cast<long long>(workers[q].id())),
           FmtInt(static_cast<long long>(tasks[t].id()))});
    }
  }
  return WriteCsvFile(path, file);
}

}  // namespace hta
