#ifndef HTA_IO_CATALOG_IO_H_
#define HTA_IO_CATALOG_IO_H_

#include <string>
#include <vector>

#include "assign/assignment.h"
#include "engine/event_log.h"
#include "core/worker.h"
#include "sim/catalog.h"
#include "util/result.h"

namespace hta {

/// CSV persistence for catalogs, workers and assignments, so that
/// deployments can be driven from files (e.g. a real AMT crawl exported
/// to the same schema) instead of the synthetic generator.
///
/// Catalog schema:  id,title,group,reward_usd,questions,keywords
///   `keywords` is a ';'-joined list of keyword names.
/// Worker schema:   id,alpha,beta,interests
///   `interests` is a ';'-joined list of keyword names.
///
/// Loading interns keywords in first-appearance order; saving writes
/// keyword names from the catalog's space, so save→load round-trips
/// tasks and workers exactly (up to keyword-id renumbering).

/// Saves the catalog. Fails on I/O errors.
Status SaveCatalogCsv(const Catalog& catalog, const std::string& path);

/// Loads a catalog. Keywords are interned into a fresh space. Fails on
/// I/O errors, unknown header layout, or malformed numeric fields.
Result<Catalog> LoadCatalogCsv(const std::string& path);

/// Saves workers against the catalog's keyword space (interest ids are
/// rendered as keyword names). Workers whose interests fall outside the
/// space cannot be represented and fail the save.
Status SaveWorkersCsv(const std::vector<Worker>& workers,
                      const KeywordSpace& space, const std::string& path);

/// Loads workers, resolving interest keywords against `space` (which is
/// typically the loaded catalog's). Unknown keywords fail with
/// NotFound.
Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path,
                                           const KeywordSpace& space);

/// A catalog and worker population loaded against one shared keyword
/// space. Workers may express interests in keywords no task carries
/// (the paper's workers pick keywords freely), so the space is the
/// union of both files' keywords; loading the two files separately
/// would reject such workers.
struct Deployment {
  Catalog catalog;
  std::vector<Worker> workers;
};

/// Loads a catalog and workers together, interning the union of their
/// keywords (catalog file first, then worker file).
Result<Deployment> LoadDeployment(const std::string& tasks_path,
                                  const std::string& workers_path);

/// Event-log persistence. Schema: minute,worker_id,kind,task_ids with
/// kind in {displayed, completed} and task_ids ';'-joined.
Status SaveEventLogCsv(const EventLog& log, const std::string& path);
Result<EventLog> LoadEventLogCsv(const std::string& path);

/// Exports an assignment as rows of (worker_id, task_id) pairs, one
/// per assigned task, bundle order preserved.
Status SaveAssignmentCsv(const Assignment& assignment,
                         const std::vector<Worker>& workers,
                         const std::vector<Task>& tasks,
                         const std::string& path);

}  // namespace hta

#endif  // HTA_IO_CATALOG_IO_H_
