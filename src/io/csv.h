#ifndef HTA_IO_CSV_H_
#define HTA_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace hta {

/// Minimal RFC-4180-style CSV support used by the catalog/worker
/// persistence layer and the experiment exporters: quoted fields,
/// doubled quotes, embedded commas. Newlines inside quoted fields are
/// not supported (no field in libhta's formats needs them).

/// Parses one CSV record into fields. Fails on unterminated quotes or
/// stray characters after a closing quote.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Renders fields as one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads an entire CSV file: first record is the header. Skips blank
/// lines. Fails with NotFound if the file cannot be opened, or
/// InvalidArgument if any row has a different arity than the header.
struct CsvFile {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};
Result<CsvFile> ReadCsvFile(const std::string& path);

/// Writes a CSV file (header + rows). Fails if the file cannot be
/// created.
Status WriteCsvFile(const std::string& path, const CsvFile& content);

}  // namespace hta

#endif  // HTA_IO_CSV_H_
