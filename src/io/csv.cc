#include "io/csv.h"

#include <fstream>
#include <sstream>

namespace hta {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  const size_t n = line.size();
  bool field_was_quoted = false;

  while (i < n) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < n && line[i + 1] == '"') {
          current += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        current += ch;
        ++i;
      }
      continue;
    }
    if (ch == '"') {
      if (!current.empty() || field_was_quoted) {
        return Status::InvalidArgument(
            "unexpected quote inside unquoted field: " + std::string(line));
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
    } else if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
      field_was_quoted = false;
      ++i;
    } else {
      if (field_was_quoted) {
        return Status::InvalidArgument(
            "characters after closing quote: " + std::string(line));
      }
      current += ch;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote: " + std::string(line));
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t f = 0; f < fields.size(); ++f) {
    if (f > 0) out += ',';
    const std::string& field = fields[f];
    if (field.find_first_of(",\"\n") == std::string::npos) {
      out += field;
      continue;
    }
    out += '"';
    for (char ch : field) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
  }
  return out;
}

Result<CsvFile> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  CsvFile file;
  std::string line;
  bool have_header = false;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    HTA_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    if (!have_header) {
      file.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != file.header.size()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(file.header.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    file.rows.push_back(std::move(fields));
  }
  if (!have_header) {
    return Status::InvalidArgument("CSV file has no header: " + path);
  }
  return file;
}

Status WriteCsvFile(const std::string& path, const CsvFile& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot create CSV file: " + path);
  }
  out << FormatCsvLine(content.header) << '\n';
  for (const auto& row : content.rows) {
    out << FormatCsvLine(row) << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing CSV file: " + path);
  }
  return Status::OK();
}

}  // namespace hta
