#ifndef HTA_QAP_QAP_VIEW_H_
#define HTA_QAP_QAP_VIEW_H_

#include <cstdint>
#include <vector>

#include "qap/hta_problem.h"

namespace hta {

/// The MAXQAP view of an HTA instance (Section IV-A).
///
/// The paper maps HTA to the maximum quadratic assignment problem over
/// three n x n matrices:
///   A (Eq. 4) — adjacency of |W| disjoint Xmax-cliques (one per worker,
///               edges labeled alpha_w) plus isolated vertices;
///   B (Eq. 5) — pairwise task diversities d(t_k, t_l);
///   C (Eq. 6) — relevance profits beta_w * rel(w, t_k) * (Xmax - 1) on
///               worker-owned columns. (The guard printed in Eq. 6 is a
///               typo; per Example 1 / Fig. 1 the nonzero columns are
///               l < |W| * Xmax, which is what this class implements.)
///
/// This class exposes A, B, C *implicitly* — O(1) storage and O(1)
/// entry access — which is what lets HTA-APP/HTA-GRE run at |T| = 10^4
/// without materializing 10^8-entry matrices. DenseQapMatrices (below)
/// materializes them for tests and the worked example.
///
/// Padding: the mapping needs n >= |W| * Xmax vertices. When there are
/// fewer tasks than clique slots, virtual padding tasks (indices in
/// [task_count, n)) are added with zero diversity to everything and
/// zero relevance; they never contribute profit and are dropped when a
/// permutation is converted back to bundles. With padding present the
/// QAP objective uses the (Xmax - 1) relevance normalizer of Eq. 6 even
/// though bundles may end up smaller than Xmax, so the Eq. 8 identity
/// with Eq. 3 motivation holds exactly only for unpadded instances —
/// see qap_objective.h.
class QapView {
 public:
  explicit QapView(const HtaProblem* problem);

  /// Matrix dimension n = max(|T|, |W| * Xmax).
  size_t n() const { return n_; }

  /// Number of real (non-padding) tasks.
  size_t task_count() const { return problem_->task_count(); }

  /// True iff index k refers to a virtual padding task.
  bool IsPaddingTask(size_t k) const { return k >= problem_->task_count(); }

  /// The worker owning vertex/column l in matrix A, or -1 for isolated
  /// vertices. Worker q owns the Xmax consecutive vertices
  /// [q * Xmax, (q+1) * Xmax).
  int32_t WorkerOfVertex(size_t l) const {
    const size_t q = l / problem_->xmax();
    return q < problem_->worker_count() ? static_cast<int32_t>(q) : -1;
  }

  /// a_{k,l} (Eq. 4). Diagonal entries are 0 (cliques have no loops).
  double A(size_t k, size_t l) const {
    if (k == l) return 0.0;
    const int32_t q = WorkerOfVertex(l);
    if (q < 0 || WorkerOfVertex(k) != q) return 0.0;
    return problem_->workers()[static_cast<size_t>(q)].weights().alpha;
  }

  /// b_{k,l} (Eq. 5): pairwise task diversity; 0 on/beyond padding.
  double B(size_t k, size_t l) const {
    if (k == l) return 0.0;
    if (IsPaddingTask(k) || IsPaddingTask(l)) return 0.0;
    return problem_->oracle()(static_cast<TaskIndex>(k),
                              static_cast<TaskIndex>(l));
  }

  /// c_{k,l} (Eq. 6, with the guard fixed as described above).
  double C(size_t k, size_t l) const {
    if (IsPaddingTask(k)) return 0.0;
    const int32_t q = WorkerOfVertex(l);
    if (q < 0) return 0.0;
    const Worker& w = problem_->workers()[static_cast<size_t>(q)];
    return w.weights().beta *
           problem_->Relevance(static_cast<TaskIndex>(k),
                               static_cast<WorkerIndex>(q)) *
           (static_cast<double>(problem_->xmax()) - 1.0);
  }

  /// Row/column degree sum of A: degA_l = sum_k a_{k,l}
  /// = alpha_w * (Xmax - 1) on worker vertices, 0 on isolated ones
  /// (Algorithm 1, Line 4).
  double DegA(size_t l) const {
    const int32_t q = WorkerOfVertex(l);
    if (q < 0) return 0.0;
    return problem_->workers()[static_cast<size_t>(q)].weights().alpha *
           (static_cast<double>(problem_->xmax()) - 1.0);
  }

  /// The columns that can carry non-zero profit — the worker-clique
  /// columns [0, |W| * Xmax). Used by the greedy LSAP fast path.
  std::vector<size_t> WorkerColumns() const;

  /// The MAXQAP objective of a permutation pi (task k -> vertex pi(k)):
  ///   sum_{k != l} a_{pi(k),pi(l)} b_{k,l} + sum_k c_{k,pi(k)}
  /// Computed per worker clique in O(|W| * Xmax^2 + n). The linear
  /// term and the per-clique quadratic terms are evaluated as blocked
  /// parallel reductions on the global pool (`max_threads` caps the
  /// threads used; 0 = pool size, 1 = serial); block partials combine
  /// in fixed block order, so the value is bit-identical for any
  /// thread count.
  double Objective(const std::vector<int32_t>& perm,
                   size_t max_threads = 0) const;

  const HtaProblem& problem() const { return *problem_; }

 private:
  const HtaProblem* problem_;
  size_t n_;
};

/// Dense materialization of A, B, C for small instances (tests, worked
/// example E8). Row-major n x n.
struct DenseQapMatrices {
  size_t n = 0;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;

  /// Materializes A, B, C from the implicit view, row-parallel on the
  /// global pool (rows write disjoint slices; bit-identical for any
  /// thread count). With the default kBatched backend the B rows of
  /// keyword-derived instances come from the one-vs-many SoA kernel
  /// (core/packed_set.h); precomputed / dense-matrix oracles keep the
  /// per-entry view reads.
  static DenseQapMatrices FromView(
      const QapView& view, size_t max_threads = 0,
      DistanceBackend backend = DistanceBackend::kBatched);

  /// Objective of a permutation evaluated from the dense matrices;
  /// cross-checked against QapView::Objective in tests.
  double Objective(const std::vector<int32_t>& perm) const;
};

}  // namespace hta

#endif  // HTA_QAP_QAP_VIEW_H_
