#include "qap/hta_problem.h"

#include <cmath>
#include <string>

#include "core/packed_set.h"
#include "util/parallel.h"

namespace hta {

void HtaProblem::FillRelevanceTable(std::vector<double>* rel,
                                    size_t max_threads,
                                    DistanceBackend backend) const {
  const size_t num_tasks = task_count();
  const size_t num_workers = worker_count();
  if (!relevance_override_.empty()) {
    *rel = relevance_override_;
    return;
  }
  rel->resize(num_tasks * num_workers);
  if (backend == DistanceBackend::kBatched) {
    // PackedRows gathers from the shared catalog matrix in subset mode
    // (no re-packing) and packs the local vector otherwise; rows are
    // bitwise identical either way.
    const PackedSetMatrix packed_tasks = oracle_.PackedRows();
    const PackedSetMatrix packed_workers =
        PackedSetMatrix::FromWorkers(*workers_);
    RectangularRelevance(packed_tasks, packed_workers, oracle_.kind(),
                         rel->data(), max_threads);
    return;
  }
  double* out = rel->data();
  ParallelFor(
      0, num_tasks, /*grain=*/16,
      [&](size_t t_begin, size_t t_end) {
        for (size_t t = t_begin; t < t_end; ++t) {
          for (size_t q = 0; q < num_workers; ++q) {
            out[t * num_workers + q] =
                TaskRelevance(oracle_.kind(),
                              oracle_.task(static_cast<TaskIndex>(t)),
                              (*workers_)[q]);
          }
        }
      },
      max_threads);
}

Status HtaProblem::ValidateWorkers(const std::vector<Worker>* workers,
                                   size_t xmax) {
  HTA_CHECK(workers != nullptr);
  if (xmax == 0) {
    return Status::InvalidArgument("xmax must be >= 1");
  }
  if (workers->empty()) {
    return Status::InvalidArgument("HTA needs at least one worker");
  }
  for (const Worker& w : *workers) {
    const auto& mw = w.weights();
    if (mw.alpha < 0.0 || mw.beta < 0.0 || mw.alpha + mw.beta <= 0.0) {
      return Status::InvalidArgument(
          "worker weights must be non-negative with a positive sum");
    }
  }
  return Status::OK();
}

Status HtaProblem::ValidateShape(const std::vector<Task>* tasks,
                                 const std::vector<Worker>* workers,
                                 size_t xmax) {
  HTA_CHECK(tasks != nullptr);
  if (tasks->empty()) {
    return Status::InvalidArgument("HTA needs at least one task");
  }
  return ValidateWorkers(workers, xmax);
}

namespace {

Status CheckMetric(DistanceKind kind, bool allow_non_metric) {
  if (!IsMetric(kind) && !allow_non_metric) {
    return Status::FailedPrecondition(
        "distance kind '" + DistanceKindName(kind) +
        "' is not a metric; HTA approximation guarantees require the "
        "triangle inequality (pass allow_non_metric to override)");
  }
  return Status::OK();
}

}  // namespace

Result<HtaProblem> HtaProblem::Create(const std::vector<Task>* tasks,
                                      const std::vector<Worker>* workers,
                                      size_t xmax, DistanceKind kind,
                                      bool allow_non_metric) {
  HTA_RETURN_IF_ERROR(ValidateShape(tasks, workers, xmax));
  HTA_RETURN_IF_ERROR(CheckMetric(kind, allow_non_metric));
  return HtaProblem(workers, xmax, TaskDistanceOracle(tasks, kind));
}

Result<HtaProblem> HtaProblem::CreateFromSubset(
    const CatalogSubsetView* view, const std::vector<Worker>* workers,
    size_t xmax, bool allow_non_metric,
    std::vector<double> relevance_override) {
  HTA_CHECK(view != nullptr);
  if (view->size() == 0) {
    return Status::InvalidArgument("HTA needs at least one task");
  }
  HTA_RETURN_IF_ERROR(ValidateWorkers(workers, xmax));
  HTA_RETURN_IF_ERROR(CheckMetric(view->kind(), allow_non_metric));
  if (!relevance_override.empty() &&
      relevance_override.size() != view->size() * workers->size()) {
    return Status::InvalidArgument(
        "relevance override must be |T| x |W| = " +
        std::to_string(view->size() * workers->size()) + " entries, got " +
        std::to_string(relevance_override.size()));
  }
  HtaProblem problem(workers, xmax, TaskDistanceOracle::FromSharedCache(view));
  problem.relevance_override_ = std::move(relevance_override);
  return problem;
}

HtaProblem HtaProblem::WithWorkers(const std::vector<Worker>* workers) const {
  HTA_CHECK(workers != nullptr);
  HTA_CHECK_EQ(workers->size(), workers_->size());
  HtaProblem copy(workers, xmax_, oracle_);
  copy.relevance_override_ = relevance_override_;
  return copy;
}

Result<HtaProblem> HtaProblem::CreateWithMatrices(
    const std::vector<Task>* tasks, const std::vector<Worker>* workers,
    size_t xmax, const std::vector<double>& distances,
    const std::vector<double>& relevance) {
  HTA_RETURN_IF_ERROR(ValidateShape(tasks, workers, xmax));
  if (relevance.size() != tasks->size() * workers->size()) {
    return Status::InvalidArgument(
        "relevance matrix must be |T| x |W| = " +
        std::to_string(tasks->size() * workers->size()) + " entries, got " +
        std::to_string(relevance.size()));
  }
  for (double r : relevance) {
    if (r < 0.0 || r > 1.0) {
      return Status::InvalidArgument("relevance entries must be in [0, 1]");
    }
  }
  HTA_ASSIGN_OR_RETURN(
      TaskDistanceOracle oracle,
      TaskDistanceOracle::FromDenseMatrix(tasks, DistanceKind::kJaccard,
                                          distances));
  HtaProblem problem(workers, xmax, std::move(oracle));
  problem.relevance_override_ = relevance;
  return problem;
}

}  // namespace hta
