#include "qap/qap_view.h"

#include <algorithm>

#include "core/packed_set.h"
#include "util/parallel.h"

namespace hta {

namespace {

/// Block grains for the Objective reductions. Fixed constants (never
/// derived from the thread count) so the blocked floating-point sums
/// are reproducible across HTA_THREADS settings; small instances fit
/// in one block and keep the exact serial summation order.
constexpr size_t kLinearGrain = 512;   // Tasks per linear-term block.
constexpr size_t kCliqueGrain = 8;     // Worker cliques per block.

}  // namespace

QapView::QapView(const HtaProblem* problem) : problem_(problem) {
  HTA_CHECK(problem != nullptr);
  n_ = std::max(problem->task_count(),
                problem->worker_count() * problem->xmax());
}

std::vector<size_t> QapView::WorkerColumns() const {
  const size_t count =
      std::min(n_, problem_->worker_count() * problem_->xmax());
  std::vector<size_t> cols(count);
  for (size_t l = 0; l < count; ++l) cols[l] = l;
  return cols;
}

double QapView::Objective(const std::vector<int32_t>& perm,
                          size_t max_threads) const {
  HTA_CHECK_EQ(perm.size(), n_);
  // Group tasks by the worker clique their vertex lands in (serial
  // O(n); the push_back order k-ascending is what the quadratic pass
  // below sums over).
  std::vector<std::vector<size_t>> tasks_of_worker(problem_->worker_count());
  for (size_t k = 0; k < n_; ++k) {
    const size_t vertex = static_cast<size_t>(perm[k]);
    HTA_CHECK_LT(vertex, n_);
    if (IsPaddingTask(k)) continue;
    const int32_t q = WorkerOfVertex(vertex);
    if (q >= 0) tasks_of_worker[static_cast<size_t>(q)].push_back(k);
  }
  const size_t tasks = problem_->task_count() < n_ ? problem_->task_count()
                                                   : n_;
  const double linear = ParallelReduce(
      0, tasks, kLinearGrain, 0.0,
      [&](size_t k_begin, size_t k_end) {
        double sum = 0.0;
        for (size_t k = k_begin; k < k_end; ++k) {
          sum += C(k, static_cast<size_t>(perm[k]));
        }
        return sum;
      },
      [](double acc, double partial) { return acc + partial; }, max_threads);
  const double quadratic = ParallelReduce(
      0, tasks_of_worker.size(), kCliqueGrain, 0.0,
      [&](size_t q_begin, size_t q_end) {
        double sum = 0.0;
        for (size_t q = q_begin; q < q_end; ++q) {
          const double alpha = problem_->workers()[q].weights().alpha;
          const auto& members = tasks_of_worker[q];
          double clique_diversity = 0.0;
          for (size_t x = 0; x < members.size(); ++x) {
            for (size_t y = x + 1; y < members.size(); ++y) {
              clique_diversity += B(members[x], members[y]);
            }
          }
          // Each unordered pair is counted twice in sum_{k != l}.
          sum += 2.0 * alpha * clique_diversity;
        }
        return sum;
      },
      [](double acc, double partial) { return acc + partial; }, max_threads);
  return quadratic + linear;
}

DenseQapMatrices DenseQapMatrices::FromView(const QapView& view,
                                            size_t max_threads,
                                            DistanceBackend backend) {
  DenseQapMatrices m;
  m.n = view.n();
  m.a.resize(m.n * m.n);
  m.b.resize(m.n * m.n);
  m.c.resize(m.n * m.n);
  // Batched B rows only when distances come from keyword vectors; a
  // precomputed (or dense-matrix) oracle answers from its float cache,
  // which the kernel must not bypass.
  const bool batched = backend == DistanceBackend::kBatched &&
                       !view.problem().oracle().is_precomputed();
  // PackedRows works in both local-vector and shared-subset modes
  // (gathered rows are bitwise identical to re-packed ones).
  const PackedSetMatrix packed = batched
                                     ? view.problem().oracle().PackedRows()
                                     : PackedSetMatrix();
  const size_t tasks = view.task_count();
  ParallelFor(
      0, m.n, /*grain=*/8,
      [&](size_t k) {
        for (size_t l = 0; l < m.n; ++l) {
          m.a[k * m.n + l] = view.A(k, l);
          m.c[k * m.n + l] = view.C(k, l);
        }
        if (batched) {
          // Row k of B via the one-vs-many kernel: identical doubles
          // (same popcounts, same arithmetic), diagonal set to 0 by the
          // kernel, padding columns/rows stay at the resize() zeros —
          // exactly view.B. Serial inside the row-parallel loop.
          if (k < tasks) {
            OneVsManyDistances(packed, k, view.problem().distance_kind(),
                               &m.b[k * m.n], /*max_threads=*/1);
          }
          return;
        }
        for (size_t l = 0; l < m.n; ++l) {
          m.b[k * m.n + l] = view.B(k, l);
        }
      },
      max_threads);
  return m;
}

double DenseQapMatrices::Objective(const std::vector<int32_t>& perm) const {
  HTA_CHECK_EQ(perm.size(), n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const size_t pk = static_cast<size_t>(perm[k]);
    total += c[k * n + pk];
    for (size_t l = 0; l < n; ++l) {
      if (k == l) continue;
      const size_t pl = static_cast<size_t>(perm[l]);
      total += a[pk * n + pl] * b[k * n + l];
    }
  }
  return total;
}

}  // namespace hta
