#include "qap/qap_view.h"

#include <algorithm>

namespace hta {

QapView::QapView(const HtaProblem* problem) : problem_(problem) {
  HTA_CHECK(problem != nullptr);
  n_ = std::max(problem->task_count(),
                problem->worker_count() * problem->xmax());
}

std::vector<size_t> QapView::WorkerColumns() const {
  const size_t count =
      std::min(n_, problem_->worker_count() * problem_->xmax());
  std::vector<size_t> cols(count);
  for (size_t l = 0; l < count; ++l) cols[l] = l;
  return cols;
}

double QapView::Objective(const std::vector<int32_t>& perm) const {
  HTA_CHECK_EQ(perm.size(), n_);
  // Group tasks by the worker clique their vertex lands in.
  std::vector<std::vector<size_t>> tasks_of_worker(problem_->worker_count());
  double linear = 0.0;
  for (size_t k = 0; k < n_; ++k) {
    const size_t vertex = static_cast<size_t>(perm[k]);
    HTA_CHECK_LT(vertex, n_);
    if (IsPaddingTask(k)) continue;
    linear += C(k, vertex);
    const int32_t q = WorkerOfVertex(vertex);
    if (q >= 0) tasks_of_worker[static_cast<size_t>(q)].push_back(k);
  }
  double quadratic = 0.0;
  for (size_t q = 0; q < tasks_of_worker.size(); ++q) {
    const double alpha = problem_->workers()[q].weights().alpha;
    const auto& members = tasks_of_worker[q];
    double clique_diversity = 0.0;
    for (size_t x = 0; x < members.size(); ++x) {
      for (size_t y = x + 1; y < members.size(); ++y) {
        clique_diversity += B(members[x], members[y]);
      }
    }
    // Each unordered pair is counted twice in sum_{k != l}.
    quadratic += 2.0 * alpha * clique_diversity;
  }
  return quadratic + linear;
}

DenseQapMatrices DenseQapMatrices::FromView(const QapView& view) {
  DenseQapMatrices m;
  m.n = view.n();
  m.a.resize(m.n * m.n);
  m.b.resize(m.n * m.n);
  m.c.resize(m.n * m.n);
  for (size_t k = 0; k < m.n; ++k) {
    for (size_t l = 0; l < m.n; ++l) {
      m.a[k * m.n + l] = view.A(k, l);
      m.b[k * m.n + l] = view.B(k, l);
      m.c[k * m.n + l] = view.C(k, l);
    }
  }
  return m;
}

double DenseQapMatrices::Objective(const std::vector<int32_t>& perm) const {
  HTA_CHECK_EQ(perm.size(), n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const size_t pk = static_cast<size_t>(perm[k]);
    total += c[k * n + pk];
    for (size_t l = 0; l < n; ++l) {
      if (k == l) continue;
      const size_t pl = static_cast<size_t>(perm[l]);
      total += a[pk * n + pl] * b[k * n + l];
    }
  }
  return total;
}

}  // namespace hta
