#ifndef HTA_QAP_HTA_PROBLEM_H_
#define HTA_QAP_HTA_PROBLEM_H_

#include <cstddef>
#include <vector>

#include "core/distance_oracle.h"
#include "core/task.h"
#include "core/worker.h"
#include "util/result.h"

namespace hta {

/// One iteration's instance of the Holistic Task Assignment problem
/// (Problem 1): available tasks T^i, available workers W^i with their
/// current (alpha, beta) estimates, the per-worker bundle cap Xmax
/// (constraint C1), and the distance metric.
///
/// Weights: Eq. 3 states alpha + beta = 1, yet the paper's own worked
/// example (Example 1) uses (alpha, beta) = (0.6, 0.3). The objective
/// is well-defined for any non-negative weights, so Create only
/// requires alpha, beta >= 0 with a positive sum; the adaptive
/// estimator always produces normalized pairs.
///
/// The problem does not own tasks or workers; both must outlive it.
class HtaProblem {
 public:
  /// Builds a problem computing distances/relevance from keyword
  /// vectors. Fails with InvalidArgument if xmax == 0, the task list or
  /// worker list is empty, or weights are invalid; fails with
  /// FailedPrecondition if the distance kind is not a metric (the
  /// approximation guarantees require the triangle inequality; pass
  /// allow_non_metric to experiment anyway).
  static Result<HtaProblem> Create(const std::vector<Task>* tasks,
                                   const std::vector<Worker>* workers,
                                   size_t xmax,
                                   DistanceKind kind = DistanceKind::kJaccard,
                                   bool allow_non_metric = false);

  /// Builds a problem from explicit matrices instead of keyword-derived
  /// values: `distances` is dense row-major |T| x |T| (must be a metric
  /// for the guarantees to hold — not checked beyond symmetry and zero
  /// diagonal), `relevance` is row-major |T| x |W| with entries in
  /// [0, 1]. Reproduces setups like the paper's Table I exactly.
  static Result<HtaProblem> CreateWithMatrices(
      const std::vector<Task>* tasks, const std::vector<Worker>* workers,
      size_t xmax, const std::vector<double>& distances,
      const std::vector<double>& relevance);

  /// Builds a problem over a zero-copy catalog subset view (the warm
  /// path of the online engine): no Task copies, distances and
  /// relevance resolve through the view's shared CatalogCache. O(1) in
  /// the subset size. The view (and its cache/catalog) must outlive the
  /// problem. The metric is the view's kind. Validation matches
  /// Create's.
  ///
  /// A non-empty `relevance_override` (row-major |T| x |W|, matching
  /// FillRelevanceTable's layout) pre-supplies every rel(t, q) — the
  /// engine's SessionRelevanceCache gathers it from persistent
  /// per-session rows so no iteration re-runs the rectangular sweep.
  /// Values must be what the sweep would produce (the session rows are
  /// built by the same kernels, so this holds bit-exactly); only the
  /// size is validated.
  static Result<HtaProblem> CreateFromSubset(
      const CatalogSubsetView* view, const std::vector<Worker>* workers,
      size_t xmax, bool allow_non_metric = false,
      std::vector<double> relevance_override = {});

  /// A copy of this problem with the worker list replaced (same tasks,
  /// same oracle — including a shared subset view or dense-matrix
  /// override — same xmax). `workers` must outlive the copy and have
  /// the original worker count; the fixed-weight baseline strategies
  /// use this to re-solve under overridden weights without rebuilding
  /// the task side.
  HtaProblem WithWorkers(const std::vector<Worker>* workers) const;

  /// The materialized task vector; only valid when has_local_tasks().
  /// Subset-view problems expose tasks via task(i) instead.
  const std::vector<Task>& tasks() const { return oracle_.tasks(); }
  const std::vector<Worker>& workers() const { return *workers_; }

  /// The task behind index `t`, in every mode.
  const Task& task(TaskIndex t) const { return oracle_.task(t); }

  /// False when the problem was built from a CatalogSubsetView (no
  /// local task vector; batched kernels gather rows via the oracle).
  bool has_local_tasks() const { return oracle_.has_local_tasks(); }

  size_t task_count() const { return oracle_.task_count(); }
  size_t worker_count() const { return workers_->size(); }
  size_t xmax() const { return xmax_; }
  DistanceKind distance_kind() const { return oracle_.kind(); }

  /// Pairwise-diversity oracle over the problem's tasks (matrix B).
  const TaskDistanceOracle& oracle() const { return oracle_; }

  /// Fills `rel` (resized to task_count() * worker_count(), row-major
  /// rel[t * |W| + q]) with Relevance(t, q) for every pair — the dense
  /// table behind the tabulated LSAP profits and the local-search
  /// bundle cache. With an override matrix the table is a copy;
  /// otherwise the kBatched backend (default) runs the rectangular SoA
  /// relevance kernel and kScalar the per-pair TaskRelevance loop —
  /// bit-identical results either way, parallelized over task-row
  /// blocks (`max_threads` caps threads, 0 = pool size).
  void FillRelevanceTable(
      std::vector<double>* rel, size_t max_threads = 0,
      DistanceBackend backend = DistanceBackend::kBatched) const;

  /// rel(t_k, w_q): the override matrix when present, otherwise derived
  /// from keyword vectors under the problem's metric.
  double Relevance(TaskIndex task, WorkerIndex worker) const {
    if (!relevance_override_.empty()) {
      return relevance_override_[static_cast<size_t>(task) * worker_count() +
                                 worker];
    }
    return TaskRelevance(oracle_.kind(), oracle_.task(task),
                         (*workers_)[worker]);
  }

 private:
  HtaProblem(const std::vector<Worker>* workers, size_t xmax,
             TaskDistanceOracle oracle)
      : workers_(workers), xmax_(xmax), oracle_(std::move(oracle)) {}

  static Status ValidateShape(const std::vector<Task>* tasks,
                              const std::vector<Worker>* workers, size_t xmax);
  static Status ValidateWorkers(const std::vector<Worker>* workers,
                                size_t xmax);

  const std::vector<Worker>* workers_;
  size_t xmax_;
  TaskDistanceOracle oracle_;
  std::vector<double> relevance_override_;  // Empty unless matrices given.
};

}  // namespace hta

#endif  // HTA_QAP_HTA_PROBLEM_H_
