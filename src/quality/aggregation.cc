#include "quality/aggregation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/check.h"

namespace hta {

namespace {

Status ValidateAnswers(const std::vector<AnswerRecord>& answers,
                       uint32_t num_options) {
  if (answers.empty()) {
    return Status::InvalidArgument("no answers to aggregate");
  }
  if (num_options < 2) {
    return Status::InvalidArgument("questions need at least two options");
  }
  for (const AnswerRecord& a : answers) {
    if (a.answer >= num_options) {
      return Status::OutOfRange(
          "answer " + std::to_string(a.answer) + " out of range for " +
          std::to_string(num_options) + " options");
    }
  }
  return Status::OK();
}

/// Groups answer indices by question id, preserving first-seen order.
std::vector<std::pair<uint64_t, std::vector<size_t>>> GroupByQuestion(
    const std::vector<AnswerRecord>& answers) {
  std::vector<std::pair<uint64_t, std::vector<size_t>>> groups;
  std::unordered_map<uint64_t, size_t> index;
  for (size_t i = 0; i < answers.size(); ++i) {
    auto [it, inserted] = index.emplace(answers[i].question_id, groups.size());
    if (inserted) {
      groups.emplace_back(answers[i].question_id, std::vector<size_t>{});
    }
    groups[it->second].second.push_back(i);
  }
  return groups;
}

/// Picks the arg-max option of `scores` with smallest-index tie-break;
/// returns (option, share of total score).
std::pair<uint32_t, double> ArgMaxShare(const std::vector<double>& scores) {
  uint32_t best = 0;
  for (uint32_t k = 1; k < scores.size(); ++k) {
    if (scores[k] > scores[best]) best = k;
  }
  double total = 0.0;
  for (double s : scores) total += s;
  const double share = total > 0.0 ? scores[best] / total : 0.0;
  return {best, share};
}

}  // namespace

Result<std::vector<AggregatedAnswer>> MajorityVote(
    const std::vector<AnswerRecord>& answers, uint32_t num_options) {
  HTA_RETURN_IF_ERROR(ValidateAnswers(answers, num_options));
  std::vector<AggregatedAnswer> out;
  for (const auto& [question, indices] : GroupByQuestion(answers)) {
    std::vector<double> counts(num_options, 0.0);
    for (size_t i : indices) counts[answers[i].answer] += 1.0;
    const auto [winner, share] = ArgMaxShare(counts);
    out.push_back(AggregatedAnswer{question, winner, share});
  }
  return out;
}

Result<std::vector<AggregatedAnswer>> WeightedVote(
    const std::vector<AnswerRecord>& answers, uint32_t num_options,
    const std::unordered_map<uint64_t, double>& reliability,
    double default_reliability) {
  HTA_RETURN_IF_ERROR(ValidateAnswers(answers, num_options));
  if (default_reliability <= 0.0 || default_reliability >= 1.0) {
    return Status::InvalidArgument("default_reliability must be in (0, 1)");
  }
  auto weight_of = [&](uint64_t worker) {
    auto it = reliability.find(worker);
    double p = it != reliability.end() ? it->second : default_reliability;
    p = std::clamp(p, 0.05, 0.99);
    const double wrong = (1.0 - p) / (static_cast<double>(num_options) - 1.0);
    // Log-odds of a correct ballot vs one specific wrong option.
    return std::log(p / std::max(wrong, 1e-9));
  };
  std::vector<AggregatedAnswer> out;
  for (const auto& [question, indices] : GroupByQuestion(answers)) {
    std::vector<double> scores(num_options, 0.0);
    for (size_t i : indices) {
      scores[answers[i].answer] += weight_of(answers[i].worker_id);
    }
    // Scores can be negative for adversarial workers; shift to keep the
    // share interpretable.
    const double min_score = *std::min_element(scores.begin(), scores.end());
    if (min_score < 0.0) {
      for (double& s : scores) s -= min_score;
    }
    const auto [winner, share] = ArgMaxShare(scores);
    out.push_back(AggregatedAnswer{question, winner, share});
  }
  return out;
}

Result<EmEstimate> EstimateDawidSkene(const std::vector<AnswerRecord>& answers,
                                      uint32_t num_options,
                                      const EmOptions& options) {
  HTA_RETURN_IF_ERROR(ValidateAnswers(answers, num_options));
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("EM needs at least one iteration");
  }

  const auto groups = GroupByQuestion(answers);
  // Posterior over options per question, initialized from majority.
  std::unordered_map<uint64_t, std::vector<double>> posterior;
  for (const auto& [question, indices] : groups) {
    std::vector<double> counts(num_options, options.smoothing);
    for (size_t i : indices) counts[answers[i].answer] += 1.0;
    double total = 0.0;
    for (double c : counts) total += c;
    for (double& c : counts) c /= total;
    posterior.emplace(question, std::move(counts));
  }

  EmEstimate estimate;
  // Initialize reliabilities at a mildly-better-than-chance prior.
  for (const AnswerRecord& a : answers) {
    estimate.worker_reliability.emplace(a.worker_id, 0.7);
  }

  const double chance = 1.0 / static_cast<double>(num_options);
  for (estimate.iterations = 1;
       estimate.iterations <= options.max_iterations; ++estimate.iterations) {
    // M-step: reliability = expected fraction of matches with the
    // posterior mode mass.
    std::unordered_map<uint64_t, double> match(estimate.worker_reliability.size());
    std::unordered_map<uint64_t, double> total(estimate.worker_reliability.size());
    for (const AnswerRecord& a : answers) {
      match[a.worker_id] += posterior.at(a.question_id)[a.answer];
      total[a.worker_id] += 1.0;
    }
    double max_change = 0.0;
    for (auto& [worker, p] : estimate.worker_reliability) {
      const double updated =
          (match[worker] + options.smoothing * 0.7) /
          (total[worker] + options.smoothing);
      max_change = std::max(max_change, std::abs(updated - p));
      p = std::clamp(updated, 0.05, 0.99);
    }

    // E-step: recompute posteriors from reliabilities.
    for (const auto& [question, indices] : groups) {
      std::vector<double> log_scores(num_options, 0.0);
      for (size_t i : indices) {
        const double p = estimate.worker_reliability.at(answers[i].worker_id);
        const double wrong =
            (1.0 - p) / (static_cast<double>(num_options) - 1.0);
        for (uint32_t k = 0; k < num_options; ++k) {
          log_scores[k] +=
              std::log(std::max(k == answers[i].answer ? p : wrong, 1e-12));
        }
      }
      const double max_log =
          *std::max_element(log_scores.begin(), log_scores.end());
      double norm = 0.0;
      std::vector<double>& post = posterior.at(question);
      for (uint32_t k = 0; k < num_options; ++k) {
        post[k] = std::exp(log_scores[k] - max_log);
        norm += post[k];
      }
      for (double& v : post) v /= norm;
    }

    if (max_change < options.tolerance) {
      estimate.converged = true;
      break;
    }
  }
  (void)chance;

  estimate.answers.reserve(groups.size());
  for (const auto& [question, indices] : groups) {
    const auto [winner, share] = ArgMaxShare(posterior.at(question));
    estimate.answers.push_back(AggregatedAnswer{question, winner, share});
  }
  return estimate;
}

Result<double> AggregationAccuracy(
    const std::vector<AggregatedAnswer>& aggregated,
    const std::unordered_map<uint64_t, uint32_t>& ground_truth) {
  size_t scored = 0;
  size_t correct = 0;
  for (const AggregatedAnswer& a : aggregated) {
    auto it = ground_truth.find(a.question_id);
    if (it == ground_truth.end()) continue;
    ++scored;
    if (a.answer == it->second) ++correct;
  }
  if (scored == 0) {
    return Status::InvalidArgument(
        "no aggregated question has ground truth");
  }
  return static_cast<double>(correct) / static_cast<double>(scored);
}

}  // namespace hta
