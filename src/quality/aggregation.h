#ifndef HTA_QUALITY_AGGREGATION_H_
#define HTA_QUALITY_AGGREGATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace hta {

/// Answer aggregation for redundantly-completed questions — the quality
/// measurement substrate of a crowdsourcing platform. The paper scores
/// individual contributions against CrowdFlower ground truth; a
/// production deployment additionally assigns each question to several
/// workers and aggregates, which is what this module provides:
///  * plain majority vote,
///  * reliability-weighted vote (log-odds weights),
///  * one-coin Dawid-Skene EM that estimates per-worker reliability
///    without ground truth.
///
/// Questions are categorical with `num_options` choices; answers are
/// option indices.

/// One worker's answer to one question.
struct AnswerRecord {
  uint64_t question_id = 0;
  uint64_t worker_id = 0;
  uint32_t answer = 0;  ///< Option index in [0, num_options).
};

/// Aggregated decision for a question.
struct AggregatedAnswer {
  uint64_t question_id = 0;
  uint32_t answer = 0;
  double confidence = 0.0;  ///< Posterior/weight share of the winner.
};

/// Result of an EM run.
struct EmEstimate {
  /// Per-worker probability of answering correctly (the one-coin
  /// model's reliability).
  std::unordered_map<uint64_t, double> worker_reliability;
  std::vector<AggregatedAnswer> answers;
  size_t iterations = 0;
  bool converged = false;
};

/// Majority vote per question; ties broken toward the smallest option
/// index (deterministic). Fails if `answers` is empty or any answer is
/// out of range.
Result<std::vector<AggregatedAnswer>> MajorityVote(
    const std::vector<AnswerRecord>& answers, uint32_t num_options);

/// Weighted vote: each worker's ballot counts log(p(1-e)/(e(1-p)))
/// with p their supplied reliability and e = (1-p)/(num_options-1)
/// spread over wrong options; workers missing from `reliability` count
/// with weight from `default_reliability`. Weights are clamped so that
/// adversarial (p < chance) workers vote against their own answer at
/// most mildly.
Result<std::vector<AggregatedAnswer>> WeightedVote(
    const std::vector<AnswerRecord>& answers, uint32_t num_options,
    const std::unordered_map<uint64_t, double>& reliability,
    double default_reliability = 0.7);

/// One-coin Dawid-Skene EM: alternates between estimating posterior
/// answer distributions per question and per-worker reliabilities,
/// starting from majority vote. Options:
struct EmOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-6;      ///< Max reliability change for convergence.
  double smoothing = 1.0;       ///< Laplace smoothing pseudo-counts.
};

Result<EmEstimate> EstimateDawidSkene(const std::vector<AnswerRecord>& answers,
                                      uint32_t num_options,
                                      const EmOptions& options = EmOptions{});

/// Fraction of aggregated answers matching a ground-truth map (question
/// id -> correct option). Questions absent from the map are skipped;
/// fails if none overlap.
Result<double> AggregationAccuracy(
    const std::vector<AggregatedAnswer>& aggregated,
    const std::unordered_map<uint64_t, uint32_t>& ground_truth);

}  // namespace hta

#endif  // HTA_QUALITY_AGGREGATION_H_
