#ifndef HTA_UTIL_PARALLEL_H_
#define HTA_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hta {

/// Deterministic data-parallel primitives over a lazily-initialized
/// global thread pool.
///
/// Pool size comes from the HTA_THREADS environment variable, read once
/// at first use: unset, 0, or negative means std::hardware_concurrency;
/// HTA_THREADS=1 forces fully serial execution (no worker threads are
/// ever started).
///
/// Determinism contract: work is split into fixed blocks whose
/// boundaries depend only on (begin, end, grain) — never on the thread
/// count — and ParallelReduce combines per-block partials in ascending
/// block order on the calling thread. A ParallelFor body that writes
/// only to disjoint, index-derived locations, and a ParallelReduce with
/// a pure map, therefore produce bit-identical results for every
/// HTA_THREADS setting (including 1) and every `max_threads` cap.

namespace parallel_internal {

struct BlockRange {
  size_t begin;
  size_t end;
};

/// Number of blocks in the fixed partition of [begin, end) into runs of
/// `grain` consecutive indices (the last block may be short). grain == 0
/// is treated as 1.
inline size_t BlockCount(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

/// The half-open index range of block `block` in that partition.
inline BlockRange BlockAt(size_t begin, size_t end, size_t grain,
                          size_t block) {
  if (grain == 0) grain = 1;
  const size_t b = begin + block * grain;
  const size_t remaining = end - b;
  return BlockRange{b, remaining > grain ? b + grain : end};
}

}  // namespace parallel_internal

/// A fixed-size pool of worker threads executing one blocked job at a
/// time. Construct directly for tests; production code goes through
/// Global() + ParallelFor/ParallelReduce.
class ThreadPool {
 public:
  /// A pool with `threads` total execution slots (the calling thread
  /// counts as one, so `threads - 1` workers are started; threads <= 1
  /// starts none and every Run executes inline).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with a size from
  /// HTA_THREADS (see GetHtaThreads in util/env.h).
  static ThreadPool& Global();

  /// Threads that can run blocks concurrently (workers + caller).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `block_fn(b)` for every b in [0, num_blocks), claiming blocks
  /// from a shared counter; the calling thread participates. At most
  /// `max_threads` threads take part (0 = all). The first exception
  /// thrown by any block is rethrown on the calling thread after the
  /// job drains (remaining unstarted blocks are skipped). Calls from
  /// inside a running block execute serially inline, so nesting cannot
  /// deadlock.
  void Run(size_t num_blocks, const std::function<void(size_t)>& block_fn,
           size_t max_threads = 0);

 private:
  struct Job;

  void WorkerLoop();
  static void ProcessBlocks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a job.
  std::condition_variable done_cv_;  // The caller waits here for drain.
  std::mutex run_mu_;                // Serializes concurrent Run calls.
  Job* job_ = nullptr;               // Guarded by mu_.
  uint64_t job_seq_ = 0;             // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.
};

/// Applies `fn` to every index in [begin, end), split into blocks of
/// `grain` indices executed across the global pool. `fn` is invoked
/// either per index (`fn(i)`) or per block (`fn(block_begin,
/// block_end)`), whichever it accepts; the block form amortizes
/// dispatch for tight loops. `max_threads` caps the threads used by
/// this call (0 = pool size, 1 = serial inline).
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t grain, Fn&& fn,
                 size_t max_threads = 0) {
  const size_t num_blocks = parallel_internal::BlockCount(begin, end, grain);
  if (num_blocks == 0) return;
  ThreadPool::Global().Run(
      num_blocks,
      [&](size_t block) {
        const parallel_internal::BlockRange r =
            parallel_internal::BlockAt(begin, end, grain, block);
        if constexpr (std::is_invocable_v<Fn&, size_t, size_t>) {
          fn(r.begin, r.end);
        } else {
          for (size_t i = r.begin; i < r.end; ++i) fn(i);
        }
      },
      max_threads);
}

/// Blocked reduction over [begin, end): `map(block_begin, block_end)`
/// produces one partial per fixed block (computed in parallel), and the
/// partials are folded as reduce(acc, partial) in ascending block order
/// starting from `init` on the calling thread. Because the partition
/// depends only on (begin, end, grain), the result — including
/// floating-point rounding — is identical for every thread count.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init, MapFn&& map,
                 ReduceFn&& reduce, size_t max_threads = 0) {
  const size_t num_blocks = parallel_internal::BlockCount(begin, end, grain);
  if (num_blocks == 0) return init;
  std::vector<T> partials(num_blocks);
  ThreadPool::Global().Run(
      num_blocks,
      [&](size_t block) {
        const parallel_internal::BlockRange r =
            parallel_internal::BlockAt(begin, end, grain, block);
        partials[block] = map(r.begin, r.end);
      },
      max_threads);
  T acc = std::move(init);
  for (size_t block = 0; block < num_blocks; ++block) {
    acc = reduce(std::move(acc), std::move(partials[block]));
  }
  return acc;
}

/// Elements per leaf block of ParallelStableSort. Fixed — never derived
/// from the thread count — so the sort/merge tree, and therefore the
/// output sequence, is identical for every HTA_THREADS setting.
inline constexpr size_t kParallelSortGrain = size_t{1} << 15;

/// Stable sort of `v` under `cmp`, parallelized on the global pool:
/// fixed leaf blocks of kParallelSortGrain elements are stable-sorted
/// concurrently, then merged pairwise in bottom-up rounds (each round's
/// disjoint merges run in parallel). The merge tree depends only on
/// v->size(), and std::merge is deterministic and stable, so the result
/// is bit-identical to a serial std::stable_sort for any thread count.
/// `max_threads` caps the threads used (0 = pool size, 1 = serial).
template <typename T, typename Compare>
void ParallelStableSort(std::vector<T>* v, Compare cmp,
                        size_t max_threads = 0) {
  const size_t n = v->size();
  const size_t num_blocks =
      parallel_internal::BlockCount(0, n, kParallelSortGrain);
  if (num_blocks <= 1) {
    std::stable_sort(v->begin(), v->end(), cmp);
    return;
  }
  ParallelFor(
      0, num_blocks, /*grain=*/1,
      [&](size_t block) {
        const parallel_internal::BlockRange r =
            parallel_internal::BlockAt(0, n, kParallelSortGrain, block);
        std::stable_sort(v->begin() + static_cast<ptrdiff_t>(r.begin),
                         v->begin() + static_cast<ptrdiff_t>(r.end), cmp);
      },
      max_threads);
  std::vector<T> buffer(n);
  std::vector<T>* src = v;
  std::vector<T>* dst = &buffer;
  for (size_t width = kParallelSortGrain; width < n; width *= 2) {
    const size_t num_merges = (n + 2 * width - 1) / (2 * width);
    ParallelFor(
        0, num_merges, /*grain=*/1,
        [&](size_t m) {
          const size_t lo = m * 2 * width;
          const size_t mid = std::min(lo + width, n);
          const size_t hi = std::min(lo + 2 * width, n);
          std::merge(src->begin() + static_cast<ptrdiff_t>(lo),
                     src->begin() + static_cast<ptrdiff_t>(mid),
                     src->begin() + static_cast<ptrdiff_t>(mid),
                     src->begin() + static_cast<ptrdiff_t>(hi),
                     dst->begin() + static_cast<ptrdiff_t>(lo), cmp);
        },
        max_threads);
    std::swap(src, dst);
  }
  if (src != v) *v = std::move(*src);
}

}  // namespace hta

#endif  // HTA_UTIL_PARALLEL_H_
