#ifndef HTA_UTIL_TRACE_H_
#define HTA_UTIL_TRACE_H_

#include <cstdint>
#include <string>

#include "util/metrics.h"

namespace hta::trace {

/// Phase tracing: RAII spans collected into per-thread buffers and
/// flushed as Chrome trace-event-format JSON (load the file in
/// chrome://tracing or Perfetto). Gated on the HTA_TRACE environment
/// variable naming the output path; when unset, constructing a
/// PhaseSpan is one relaxed flag load and a branch.
///
/// Spans record wall time, so two runs never produce byte-identical
/// trace files — but the *number* of spans per name is as deterministic
/// as the instrumented code, which the observability test suite pins
/// across thread counts.

/// Whether spans are being recorded. First call latches HTA_TRACE;
/// OverridePathForTesting replaces the latched path.
bool Enabled();

/// The output path spans will be flushed to ("" = disabled).
std::string OutputPath();

/// Replaces the trace output path ("" disables). Drops any buffered
/// spans. Test/tool hook; callers must be quiescent.
void OverridePathForTesting(const std::string& path);

/// Writes every buffered span to OutputPath() as one complete JSON
/// document ({"traceEvents": [...]}) and clears the buffers. Called
/// automatically at process exit when tracing was enabled at startup;
/// call explicitly after OverridePathForTesting. No-op when disabled.
/// Not safe concurrently with span destruction on other threads.
void Flush();

/// Spans recorded since the last Flush (all threads; exact when
/// quiescent).
uint64_t BufferedSpanCount();

namespace internal {
void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us);
uint64_t NowMicros();
}  // namespace internal

/// RAII phase span. Emits a trace event over its lifetime when tracing
/// is enabled, and (optionally) observes its duration in seconds into
/// `histogram` when metrics are enabled. Near-zero cost when both
/// layers are off: two relaxed flag loads at construction, one branch
/// at destruction.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name,
                     metrics::Histogram* histogram = nullptr)
      : name_(name), histogram_(histogram) {
    tracing_ = Enabled();
    timing_ = tracing_ || (histogram_ != nullptr && metrics::Enabled());
    if (timing_) start_us_ = internal::NowMicros();
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() {
    if (!timing_) return;
    const uint64_t end_us = internal::NowMicros();
    if (tracing_) internal::RecordSpan(name_, start_us_, end_us);
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(end_us - start_us_) * 1e-6);
    }
  }

 private:
  const char* name_;
  metrics::Histogram* histogram_;
  uint64_t start_us_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
};

}  // namespace hta::trace

#endif  // HTA_UTIL_TRACE_H_
