#ifndef HTA_UTIL_JSON_H_
#define HTA_UTIL_JSON_H_

#include <string>

namespace hta {

/// Minimal JSON emission helpers shared by the bench JSON-lines writer
/// and the metrics snapshot exporter. Emission only — this repo never
/// parses JSON, it hands records to external tooling, so every fragment
/// produced here must be strictly valid (RFC 8259): no bare NaN/Inf
/// tokens, no raw control characters inside strings.

/// Renders a double as a JSON number with round-trip precision (%.17g).
/// NaN and ±Inf have no JSON representation; they render as `null` so a
/// record with one bad value stays machine-readable instead of
/// poisoning the whole line.
std::string JsonNumber(double value);

/// Renders `s` as a quoted JSON string: `"` and `\` are backslash-
/// escaped, control characters become their two-character escapes
/// (\n \r \t \b \f) or \u00XX, and everything else passes through
/// byte-for-byte (UTF-8 payloads stay intact).
std::string JsonQuote(const std::string& s);

}  // namespace hta

#endif  // HTA_UTIL_JSON_H_
