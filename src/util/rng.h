#ifndef HTA_UTIL_RNG_H_
#define HTA_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hta {

/// SplitMix64: tiny, fast 64-bit generator used to seed Xoshiro256**.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG. Deterministic across
/// platforms (unlike std::mt19937 distributions), which keeps every
/// experiment in this repository reproducible from its seed.
///
/// Satisfies UniformRandomBitGenerator, so it can drive <random>
/// distributions if ever needed; the convenience members below are the
/// preferred, portable way to draw values.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Any 64-bit value (including 0) is valid; the
  /// internal state is expanded with SplitMix64 per Vigna's guidance.
  explicit Rng(uint64_t seed = 0xda3e39cb94b95bdbULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    HTA_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// bounded generation.
  uint64_t NextBounded(uint64_t n) {
    HTA_DCHECK(n > 0);
    // Rejection sampling on the top bits via 128-bit multiply.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HTA_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Marsaglia polar method (deterministic given
  /// the stream).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Exponential draw with the given rate (mean 1/rate).
  double NextExponential(double rate) {
    HTA_DCHECK(rate > 0.0);
    double u;
    do {
      u = NextDouble();
    } while (u == 0.0);
    return -std::log(u) / rate;
  }

  /// Gumbel(0, 1) draw; used for logit (softmax) choice models.
  double NextGumbel() {
    double u;
    do {
      u = NextDouble();
    } while (u == 0.0);
    return -std::log(-std::log(u));
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (order not specified).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; `stream` distinguishes
  /// siblings. Used to give each simulated worker its own stream so
  /// that adding workers does not perturb existing ones.
  Rng Fork(uint64_t stream) const;

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hta

#endif  // HTA_UTIL_RNG_H_
