#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.h"
#include "util/env.h"
#include "util/json.h"

namespace hta::trace {

namespace {

struct SpanEvent {
  const char* name;  // Static-storage string literal at every call site.
  uint64_t start_us;
  uint64_t dur_us;
  uint32_t tid;
};

/// Per-thread span buffer. Only its owning thread appends; Flush reads
/// under the registry lock after callers quiesce (the thread-pool
/// join/handshake orders worker appends before a subsequent Flush).
struct ThreadBuffer {
  uint32_t tid = 0;
  std::vector<SpanEvent> events;
};

struct TraceState {
  std::mutex mu;
  std::string path;                 // "" = disabled.
  std::atomic<bool> enabled{false}; // Mirrors !path.empty().
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

TraceState& GetState() {
  static TraceState* state = [] {
    auto* s = new TraceState();  // Leaked: outlives exit handlers.
    s->path = GetEnvOr("HTA_TRACE", "");
    s->enabled.store(!s->path.empty(), std::memory_order_relaxed);
    if (!s->path.empty()) std::atexit(Flush);
    return s;
  }();
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceState& state = GetState();
    std::lock_guard<std::mutex> lock(state.mu);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = state.next_tid++;
    ThreadBuffer* raw = owned.get();
    state.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

}  // namespace

bool Enabled() {
  return GetState().enabled.load(std::memory_order_relaxed);
}

std::string OutputPath() {
  TraceState& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.path;
}

void OverridePathForTesting(const std::string& path) {
  TraceState& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.path = path;
  state.enabled.store(!path.empty(), std::memory_order_relaxed);
  for (auto& buffer : state.buffers) buffer->events.clear();
}

uint64_t BufferedSpanCount() {
  TraceState& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) total += buffer->events.size();
  return total;
}

void Flush() {
  TraceState& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.path.empty()) return;
  std::ofstream out(state.path, std::ios::trunc);
  if (!out.good()) {
    // Exit-time flush must not abort the process over an unwritable
    // path; drop the buffers and move on.
    for (auto& buffer : state.buffers) buffer->events.clear();
    return;
  }
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (auto& buffer : state.buffers) {
    for (const SpanEvent& e : buffer->events) {
      if (!first) out << ",";
      first = false;
      out << "\n{\"name\": " << JsonQuote(e.name)
          << ", \"cat\": \"hta\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
          << e.tid << ", \"ts\": " << e.start_us << ", \"dur\": " << e.dur_us
          << "}";
    }
    buffer->events.clear();
  }
  out << "\n]}\n";
}

namespace internal {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - GetState().origin)
          .count());
}

void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us) {
  ThreadBuffer& buffer = LocalBuffer();
  buffer.events.push_back(
      SpanEvent{name, start_us, end_us - start_us, buffer.tid});
}

}  // namespace internal

}  // namespace hta::trace
