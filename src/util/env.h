#ifndef HTA_UTIL_ENV_H_
#define HTA_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace hta {

/// Benchmark scale presets, selected via the HTA_BENCH_SCALE environment
/// variable. The paper's offline experiments run at sizes (|T| up to
/// 10,000 with a cubic-time Hungarian phase) that take minutes per point
/// on commodity hardware; `kDefault` shrinks the sweeps while preserving
/// the asymptotic shape, `kPaper` reproduces the paper's exact
/// parameters, `kSmoke` is a seconds-long CI setting.
enum class BenchScale {
  kSmoke,
  kDefault,
  kPaper,
};

/// Reads HTA_BENCH_SCALE ("smoke", "default", "paper"; case-insensitive).
/// Unset or unrecognized values map to kDefault.
BenchScale GetBenchScale();

/// Human-readable name of a scale ("smoke"/"default"/"paper").
std::string BenchScaleName(BenchScale scale);

/// Reads an environment variable, or `fallback` if unset/empty.
std::string GetEnvOr(const std::string& name, const std::string& fallback);

/// Reads an integer environment variable, or `fallback` if unset,
/// unparsable, or outside the int64_t range (strtoll's saturated
/// LLONG_MIN/LLONG_MAX results are rejected via errno == ERANGE).
int64_t GetEnvIntOr(const std::string& name, int64_t fallback);

/// Reads HTA_THREADS, the requested size of the global compute thread
/// pool (see util/parallel.h). Returns 0 ("auto": use the hardware
/// concurrency) when the variable is unset, unparsable, or
/// non-positive; otherwise the value clamped to kMaxHtaThreads.
/// HTA_THREADS=1 forces fully serial execution.
int GetHtaThreads();

/// Upper bound on an explicit HTA_THREADS request.
inline constexpr int kMaxHtaThreads = 256;

}  // namespace hta

#endif  // HTA_UTIL_ENV_H_
