#ifndef HTA_UTIL_STATS_H_
#define HTA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace hta {

/// Descriptive summary of a sample.
struct SampleSummary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes the summary of `values`. Empty input yields an all-zero
/// summary with n == 0.
SampleSummary Summarize(const std::vector<double>& values);

/// Percentile in [0, 100] via linear interpolation between order
/// statistics. Requires a non-empty sample.
Result<double> Percentile(std::vector<double> values, double pct);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Outcome of a two-sided hypothesis test.
struct TestResult {
  double statistic = 0.0;  ///< Z or U statistic depending on the test.
  double p_value = 1.0;    ///< Two-sided p-value.
};

/// Two-proportion Z-test (pooled), as used in the paper (Section V-C) to
/// compare per-strategy fractions of correct answers.
///
/// `successes_a / trials_a` vs `successes_b / trials_b`. Requires
/// positive trial counts.
Result<TestResult> TwoProportionZTest(size_t successes_a, size_t trials_a,
                                      size_t successes_b, size_t trials_b);

/// Mann-Whitney U test with normal approximation and tie correction, as
/// used in the paper to compare per-session task counts and session
/// durations. Requires both samples non-empty.
Result<TestResult> MannWhitneyUTest(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// Percentile-bootstrap confidence interval for the mean.
struct BootstrapInterval {
  double lower = 0.0;
  double upper = 0.0;
};

/// `level` is the coverage (e.g. 0.95). Requires a non-empty sample and
/// level in (0, 1).
Result<BootstrapInterval> BootstrapMeanCi(const std::vector<double>& values,
                                          double level, int resamples,
                                          Rng* rng);

/// Online accumulator for streaming mean/variance (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace hta

#endif  // HTA_UTIL_STATS_H_
