#ifndef HTA_UTIL_METRICS_H_
#define HTA_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hta::metrics {

/// Process-wide metrics registry for the assignment engine.
///
/// Design constraints, in order:
///
///  1. *Near-zero cost when off.* Instrumentation is compiled in
///     unconditionally but gated on HTA_METRICS=1; a disabled Add() is
///     one relaxed load of a process-global flag and a predictable
///     branch. The engine's bit-identity contracts (warm/cold, batched/
///     scalar, any HTA_THREADS) must hold with metrics on or off —
///     instrumentation never feeds back into algorithm state.
///
///  2. *Deterministic totals.* Counters and gauges are integers, so
///     their totals are exact regardless of how increments interleave
///     across threads: HTA_THREADS never changes a reported count.
///     Histogram observation counts share that property; observed
///     *values* (latencies) vary run to run like any wall-clock
///     measurement, so bucket assignment and sums are reported but
///     excluded from DeterministicDigest().
///
///  3. *Scalable hot-path increments.* Each counter owns a small fixed
///     array of cache-line-padded stripes; a thread increments the
///     stripe picked by its (stable, registration-order) thread index
///     with a relaxed atomic add. Uncontended increments stay on a
///     core-local line, totals are the exact sum over stripes, and the
///     scheme is ASan/TSan-clean under concurrent writes from the
///     compute pool.
///
/// Metric handles are cheap id wrappers; define them as namespace-scope
/// or function-local statics next to the code they instrument.
/// Registration is keyed by name, so re-registering a name returns the
/// existing metric (tests that reconstruct services keep one series).

/// Whether the registry records anything. First call latches the
/// HTA_METRICS environment variable (=1 enables); OverrideEnabled
/// replaces the latched value (tests, the snapshot exporter tool).
bool Enabled();
void OverrideEnabled(bool enabled);

/// Stripes per counter. A power of two; threads beyond the stripe
/// count share stripes (totals stay exact, contention just rises).
inline constexpr size_t kCounterStripes = 16;

/// Stable per-thread stripe index in [0, kCounterStripes).
size_t ThreadStripe();

namespace internal {

struct alignas(64) Stripe {
  std::atomic<uint64_t> value{0};
};

enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

/// Registry-owned metric state; opaque outside metrics.cc. Metrics are
/// appended and never moved or destroyed, so the pointer a handle
/// captures at registration stays valid for the process lifetime and
/// hot-path updates never touch the registry lock.
struct Metric;

/// Registers (or looks up) the metric `name` of `kind`.
/// `bounds` applies to histograms only.
Metric* Register(const char* name, Kind kind,
                 const std::vector<double>* bounds);

void CounterAdd(Metric* metric, uint64_t n);
void GaugeSet(Metric* metric, int64_t v);
void HistogramObserve(Metric* metric, double v);
double HistogramQuantileOf(const Metric* metric, double q);

}  // namespace internal

/// Estimates the q-quantile (q in [0, 1], clamped) of a bucketed
/// histogram by linear interpolation within the bucket owning the
/// target rank. `bounds` are the inclusive upper bounds, and
/// `bucket_counts` has bounds.size() + 1 entries (last = overflow).
/// The first bucket interpolates from 0; an overflow-bucket hit
/// returns the largest finite bound (the estimate saturates there).
/// Returns 0 when the histogram is empty. This is the single home of
/// the bucket→quantile math shared by Histogram, MetricValue, the
/// throughput bench, and the snapshot exporter.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& bucket_counts, double q);

/// Monotonic event counter.
class Counter {
 public:
  explicit Counter(const char* name)
      : metric_(internal::Register(name, internal::Kind::kCounter, nullptr)) {}

  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    internal::CounterAdd(metric_, n);
  }

 private:
  internal::Metric* metric_;
};

/// Instantaneous level (pool occupancy, queue depth, ...). Set records
/// the current value and folds it into a running maximum; both are
/// reported. Writers are expected to be serialized per gauge (the
/// engine driver loop); concurrent Sets are safe but last-write-wins.
class Gauge {
 public:
  explicit Gauge(const char* name)
      : metric_(internal::Register(name, internal::Kind::kGauge, nullptr)) {}

  void Set(int64_t v) {
    if (!Enabled()) return;
    internal::GaugeSet(metric_, v);
  }

 private:
  internal::Metric* metric_;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in
/// ascending order; one overflow bucket is appended implicitly.
/// Observation counts are deterministic; which bucket a wall-clock
/// observation lands in is not.
class Histogram {
 public:
  Histogram(const char* name, std::vector<double> bounds);

  void Observe(double v) {
    if (!Enabled()) return;
    internal::HistogramObserve(metric_, v);
  }

  /// Quantile estimate over the observations recorded so far (see
  /// HistogramQuantile). Reads the live buckets with relaxed loads —
  /// exact when writers are quiescent, a consistent-enough estimate
  /// otherwise.
  double ValueAtQuantile(double q) const {
    return internal::HistogramQuantileOf(metric_, q);
  }

 private:
  internal::Metric* metric_;
};

/// The default latency bucket ladder (seconds): powers of ten with
/// 1-2-5 subdivisions from 1µs to 100s.
const std::vector<double>& LatencyBucketsSeconds();

/// One metric's merged state at snapshot time.
struct MetricValue {
  std::string name;
  internal::Kind kind = internal::Kind::kCounter;
  /// Counter total, or histogram observation count.
  uint64_t count = 0;
  /// Gauge: last set value and running maximum.
  int64_t value = 0;
  int64_t max = 0;
  /// Histogram: sum of observed values and per-bucket counts
  /// (bounds.size() + 1 entries, last = overflow).
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;

  /// Histogram-only: quantile estimate from the snapshotted buckets
  /// (see HistogramQuantile). Returns 0 for non-histogram kinds.
  double ValueAtQuantile(double q) const;
};

/// Merged view of every registered metric, sorted by name. Exact when
/// writers are quiescent; concurrent writers may or may not be
/// included (each stripe is read once with a relaxed load).
std::vector<MetricValue> Snapshot();

/// The snapshot as one JSON object keyed by metric name: counters as
/// integers, gauges as {"value","max"}, histograms as
/// {"count","sum","bounds","buckets"}. Valid JSON (util/json.h), keys
/// sorted. "{}" when nothing was recorded.
std::string SnapshotJson();

/// The deterministic slice of the snapshot, one metric per line:
/// counter/histogram counts and gauge value/max — everything that must
/// be bit-identical across HTA_THREADS. Timing-dependent fields
/// (histogram sums and bucket assignment) are omitted.
std::string DeterministicDigest();

/// Zeroes every registered metric (counts, gauges, histograms). The
/// registrations themselves persist. Test-only: callers must be
/// quiescent.
void ResetForTesting();

}  // namespace hta::metrics

#endif  // HTA_UTIL_METRICS_H_
