#ifndef HTA_UTIL_STATUS_H_
#define HTA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hta {

/// Canonical error codes for recoverable failures, modeled after the
/// error spaces used by production database codebases (Arrow, RocksDB).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a stable, human-readable name for a status code
/// (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds the outcome of an operation that can fail in a
/// recoverable way: either OK, or an error code plus a message.
///
/// `libhta` does not throw exceptions across API boundaries; fallible
/// public entry points return `Status` (or `Result<T>`, see result.h).
/// Programming errors — broken invariants, out-of-contract calls — use
/// `HTA_CHECK` instead and abort.
///
/// The class is cheap to copy in the OK case (empty message) and cheap
/// to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace hta

/// Evaluates `expr` (a Status expression); if it is not OK, returns it
/// from the enclosing function. Use in functions returning Status.
#define HTA_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::hta::Status _hta_status = (expr);           \
    if (!_hta_status.ok()) return _hta_status;    \
  } while (false)

#endif  // HTA_UTIL_STATUS_H_
