#ifndef HTA_UTIL_TABLE_H_
#define HTA_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace hta {

/// Column-aligned plain-text table writer used by every benchmark
/// harness to print paper figure/table series in a uniform format.
///
///   TableWriter t({"|T|", "hta-app (s)", "hta-gre (s)"});
///   t.AddRow({"4000", "12.1", "3.4"});
///   t.Print(std::cout);
///
/// Cells are strings; use the Fmt* helpers for numbers so that widths
/// stay stable across rows. `ToCsv` renders the same data as CSV for
/// downstream plotting.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

  /// Prints the aligned table with a header underline.
  void Print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline
  /// are quoted, quotes doubled).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.345").
std::string FmtDouble(double v, int precision = 3);

/// Integer formatting.
std::string FmtInt(long long v);

/// Percentage formatting ("81.9%").
std::string FmtPercent(double fraction, int precision = 1);

}  // namespace hta

#endif  // HTA_UTIL_TABLE_H_
