#ifndef HTA_UTIL_TIMER_H_
#define HTA_UTIL_TIMER_H_

#include <chrono>

namespace hta {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses to
/// time algorithm phases (matching vs LSAP, as in Fig. 2a).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hta

#endif  // HTA_UTIL_TIMER_H_
