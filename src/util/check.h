#ifndef HTA_UTIL_CHECK_H_
#define HTA_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hta {
namespace internal {

/// Stream sink used by HTA_CHECK: accumulates the failure message and
/// aborts the process when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed CheckFailure chain into a void expression so that
/// the ternary in HTA_CHECK type-checks. operator& binds looser than
/// operator<<, so the whole message is built before voidification.
struct Voidify {
  void operator&(CheckFailure&) {}
  void operator&(CheckFailure&&) {}
};

}  // namespace internal
}  // namespace hta

/// Aborts with a diagnostic when `condition` is false. For programming
/// errors (broken invariants, out-of-contract calls), not for
/// recoverable failures — those return hta::Status. Supports streaming
/// extra context: HTA_CHECK(n > 0) << "n was " << n;
#define HTA_CHECK(condition)                                          \
  (condition) ? static_cast<void>(0)                                  \
              : ::hta::internal::Voidify() &                          \
                    ::hta::internal::CheckFailure(__FILE__, __LINE__, \
                                                  #condition)

#define HTA_CHECK_OP_(a, b, op)                                        \
  ((a)op(b)) ? static_cast<void>(0)                                   \
             : ::hta::internal::Voidify() &                           \
                   ::hta::internal::CheckFailure(__FILE__, __LINE__,  \
                                                 #a " " #op " " #b)   \
                       << " (" << (a) << " vs " << (b) << ") "

#define HTA_CHECK_EQ(a, b) HTA_CHECK_OP_(a, b, ==)
#define HTA_CHECK_NE(a, b) HTA_CHECK_OP_(a, b, !=)
#define HTA_CHECK_LT(a, b) HTA_CHECK_OP_(a, b, <)
#define HTA_CHECK_LE(a, b) HTA_CHECK_OP_(a, b, <=)
#define HTA_CHECK_GT(a, b) HTA_CHECK_OP_(a, b, >)
#define HTA_CHECK_GE(a, b) HTA_CHECK_OP_(a, b, >=)

/// Debug-only checks, compiled out in NDEBUG builds (used on hot paths).
/// DCHECKs do not support message streaming.
#ifdef NDEBUG
#define HTA_DCHECK(condition) static_cast<void>(0)
#define HTA_DCHECK_EQ(a, b) static_cast<void>(0)
#define HTA_DCHECK_NE(a, b) static_cast<void>(0)
#define HTA_DCHECK_LT(a, b) static_cast<void>(0)
#define HTA_DCHECK_LE(a, b) static_cast<void>(0)
#define HTA_DCHECK_GT(a, b) static_cast<void>(0)
#define HTA_DCHECK_GE(a, b) static_cast<void>(0)
#else
#define HTA_DCHECK(condition) HTA_CHECK(condition)
#define HTA_DCHECK_EQ(a, b) HTA_CHECK_EQ(a, b)
#define HTA_DCHECK_NE(a, b) HTA_CHECK_NE(a, b)
#define HTA_DCHECK_LT(a, b) HTA_CHECK_LT(a, b)
#define HTA_DCHECK_LE(a, b) HTA_CHECK_LE(a, b)
#define HTA_DCHECK_GT(a, b) HTA_CHECK_GT(a, b)
#define HTA_DCHECK_GE(a, b) HTA_CHECK_GE(a, b)
#endif

#endif  // HTA_UTIL_CHECK_H_
