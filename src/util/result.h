#ifndef HTA_UTIL_RESULT_H_
#define HTA_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace hta {

/// Result<T> holds either a value of type `T` or a non-OK `Status`.
///
/// This is the value-returning counterpart of `Status`: public APIs that
/// compute something fallible return `Result<T>` instead of throwing.
///
/// Accessing the value of an errored Result is a programming error and
/// aborts via HTA_CHECK; callers must test `ok()` first (or use
/// `ValueOr`).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. The status must not be
  /// OK: an OK status carries no value and would leave the Result empty.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    HTA_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Value accessors. Abort if `!ok()`.
  const T& value() const& {
    HTA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HTA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HTA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace hta

/// Assigns the value of a Result expression to `lhs`, or returns its
/// error status from the enclosing function (which must return Status
/// or Result<U>).
#define HTA_ASSIGN_OR_RETURN(lhs, expr)               \
  HTA_ASSIGN_OR_RETURN_IMPL_(                          \
      HTA_CONCAT_(_hta_result_, __LINE__), lhs, expr)

#define HTA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define HTA_CONCAT_(a, b) HTA_CONCAT_IMPL_(a, b)
#define HTA_CONCAT_IMPL_(a, b) a##b

#endif  // HTA_UTIL_RESULT_H_
