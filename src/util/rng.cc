#include "util/rng.h"

#include <unordered_set>

namespace hta {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  HTA_CHECK_LE(k, n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense case: partial Fisher-Yates over [0, n).
  if (k * 3 >= n) {
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling with a seen-set.
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix64 so that
  // forks are decorrelated from the parent and from each other.
  SplitMix64 sm(state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (stream + 1)));
  return Rng(sm.Next());
}

}  // namespace hta
