#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace hta {

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

int64_t GetEnvIntOr(const std::string& name, int64_t fallback) {
  const std::string raw = GetEnvOr(name, "");
  if (raw.empty()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') return fallback;
  // strtoll saturates to LLONG_MIN/LLONG_MAX on out-of-range input and
  // reports it only through errno; treat such values as unparsable.
  if (errno == ERANGE) return fallback;
  return parsed;
}

int GetHtaThreads() {
  const int64_t raw = GetEnvIntOr("HTA_THREADS", 0);
  if (raw <= 0) return 0;
  if (raw > kMaxHtaThreads) return kMaxHtaThreads;
  return static_cast<int>(raw);
}

BenchScale GetBenchScale() {
  std::string raw = GetEnvOr("HTA_BENCH_SCALE", "default");
  for (char& ch : raw) ch = static_cast<char>(std::tolower(ch));
  if (raw == "smoke") return BenchScale::kSmoke;
  if (raw == "paper") return BenchScale::kPaper;
  return BenchScale::kDefault;
}

std::string BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kPaper:
      return "paper";
    case BenchScale::kDefault:
      break;
  }
  return "default";
}

}  // namespace hta
