#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hta {

SampleSummary Summarize(const std::vector<double>& values) {
  SampleSummary s;
  s.n = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(ss / static_cast<double>(s.n - 1)) : 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t mid = s.n / 2;
  s.median = (s.n % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

Result<double> Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return Status::InvalidArgument("Percentile of empty sample");
  }
  if (pct < 0.0 || pct > 100.0) {
    return Status::InvalidArgument("percentile must be in [0, 100]");
  }
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

/// Two-sided normal p-value 2 * (1 - Phi(|z|)), computed directly as
/// erfc(|z| / sqrt(2)). The 2 * (1 - NormalCdf(|z|)) form cancels to
/// exactly 0 in double arithmetic once |z| ≳ 8; erfc keeps full
/// precision down to its underflow threshold (|z| ≈ 38).
double TwoSidedNormalP(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

}  // namespace

Result<TestResult> TwoProportionZTest(size_t successes_a, size_t trials_a,
                                      size_t successes_b, size_t trials_b) {
  if (trials_a == 0 || trials_b == 0) {
    return Status::InvalidArgument("two-proportion Z-test needs trials > 0");
  }
  if (successes_a > trials_a || successes_b > trials_b) {
    return Status::InvalidArgument("successes exceed trials");
  }
  const double na = static_cast<double>(trials_a);
  const double nb = static_cast<double>(trials_b);
  const double pa = static_cast<double>(successes_a) / na;
  const double pb = static_cast<double>(successes_b) / nb;
  const double pooled =
      static_cast<double>(successes_a + successes_b) / (na + nb);
  const double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb));
  TestResult r;
  if (se == 0.0) {
    r.statistic = 0.0;
    r.p_value = 1.0;
    return r;
  }
  r.statistic = (pa - pb) / se;
  r.p_value = TwoSidedNormalP(r.statistic);
  return r;
}

Result<TestResult> MannWhitneyUTest(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Mann-Whitney U needs non-empty samples");
  }
  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) pooled.push_back({v, true});
  for (double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double n = n1 + n2;
  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < pooled.size()) {
    size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    // Tied block [i, j): midrank (ranks are 1-based).
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);
    const double t = static_cast<double>(j - i);
    tie_correction += t * t * t - t;
    for (size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += midrank;
    }
    i = j;
  }

  const double u_a = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  const double mu = n1 * n2 / 2.0;
  const double sigma2 =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  TestResult r;
  r.statistic = u_a;
  if (sigma2 <= 0.0) {
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction.
  const double z = (u_a - mu - (u_a > mu ? 0.5 : -0.5)) / std::sqrt(sigma2);
  r.p_value = std::min(1.0, TwoSidedNormalP(z));
  return r;
}

Result<BootstrapInterval> BootstrapMeanCi(const std::vector<double>& values,
                                          double level, int resamples,
                                          Rng* rng) {
  if (values.empty()) {
    return Status::InvalidArgument("bootstrap of empty sample");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("bootstrap level must be in (0, 1)");
  }
  if (resamples < 1) {
    return Status::InvalidArgument("bootstrap needs >= 1 resample");
  }
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  const size_t n = values.size();
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (size_t k = 0; k < n; ++k) {
      sum += values[static_cast<size_t>(rng->NextBounded(n))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double alpha = 1.0 - level;
  HTA_ASSIGN_OR_RETURN(const double lo, Percentile(means, 100.0 * alpha / 2.0));
  HTA_ASSIGN_OR_RETURN(const double hi,
                       Percentile(means, 100.0 * (1.0 - alpha / 2.0)));
  return BootstrapInterval{lo, hi};
}

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace hta
