#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace hta {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  HTA_CHECK(!header_.empty()) << "table needs at least one column";
}

void TableWriter::AddRow(std::vector<std::string> row) {
  HTA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TableWriter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtInt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hta
