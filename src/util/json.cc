#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace hta {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace hta
