#include "util/parallel.h"

#include <atomic>
#include <exception>

#include "util/env.h"

namespace hta {

namespace {

/// True while the current thread is executing a pool block; nested
/// Run calls then execute inline instead of re-entering the pool.
thread_local bool tls_in_pool_block = false;

}  // namespace

/// One blocked job: a shared claim counter plus drain bookkeeping.
/// Lives on the Run caller's stack; `active` (guarded by the pool's
/// mu_) keeps it alive until every participating worker has left.
struct ThreadPool::Job {
  const std::function<void(size_t)>* fn = nullptr;
  size_t num_blocks = 0;
  size_t max_participants = 0;        // Caller + workers allowed in.
  std::atomic<size_t> joined{1};      // Caller counts as a participant.
  std::atomic<size_t> next{0};        // Next unclaimed block.
  std::atomic<size_t> done{0};        // Blocks finished (or skipped).
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;           // First exception, under error_mu.
  size_t active = 0;                  // Workers inside; guarded by mu_.
};

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t threads = static_cast<size_t>(GetHtaThreads());
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 1 : hw;
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ThreadPool::ProcessBlocks(Job& job) {
  for (;;) {
    const size_t block = job.next.fetch_add(1);
    if (block >= job.num_blocks) return;
    if (!job.failed.load()) {
      try {
        (*job.fn)(block);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.failed.load()) {
          job.error = std::current_exception();
          job.failed.store(true);
        }
      }
    }
    job.done.fetch_add(1);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t last_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = job_seq_;
      job = job_;
      // Respect the job's thread cap: join only if a slot is free.
      if (job->joined.fetch_add(1) >= job->max_participants) {
        job->joined.fetch_sub(1);
        continue;
      }
      ++job->active;
    }
    tls_in_pool_block = true;
    ProcessBlocks(*job);
    tls_in_pool_block = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job->active;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t num_blocks,
                     const std::function<void(size_t)>& block_fn,
                     size_t max_threads) {
  if (num_blocks == 0) return;
  size_t budget = thread_count();
  if (max_threads != 0 && max_threads < budget) budget = max_threads;
  if (budget <= 1 || num_blocks == 1 || tls_in_pool_block) {
    // Serial path: same fixed blocks, ascending order, same thread.
    for (size_t block = 0; block < num_blocks; ++block) block_fn(block);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.fn = &block_fn;
  job.num_blocks = num_blocks;
  job.max_participants = budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  tls_in_pool_block = true;
  ProcessBlocks(job);
  tls_in_pool_block = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.done.load() >= job.num_blocks && job.active == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace hta
