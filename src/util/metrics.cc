#include "util/metrics.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/check.h"
#include "util/env.h"
#include "util/json.h"

namespace hta::metrics {

namespace internal {

/// Sentinel meaning "no Set observed yet" for the gauge maximum.
constexpr int64_t kNoGaugeMax = std::numeric_limits<int64_t>::min();

struct Metric {
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter state: kCounterStripes cache-line-padded stripes.
  std::unique_ptr<Stripe[]> stripes;
  /// Gauge state.
  std::atomic<int64_t> gauge_value{0};
  std::atomic<int64_t> gauge_max{kNoGaugeMax};
  /// Histogram state: bounds.size() + 1 buckets (last = overflow).
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  std::atomic<uint64_t> hist_count{0};
  std::atomic<double> hist_sum{0.0};
};

}  // namespace internal

namespace {

using internal::kNoGaugeMax;
using internal::Metric;

/// The registry proper. Registration is rare (static-init time) and
/// snapshotting is cold, so one mutex guards the metric list; hot-path
/// increments touch only the per-metric atomics, never the lock
/// (handles hold stable Metric pointers).
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Metric>> metrics;
  std::unordered_map<std::string, Metric*> by_name;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives exit.
  return *registry;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{GetEnvIntOr("HTA_METRICS", 0) != 0};
  return flag;
}

/// Lock-free double accumulation (std::atomic<double>::fetch_add is
/// C++20 but not yet universal across the toolchains CI builds with).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxInt64(std::atomic<int64_t>* target, int64_t v) {
  int64_t expected = target->load(std::memory_order_relaxed);
  while (expected < v && !target->compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void OverrideEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

size_t ThreadStripe() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t stripe =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return stripe;
}

namespace internal {

Metric* Register(const char* name, Kind kind,
                 const std::vector<double>* bounds) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.by_name.find(name);
  if (it != registry.by_name.end()) {
    HTA_CHECK(it->second->kind == kind)
        << "metric '" << name << "' re-registered with a different kind";
    return it->second;
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      metric->stripes = std::make_unique<Stripe[]>(kCounterStripes);
      break;
    case Kind::kGauge:
      break;
    case Kind::kHistogram: {
      HTA_CHECK(bounds != nullptr && !bounds->empty())
          << "histogram '" << name << "' needs bucket bounds";
      HTA_CHECK(std::is_sorted(bounds->begin(), bounds->end()))
          << "histogram '" << name << "' bounds must ascend";
      metric->bounds = *bounds;
      metric->buckets =
          std::make_unique<std::atomic<uint64_t>[]>(bounds->size() + 1);
      break;
    }
  }
  Metric* raw = metric.get();
  registry.metrics.push_back(std::move(metric));
  registry.by_name.emplace(name, raw);
  return raw;
}

void CounterAdd(Metric* metric, uint64_t n) {
  metric->stripes[ThreadStripe()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
}

void GaugeSet(Metric* metric, int64_t v) {
  metric->gauge_value.store(v, std::memory_order_relaxed);
  AtomicMaxInt64(&metric->gauge_max, v);
}

void HistogramObserve(Metric* metric, double v) {
  // lower_bound gives the first bound >= v: bounds are *inclusive*
  // upper bounds (Prometheus "le" convention), as documented.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(metric->bounds.begin(), metric->bounds.end(), v) -
      metric->bounds.begin());
  metric->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  metric->hist_count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&metric->hist_sum, v);
}

double HistogramQuantileOf(const Metric* metric, double q) {
  HTA_CHECK(metric->kind == Kind::kHistogram);
  std::vector<uint64_t> counts(metric->bounds.size() + 1);
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] = metric->buckets[b].load(std::memory_order_relaxed);
  }
  return HistogramQuantile(metric->bounds, counts, q);
}

}  // namespace internal

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& bucket_counts,
                         double q) {
  HTA_CHECK_EQ(bucket_counts.size(), bounds.size() + 1)
      << "bucket_counts must include the overflow bucket";
  q = std::min(1.0, std::max(0.0, q));
  uint64_t total = 0;
  for (const uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the target observation (1-based, ceil(q * total) clamped
  // to [1, total]): the bucket whose cumulative count first reaches
  // the rank owns the quantile.
  const double target = std::max(1.0, q * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const uint64_t c = bucket_counts[b];
    if (c == 0) continue;
    if (static_cast<double>(cumulative + c) >= target) {
      if (b == bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward;
        // saturate at the largest finite bound.
        return bounds.back();
      }
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = bounds[b];
      const double within =
          (target - static_cast<double>(cumulative)) / static_cast<double>(c);
      return lower + (upper - lower) * within;
    }
    cumulative += c;
  }
  return bounds.back();  // Unreachable: total > 0 places the rank above.
}

double MetricValue::ValueAtQuantile(double q) const {
  if (kind != internal::Kind::kHistogram) return 0.0;
  return HistogramQuantile(bounds, bucket_counts, q);
}

Histogram::Histogram(const char* name, std::vector<double> bounds)
    : metric_(internal::Register(name, internal::Kind::kHistogram, &bounds)) {}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
      b->push_back(decade);
      b->push_back(2.0 * decade);
      b->push_back(5.0 * decade);
    }
    return b;
  }();
  return *buckets;
}

std::vector<MetricValue> Snapshot() {
  Registry& registry = GetRegistry();
  std::vector<MetricValue> out;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    out.reserve(registry.metrics.size());
    for (const auto& metric : registry.metrics) {
      MetricValue v;
      v.name = metric->name;
      v.kind = metric->kind;
      switch (metric->kind) {
        case internal::Kind::kCounter: {
          uint64_t total = 0;
          for (size_t s = 0; s < kCounterStripes; ++s) {
            total +=
                metric->stripes[s].value.load(std::memory_order_relaxed);
          }
          v.count = total;
          break;
        }
        case internal::Kind::kGauge: {
          v.value = metric->gauge_value.load(std::memory_order_relaxed);
          const int64_t max =
              metric->gauge_max.load(std::memory_order_relaxed);
          v.max = max == kNoGaugeMax ? v.value : max;
          break;
        }
        case internal::Kind::kHistogram: {
          v.count = metric->hist_count.load(std::memory_order_relaxed);
          v.sum = metric->hist_sum.load(std::memory_order_relaxed);
          v.bounds = metric->bounds;
          v.bucket_counts.resize(metric->bounds.size() + 1);
          for (size_t b = 0; b < v.bucket_counts.size(); ++b) {
            v.bucket_counts[b] =
                metric->buckets[b].load(std::memory_order_relaxed);
          }
          break;
        }
      }
      out.push_back(std::move(v));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::string SnapshotJson() {
  const std::vector<MetricValue> snapshot = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const MetricValue& v : snapshot) {
    if (!first) out += ", ";
    first = false;
    out += JsonQuote(v.name);
    out += ": ";
    switch (v.kind) {
      case internal::Kind::kCounter:
        out += std::to_string(v.count);
        break;
      case internal::Kind::kGauge:
        out += "{\"value\": " + std::to_string(v.value) +
               ", \"max\": " + std::to_string(v.max) + "}";
        break;
      case internal::Kind::kHistogram: {
        out += "{\"count\": " + std::to_string(v.count) +
               ", \"sum\": " + JsonNumber(v.sum) + ", \"bounds\": [";
        for (size_t b = 0; b < v.bounds.size(); ++b) {
          if (b > 0) out += ", ";
          out += JsonNumber(v.bounds[b]);
        }
        out += "], \"buckets\": [";
        for (size_t b = 0; b < v.bucket_counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(v.bucket_counts[b]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string DeterministicDigest() {
  std::string out;
  for (const MetricValue& v : Snapshot()) {
    out += v.name;
    switch (v.kind) {
      case internal::Kind::kCounter:
        out += " counter " + std::to_string(v.count);
        break;
      case internal::Kind::kGauge:
        out += " gauge " + std::to_string(v.value) + " max " +
               std::to_string(v.max);
        break;
      case internal::Kind::kHistogram:
        // Observation counts are deterministic; observed values (and
        // hence bucket assignment and sums) are wall-clock dependent.
        out += " histogram " + std::to_string(v.count);
        break;
    }
    out += "\n";
  }
  return out;
}

void ResetForTesting() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& metric : registry.metrics) {
    switch (metric->kind) {
      case internal::Kind::kCounter:
        for (size_t s = 0; s < kCounterStripes; ++s) {
          metric->stripes[s].value.store(0, std::memory_order_relaxed);
        }
        break;
      case internal::Kind::kGauge:
        metric->gauge_value.store(0, std::memory_order_relaxed);
        metric->gauge_max.store(kNoGaugeMax, std::memory_order_relaxed);
        break;
      case internal::Kind::kHistogram:
        for (size_t b = 0; b <= metric->bounds.size(); ++b) {
          metric->buckets[b].store(0, std::memory_order_relaxed);
        }
        metric->hist_count.store(0, std::memory_order_relaxed);
        metric->hist_sum.store(0.0, std::memory_order_relaxed);
        break;
    }
  }
}

}  // namespace hta::metrics
