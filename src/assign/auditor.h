#ifndef HTA_ASSIGN_AUDITOR_H_
#define HTA_ASSIGN_AUDITOR_H_

#include "assign/assignment.h"
#include "qap/hta_problem.h"
#include "util/status.h"

namespace hta {

/// Runtime validation of solver and local-search output.
///
/// The incremental machinery introduced by the parallel compute layer
/// and the O(1)-delta local search (BundleStatsCache, tabulated LSAP
/// profits, disjoint-write parallel fills) maintains the Eq. 3
/// objective by accumulating hand-derived deltas instead of
/// recomputing it — exactly the code shape where a stale table or a
/// silently racing fill produces plausible-looking but wrong output.
/// The auditor is the independent check: it re-derives everything the
/// paper's guarantees rest on (the C1/C2 feasibility constraints of
/// Eq. 4–6 and the Eq. 3 objective itself) from nothing but the
/// problem and the emitted bundles, and reports the first violated
/// invariant as a structured Status.
///
/// Auditing is wired after every HTA-APP / HTA-GRE solve, after every
/// local-search pass, and after every engine iteration, gated on
/// AuditEnabled() (the HTA_AUDIT environment variable; ctest forces it
/// on for the whole suite). One audit costs one from-scratch objective
/// evaluation, O(|W| · Xmax²) oracle calls — negligible next to the
/// solve it validates.
class AssignmentAuditor {
 public:
  /// Agreement tolerance between a claimed (incrementally maintained)
  /// objective and the from-scratch recompute, relative to
  /// max(1, |recomputed|).
  static constexpr double kObjectiveTolerance = 1e-9;

  /// The problem must outlive the auditor.
  explicit AssignmentAuditor(const HtaProblem& problem)
      : problem_(&problem) {}

  /// Checks the structural invariants of Problem 1 in a fixed order and
  /// returns the first violation:
  ///  * matching validity — exactly one bundle per worker
  ///    (InvalidArgument);
  ///  * index validity — every bundle entry names an existing task
  ///    (OutOfRange);
  ///  * C1 — |T^i_w| <= Xmax for every worker (FailedPrecondition);
  ///  * C2 — no task appears twice, within or across bundles
  ///    (FailedPrecondition, naming both holders).
  Status CheckStructure(const Assignment& assignment) const;

  /// Recomputes the Eq. 3 objective from scratch — per-bundle
  /// Motivation(), the same naive reference path the retained
  /// NaiveEvaluator deltas are derived from — and checks that
  /// `claimed_objective` (an incrementally maintained value such as
  /// initial + Σ applied deltas, or a BundleStatsCache-derived total)
  /// agrees within kObjectiveTolerance. Divergence, including NaN,
  /// returns Internal.
  Status CheckObjective(const Assignment& assignment,
                        double claimed_objective) const;

  /// CheckStructure, then CheckObjective.
  Status Audit(const Assignment& assignment, double claimed_objective) const;

 private:
  const HtaProblem* problem_;
};

/// True when runtime auditing is enabled: HTA_AUDIT parses to a nonzero
/// integer. Read once at first call and latched, like the thread-pool
/// size. The ctest harness sets HTA_AUDIT=1 on every registered test,
/// so the whole suite always runs audited.
bool AuditEnabled();

}  // namespace hta

#endif  // HTA_ASSIGN_AUDITOR_H_
