#ifndef HTA_ASSIGN_HTA_SOLVER_H_
#define HTA_ASSIGN_HTA_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "assign/assignment.h"
#include "assign/local_search.h"
#include "matching/max_weight_matching.h"
#include "qap/qap_view.h"
#include "util/result.h"
#include "util/rng.h"

namespace hta {

/// Which LSAP solver runs in the second phase (Algorithm 1/2, Line 11).
enum class LsapMethod {
  kExactJv,          ///< Jonker-Volgenant exact solve: HTA-APP (1/4-approx).
  kGreedy,           ///< Greedy bipartite matching: HTA-GRE (1/8-approx).
  kExactStructured,  ///< Rectangular exact solve over the profitable
                     ///< (worker-clique) columns only — same optimum and
                     ///< approximation factor as kExactJv, but O(m^2 n)
                     ///< for m = |W| * Xmax instead of O(n^3). An
                     ///< extension beyond the paper (ablation A6).
};

/// Which matching algorithm builds M_B (Line 2). Both are
/// 1/2-approximations, which Eq. 9/10 require.
enum class MatchingMethod {
  kGreedy,       ///< Sorted-edge greedy (the paper's choice).
  kPathGrowing,  ///< Drake-Hougardy path growing (ablation A3).
};

/// How matched pairs are permuted after the LSAP solve (Lines 12-16).
enum class SwapMode {
  kRandom,     ///< Flip each matched pair with probability 1/2 (paper).
  kBestOfTwo,  ///< Derandomized: evaluate both orientations of each
               ///< pair and keep the better one (extension, >= expected
               ///< value of kRandom per pair).
  kNone,       ///< Keep the LSAP permutation as-is (ablation A2).
};

/// Solver configuration. Defaults reproduce HTA-GRE, the paper's
/// recommended algorithm.
struct HtaSolverOptions {
  LsapMethod lsap = LsapMethod::kGreedy;
  MatchingMethod matching = MatchingMethod::kGreedy;
  SwapMode swap = SwapMode::kRandom;
  uint64_t seed = 42;
  /// Caps the threads this solve draws from the global pool (see
  /// util/parallel.h): 0 uses the full pool (HTA_THREADS), 1 forces
  /// serial execution. The parallel phases partition work
  /// deterministically, so every value produces bit-identical
  /// assignments, objectives, and certified ratios.
  size_t threads = 0;
  /// Distance-kernel backend for the O(|T|²) / O(|T|·|W|) sweeps
  /// (diversity edges, tabulated LSAP profits): the batched SoA kernels
  /// of core/packed_set.h (default) or the per-pair scalar reference
  /// path. Both produce bit-identical assignments and stats.
  DistanceBackend backend = DistanceBackend::kBatched;
};

/// Phase timings and objective diagnostics for one solve — these feed
/// the Fig. 2a phase breakdown directly.
struct HtaSolveStats {
  double matching_seconds = 0.0;  ///< Building M_B (Line 2).
  double lsap_seconds = 0.0;      ///< Auxiliary LSAP (Lines 3-11).
  double total_seconds = 0.0;     ///< Whole solve, including extraction.
  double qap_objective = 0.0;     ///< Eq. 8 value of the final permutation.
  double motivation = 0.0;        ///< Eq. 3 objective of the assignment.
  size_t matched_pairs = 0;       ///< |M_B|.
  /// A certified upper bound on the instance's optimum, from the
  /// Theorem 4 analysis: OPT <= 2 * (optimal LSAP profit), and the
  /// greedy LSAP profit is within 1/2 of optimal, so
  ///   OPT <= 2 * lsap_profit   (exact solvers)
  ///   OPT <= 4 * lsap_profit   (greedy solver).
  double optimum_upper_bound = 0.0;
  /// qap_objective / optimum_upper_bound — a per-instance *certificate*
  /// that this solve achieved at least this fraction of the true
  /// optimum (typically far above the worst-case 1/4 and 1/8 factors).
  double certified_ratio = 0.0;
  /// Warm-start diagnostics (zero for the matching+LSAP solvers):
  /// bundle holes patched from the unassigned pool and local-search
  /// passes run until the refined assignment stopped improving.
  size_t warm_repaired_slots = 0;
  size_t warm_passes = 0;
};

/// A solved instance: feasible assignment plus diagnostics.
struct HtaSolveResult {
  Assignment assignment;
  HtaSolveStats stats;
};

/// Solves one HTA iteration with the configured algorithm. The returned
/// assignment always satisfies C1 and C2 (also enforced by a debug-mode
/// validation).
Result<HtaSolveResult> SolveHta(const HtaProblem& problem,
                                const HtaSolverOptions& options);

/// HTA-APP (Algorithm 1): exact LSAP via Jonker-Volgenant. O(|T|^3),
/// 1/4-approximation.
Result<HtaSolveResult> SolveHtaApp(const HtaProblem& problem,
                                   uint64_t seed = 42);

/// HTA-GRE (Algorithm 2): greedy LSAP. O(|T|^2 log |T|),
/// 1/8-approximation.
Result<HtaSolveResult> SolveHtaGre(const HtaProblem& problem,
                                   uint64_t seed = 42);

/// Warm-started solve: skips matching and the auxiliary LSAP entirely
/// and refines `seed` — a feasible partial assignment carried over from
/// a previous instance (surviving bundles, holes already dropped) —
/// with local search. Replace/exchange moves improve the carried
/// bundles against the fresh unassigned tasks and the insert pass
/// greedily patches spare capacity, so the result's objective is never
/// below the seed's. Fails with the validator's error if `seed` is
/// infeasible (also pre-checked by the AssignmentAuditor when
/// HTA_AUDIT=1, and the final assignment is audited like every solve).
/// No Theorem 4 certificate exists for this path:
/// optimum_upper_bound/certified_ratio stay 0.
Result<HtaSolveResult> SolveHtaWarmStart(const HtaProblem& problem,
                                         const Assignment& seed,
                                         const LocalSearchOptions& options);

/// Converts a QAP permutation (task k -> vertex pi(k)) into bundles via
/// Eq. 7, dropping padding tasks. Exposed for tests and the worked
/// example.
Assignment ExtractAssignment(const QapView& view,
                             const std::vector<int32_t>& perm);

/// Human-readable algorithm label for tables ("hta-app", "hta-gre", ...).
std::string SolverName(const HtaSolverOptions& options);

}  // namespace hta

#endif  // HTA_ASSIGN_HTA_SOLVER_H_
