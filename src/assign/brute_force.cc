#include "assign/brute_force.h"

#include <string>

namespace hta {

namespace {

struct SearchState {
  const HtaProblem* problem;
  Assignment current;
  Assignment best;
  double best_motivation;
};

/// Assigns task `k` to each worker with spare capacity (or leaves it
/// unassigned) and recurses. The objective is evaluated only at the
/// leaves; instance sizes are tiny by contract.
void Search(SearchState* state, size_t k) {
  const HtaProblem& problem = *state->problem;
  if (k == problem.task_count()) {
    const double m = TotalMotivation(problem, state->current);
    if (m > state->best_motivation) {
      state->best_motivation = m;
      state->best = state->current;
    }
    return;
  }
  // Option 1: leave task k unassigned.
  Search(state, k + 1);
  // Option 2: give it to each worker with room.
  for (size_t q = 0; q < problem.worker_count(); ++q) {
    TaskBundle& bundle = state->current.bundles[q];
    if (bundle.size() >= problem.xmax()) continue;
    bundle.push_back(static_cast<TaskIndex>(k));
    Search(state, k + 1);
    bundle.pop_back();
  }
}

}  // namespace

Result<BruteForceResult> SolveHtaBruteForce(const HtaProblem& problem) {
  constexpr size_t kMaxTasks = 12;
  constexpr size_t kMaxWorkers = 4;
  if (problem.task_count() > kMaxTasks ||
      problem.worker_count() > kMaxWorkers) {
    return Status::InvalidArgument(
        "brute force limited to " + std::to_string(kMaxTasks) + " tasks / " +
        std::to_string(kMaxWorkers) + " workers; got " +
        std::to_string(problem.task_count()) + " / " +
        std::to_string(problem.worker_count()));
  }
  SearchState state;
  state.problem = &problem;
  state.current.bundles.assign(problem.worker_count(), {});
  state.best = state.current;
  state.best_motivation = 0.0;
  Search(&state, 0);
  BruteForceResult result;
  result.assignment = std::move(state.best);
  result.motivation = state.best_motivation;
  return result;
}

}  // namespace hta
