#include "assign/hta_solver.h"

#include <algorithm>
#include <utility>

#include "assign/auditor.h"
#include "matching/lsap.h"
#include "matching/max_weight_matching.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace hta {

namespace {

/// The auxiliary LSAP profit f_{k,l} = bM(t_k) * degA_l + c_{k,l}
/// (Algorithm 1, Line 10), evaluated on the fly. O(1) space — this is
/// the right profit oracle for the greedy LSAP, which touches each
/// entry once.
class AuxiliaryProfit {
 public:
  AuxiliaryProfit(const QapView* view, const std::vector<double>* bm)
      : view_(view), bm_(bm) {}

  double operator()(size_t k, size_t l) const {
    return (*bm_)[k] * view_->DegA(l) + view_->C(k, l);
  }

 private:
  const QapView* view_;
  const std::vector<double>* bm_;
};

/// The same profit backed by precomputed per-worker tables. Both
/// degA_l and c_{k,l} depend on the column l only through the worker
/// clique q = l / Xmax, so an n x |W| relevance-profit table plus a
/// |W| degree table replace the per-call Relevance() evaluation that
/// the O(n^3) JV solver would otherwise repeat on every one of its
/// O(n^3) profit probes. Table construction is row-parallel; entries
/// are computed with exactly the arithmetic of QapView::C / DegA, so
/// profits (and hence the LSAP result) are bit-identical to the
/// on-the-fly oracle's.
class TabulatedAuxiliaryProfit {
 public:
  TabulatedAuxiliaryProfit(const QapView& view, const std::vector<double>* bm,
                           size_t max_threads,
                           DistanceBackend backend = DistanceBackend::kBatched)
      : bm_(bm),
        xmax_(view.problem().xmax()),
        task_count_(view.task_count()),
        worker_count_(view.problem().worker_count()) {
    deg_a_.resize(worker_count_);
    for (size_t q = 0; q < worker_count_; ++q) {
      deg_a_[q] = view.DegA(q * xmax_);
    }
    c_table_.resize(task_count_ * worker_count_);
    if (backend == DistanceBackend::kBatched) {
      // c_{k, q*xmax} = beta_q * rel(k, q) * (xmax - 1): one batched
      // rectangular relevance sweep, then the same left-to-right
      // multiplication chain as QapView::C — bit-identical entries.
      const HtaProblem& problem = view.problem();
      std::vector<double> rel;
      problem.FillRelevanceTable(&rel, max_threads, backend);
      const double norm = static_cast<double>(xmax_) - 1.0;
      ParallelFor(
          0, task_count_, /*grain=*/64,
          [&](size_t k) {
            for (size_t q = 0; q < worker_count_; ++q) {
              c_table_[k * worker_count_ + q] =
                  problem.workers()[q].weights().beta *
                  rel[k * worker_count_ + q] * norm;
            }
          },
          max_threads);
      return;
    }
    ParallelFor(
        0, task_count_, /*grain=*/64,
        [&](size_t k) {
          for (size_t q = 0; q < worker_count_; ++q) {
            c_table_[k * worker_count_ + q] = view.C(k, q * xmax_);
          }
        },
        max_threads);
  }

  double operator()(size_t k, size_t l) const {
    const size_t q = l / xmax_;
    if (q >= worker_count_) return 0.0;  // Isolated column: degA = c = 0.
    const double c =
        k < task_count_ ? c_table_[k * worker_count_ + q] : 0.0;
    return (*bm_)[k] * deg_a_[q] + c;
  }

 private:
  std::vector<double> deg_a_;   // degA on worker q's columns.
  std::vector<double> c_table_; // c_{k,l} for l in worker q's clique.
  const std::vector<double>* bm_;
  size_t xmax_;
  size_t task_count_;
  size_t worker_count_;
};

/// Tracks clique membership during the best-of-two swap pass so that
/// objective deltas are O(Xmax) per candidate swap.
class CliqueMembership {
 public:
  CliqueMembership(const QapView& view, const std::vector<int32_t>& perm)
      : members_(view.problem().worker_count()) {
    for (size_t k = 0; k < perm.size(); ++k) {
      const int32_t q = view.WorkerOfVertex(static_cast<size_t>(perm[k]));
      if (q >= 0) members_[static_cast<size_t>(q)].push_back(k);
    }
  }

  const std::vector<size_t>& Members(int32_t q) const {
    return members_[static_cast<size_t>(q)];
  }

  void Move(size_t task_out, size_t task_in, int32_t q) {
    if (q < 0) return;
    auto& m = members_[static_cast<size_t>(q)];
    auto it = std::find(m.begin(), m.end(), task_out);
    HTA_DCHECK(it != m.end());
    *it = task_in;
  }

 private:
  std::vector<std::vector<size_t>> members_;
};

/// Objective change from exchanging the vertices of tasks u and v
/// (perm[u] <-> perm[v]).
double SwapDelta(const QapView& view, const CliqueMembership& cliques,
                 const std::vector<int32_t>& perm, size_t u, size_t v) {
  const size_t pu = static_cast<size_t>(perm[u]);
  const size_t pv = static_cast<size_t>(perm[v]);
  const int32_t qu = view.WorkerOfVertex(pu);
  const int32_t qv = view.WorkerOfVertex(pv);
  double delta = view.C(u, pv) + view.C(v, pu) - view.C(u, pu) -
                 view.C(v, pv);
  if (qu == qv) return delta;  // Same clique: quadratic part unchanged.
  const auto& workers = view.problem().workers();
  if (qu >= 0) {
    const double alpha = workers[static_cast<size_t>(qu)].weights().alpha;
    double gain = 0.0;
    for (size_t m : cliques.Members(qu)) {
      if (m == u) continue;
      gain += view.B(v, m) - view.B(u, m);
    }
    delta += 2.0 * alpha * gain;
  }
  if (qv >= 0) {
    const double alpha = workers[static_cast<size_t>(qv)].weights().alpha;
    double gain = 0.0;
    for (size_t m : cliques.Members(qv)) {
      if (m == v) continue;
      gain += view.B(u, m) - view.B(v, m);
    }
    delta += 2.0 * alpha * gain;
  }
  return delta;
}

}  // namespace

Assignment ExtractAssignment(const QapView& view,
                             const std::vector<int32_t>& perm) {
  HTA_CHECK_EQ(perm.size(), view.n());
  Assignment assignment;
  assignment.bundles.assign(view.problem().worker_count(), {});
  for (size_t k = 0; k < view.task_count(); ++k) {
    const int32_t q = view.WorkerOfVertex(static_cast<size_t>(perm[k]));
    if (q >= 0) {
      assignment.bundles[static_cast<size_t>(q)].push_back(
          static_cast<TaskIndex>(k));
    }
  }
  return assignment;
}

Result<HtaSolveResult> SolveHta(const HtaProblem& problem,
                                const HtaSolverOptions& options) {
  static metrics::Counter solves("solver.solves");
  static metrics::Counter tasks_solved("solver.tasks");
  static metrics::Counter matched_pairs_total("solver.matched_pairs");
  static metrics::Counter swaps_applied("solver.swaps_applied");
  static metrics::Histogram matching_latency("solver.matching_seconds",
                                             metrics::LatencyBucketsSeconds());
  static metrics::Histogram lsap_latency("solver.lsap_seconds",
                                         metrics::LatencyBucketsSeconds());
  static metrics::Histogram solve_latency("solver.total_seconds",
                                          metrics::LatencyBucketsSeconds());
  trace::PhaseSpan solve_span("solver.solve", &solve_latency);
  solves.Add();
  WallTimer total_timer;
  const QapView view(&problem);
  const size_t n = view.n();
  tasks_solved.Add(view.task_count());

  // Phase 1 (Line 2): maximum-weight matching M_B over task diversity.
  WallTimer phase_timer;
  HtaSolveStats stats;
  GraphMatching mb;
  {
    trace::PhaseSpan matching_span("solver.matching", &matching_latency);
    std::vector<WeightedEdge> edges =
        BuildDiversityEdges(problem.oracle(), options.threads, options.backend);
    switch (options.matching) {
      case MatchingMethod::kGreedy:
        mb = GreedyMaxWeightMatching(n, std::move(edges), options.threads);
        break;
      case MatchingMethod::kPathGrowing:
        mb = PathGrowingMatching(n, edges);
        break;
    }
  }
  stats.matching_seconds = phase_timer.ElapsedSeconds();
  stats.matched_pairs = mb.edges.size();
  matched_pairs_total.Add(mb.edges.size());

  // Lines 3-8: bM(t_k) = weight of the M_B edge covering t_k, else 0.
  std::vector<double> bm(n, 0.0);
  for (const auto& [u, v] : mb.edges) {
    const double w =
        problem.oracle()(static_cast<TaskIndex>(u), static_cast<TaskIndex>(v));
    bm[u] = w;
    bm[v] = w;
  }

  // Lines 9-11: the auxiliary LSAP. The exact solvers probe the same
  // profit entries many times, so they get the tabulated oracle (built
  // row-parallel); the greedy solver scans each entry once and keeps
  // the O(1)-space on-the-fly oracle.
  phase_timer.Restart();
  LsapSolution lsap;
  {
    trace::PhaseSpan lsap_span("solver.lsap", &lsap_latency);
    switch (options.lsap) {
      case LsapMethod::kExactJv: {
        const TabulatedAuxiliaryProfit profit(view, &bm, options.threads,
                                              options.backend);
        lsap = SolveLsapJv(n, profit);
        break;
      }
      case LsapMethod::kGreedy: {
        const std::vector<size_t> worker_cols = view.WorkerColumns();
        if (options.backend == DistanceBackend::kBatched) {
          // Even the single-scan greedy solve wins from tabulation when
          // the table comes from one batched rectangular sweep instead
          // of a scalar Relevance() per probed entry; profits stay
          // bit-identical to the on-the-fly oracle's.
          const TabulatedAuxiliaryProfit profit(view, &bm, options.threads,
                                                options.backend);
          lsap = SolveLsapGreedy(n, profit, &worker_cols);
        } else {
          const AuxiliaryProfit profit(&view, &bm);
          lsap = SolveLsapGreedy(n, profit, &worker_cols);
        }
        break;
      }
      case LsapMethod::kExactStructured: {
        const TabulatedAuxiliaryProfit profit(view, &bm, options.threads,
                                              options.backend);
        const std::vector<size_t> worker_cols = view.WorkerColumns();
        lsap = SolveLsapStructured(n, profit, worker_cols);
        break;
      }
    }
  }
  stats.lsap_seconds = phase_timer.ElapsedSeconds();

  // Optimality certificate (Theorem 4 / Eq. 18): the HTA optimum is at
  // most twice the optimal auxiliary-LSAP profit; a greedy LSAP profit
  // is within a factor 2 of that optimum.
  const double bound_factor =
      options.lsap == LsapMethod::kGreedy ? 4.0 : 2.0;
  stats.optimum_upper_bound = bound_factor * lsap.profit;

  // Lines 12-16: permute matched pairs.
  std::vector<int32_t> perm = std::move(lsap.row_to_col);
  Rng rng(options.seed);
  switch (options.swap) {
    case SwapMode::kNone:
      break;
    case SwapMode::kRandom:
      for (const auto& [u, v] : mb.edges) {
        if (rng.NextBool(0.5)) {
          std::swap(perm[u], perm[v]);
          swaps_applied.Add();
        }
      }
      break;
    case SwapMode::kBestOfTwo: {
      CliqueMembership cliques(view, perm);
      for (const auto& [u, v] : mb.edges) {
        if (SwapDelta(view, cliques, perm, u, v) > 0.0) {
          const int32_t qu = view.WorkerOfVertex(static_cast<size_t>(perm[u]));
          const int32_t qv = view.WorkerOfVertex(static_cast<size_t>(perm[v]));
          if (qu != qv) {
            cliques.Move(u, v, qu);
            cliques.Move(v, u, qv);
          }
          std::swap(perm[u], perm[v]);
          swaps_applied.Add();
        }
      }
      break;
    }
  }

  // Lines 17-18 (Eq. 7): back to per-worker bundles.
  HtaSolveResult result;
  result.assignment = ExtractAssignment(view, perm);
  stats.qap_objective = view.Objective(perm, options.threads);
  stats.motivation = TotalMotivation(problem, result.assignment);
  stats.certified_ratio = stats.optimum_upper_bound > 0.0
                              ? stats.qap_objective /
                                    stats.optimum_upper_bound
                              : 1.0;
  stats.total_seconds = total_timer.ElapsedSeconds();
  result.stats = stats;

  HTA_DCHECK(ValidateAssignment(problem, result.assignment).ok());
  if (AuditEnabled()) {
    HTA_RETURN_IF_ERROR(
        AssignmentAuditor(problem).Audit(result.assignment, stats.motivation));
  }
  return result;
}

Result<HtaSolveResult> SolveHtaWarmStart(const HtaProblem& problem,
                                         const Assignment& seed,
                                         const LocalSearchOptions& options) {
  static metrics::Counter warm_solves("solver.warm_starts");
  static metrics::Counter repaired_slots("solver.warm_repaired_slots");
  static metrics::Histogram warm_latency("solver.warm_start_seconds",
                                         metrics::LatencyBucketsSeconds());
  trace::PhaseSpan warm_span("solver.warm_start", &warm_latency);
  warm_solves.Add();
  WallTimer total_timer;
  if (AuditEnabled()) {
    // The seed is a repaired carry-over built outside the solver; a
    // structural violation here (duplicate task, overfull bundle) must
    // surface before local search silently "fixes" the objective on top
    // of it. The objective claim is checked after refinement.
    HTA_RETURN_IF_ERROR(AssignmentAuditor(problem).CheckStructure(seed));
  }
  HTA_ASSIGN_OR_RETURN(LocalSearchResult refined,
                       ImproveAssignment(problem, seed, options));
  repaired_slots.Add(refined.inserts_applied);

  HtaSolveResult result;
  result.assignment = std::move(refined.assignment);
  result.stats.motivation = refined.motivation;
  result.stats.qap_objective = refined.motivation;
  result.stats.warm_repaired_slots = refined.inserts_applied;
  result.stats.warm_passes = refined.passes;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  if (AuditEnabled()) {
    HTA_RETURN_IF_ERROR(AssignmentAuditor(problem).Audit(
        result.assignment, result.stats.motivation));
  }
  return result;
}

Result<HtaSolveResult> SolveHtaApp(const HtaProblem& problem, uint64_t seed) {
  HtaSolverOptions options;
  options.lsap = LsapMethod::kExactJv;
  options.seed = seed;
  return SolveHta(problem, options);
}

Result<HtaSolveResult> SolveHtaGre(const HtaProblem& problem, uint64_t seed) {
  HtaSolverOptions options;
  options.lsap = LsapMethod::kGreedy;
  options.seed = seed;
  return SolveHta(problem, options);
}

std::string SolverName(const HtaSolverOptions& options) {
  std::string name;
  switch (options.lsap) {
    case LsapMethod::kExactJv:
      name = "hta-app";
      break;
    case LsapMethod::kGreedy:
      name = "hta-gre";
      break;
    case LsapMethod::kExactStructured:
      name = "hta-app+rect";
      break;
  }
  if (options.matching == MatchingMethod::kPathGrowing) name += "+pg";
  switch (options.swap) {
    case SwapMode::kRandom:
      break;
    case SwapMode::kBestOfTwo:
      name += "+best2";
      break;
    case SwapMode::kNone:
      name += "+noswap";
      break;
  }
  return name;
}

}  // namespace hta
