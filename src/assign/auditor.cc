#include "assign/auditor.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/env.h"

namespace hta {

namespace {

/// Sentinel for "task not yet seen in any bundle".
constexpr size_t kUnassigned = static_cast<size_t>(-1);

}  // namespace

Status AssignmentAuditor::CheckStructure(const Assignment& assignment) const {
  const HtaProblem& problem = *problem_;
  if (assignment.bundles.size() != problem.worker_count()) {
    return Status::InvalidArgument(
        "audit: assignment has " + std::to_string(assignment.bundles.size()) +
        " bundles for " + std::to_string(problem.worker_count()) + " workers");
  }
  std::vector<size_t> holder(problem.task_count(), kUnassigned);
  for (size_t q = 0; q < assignment.bundles.size(); ++q) {
    const TaskBundle& bundle = assignment.bundles[q];
    if (bundle.size() > problem.xmax()) {
      return Status::FailedPrecondition(
          "audit: C1 violated: worker " + std::to_string(q) + " holds " +
          std::to_string(bundle.size()) + " tasks > Xmax " +
          std::to_string(problem.xmax()));
    }
    for (TaskIndex t : bundle) {
      if (static_cast<size_t>(t) >= problem.task_count()) {
        return Status::OutOfRange(
            "audit: bundle of worker " + std::to_string(q) +
            " contains invalid task index " + std::to_string(t) + " (|T| = " +
            std::to_string(problem.task_count()) + ")");
      }
      if (holder[t] != kUnassigned) {
        return Status::FailedPrecondition(
            "audit: C2 violated: task " + std::to_string(t) +
            " assigned to worker " + std::to_string(holder[t]) +
            " and worker " + std::to_string(q));
      }
      holder[t] = q;
    }
  }
  return Status::OK();
}

Status AssignmentAuditor::CheckObjective(const Assignment& assignment,
                                         double claimed_objective) const {
  const double recomputed = TotalMotivation(*problem_, assignment);
  const double tolerance =
      kObjectiveTolerance * std::max(1.0, std::fabs(recomputed));
  // Negated <= so a NaN claim (or recompute) also fails the audit.
  if (!(std::fabs(claimed_objective - recomputed) <= tolerance)) {
    return Status::Internal(
        "audit: incremental objective " + std::to_string(claimed_objective) +
        " diverges from from-scratch recompute " + std::to_string(recomputed) +
        " by " + std::to_string(claimed_objective - recomputed) +
        " (tolerance " + std::to_string(tolerance) + ")");
  }
  return Status::OK();
}

Status AssignmentAuditor::Audit(const Assignment& assignment,
                                double claimed_objective) const {
  HTA_RETURN_IF_ERROR(CheckStructure(assignment));
  return CheckObjective(assignment, claimed_objective);
}

bool AuditEnabled() {
  static const bool enabled = GetEnvIntOr("HTA_AUDIT", 0) != 0;
  return enabled;
}

}  // namespace hta
