#ifndef HTA_ASSIGN_ASSIGNMENT_H_
#define HTA_ASSIGN_ASSIGNMENT_H_

#include <vector>

#include "core/motivation.h"
#include "qap/hta_problem.h"
#include "util/status.h"

namespace hta {

/// The output of Problem 1: one task bundle T^i_w per worker, indexed
/// by WorkerIndex. Tasks not appearing in any bundle stay unassigned
/// (and, in the adaptive engine, remain available next iteration).
struct Assignment {
  std::vector<TaskBundle> bundles;

  /// Total number of assigned tasks across all workers.
  size_t AssignedTaskCount() const {
    size_t total = 0;
    for (const auto& b : bundles) total += b.size();
    return total;
  }
};

/// Verifies feasibility against Problem 1's constraints:
///  * one bundle per worker,
///  * every index a valid task,
///  * C1: |T^i_w| <= Xmax for every worker,
///  * C2: bundles pairwise disjoint (each task at most once overall).
Status ValidateAssignment(const HtaProblem& problem,
                          const Assignment& assignment);

/// The HTA objective (Problem 1): sum over workers of motiv(T^i_w, w)
/// per Eq. 3, using each worker's own (alpha, beta).
double TotalMotivation(const HtaProblem& problem,
                       const Assignment& assignment);

/// Per-worker motivation values (same order as workers()).
std::vector<double> PerWorkerMotivation(const HtaProblem& problem,
                                        const Assignment& assignment);

}  // namespace hta

#endif  // HTA_ASSIGN_ASSIGNMENT_H_
