#include "assign/baselines.h"

#include <algorithm>

#include "util/timer.h"

namespace hta {

std::string StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kHtaGre:
      return "hta-gre";
    case StrategyKind::kHtaGreDiv:
      return "hta-gre-div";
    case StrategyKind::kHtaGreRel:
      return "hta-gre-rel";
    case StrategyKind::kRandom:
      return "random";
  }
  return "unknown";
}

Result<HtaSolveResult> SolveWithFixedWeights(const HtaProblem& problem,
                                             MotivationWeights weights,
                                             uint64_t seed, SwapMode swap,
                                             size_t threads) {
  std::vector<Worker> overridden;
  overridden.reserve(problem.worker_count());
  for (const Worker& w : problem.workers()) {
    overridden.emplace_back(w.id(), w.interests(), weights);
  }
  // WithWorkers keeps the task side intact — the same oracle (shared
  // subset view, dense matrix, or on-the-fly) answers for the override
  // solve, so no per-strategy problem rebuild happens.
  const HtaProblem fixed = problem.WithWorkers(&overridden);
  HtaSolverOptions options;
  options.lsap = LsapMethod::kGreedy;
  options.swap = swap;
  options.seed = seed;
  options.threads = threads;
  HTA_ASSIGN_OR_RETURN(HtaSolveResult result, SolveHta(fixed, options));
  // Report the objective under the *true* worker weights so strategies
  // stay comparable.
  result.stats.motivation = TotalMotivation(problem, result.assignment);
  return result;
}

Result<HtaSolveResult> SolveRandomAssignment(const HtaProblem& problem,
                                             Rng* rng) {
  HTA_CHECK(rng != nullptr);
  WallTimer timer;
  std::vector<TaskIndex> order(problem.task_count());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TaskIndex>(i);
  }
  rng->Shuffle(&order);

  HtaSolveResult result;
  result.assignment.bundles.assign(problem.worker_count(), {});
  const size_t capacity = problem.worker_count() * problem.xmax();
  const size_t to_assign = std::min(order.size(), capacity);
  for (size_t i = 0; i < to_assign; ++i) {
    result.assignment.bundles[i % problem.worker_count()].push_back(order[i]);
  }
  result.stats.motivation = TotalMotivation(problem, result.assignment);
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<HtaSolveResult> SolveGreedyRelevance(const HtaProblem& problem) {
  WallTimer timer;
  HtaSolveResult result;
  result.assignment.bundles.assign(problem.worker_count(), {});
  std::vector<bool> taken(problem.task_count(), false);
  size_t assigned = 0;
  const size_t capacity = problem.worker_count() * problem.xmax();
  const size_t target = std::min(problem.task_count(), capacity);
  while (assigned < target) {
    bool progressed = false;
    for (size_t q = 0; q < problem.worker_count() && assigned < target; ++q) {
      TaskBundle& bundle = result.assignment.bundles[q];
      if (bundle.size() >= problem.xmax()) continue;
      double best_rel = -1.0;
      size_t best_task = problem.task_count();
      for (size_t t = 0; t < problem.task_count(); ++t) {
        if (taken[t]) continue;
        const double rel = problem.Relevance(static_cast<TaskIndex>(t),
                                             static_cast<WorkerIndex>(q));
        if (rel > best_rel) {
          best_rel = rel;
          best_task = t;
        }
      }
      if (best_task == problem.task_count()) break;
      taken[best_task] = true;
      bundle.push_back(static_cast<TaskIndex>(best_task));
      ++assigned;
      progressed = true;
    }
    if (!progressed) break;
  }
  result.stats.motivation = TotalMotivation(problem, result.assignment);
  result.stats.total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<HtaSolveResult> SolveWithStrategy(const HtaProblem& problem,
                                         StrategyKind kind, uint64_t seed,
                                         Rng* rng, SwapMode swap,
                                         size_t threads) {
  switch (kind) {
    case StrategyKind::kHtaGre: {
      HtaSolverOptions options;
      options.lsap = LsapMethod::kGreedy;
      options.swap = swap;
      options.seed = seed;
      options.threads = threads;
      return SolveHta(problem, options);
    }
    case StrategyKind::kHtaGreDiv:
      return SolveWithFixedWeights(problem, MotivationWeights::DiversityOnly(),
                                   seed, swap, threads);
    case StrategyKind::kHtaGreRel:
      return SolveWithFixedWeights(problem, MotivationWeights::RelevanceOnly(),
                                   seed, swap, threads);
    case StrategyKind::kRandom: {
      HTA_CHECK(rng != nullptr)
          << "random strategy needs an Rng";
      return SolveRandomAssignment(problem, rng);
    }
  }
  return Status::InvalidArgument("unknown strategy");
}

}  // namespace hta
