#include "assign/local_search.h"

#include <algorithm>

namespace hta {

namespace {

/// Objective change from replacing bundle member `out` (at position
/// `pos`) with task `in`, holding bundle size fixed.
double ReplaceDelta(const HtaProblem& problem, const TaskBundle& bundle,
                    size_t pos, TaskIndex in, WorkerIndex worker) {
  const TaskIndex out = bundle[pos];
  const Worker& w = problem.workers()[worker];
  const TaskDistanceOracle& d = problem.oracle();
  double diversity_delta = 0.0;
  for (size_t m = 0; m < bundle.size(); ++m) {
    if (m == pos) continue;
    diversity_delta += d(in, bundle[m]) - d(out, bundle[m]);
  }
  const double relevance_delta =
      problem.Relevance(in, worker) - problem.Relevance(out, worker);
  const double size_minus_one = static_cast<double>(bundle.size()) - 1.0;
  return 2.0 * w.weights().alpha * diversity_delta +
         w.weights().beta * size_minus_one * relevance_delta;
}

/// Objective change from appending `in` to the bundle (size grows, so
/// the (|T'| - 1) relevance normalizer changes for every member:
/// recompute the bundle's motivation directly).
double InsertDelta(const HtaProblem& problem, const TaskBundle& bundle,
                   TaskIndex in, WorkerIndex worker) {
  const Worker& w = problem.workers()[worker];
  const double before = Motivation(bundle, w, problem.oracle());
  TaskBundle grown = bundle;
  grown.push_back(in);
  const double after = Motivation(grown, w, problem.oracle());
  return after - before;
}

}  // namespace

Result<LocalSearchResult> ImproveAssignment(
    const HtaProblem& problem, const Assignment& initial,
    const LocalSearchOptions& options) {
  HTA_RETURN_IF_ERROR(ValidateAssignment(problem, initial));

  LocalSearchResult result;
  result.assignment = initial;
  result.initial_motivation = TotalMotivation(problem, initial);

  std::vector<bool> assigned(problem.task_count(), false);
  for (const TaskBundle& b : result.assignment.bundles) {
    for (TaskIndex t : b) assigned[t] = true;
  }
  std::vector<TaskIndex> unassigned;
  for (size_t t = 0; t < problem.task_count(); ++t) {
    if (!assigned[t]) unassigned.push_back(static_cast<TaskIndex>(t));
  }

  const size_t worker_count = problem.worker_count();
  for (result.passes = 0; result.passes < options.max_passes;
       ++result.passes) {
    bool improved_this_pass = false;

    // Replace: assigned <-> unassigned, per worker.
    if (options.enable_replace) {
      for (WorkerIndex q = 0; q < worker_count; ++q) {
        TaskBundle& bundle = result.assignment.bundles[q];
        for (size_t pos = 0; pos < bundle.size(); ++pos) {
          for (size_t u = 0; u < unassigned.size(); ++u) {
            const double delta =
                ReplaceDelta(problem, bundle, pos, unassigned[u], q);
            if (delta > 1e-12) {
              std::swap(bundle[pos], unassigned[u]);
              ++result.improving_moves;
              improved_this_pass = true;
            }
          }
        }
      }
    }

    // Exchange: swap members between two bundles.
    if (options.enable_exchange) {
      for (WorkerIndex q1 = 0; q1 < worker_count; ++q1) {
        for (WorkerIndex q2 = static_cast<WorkerIndex>(q1 + 1);
             q2 < worker_count; ++q2) {
          TaskBundle& b1 = result.assignment.bundles[q1];
          TaskBundle& b2 = result.assignment.bundles[q2];
          for (size_t p1 = 0; p1 < b1.size(); ++p1) {
            for (size_t p2 = 0; p2 < b2.size(); ++p2) {
              const double delta =
                  ReplaceDelta(problem, b1, p1, b2[p2], q1) +
                  ReplaceDelta(problem, b2, p2, b1[p1], q2);
              if (delta > 1e-12) {
                std::swap(b1[p1], b2[p2]);
                ++result.improving_moves;
                improved_this_pass = true;
              }
            }
          }
        }
      }
    }

    // Insert: grow under-capacity bundles from the unassigned pool.
    // With non-negative diversity and relevance an insert never hurts
    // (delta >= 0), so spare capacity is always filled; only strictly
    // positive deltas count as improving moves.
    if (options.enable_insert) {
      for (WorkerIndex q = 0; q < worker_count; ++q) {
        TaskBundle& bundle = result.assignment.bundles[q];
        while (bundle.size() < problem.xmax() && !unassigned.empty()) {
          double best_delta = -1.0;
          size_t best_u = unassigned.size();
          for (size_t u = 0; u < unassigned.size(); ++u) {
            const double delta = InsertDelta(problem, bundle, unassigned[u], q);
            if (delta > best_delta) {
              best_delta = delta;
              best_u = u;
            }
          }
          if (best_u == unassigned.size() || best_delta < 0.0) break;
          bundle.push_back(unassigned[best_u]);
          unassigned[best_u] = unassigned.back();
          unassigned.pop_back();
          if (best_delta > 1e-12) {
            ++result.improving_moves;
            improved_this_pass = true;
          }
        }
      }
    }

    if (!improved_this_pass) {
      result.reached_local_optimum = true;
      break;
    }
  }

  result.motivation = TotalMotivation(problem, result.assignment);
  HTA_DCHECK(ValidateAssignment(problem, result.assignment).ok());
  return result;
}

}  // namespace hta
