#include "assign/local_search.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "assign/auditor.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace hta {

namespace {

/// Local-search observability. Probe counters are incremented once per
/// fixed scan block (never per thread), so totals are exact and
/// independent of HTA_THREADS; pass/move totals are folded in from the
/// result struct after the pass loop finishes.
struct LocalSearchMetrics {
  metrics::Counter runs{"local_search.runs"};
  metrics::Counter passes{"local_search.passes"};
  metrics::Counter moves_applied{"local_search.moves_applied"};
  metrics::Counter replace_probes{"local_search.replace_probes"};
  metrics::Counter exchange_probes{"local_search.exchange_probes"};
  metrics::Counter insert_probes{"local_search.insert_probes"};
  metrics::Histogram seconds{"local_search.seconds",
                             metrics::LatencyBucketsSeconds()};
};

LocalSearchMetrics& Lsm() {
  static LocalSearchMetrics* m = new LocalSearchMetrics();
  return *m;
}

/// Strict improvement threshold shared by every scan mode.
constexpr double kImprovementEps = 1e-12;

/// Relative margin for argmax scans: a later candidate only displaces
/// the incumbent when its delta is better by this margin. Exact-
/// arithmetic ties between candidates (common with rational Jaccard /
/// Dice distances) can round to FP values that differ by a few ulps
/// between the incremental tables and a from-scratch evaluation; the
/// margin makes both evaluators resolve such ties to the same (lowest)
/// scan index, so the incremental search reproduces the naive
/// reference move-for-move.
constexpr double kTieRelTolerance = 1e-9;

/// Tolerant "strictly better" used by every best-candidate selection.
inline bool StrictlyBetter(double delta, double best) {
  const double scale = std::max({1.0, std::fabs(delta), std::fabs(best)});
  return delta > best + kTieRelTolerance * scale;
}

/// Sentinel candidate index for "no improving candidate found".
constexpr size_t kNoCandidate = static_cast<size_t>(-1);

/// Unassigned candidates per fixed block of a deterministic scan.
constexpr size_t kCandidateGrain = 128;

/// Partner workers per fixed block of a deterministic exchange scan.
constexpr size_t kWorkerScanGrain = 2;

/// Tasks per fixed block of the incremental div_sum table updates.
constexpr size_t kTableGrain = 256;

/// Best replace/insert candidate of one scan row (delta, candidate
/// position in the unassigned list). Folding with StrictlyBetter in
/// ascending block order keeps the lowest index on (near-)ties.
struct BestCandidate {
  double delta = kImprovementEps;
  size_t index = kNoCandidate;
};

/// Best exchange partner of one scan row.
struct BestExchange {
  double delta = kImprovementEps;
  WorkerIndex q2 = 0;
  size_t p2 = kNoCandidate;
};

/// Move evaluator backed by the retained naive reference deltas: every
/// probe recomputes from the bundles, so Apply* only mutate the
/// assignment. Interface-compatible with BundleStatsCache for the
/// templated scan drivers.
class NaiveEvaluator {
 public:
  NaiveEvaluator(const HtaProblem* problem, Assignment* assignment)
      : problem_(problem), assignment_(assignment) {}

  double ReplaceDelta(WorkerIndex worker, size_t pos, TaskIndex in) const {
    return NaiveReplaceDelta(*problem_, assignment_->bundles[worker], pos, in,
                             worker);
  }

  double ExchangeDelta(WorkerIndex q1, size_t p1, WorkerIndex q2,
                       size_t p2) const {
    const TaskBundle& b1 = assignment_->bundles[q1];
    const TaskBundle& b2 = assignment_->bundles[q2];
    return NaiveReplaceDelta(*problem_, b1, p1, b2[p2], q1) +
           NaiveReplaceDelta(*problem_, b2, p2, b1[p1], q2);
  }

  double InsertDelta(WorkerIndex worker, TaskIndex in) const {
    return NaiveInsertDelta(*problem_, assignment_->bundles[worker], in,
                            worker);
  }

  void ApplyReplace(WorkerIndex worker, size_t pos, TaskIndex in) {
    assignment_->bundles[worker][pos] = in;
  }

  void ApplyInsert(WorkerIndex worker, TaskIndex in) {
    assignment_->bundles[worker].push_back(in);
  }

  /// The naive evaluator has no incremental tables; its "cached"
  /// objective is the from-scratch recompute, so the per-pass audit
  /// degenerates to checking the applied-delta accumulator.
  double CachedTotalMotivation() const {
    return TotalMotivation(*problem_, *assignment_);
  }

 private:
  const HtaProblem* problem_;
  Assignment* assignment_;
};

/// Legacy first-improvement replace scan: apply every improving
/// candidate immediately and keep scanning from the mutated state.
template <typename Eval>
bool ReplacePassLegacy(const HtaProblem& problem, Assignment* assignment,
                       std::vector<TaskIndex>* unassigned, Eval* eval,
                       LocalSearchResult* result) {
  bool improved = false;
  const size_t worker_count = problem.worker_count();
  for (WorkerIndex q = 0; q < worker_count; ++q) {
    TaskBundle& bundle = assignment->bundles[q];
    for (size_t pos = 0; pos < bundle.size(); ++pos) {
      Lsm().replace_probes.Add(unassigned->size());
      for (size_t u = 0; u < unassigned->size(); ++u) {
        const double delta = eval->ReplaceDelta(q, pos, (*unassigned)[u]);
        if (delta > kImprovementEps) {
          const TaskIndex out = bundle[pos];
          eval->ApplyReplace(q, pos, (*unassigned)[u]);
          (*unassigned)[u] = out;
          result->applied_delta += delta;
          ++result->improving_moves;
          improved = true;
        }
      }
    }
  }
  return improved;
}

/// Deterministic replace scan: probe all candidates for one slot
/// concurrently, apply the best improving one, move to the next slot.
template <typename Eval>
bool ReplacePassBest(const HtaProblem& problem,
                     const LocalSearchOptions& options, Assignment* assignment,
                     std::vector<TaskIndex>* unassigned, Eval* eval,
                     LocalSearchResult* result) {
  if (unassigned->empty()) return false;
  bool improved = false;
  const size_t worker_count = problem.worker_count();
  for (WorkerIndex q = 0; q < worker_count; ++q) {
    TaskBundle& bundle = assignment->bundles[q];
    for (size_t pos = 0; pos < bundle.size(); ++pos) {
      const BestCandidate best = ParallelReduce<BestCandidate>(
          0, unassigned->size(), kCandidateGrain, BestCandidate{},
          [&](size_t begin, size_t end) {
            Lsm().replace_probes.Add(end - begin);
            BestCandidate local;
            for (size_t u = begin; u < end; ++u) {
              const double delta = eval->ReplaceDelta(q, pos, (*unassigned)[u]);
              if (StrictlyBetter(delta, local.delta)) {
                local = BestCandidate{delta, u};
              }
            }
            return local;
          },
          [](BestCandidate acc, BestCandidate partial) {
            return StrictlyBetter(partial.delta, acc.delta) ? partial : acc;
          },
          options.threads);
      if (best.index == kNoCandidate) continue;
      const TaskIndex out = bundle[pos];
      eval->ApplyReplace(q, pos, (*unassigned)[best.index]);
      (*unassigned)[best.index] = out;
      result->applied_delta += best.delta;
      ++result->improving_moves;
      improved = true;
    }
  }
  return improved;
}

/// Legacy first-improvement exchange scan.
template <typename Eval>
bool ExchangePassLegacy(const HtaProblem& problem, Assignment* assignment,
                        Eval* eval, LocalSearchResult* result) {
  bool improved = false;
  const size_t worker_count = problem.worker_count();
  for (WorkerIndex q1 = 0; q1 < worker_count; ++q1) {
    for (WorkerIndex q2 = static_cast<WorkerIndex>(q1 + 1); q2 < worker_count;
         ++q2) {
      TaskBundle& b1 = assignment->bundles[q1];
      TaskBundle& b2 = assignment->bundles[q2];
      Lsm().exchange_probes.Add(b1.size() * b2.size());
      for (size_t p1 = 0; p1 < b1.size(); ++p1) {
        for (size_t p2 = 0; p2 < b2.size(); ++p2) {
          const double delta = eval->ExchangeDelta(q1, p1, q2, p2);
          if (delta > kImprovementEps) {
            const TaskIndex t1 = b1[p1];
            const TaskIndex t2 = b2[p2];
            eval->ApplyReplace(q1, p1, t2);
            eval->ApplyReplace(q2, p2, t1);
            result->applied_delta += delta;
            ++result->improving_moves;
            improved = true;
          }
        }
      }
    }
  }
  return improved;
}

/// Deterministic exchange scan: for each source slot, probe every
/// partner slot of every later worker concurrently and apply the best
/// improving swap.
template <typename Eval>
bool ExchangePassBest(const HtaProblem& problem,
                      const LocalSearchOptions& options, Assignment* assignment,
                      Eval* eval, LocalSearchResult* result) {
  bool improved = false;
  const size_t worker_count = problem.worker_count();
  for (WorkerIndex q1 = 0; q1 + 1 < worker_count; ++q1) {
    TaskBundle& b1 = assignment->bundles[q1];
    for (size_t p1 = 0; p1 < b1.size(); ++p1) {
      const BestExchange best = ParallelReduce<BestExchange>(
          q1 + 1, worker_count, kWorkerScanGrain, BestExchange{},
          [&](size_t begin, size_t end) {
            BestExchange local;
            size_t block_probes = 0;
            for (size_t q2 = begin; q2 < end; ++q2) {
              const size_t b2_size = assignment->bundles[q2].size();
              block_probes += b2_size;
              for (size_t p2 = 0; p2 < b2_size; ++p2) {
                const double delta = eval->ExchangeDelta(
                    q1, p1, static_cast<WorkerIndex>(q2), p2);
                if (StrictlyBetter(delta, local.delta)) {
                  local =
                      BestExchange{delta, static_cast<WorkerIndex>(q2), p2};
                }
              }
            }
            Lsm().exchange_probes.Add(block_probes);
            return local;
          },
          [](BestExchange acc, BestExchange partial) {
            return StrictlyBetter(partial.delta, acc.delta) ? partial : acc;
          },
          options.threads);
      if (best.p2 == kNoCandidate) continue;
      TaskBundle& b2 = assignment->bundles[best.q2];
      const TaskIndex t1 = b1[p1];
      const TaskIndex t2 = b2[best.p2];
      eval->ApplyReplace(q1, p1, t2);
      eval->ApplyReplace(best.q2, best.p2, t1);
      result->applied_delta += best.delta;
      ++result->improving_moves;
      improved = true;
    }
  }
  return improved;
}

/// Insert scan. Selection is identical in both scan modes (greedy
/// best-candidate with lowest-index ties, exactly the legacy argmax);
/// the deterministic mode merely probes candidates concurrently.
/// With non-negative diversity and relevance an insert never hurts
/// (delta >= 0), so spare capacity is always filled; only strictly
/// positive deltas count as improving moves.
template <typename Eval>
bool InsertPass(const HtaProblem& problem, const LocalSearchOptions& options,
                Assignment* assignment, std::vector<TaskIndex>* unassigned,
                Eval* eval, LocalSearchResult* result) {
  const bool parallel_scan =
      options.scan == LocalSearchScan::kDeterministicBest;
  bool improved = false;
  const size_t worker_count = problem.worker_count();
  for (WorkerIndex q = 0; q < worker_count; ++q) {
    TaskBundle& bundle = assignment->bundles[q];
    while (bundle.size() < problem.xmax() && !unassigned->empty()) {
      double best_delta = -1.0;
      size_t best_u = kNoCandidate;
      if (parallel_scan) {
        struct InsertBest {
          double delta = -1.0;
          size_t index = kNoCandidate;
        };
        const InsertBest best = ParallelReduce<InsertBest>(
            0, unassigned->size(), kCandidateGrain, InsertBest{},
            [&](size_t begin, size_t end) {
              Lsm().insert_probes.Add(end - begin);
              InsertBest local;
              for (size_t u = begin; u < end; ++u) {
                const double delta = eval->InsertDelta(q, (*unassigned)[u]);
                if (StrictlyBetter(delta, local.delta)) {
                  local = InsertBest{delta, u};
                }
              }
              return local;
            },
            [](InsertBest acc, InsertBest partial) {
              return StrictlyBetter(partial.delta, acc.delta) ? partial : acc;
            },
            options.threads);
        best_delta = best.delta;
        best_u = best.index;
      } else {
        Lsm().insert_probes.Add(unassigned->size());
        for (size_t u = 0; u < unassigned->size(); ++u) {
          const double delta = eval->InsertDelta(q, (*unassigned)[u]);
          if (StrictlyBetter(delta, best_delta)) {
            best_delta = delta;
            best_u = u;
          }
        }
      }
      if (best_u == kNoCandidate || best_delta < 0.0) break;
      eval->ApplyInsert(q, (*unassigned)[best_u]);
      (*unassigned)[best_u] = unassigned->back();
      unassigned->pop_back();
      result->applied_delta += best_delta;
      ++result->inserts_applied;
      if (best_delta > kImprovementEps) {
        ++result->improving_moves;
        improved = true;
      }
    }
  }
  return improved;
}

/// The pass loop shared by both evaluators and both scan modes. With
/// `auditor` non-null, every completed pass is validated: structure
/// (C1/C2, index bounds) plus two independent objective claims — the
/// applied-delta accumulator and the evaluator's cached sums — against
/// the from-scratch Eq. 3 recompute.
template <typename Eval>
Status RunPasses(const HtaProblem& problem, const LocalSearchOptions& options,
                 Assignment* assignment, std::vector<TaskIndex>* unassigned,
                 Eval* eval, const AssignmentAuditor* auditor,
                 LocalSearchResult* result) {
  const bool deterministic =
      options.scan == LocalSearchScan::kDeterministicBest;
  for (result->passes = 0; result->passes < options.max_passes;
       ++result->passes) {
    bool improved_this_pass = false;
    if (options.enable_replace) {
      const bool improved =
          deterministic
              ? ReplacePassBest(problem, options, assignment, unassigned, eval,
                                result)
              : ReplacePassLegacy(problem, assignment, unassigned, eval,
                                  result);
      improved_this_pass = improved || improved_this_pass;
    }
    if (options.enable_exchange) {
      const bool improved =
          deterministic
              ? ExchangePassBest(problem, options, assignment, eval, result)
              : ExchangePassLegacy(problem, assignment, eval, result);
      improved_this_pass = improved || improved_this_pass;
    }
    if (options.enable_insert) {
      const bool improved =
          InsertPass(problem, options, assignment, unassigned, eval, result);
      improved_this_pass = improved || improved_this_pass;
    }
    if (auditor != nullptr) {
      HTA_RETURN_IF_ERROR(auditor->Audit(
          *assignment, result->initial_motivation + result->applied_delta));
      HTA_RETURN_IF_ERROR(auditor->CheckObjective(
          *assignment, eval->CachedTotalMotivation()));
    }
    if (!improved_this_pass) {
      result->reached_local_optimum = true;
      break;
    }
  }
  return Status::OK();
}

}  // namespace

double NaiveReplaceDelta(const HtaProblem& problem, const TaskBundle& bundle,
                         size_t pos, TaskIndex in, WorkerIndex worker) {
  const TaskIndex out = bundle[pos];
  const Worker& w = problem.workers()[worker];
  const TaskDistanceOracle& d = problem.oracle();
  double diversity_delta = 0.0;
  for (size_t m = 0; m < bundle.size(); ++m) {
    if (m == pos) continue;
    diversity_delta += d(in, bundle[m]) - d(out, bundle[m]);
  }
  const double relevance_delta =
      problem.Relevance(in, worker) - problem.Relevance(out, worker);
  const double size_minus_one = static_cast<double>(bundle.size()) - 1.0;
  return 2.0 * w.weights().alpha * diversity_delta +
         w.weights().beta * size_minus_one * relevance_delta;
}

double NaiveInsertDelta(const HtaProblem& problem, const TaskBundle& bundle,
                        TaskIndex in, WorkerIndex worker) {
  const Worker& w = problem.workers()[worker];
  const double before = Motivation(bundle, w, problem.oracle());
  TaskBundle grown = bundle;
  grown.push_back(in);
  const double after = Motivation(grown, w, problem.oracle());
  return after - before;
}

BundleStatsCache::BundleStatsCache(const HtaProblem& problem,
                                   Assignment* assignment, size_t max_threads,
                                   DistanceBackend backend)
    : problem_(&problem),
      assignment_(assignment),
      max_threads_(max_threads),
      task_count_(problem.task_count()),
      worker_count_(problem.worker_count()) {
  const TaskDistanceOracle& d = problem.oracle();
  problem.FillRelevanceTable(&rel_, max_threads_, backend);
  div_sum_.assign(worker_count_ * task_count_, 0.0);
  bundle_div_.assign(worker_count_, 0.0);
  bundle_rel_.assign(worker_count_, 0.0);
  for (size_t q = 0; q < worker_count_; ++q) {
    const TaskBundle& bundle = assignment_->bundles[q];
    ParallelFor(
        0, task_count_, kTableGrain,
        [&](size_t t) {
          double sum = 0.0;
          for (TaskIndex m : bundle) sum += d(static_cast<TaskIndex>(t), m);
          div_sum_[q * task_count_ + t] = sum;
        },
        max_threads_);
    bundle_div_[q] = SetDiversity(bundle, d);
    double rel_sum = 0.0;
    for (TaskIndex m : bundle) {
      rel_sum += rel_[static_cast<size_t>(m) * worker_count_ + q];
    }
    bundle_rel_[q] = rel_sum;
  }
}

double BundleStatsCache::ReplaceDelta(WorkerIndex worker, size_t pos,
                                      TaskIndex in) const {
  const TaskBundle& bundle = assignment_->bundles[worker];
  HTA_DCHECK_LT(pos, bundle.size());
  const TaskIndex out = bundle[pos];
  const MotivationWeights& w = problem_->workers()[worker].weights();
  const double* row = div_sum_.data() + static_cast<size_t>(worker) *
                                            task_count_;
  // Σ_{m != pos} d(in, m) = div_sum[in] - d(in, out);
  // Σ_{m != pos} d(out, m) = div_sum[out]  (d(out, out) = 0).
  const double diversity_delta =
      (row[in] - problem_->oracle()(in, out)) - row[out];
  const double relevance_delta =
      rel_[static_cast<size_t>(in) * worker_count_ + worker] -
      rel_[static_cast<size_t>(out) * worker_count_ + worker];
  const double size_minus_one = static_cast<double>(bundle.size()) - 1.0;
  return 2.0 * w.alpha * diversity_delta +
         w.beta * size_minus_one * relevance_delta;
}

double BundleStatsCache::ExchangeDelta(WorkerIndex q1, size_t p1,
                                       WorkerIndex q2, size_t p2) const {
  const TaskBundle& b1 = assignment_->bundles[q1];
  const TaskBundle& b2 = assignment_->bundles[q2];
  return ReplaceDelta(q1, p1, b2[p2]) + ReplaceDelta(q2, p2, b1[p1]);
}

double BundleStatsCache::InsertDelta(WorkerIndex worker, TaskIndex in) const {
  const TaskBundle& bundle = assignment_->bundles[worker];
  const MotivationWeights& w = problem_->workers()[worker].weights();
  const double diversity_gain =
      div_sum_[static_cast<size_t>(worker) * task_count_ + in];
  const double rel_in = rel_[static_cast<size_t>(in) * worker_count_ + worker];
  // after - before simplifies to a subtraction-free form — with
  // non-negative distances and relevance the delta is >= 0 even in
  // floating point, so inserts can never appear to hurt:
  //   2α·Σ_m d(in, m) + β·(TR(T') + |T'|·rel(in)).
  return 2.0 * w.alpha * diversity_gain +
         w.beta * (bundle_rel_[worker] +
                   static_cast<double>(bundle.size()) * rel_in);
}

void BundleStatsCache::ApplyReplace(WorkerIndex worker, size_t pos,
                                    TaskIndex in) {
  TaskBundle& bundle = assignment_->bundles[worker];
  HTA_DCHECK_LT(pos, bundle.size());
  const TaskIndex out = bundle[pos];
  const TaskDistanceOracle& d = problem_->oracle();
  double* row = div_sum_.data() + static_cast<size_t>(worker) * task_count_;
  bundle_div_[worker] += (row[in] - d(in, out)) - row[out];
  bundle_rel_[worker] +=
      rel_[static_cast<size_t>(in) * worker_count_ + worker] -
      rel_[static_cast<size_t>(out) * worker_count_ + worker];
  ParallelFor(
      0, task_count_, kTableGrain,
      [&](size_t t) {
        row[t] += d(static_cast<TaskIndex>(t), in) -
                  d(static_cast<TaskIndex>(t), out);
      },
      max_threads_);
  bundle[pos] = in;
}

double BundleStatsCache::CachedTotalMotivation() const {
  double total = 0.0;
  for (size_t q = 0; q < worker_count_; ++q) {
    const MotivationWeights& w = problem_->workers()[q].weights();
    const double size =
        static_cast<double>(assignment_->bundles[q].size());
    total += 2.0 * w.alpha * bundle_div_[q] +
             w.beta * (size - 1.0) * bundle_rel_[q];
  }
  return total;
}

void BundleStatsCache::ApplyInsert(WorkerIndex worker, TaskIndex in) {
  TaskBundle& bundle = assignment_->bundles[worker];
  const TaskDistanceOracle& d = problem_->oracle();
  double* row = div_sum_.data() + static_cast<size_t>(worker) * task_count_;
  bundle_div_[worker] += row[in];
  bundle_rel_[worker] += rel_[static_cast<size_t>(in) * worker_count_ + worker];
  ParallelFor(
      0, task_count_, kTableGrain,
      [&](size_t t) { row[t] += d(static_cast<TaskIndex>(t), in); },
      max_threads_);
  bundle.push_back(in);
}

Result<LocalSearchResult> ImproveAssignment(
    const HtaProblem& problem, const Assignment& initial,
    const LocalSearchOptions& options) {
  HTA_RETURN_IF_ERROR(ValidateAssignment(problem, initial));
  Lsm().runs.Add();
  trace::PhaseSpan improve_span("local_search.improve", &Lsm().seconds);

  LocalSearchResult result;
  result.assignment = initial;
  result.initial_motivation = TotalMotivation(problem, initial);

  std::vector<bool> assigned(problem.task_count(), false);
  for (const TaskBundle& b : result.assignment.bundles) {
    for (TaskIndex t : b) assigned[t] = true;
  }
  std::vector<TaskIndex> unassigned;
  for (size_t t = 0; t < problem.task_count(); ++t) {
    if (!assigned[t]) unassigned.push_back(static_cast<TaskIndex>(t));
  }

  const AssignmentAuditor auditor(problem);
  const AssignmentAuditor* audit = AuditEnabled() ? &auditor : nullptr;
  if (options.evaluation == LocalSearchEval::kIncremental) {
    BundleStatsCache cache(problem, &result.assignment, options.threads,
                           options.backend);
    HTA_RETURN_IF_ERROR(RunPasses(problem, options, &result.assignment,
                                  &unassigned, &cache, audit, &result));
  } else {
    NaiveEvaluator eval(&problem, &result.assignment);
    HTA_RETURN_IF_ERROR(RunPasses(problem, options, &result.assignment,
                                  &unassigned, &eval, audit, &result));
  }

  Lsm().passes.Add(result.passes);
  Lsm().moves_applied.Add(result.improving_moves);
  result.motivation = TotalMotivation(problem, result.assignment);
  HTA_DCHECK(ValidateAssignment(problem, result.assignment).ok());
  return result;
}

}  // namespace hta
