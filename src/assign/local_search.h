#ifndef HTA_ASSIGN_LOCAL_SEARCH_H_
#define HTA_ASSIGN_LOCAL_SEARCH_H_

#include <vector>

#include "assign/assignment.h"
#include "core/packed_set.h"
#include "util/result.h"

namespace hta {

/// Local-search refinement of a feasible HTA assignment (an extension
/// beyond the paper): starting from any feasible assignment — typically
/// HTA-GRE's — repeatedly apply improving moves until a local optimum
/// or the pass budget is reached. Never decreases the objective, always
/// preserves feasibility (C1/C2), so approximation guarantees of the
/// seed assignment carry over.
///
/// Move neighborhood:
///  * replace  — swap an assigned task with an unassigned one (same
///               bundle position);
///  * exchange — swap two tasks between two workers' bundles;
///  * insert   — append an unassigned task to a bundle with spare
///               capacity.

/// How each pass scans the move neighborhood.
enum class LocalSearchScan {
  /// Deterministic parallel scan (the default): for every bundle slot,
  /// all candidates are probed concurrently on the global thread pool
  /// and the *best* improving candidate is applied (ties broken by
  /// lowest candidate index, folded in ascending fixed-block order per
  /// util/parallel.h), then the scan advances to the next slot. The
  /// selected moves — and therefore the final assignment — are
  /// bit-identical for every HTA_THREADS setting and every `threads`
  /// cap.
  kDeterministicBest,
  /// The pre-incremental serial semantics: first-improvement, applying
  /// every improving candidate immediately as the nested loops reach
  /// it and continuing the scan from the mutated state. Single
  /// threaded by construction; retained as the reference behavior.
  kLegacySerial,
};

/// Which move evaluator computes objective deltas.
enum class LocalSearchEval {
  /// O(1) deltas from incrementally maintained bundle statistics
  /// (see BundleStatsCache). The default.
  kIncremental,
  /// The retained naive reference: O(Xmax) replace/exchange deltas and
  /// O(Xmax²) insert deltas recomputed from scratch per probe. Only
  /// useful to equivalence tests and benches.
  kNaiveReference,
};

struct LocalSearchOptions {
  /// Full passes over the neighborhood before giving up.
  size_t max_passes = 8;
  bool enable_replace = true;
  bool enable_exchange = true;
  bool enable_insert = true;
  LocalSearchScan scan = LocalSearchScan::kDeterministicBest;
  LocalSearchEval evaluation = LocalSearchEval::kIncremental;
  /// Caps the threads drawn from the global pool by the deterministic
  /// scan and the incremental-table updates (0 = whole pool, 1 =
  /// serial). Any value produces bit-identical results.
  size_t threads = 0;
  /// Backend for the dense rel[t][q] fill of BundleStatsCache: the
  /// batched rectangular SoA kernel (default) or the per-pair scalar
  /// path. Bit-identical tables either way.
  DistanceBackend backend = DistanceBackend::kBatched;
};

struct LocalSearchResult {
  Assignment assignment;
  double motivation = 0.0;       ///< Eq. 3 objective after refinement.
  double initial_motivation = 0.0;
  /// Sum of the evaluator-reported deltas of every applied move, so
  /// initial_motivation + applied_delta is the incrementally tracked
  /// objective. With HTA_AUDIT=1 the AssignmentAuditor asserts it
  /// against a from-scratch recompute after every pass — the
  /// stale-delta detector for the incremental tables.
  double applied_delta = 0.0;
  size_t improving_moves = 0;
  /// Applied insert moves, including the zero-delta capacity fills that
  /// don't count as improving. For a warm-started solve seeded from a
  /// partial carry-over assignment this is the number of bundle holes
  /// patched from the fresh sample (engine.warm_start.repaired_slots).
  size_t inserts_applied = 0;
  size_t passes = 0;             ///< Passes actually executed.
  bool reached_local_optimum = false;
};

/// Refines `initial` for `problem`. Fails with the validator's error if
/// the initial assignment is infeasible.
Result<LocalSearchResult> ImproveAssignment(const HtaProblem& problem,
                                            const Assignment& initial,
                                            const LocalSearchOptions& options);

/// Incremental per-bundle statistics that make every local-search move
/// evaluation O(1) instead of O(Xmax)–O(Xmax²):
///
///  * div_sum[q][t] — Σ_{m ∈ bundle(q)} d(t, m) for *every* candidate
///    task t, so a replace/insert diversity delta is two table reads
///    plus at most one oracle call;
///  * the bundle's internal diversity and relevance sums, so an insert
///    delta needs no Motivation() evaluation at all;
///  * a dense rel[t][q] relevance cache, so no probe ever recomputes a
///    task–worker distance.
///
/// Tables are built once in O(|T|·|W|·Xmax) and updated in O(|T|) per
/// *applied* move (probes leave them untouched). The cache mutates the
/// externally owned assignment through ApplyReplace/ApplyInsert; all
/// bundle mutations must flow through those methods or the tables go
/// stale. Delta probes are pure reads and safe to issue concurrently;
/// Apply* must be called from one thread at a time.
class BundleStatsCache {
 public:
  /// Builds tables for `assignment` (not owned; must outlive the
  /// cache). `max_threads` caps the pool threads used by construction
  /// and by Apply* table updates; every value yields bit-identical
  /// tables. `backend` selects the batched rectangular kernel or the
  /// scalar loop for the rel[t][q] fill (bit-identical either way).
  BundleStatsCache(const HtaProblem& problem, Assignment* assignment,
                   size_t max_threads = 0,
                   DistanceBackend backend = DistanceBackend::kBatched);

  /// Objective change from replacing `worker`'s bundle member at `pos`
  /// with task `in` (which must not currently be in that bundle).
  double ReplaceDelta(WorkerIndex worker, size_t pos, TaskIndex in) const;

  /// Objective change from swapping bundles[q1][p1] with
  /// bundles[q2][p2] (q1 != q2).
  double ExchangeDelta(WorkerIndex q1, size_t p1, WorkerIndex q2,
                       size_t p2) const;

  /// Objective change from appending `in` (not currently in any
  /// position of `worker`'s bundle) to `worker`'s bundle.
  double InsertDelta(WorkerIndex worker, TaskIndex in) const;

  /// Applies the move to the assignment and updates all tables in
  /// O(|T|).
  void ApplyReplace(WorkerIndex worker, size_t pos, TaskIndex in);
  void ApplyInsert(WorkerIndex worker, TaskIndex in);

  /// The Eq. 3 objective derived purely from the maintained per-bundle
  /// sums: Σ_q 2·α_q·bundle_div_[q] + β_q·(|T_q|-1)·bundle_rel_[q].
  /// Audited against the from-scratch recompute (HTA_AUDIT=1), which
  /// makes stale bundle_div_/bundle_rel_ maintenance observable.
  double CachedTotalMotivation() const;

  /// Table accessors (exposed for tests).
  double DiversityToBundle(WorkerIndex worker, TaskIndex t) const {
    return div_sum_[static_cast<size_t>(worker) * task_count_ + t];
  }
  double BundleDiversity(WorkerIndex worker) const {
    return bundle_div_[worker];
  }
  double BundleRelevance(WorkerIndex worker) const {
    return bundle_rel_[worker];
  }
  double Relevance(TaskIndex t, WorkerIndex worker) const {
    return rel_[static_cast<size_t>(t) * worker_count_ + worker];
  }

 private:
  const HtaProblem* problem_;
  Assignment* assignment_;
  size_t max_threads_;
  size_t task_count_;
  size_t worker_count_;
  std::vector<double> rel_;         // [t * |W| + q] = rel(t, q).
  std::vector<double> div_sum_;     // [q * |T| + t] = Σ_m d(t, m).
  std::vector<double> bundle_div_;  // [q] = Σ pairs d within bundle q.
  std::vector<double> bundle_rel_;  // [q] = Σ members rel(m, q).
};

/// The naive reference evaluators the incremental tables replace —
/// retained verbatim so equivalence tests and the delta-kernel benches
/// can compare against them. O(|bundle|) work per call.
double NaiveReplaceDelta(const HtaProblem& problem, const TaskBundle& bundle,
                         size_t pos, TaskIndex in, WorkerIndex worker);

/// O(|bundle|²) — two full Motivation() evaluations plus a bundle copy.
double NaiveInsertDelta(const HtaProblem& problem, const TaskBundle& bundle,
                        TaskIndex in, WorkerIndex worker);

}  // namespace hta

#endif  // HTA_ASSIGN_LOCAL_SEARCH_H_
