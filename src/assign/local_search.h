#ifndef HTA_ASSIGN_LOCAL_SEARCH_H_
#define HTA_ASSIGN_LOCAL_SEARCH_H_

#include "assign/assignment.h"
#include "util/result.h"

namespace hta {

/// Local-search refinement of a feasible HTA assignment (an extension
/// beyond the paper): starting from any feasible assignment — typically
/// HTA-GRE's — repeatedly apply improving moves until a local optimum
/// or the pass budget is reached. Never decreases the objective, always
/// preserves feasibility (C1/C2), so approximation guarantees of the
/// seed assignment carry over.
///
/// Move neighborhood:
///  * replace  — swap an assigned task with an unassigned one (same
///               bundle position);
///  * exchange — swap two tasks between two workers' bundles;
///  * insert   — append an unassigned task to a bundle with spare
///               capacity.
struct LocalSearchOptions {
  /// Full passes over the neighborhood before giving up (each pass is
  /// first-improvement, deterministic order).
  size_t max_passes = 8;
  bool enable_replace = true;
  bool enable_exchange = true;
  bool enable_insert = true;
};

struct LocalSearchResult {
  Assignment assignment;
  double motivation = 0.0;       ///< Eq. 3 objective after refinement.
  double initial_motivation = 0.0;
  size_t improving_moves = 0;
  size_t passes = 0;             ///< Passes actually executed.
  bool reached_local_optimum = false;
};

/// Refines `initial` for `problem`. Fails with the validator's error if
/// the initial assignment is infeasible.
Result<LocalSearchResult> ImproveAssignment(const HtaProblem& problem,
                                            const Assignment& initial,
                                            const LocalSearchOptions& options);

}  // namespace hta

#endif  // HTA_ASSIGN_LOCAL_SEARCH_H_
