#ifndef HTA_ASSIGN_BRUTE_FORCE_H_
#define HTA_ASSIGN_BRUTE_FORCE_H_

#include "assign/assignment.h"
#include "util/result.h"

namespace hta {

/// Exact HTA solver by exhaustive enumeration: every task is tried in
/// every worker's bundle (capped at Xmax) and unassigned. Exponential —
/// (|W| + 1)^|T| states — so it refuses instances with more than ~12
/// tasks or 4 workers. Used by property tests to certify the
/// approximation factors of HTA-APP / HTA-GRE, and by the worked
/// example.
///
/// Returns the optimal assignment and its motivation value.
struct BruteForceResult {
  Assignment assignment;
  double motivation = 0.0;
};

Result<BruteForceResult> SolveHtaBruteForce(const HtaProblem& problem);

}  // namespace hta

#endif  // HTA_ASSIGN_BRUTE_FORCE_H_
