#include "assign/assignment.h"

#include <string>

namespace hta {

Status ValidateAssignment(const HtaProblem& problem,
                          const Assignment& assignment) {
  if (assignment.bundles.size() != problem.worker_count()) {
    return Status::InvalidArgument(
        "assignment has " + std::to_string(assignment.bundles.size()) +
        " bundles for " + std::to_string(problem.worker_count()) +
        " workers");
  }
  std::vector<bool> used(problem.task_count(), false);
  for (size_t q = 0; q < assignment.bundles.size(); ++q) {
    const TaskBundle& bundle = assignment.bundles[q];
    if (bundle.size() > problem.xmax()) {
      return Status::FailedPrecondition(
          "C1 violated: worker " + std::to_string(q) + " has " +
          std::to_string(bundle.size()) + " tasks > Xmax " +
          std::to_string(problem.xmax()));
    }
    for (TaskIndex t : bundle) {
      if (static_cast<size_t>(t) >= problem.task_count()) {
        return Status::OutOfRange("bundle contains invalid task index " +
                                  std::to_string(t));
      }
      if (used[t]) {
        return Status::FailedPrecondition(
            "C2 violated: task " + std::to_string(t) +
            " assigned more than once");
      }
      used[t] = true;
    }
  }
  return Status::OK();
}

double TotalMotivation(const HtaProblem& problem,
                       const Assignment& assignment) {
  double total = 0.0;
  for (double m : PerWorkerMotivation(problem, assignment)) total += m;
  return total;
}

std::vector<double> PerWorkerMotivation(const HtaProblem& problem,
                                        const Assignment& assignment) {
  HTA_CHECK_EQ(assignment.bundles.size(), problem.worker_count());
  std::vector<double> out(problem.worker_count(), 0.0);
  for (size_t q = 0; q < problem.worker_count(); ++q) {
    out[q] = Motivation(assignment.bundles[q], problem.workers()[q],
                        problem.oracle());
  }
  return out;
}

}  // namespace hta
