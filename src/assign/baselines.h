#ifndef HTA_ASSIGN_BASELINES_H_
#define HTA_ASSIGN_BASELINES_H_

#include "assign/assignment.h"
#include "assign/hta_solver.h"
#include "util/result.h"
#include "util/rng.h"

namespace hta {

/// The assignment strategies compared in the online deployment
/// (Section V-C) plus a random control.
enum class StrategyKind {
  kHtaGre,      ///< Adaptive HTA-GRE: per-worker (alpha, beta) estimates.
  kHtaGreDiv,   ///< HTA-GRE with alpha=1, beta=0 for everyone (diversity
                ///< only, non-adaptive).
  kHtaGreRel,   ///< HTA-GRE with alpha=0, beta=1 (relevance only,
                ///< non-adaptive).
  kRandom,      ///< Random feasible assignment (control).
};

/// Stable name ("hta-gre", "hta-gre-div", "hta-gre-rel", "random").
std::string StrategyName(StrategyKind kind);

/// Runs HTA-GRE after overriding every worker's weights to `weights`
/// (the HTA-GRE-DIV / HTA-GRE-REL strategies). The input problem is not
/// modified; workers are copied with replaced weights and the task side
/// (oracle included — also shared subset views and dense-matrix
/// overrides) is reused as-is via HtaProblem::WithWorkers. `threads`
/// caps the solve's pool draw (0 = full pool).
Result<HtaSolveResult> SolveWithFixedWeights(
    const HtaProblem& problem, MotivationWeights weights, uint64_t seed = 42,
    SwapMode swap = SwapMode::kRandom, size_t threads = 0);

/// Uniform-random feasible assignment: tasks are shuffled and dealt
/// round-robin up to Xmax each. Every returned assignment satisfies
/// C1/C2.
Result<HtaSolveResult> SolveRandomAssignment(const HtaProblem& problem,
                                             Rng* rng);

/// Relevance-greedy baseline (no diversity, no LSAP): workers take
/// turns picking their most relevant remaining task until everyone has
/// Xmax tasks or tasks run out. A natural "self-appointment" model of
/// how workers pick tasks on AMT.
Result<HtaSolveResult> SolveGreedyRelevance(const HtaProblem& problem);

/// Dispatches a strategy: kHtaGre solves with the workers' own weights;
/// the fixed strategies override them; kRandom uses `rng`. `swap`
/// selects the pair-permutation step of Algorithm 1 Lines 12-16: the
/// paper's randomized swap by default, or the derandomized best-of-two
/// variant (used by the deployment service, where giving a worker a
/// strictly better bundle is always preferable).
/// `threads` caps the solve's draw from the global pool (0 = full
/// pool, 1 = serial); every cap yields bit-identical assignments.
Result<HtaSolveResult> SolveWithStrategy(const HtaProblem& problem,
                                         StrategyKind kind, uint64_t seed,
                                         Rng* rng,
                                         SwapMode swap = SwapMode::kRandom,
                                         size_t threads = 0);

}  // namespace hta

#endif  // HTA_ASSIGN_BASELINES_H_
