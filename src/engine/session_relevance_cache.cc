#include "engine/session_relevance_cache.h"

#include "util/check.h"
#include "util/metrics.h"

namespace hta {

namespace {

/// Row lifecycle + gather observability. The owning service is
/// single-threaded, so counts are exact.
struct SessionRelMetrics {
  metrics::Counter rows_built{"engine.session_rel.rows_built"};
  metrics::Counter rows_dropped{"engine.session_rel.rows_dropped"};
  metrics::Counter budget_skips{"engine.session_rel.budget_skips"};
  metrics::Counter gathers{"engine.session_rel.gathers"};
  metrics::Counter gather_misses{"engine.session_rel.gather_misses"};
};

SessionRelMetrics& Srm() {
  static SessionRelMetrics* m = new SessionRelMetrics();
  return *m;
}

}  // namespace

SessionRelevanceCache::SessionRelevanceCache(const CatalogCache* cache,
                                             size_t max_bytes)
    : cache_(cache), max_bytes_(max_bytes) {
  HTA_CHECK(cache != nullptr);
}

void SessionRelevanceCache::AddSession(uint64_t worker_id,
                                       const KeywordVector& interests,
                                       size_t max_threads) {
  const size_t n = cache_->catalog().size();
  const size_t row_bytes = n * sizeof(double);
  auto it = rows_.find(worker_id);
  if (it == rows_.end()) {
    // bytes_used_ <= max_bytes_ by construction, so the subtraction
    // cannot wrap.
    if (row_bytes > max_bytes_ - bytes_used_) {
      Srm().budget_skips.Add();
      return;
    }
    it = rows_.emplace(worker_id, std::make_unique_for_overwrite<double[]>(n))
             .first;
    bytes_used_ += row_bytes;
  }
  cache_->FillRelevanceRow(interests, it->second.get(), max_threads);
  Srm().rows_built.Add();
}

void SessionRelevanceCache::RemoveSession(uint64_t worker_id) {
  auto it = rows_.find(worker_id);
  if (it == rows_.end()) return;
  rows_.erase(it);
  bytes_used_ -= cache_->catalog().size() * sizeof(double);
  Srm().rows_dropped.Add();
}

const double* SessionRelevanceCache::Row(uint64_t worker_id) const {
  auto it = rows_.find(worker_id);
  return it == rows_.end() ? nullptr : it->second.get();
}

bool SessionRelevanceCache::GatherTable(
    const std::vector<size_t>& catalog_indices,
    const std::vector<uint64_t>& worker_ids, std::vector<double>* out) const {
  std::vector<const double*> rows;
  rows.reserve(worker_ids.size());
  for (uint64_t id : worker_ids) {
    const double* row = Row(id);
    if (row == nullptr) {
      Srm().gather_misses.Add();
      return false;
    }
    rows.push_back(row);
  }
  const size_t num_workers = worker_ids.size();
  out->resize(catalog_indices.size() * num_workers);
  double* dst = out->data();
  for (size_t t = 0; t < catalog_indices.size(); ++t) {
    const size_t c = catalog_indices[t];
    HTA_DCHECK_LT(c, cache_->catalog().size());
    for (size_t q = 0; q < num_workers; ++q) {
      dst[t * num_workers + q] = rows[q][c];
    }
  }
  Srm().gathers.Add();
  return true;
}

}  // namespace hta
