#ifndef HTA_ENGINE_SHARDED_SERVICE_H_
#define HTA_ENGINE_SHARDED_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/assignment_service.h"

namespace hta {

/// Configuration of the sharded serving front-end. `service` configures
/// every per-shard AssignmentService (seed, strategy, caches, ...); the
/// shard count defaults to 1 and is overridden by the HTA_SHARDS
/// environment variable when set.
struct ShardedServiceOptions {
  AssignmentServiceOptions service;
  /// Disjoint task shards. Clamped to [1, catalog size] at
  /// construction; 1 reproduces the unsharded service bit-for-bit.
  size_t num_shards = 1;
};

/// A sharded serving front-end over N independent AssignmentServices.
///
/// The single AssignmentService is single-threaded by design: one
/// global object serializes every registration, completion, and
/// iteration, so the engine can solve fast but can only *serve* on one
/// core. This front-end partitions the catalog into `num_shards`
/// disjoint task shards — global index g lives in shard g % S at local
/// index g / S — and gives each shard a full AssignmentService with its
/// own TaskPool, CatalogCache, SessionRelevanceCache, and RNG stream
/// (`seed ^ shard_id`). Sessions are routed to shards by a
/// deterministic FNV-1a hash of the worker's interest bits, and each
/// public entry point locks only the target shard's mutex, so traffic
/// on different shards proceeds truly concurrently.
///
/// Determinism contract (the repo-wide rule, extended to serving):
///
///  * `num_shards == 1` is *bit-identical* to a bare AssignmentService
///    with the same options: the shard shares the caller's catalog
///    pointer and event log, worker ids are the same dense 1, 2, ...
///    stream, and the seed is untouched (`seed ^ 0`).
///  * For any shard count, results do not depend on which threads
///    drive the shards or on HTA_THREADS: each shard's state evolves
///    only from its own calls (disjoint tasks, disjoint workers,
///    per-shard RNG), and cross-shard aggregation (event-log merge,
///    iteration totals) happens in fixed shard order after the fact.
///
/// Worker ids are globally unique and encode their shard without
/// coordination: shard s of S allocates s + 1, s + 1 + S, s + 1 + 2S,
/// ... so ShardOfWorker(id) = (id - 1) % S. Completions are validated
/// against this mapping — a task from another worker's shard is
/// rejected as FailedPrecondition rather than silently aliased through
/// the local-index mapping.
///
/// Event logs: with one shard the caller's `options.service.event_log`
/// is handed straight to the shard. With several, each shard records
/// into a private log (timestamps from its own shard clock) and
/// FlushEventLog() merges them into the caller's log in deterministic
/// (minute, worker_id, shard, sequence) order — workers live in exactly
/// one shard, so every per-worker subsequence is preserved verbatim.
class ShardedAssignmentService {
 public:
  ShardedAssignmentService(const std::vector<Task>* catalog,
                           ShardedServiceOptions options);

  /// --- Routing (pure functions of the construction-time shard count).
  size_t num_shards() const { return shards_.size(); }
  /// Deterministic FNV-1a hash of the interest bits, mod num_shards.
  size_t ShardForInterests(const KeywordVector& interests) const;
  size_t ShardOfWorker(uint64_t worker_id) const {
    return static_cast<size_t>((worker_id - 1) % shards_.size());
  }
  size_t ShardOfTask(size_t catalog_index) const {
    return catalog_index % shards_.size();
  }
  size_t LocalTaskIndex(size_t catalog_index) const {
    return catalog_index / shards_.size();
  }
  size_t GlobalTaskIndex(size_t shard, size_t local_index) const {
    return local_index * shards_.size() + shard;
  }

  /// --- Serving surface (mirrors AssignmentService; thread-safe, each
  /// call locks exactly the target shard).
  uint64_t RegisterWorker(const KeywordVector& interests);
  /// Displayed bundle as *global* catalog indices.
  std::vector<size_t> Displayed(uint64_t worker_id) const;
  /// `catalog_index` is global; rejected (FailedPrecondition) when the
  /// task's shard is not the worker's shard.
  Status NotifyCompleted(uint64_t worker_id, size_t catalog_index);
  void Deregister(uint64_t worker_id);
  MotivationWeights CurrentWeights(uint64_t worker_id) const;

  /// Advances every shard clock (locks shards one at a time, in order).
  void AdvanceClock(double minute);
  /// Advances one shard's clock — the per-shard driver threads use this
  /// so independent shards never contend on a global clock.
  void AdvanceShardClock(size_t shard, double minute);
  double shard_clock_minutes(size_t shard) const;

  /// --- Aggregation / inspection. Sum and per-shard views; the
  /// reference accessor is for quiescent inspection (tests, benches) —
  /// it hands out the shard service without holding its lock.
  size_t iteration_count() const;
  const AssignmentService& shard(size_t s) const {
    return *shards_[s]->service;
  }
  const ShardedServiceOptions& options() const { return options_; }

  /// Merges per-shard event logs recorded since the last flush into the
  /// caller's `options.service.event_log` in deterministic
  /// (minute, worker_id, shard, sequence) order. No-op with one shard
  /// (the caller's log was written directly) or no caller log. Callers
  /// must be quiescent: a flush while shard clocks still advance could
  /// interleave a later flush's events before this one's.
  void FlushEventLog();

 private:
  struct Shard {
    mutable std::mutex mu;
    /// This shard's slice of the catalog (empty in single-shard
    /// pass-through mode, where the service reads the caller's
    /// catalog directly).
    std::vector<Task> catalog;
    /// Private event log (null in pass-through mode).
    std::unique_ptr<EventLog> log;
    /// How many of log's events earlier FlushEventLog calls consumed.
    size_t flushed = 0;
    std::unique_ptr<AssignmentService> service;
  };

  const std::vector<Task>* catalog_;
  ShardedServiceOptions options_;
  /// unique_ptr elements: Shard owns a mutex and is neither movable nor
  /// copyable once constructed.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hta

#endif  // HTA_ENGINE_SHARDED_SERVICE_H_
