#ifndef HTA_ENGINE_ASSIGNMENT_SERVICE_H_
#define HTA_ENGINE_ASSIGNMENT_SERVICE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "assign/baselines.h"
#include "core/catalog_cache.h"
#include "engine/event_log.h"
#include "engine/motivation_estimator.h"
#include "engine/session_relevance_cache.h"
#include "engine/task_pool.h"
#include "util/rng.h"

namespace hta {

/// Configuration of the crowdsourcing assignment service (Fig. 4).
/// Defaults mirror the paper's online deployment: Xmax = 15 optimized
/// tasks plus 5 random tasks displayed per worker.
struct AssignmentServiceOptions {
  StrategyKind strategy = StrategyKind::kHtaGre;
  DistanceKind metric = DistanceKind::kJaccard;
  size_t xmax = 15;
  /// Random tasks displayed alongside the optimized bundle, "to avoid
  /// falling into a silo" (Section V-C).
  size_t extra_random_tasks = 5;
  /// A worker's bundle is re-assigned after this many completions (the
  /// service's iteration trigger) — or earlier if they exhaust it.
  size_t refresh_after_completions = 5;
  /// Due workers are batched until this many need re-assignment, then
  /// one HTA solve serves them all (the W^i sets of Problem 1). A
  /// worker whose display is exhausted forces the batch immediately.
  /// 1 = re-assign as soon as anyone is due.
  size_t min_batch_workers = 1;
  /// Tasks per HTA solve are sampled down to this bound; real catalogs
  /// (the paper's CrowdFlower set has 158,018 tasks) are far larger
  /// than one iteration can meaningfully consider.
  size_t max_tasks_per_iteration = 300;
  /// If true, a departing worker's unfinished tasks return to the pool;
  /// if false (paper behavior) assigned tasks stay dropped.
  bool recycle_on_leave = false;
  /// Pair-swap variant used inside the strategy solve. The deployment
  /// defaults to the derandomized best-of-two step: handing a worker a
  /// strictly better bundle is always preferable online (the random
  /// swap exists for the offline expectation analysis).
  SwapMode swap = SwapMode::kBestOfTwo;
  /// Prior (alpha, beta) before any observation.
  MotivationWeights prior{0.5, 0.5};
  /// Optional audit log (not owned; must outlive the service). When
  /// set, every displayed bundle and completion is recorded with the
  /// service clock, enabling offline replay via ReplayEstimates.
  EventLog* event_log = nullptr;
  /// Warm catalog caches (default on): the service owns a CatalogCache
  /// built once at construction — the packed catalog rows plus a
  /// budget-gated persistent task-distance cache — and each iteration
  /// solves over a zero-copy CatalogSubsetView instead of copying
  /// sampled tasks into a fresh vector. Bit-identical to the cold path
  /// at any HTA_THREADS. The HTA_WARM_CACHE environment variable
  /// overrides (0 forces cold, anything else leaves this field as-is).
  bool warm_cache = true;
  /// Byte budget for the persistent catalog distance cache (doubles
  /// over the strict upper triangle, lazily filled per tile). The
  /// cache pays off when pairs are re-queried — small catalogs, long
  /// deployments, the motivation estimator's bundle-prefix scans — and
  /// loses when one-shot scattered queries trigger 128x128 tile fills
  /// they never reuse, so the default budget (32 MB, catalogs up to
  /// ~2.9k tasks) enables it only in the regime where it wins; larger
  /// catalogs keep the packed rows and batched kernels but recompute
  /// scalar distances per query. HTA_WARM_CACHE_BYTES overrides when
  /// set (raise it for long deployments over big catalogs).
  size_t warm_distance_cache_bytes = size_t{1} << 25;
  /// Byte budget for the persistent per-session relevance rows (one
  /// |catalog| double row per registered session, computed once at
  /// registration and gathered per iteration — see
  /// SessionRelevanceCache). Sessions past the budget fall back to the
  /// per-iteration rectangular sweep; results are bit-identical either
  /// way. Only active with warm_cache. HTA_SESSION_REL_BYTES overrides
  /// when set; 0 disables row caching entirely.
  size_t session_relevance_bytes = size_t{1} << 30;
  /// Cross-iteration warm start (off by default): when a due worker's
  /// previous optimized bundle still has surviving (displayed,
  /// uncompleted) tasks, the iteration's instance is the fresh sample
  /// plus those survivors, and the solve skips matching/LSAP entirely —
  /// local search starts from the carried bundles, patches holes from
  /// the sample (insert pass), and refines. Applies only to the
  /// adaptive kHtaGre strategy and requires warm_cache; iterations with
  /// no survivors run the cold solve (counted as
  /// engine.warm_start.cold_fallbacks). Changes assignments (objective
  /// empirically no worse; every seed and result is auditor-checked
  /// under HTA_AUDIT=1) — off, the deployment reproduces today's cold
  /// behavior exactly. The HTA_WARM_START environment variable
  /// overrides in both directions.
  bool warm_start = false;
  /// Thread cap handed to every strategy solve (0 = full HTA_THREADS
  /// pool, 1 = serial). Any cap yields bit-identical assignments.
  size_t solver_threads = 0;
  /// Worker-id allocation: ids are worker_id_start, start + stride,
  /// start + 2·stride, ... The defaults (1, 1) preserve the historic
  /// dense numbering; a sharded front-end gives shard s of S the
  /// stream (s + 1, stride S) so ids are globally unique and encode
  /// their shard without any cross-shard coordination.
  uint64_t worker_id_start = 1;
  uint64_t worker_id_stride = 1;
  uint64_t seed = 42;
};

/// Per-iteration diagnostics.
struct IterationRecord {
  size_t iteration = 0;
  size_t worker_count = 0;   ///< Workers (re)assigned in this iteration.
  size_t task_count = 0;     ///< Tasks offered to the solver.
  double solve_seconds = 0.0;
  /// Problem-construction time within solve_seconds: materializing the
  /// solver instance (task copies on the cold path; the zero-copy
  /// subset-view remap on the warm path). Availability sampling is
  /// excluded — it is identical in both modes.
  double setup_seconds = 0.0;
  double motivation = 0.0;   ///< Objective value of the solved instance.
  /// Warm-start diagnostics: whether this iteration's solve was seeded
  /// from carried-over bundles, how many surviving tasks it carried,
  /// and how many bundle holes the repair (insert pass) patched from
  /// the fresh sample. All zero on cold iterations.
  bool warm_seeded = false;
  size_t carried_tasks = 0;
  size_t repaired_slots = 0;
};

/// The platform workflow of Fig. 4: workers register, receive displayed
/// task sets, and notify completions; the service observes completions,
/// re-estimates (alpha, beta), and re-runs the configured assignment
/// strategy when a worker's trigger fires.
///
/// Single-threaded by design: the discrete-event simulator (and any
/// real deployment loop) serializes calls.
class AssignmentService {
 public:
  AssignmentService(const std::vector<Task>* catalog,
                    AssignmentServiceOptions options);

  /// A new worker arrives (Fig. 4 "New w"); returns their id and
  /// performs the first assignment (random cold-start bundle for the
  /// adaptive strategy, strategy solve otherwise).
  uint64_t RegisterWorker(const KeywordVector& interests);

  /// Tasks currently displayed to the worker (catalog indices,
  /// completed ones removed).
  std::vector<size_t> Displayed(uint64_t worker_id) const;

  /// The worker completed `catalog_index` (Fig. 4 "Notify t completed
  /// by w"). Updates the pool and the motivation estimate, and
  /// re-assigns when the refresh trigger fires.
  Status NotifyCompleted(uint64_t worker_id, size_t catalog_index);

  /// The worker's session ended.
  void Deregister(uint64_t worker_id);

  /// Current (alpha, beta) estimate for a worker.
  MotivationWeights CurrentWeights(uint64_t worker_id) const;

  /// Advances the service clock (used only to timestamp the audit
  /// log). Must be non-decreasing.
  void AdvanceClock(double minute);

  /// Current service clock in minutes.
  double clock_minutes() const { return clock_minutes_; }

  size_t iteration_count() const { return iterations_.size(); }
  const std::vector<IterationRecord>& iterations() const {
    return iterations_;
  }
  const TaskPool& pool() const { return pool_; }
  const AssignmentServiceOptions& options() const { return options_; }

  /// The warm catalog cache, or nullptr when running cold (options or
  /// HTA_WARM_CACHE=0 disabled it).
  const CatalogCache* warm_cache() const { return warm_cache_.get(); }

  /// The persistent per-session relevance rows, or nullptr when running
  /// cold or with a zero row budget.
  const SessionRelevanceCache* session_relevance() const {
    return session_rel_.get();
  }

 private:
  /// Tombstone marking a completed slot of a session's display list.
  static constexpr size_t kNoTask = static_cast<size_t>(-1);

  struct Session {
    explicit Session(Worker w) : worker(std::move(w)) {}

    Worker worker;
    /// Catalog indices in display order; completed entries become
    /// kNoTask tombstones so removal is O(1) via displayed_pos.
    std::vector<size_t> displayed;
    /// catalog index -> slot in `displayed` for live entries.
    std::unordered_map<size_t, size_t> displayed_pos;
    size_t displayed_live = 0;  ///< Non-tombstone entries.
    size_t completions_since_refresh = 0;
    bool active = true;
    bool cold = true;           // No strategy-solved bundle yet.
    bool needs_refresh = false; // Due for the next batched iteration.
    /// Every task ever displayed to this worker. A batched iteration
    /// can replace the display while a task is in flight; submissions
    /// of previously granted (still assigned) tasks are accepted.
    std::unordered_set<size_t> granted;
    /// The optimized bundle of the most recent Display (catalog
    /// indices, random extras excluded). Its members still present in
    /// displayed_pos are the warm-start survivors carried into the
    /// worker's next iteration.
    std::vector<size_t> last_bundle;
  };

  /// Re-assigns bundles to the given (active) workers.
  void RunIteration(const std::vector<uint64_t>& worker_ids);

  /// Draws up to `count` random available tasks and marks them assigned.
  std::vector<size_t> DrawRandomAvailable(size_t count);

  void Display(Session* session, std::vector<size_t> bundle);

  const std::vector<Task>* catalog_;
  AssignmentServiceOptions options_;
  TaskPool pool_;
  MotivationEstimator estimator_;
  Rng rng_;
  /// Warm per-catalog caches (packed rows + lazy distance triangle),
  /// built once per service and shared by every iteration. Null when
  /// the service runs cold.
  std::unique_ptr<CatalogCache> warm_cache_;
  /// Persistent per-session relevance rows (computed at registration,
  /// gathered per iteration). Null when running cold or when the row
  /// budget is zero.
  std::unique_ptr<SessionRelevanceCache> session_rel_;
  /// Scratch for the per-iteration instance task list (the sampled or
  /// full available set, plus carried survivors under warm start) —
  /// reused across iterations instead of materializing a fresh vector.
  std::vector<size_t> scratch_available_;
  uint64_t next_worker_id_;
  double clock_minutes_ = 0.0;
  size_t active_sessions_ = 0;
  std::unordered_map<uint64_t, Session> sessions_;
  /// Active workers with needs_refresh set — the batch candidates of
  /// the next iteration, kept sorted so the due scan is O(|due|)
  /// instead of a full sessions_ sweep per completion.
  std::set<uint64_t> due_;
  std::vector<IterationRecord> iterations_;
};

}  // namespace hta

#endif  // HTA_ENGINE_ASSIGNMENT_SERVICE_H_
