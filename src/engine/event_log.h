#ifndef HTA_ENGINE_EVENT_LOG_H_
#define HTA_ENGINE_EVENT_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/distance.h"
#include "core/task.h"
#include "core/worker.h"
#include "util/result.h"

namespace hta {

/// An append-only record of what the platform did: bundles displayed
/// and tasks completed, in wall-clock order. This is the "observe
/// workers in task completion" trace of Section III made durable, so
/// that motivation estimates can be recomputed offline, audited, or
/// re-derived under a different metric.
struct LoggedEvent {
  enum class Kind : uint8_t {
    kDisplayed,    ///< A bundle was displayed to the worker.
    kCompleted,    ///< The worker completed one task.
    kRegistered,   ///< The worker's session began (no task ids).
    kDeregistered, ///< The worker's session ended (no task ids).
  };

  double minute = 0.0;
  uint64_t worker_id = 0;
  Kind kind = Kind::kDisplayed;
  /// Task *ids* (stable across catalog reloads): the displayed bundle,
  /// or a single completed task.
  std::vector<uint64_t> task_ids;
};

/// Append-only event log. Events must be appended in non-decreasing
/// time order (checked).
class EventLog {
 public:
  void RecordDisplayed(double minute, uint64_t worker_id,
                       std::vector<uint64_t> bundle_task_ids);
  void RecordCompleted(double minute, uint64_t worker_id, uint64_t task_id);
  void RecordRegistered(double minute, uint64_t worker_id);
  void RecordDeregistered(double minute, uint64_t worker_id);

  const std::vector<LoggedEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  void Append(LoggedEvent event);
  std::vector<LoggedEvent> events_;
};

/// Replays an event log through the Section III estimator and returns
/// the final (alpha, beta) estimate per worker. `workers` supplies the
/// interest vectors (matched by worker id); tasks are resolved by id
/// against `catalog`. Fails on unknown worker or task ids.
Result<std::unordered_map<uint64_t, MotivationWeights>> ReplayEstimates(
    const EventLog& log, const std::vector<Task>& catalog,
    const std::vector<Worker>& workers,
    DistanceKind kind = DistanceKind::kJaccard,
    MotivationWeights prior = MotivationWeights{0.5, 0.5});

}  // namespace hta

#endif  // HTA_ENGINE_EVENT_LOG_H_
