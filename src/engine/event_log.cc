#include "engine/event_log.h"

#include <string>

#include "engine/motivation_estimator.h"
#include "util/check.h"

namespace hta {

void EventLog::Append(LoggedEvent event) {
  HTA_CHECK(events_.empty() || event.minute >= events_.back().minute)
      << "event log must be appended in time order";
  events_.push_back(std::move(event));
}

void EventLog::RecordDisplayed(double minute, uint64_t worker_id,
                               std::vector<uint64_t> bundle_task_ids) {
  LoggedEvent event;
  event.minute = minute;
  event.worker_id = worker_id;
  event.kind = LoggedEvent::Kind::kDisplayed;
  event.task_ids = std::move(bundle_task_ids);
  Append(std::move(event));
}

void EventLog::RecordCompleted(double minute, uint64_t worker_id,
                               uint64_t task_id) {
  LoggedEvent event;
  event.minute = minute;
  event.worker_id = worker_id;
  event.kind = LoggedEvent::Kind::kCompleted;
  event.task_ids = {task_id};
  Append(std::move(event));
}

void EventLog::RecordRegistered(double minute, uint64_t worker_id) {
  LoggedEvent event;
  event.minute = minute;
  event.worker_id = worker_id;
  event.kind = LoggedEvent::Kind::kRegistered;
  Append(std::move(event));
}

void EventLog::RecordDeregistered(double minute, uint64_t worker_id) {
  LoggedEvent event;
  event.minute = minute;
  event.worker_id = worker_id;
  event.kind = LoggedEvent::Kind::kDeregistered;
  Append(std::move(event));
}

Result<std::unordered_map<uint64_t, MotivationWeights>> ReplayEstimates(
    const EventLog& log, const std::vector<Task>& catalog,
    const std::vector<Worker>& workers, DistanceKind kind,
    MotivationWeights prior) {
  std::unordered_map<uint64_t, size_t> task_index_by_id;
  for (size_t i = 0; i < catalog.size(); ++i) {
    task_index_by_id.emplace(catalog[i].id(), i);
  }
  std::unordered_map<uint64_t, const Worker*> worker_by_id;
  for (const Worker& w : workers) worker_by_id.emplace(w.id(), &w);

  MotivationEstimator estimator(&catalog, kind, prior);
  std::unordered_map<uint64_t, MotivationWeights> estimates;

  for (const LoggedEvent& event : log.events()) {
    auto worker_it = worker_by_id.find(event.worker_id);
    if (worker_it == worker_by_id.end()) {
      return Status::NotFound("event log references unknown worker " +
                              std::to_string(event.worker_id));
    }
    std::vector<size_t> indices;
    indices.reserve(event.task_ids.size());
    for (uint64_t id : event.task_ids) {
      auto task_it = task_index_by_id.find(id);
      if (task_it == task_index_by_id.end()) {
        return Status::NotFound("event log references unknown task " +
                                std::to_string(id));
      }
      indices.push_back(task_it->second);
    }
    switch (event.kind) {
      case LoggedEvent::Kind::kDisplayed:
        estimator.BeginBundle(event.worker_id, indices);
        break;
      case LoggedEvent::Kind::kCompleted:
        HTA_CHECK_EQ(indices.size(), size_t{1});
        estimator.ObserveCompletion(event.worker_id, indices[0],
                                    *worker_it->second);
        break;
      case LoggedEvent::Kind::kRegistered:
      case LoggedEvent::Kind::kDeregistered:
        // Session boundaries carry no estimator state; they are logged
        // for deployment timeline audits (and still validate the
        // worker id above).
        break;
    }
    estimates[event.worker_id] = estimator.Estimate(event.worker_id);
  }
  return estimates;
}

}  // namespace hta
