#ifndef HTA_ENGINE_MOTIVATION_ESTIMATOR_H_
#define HTA_ENGINE_MOTIVATION_ESTIMATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/catalog_cache.h"
#include "core/distance.h"
#include "core/task.h"
#include "core/worker.h"
#include "engine/session_relevance_cache.h"

namespace hta {

/// Estimates each worker's (alpha^i_w, beta^i_w) from observed task
/// completions, per Section III ("Task Assignment in Iterations"):
///
/// When worker w completes task t_j from her assigned bundle after
/// already completing {t_1, ..., t_{j-1}} of it, we record
///   * the marginal diversity gain  sum_{k<j} d(t_j, t_k), normalized by
///     the maximum such gain achievable with any still-uncompleted task
///     of the bundle, and
///   * the relevance gain rel(t_j, w), normalized the same way.
/// alpha (resp. beta) is the running average of the normalized diversity
/// (resp. relevance) gains over *all* completions observed so far, and
/// the pair is renormalized to alpha + beta = 1.
///
/// Observations where the normalizer is zero (e.g. the first task of a
/// bundle has no diversity margin, or every remaining task has zero
/// relevance) carry no preference signal and are skipped for that
/// component.
///
/// Tasks are referenced by their index into a fixed catalog vector,
/// which must outlive the estimator.
class MotivationEstimator {
 public:
  MotivationEstimator(const std::vector<Task>* catalog, DistanceKind kind,
                      MotivationWeights prior = MotivationWeights{0.5, 0.5});

  /// Routes the estimator's pairwise distances through a warm catalog
  /// cache (must be over the same catalog and kind, and outlive the
  /// estimator). Values stay bit-identical to the scalar path — the
  /// cache replicates PairwiseTaskDiversity exactly — so attaching it
  /// never changes an estimate, only the cost of producing it.
  void AttachSharedCache(const CatalogCache* cache);

  /// Routes the estimator's task-relevance evaluations through the
  /// engine's persistent per-session rows (must outlive the estimator).
  /// A session with a cached row gets O(1) lookups instead of a scalar
  /// TaskRelevance per candidate scan; sessions without one (budget
  /// skip) keep the scalar path. Row values come from the same
  /// popcount kernels, so estimates are bit-identical either way.
  void AttachSessionRelevance(const SessionRelevanceCache* rows);

  /// Starts a new assigned bundle for the worker (called on each
  /// assignment iteration). Progress within a previous bundle is
  /// discarded; accumulated gain averages persist across bundles.
  void BeginBundle(uint64_t worker_id,
                   const std::vector<size_t>& bundle_catalog_indices);

  /// Records that the worker completed `catalog_task`. The task should
  /// belong to the worker's current bundle; unknown tasks are ignored
  /// (workers may complete the extra random tasks the platform displays
  /// alongside the optimized bundle, which carry no bundle-relative
  /// signal).
  void ObserveCompletion(uint64_t worker_id, size_t catalog_task,
                         const Worker& worker);

  /// Current estimate; the prior if the worker has no usable
  /// observations yet.
  MotivationWeights Estimate(uint64_t worker_id) const;

  /// Number of diversity / relevance observations accumulated.
  size_t DiversityObservationCount(uint64_t worker_id) const;
  size_t RelevanceObservationCount(uint64_t worker_id) const;

 private:
  struct WorkerState {
    std::vector<size_t> bundle;     // Catalog indices of the current bundle.
    std::vector<size_t> completed;  // Completed members, in order.
    double diversity_gain_sum = 0.0;
    size_t diversity_gain_count = 0;
    double relevance_gain_sum = 0.0;
    size_t relevance_gain_count = 0;
  };

  double Distance(size_t a, size_t b) const;
  double Relevance(uint64_t worker_id, size_t catalog_task,
                   const Worker& worker) const;

  const std::vector<Task>* catalog_;
  DistanceKind kind_;
  MotivationWeights prior_;
  const CatalogCache* shared_cache_ = nullptr;
  const SessionRelevanceCache* session_rel_ = nullptr;
  std::unordered_map<uint64_t, WorkerState> states_;
};

}  // namespace hta

#endif  // HTA_ENGINE_MOTIVATION_ESTIMATOR_H_
