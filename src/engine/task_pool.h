#ifndef HTA_ENGINE_TASK_POOL_H_
#define HTA_ENGINE_TASK_POOL_H_

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "util/status.h"

namespace hta {

/// Lifecycle state of a catalog task within a deployment.
enum class TaskState : uint8_t {
  kAvailable,  ///< Eligible for assignment at the next iteration.
  kAssigned,   ///< Handed to a worker; dropped from later iterations.
  kCompleted,  ///< Finished by a worker.
};

/// Tracks task lifecycle across assignment iterations (Section III:
/// "Once assigned, a task is dropped from subsequent iterations").
///
/// The pool references a fixed catalog (not owned). By default an
/// assigned-but-never-completed task stays out of circulation, matching
/// the paper; `Release` puts such tasks back (used when a worker leaves
/// mid-session and the deployment opts to recycle their leftovers).
///
/// The available set is maintained incrementally as a word bitset plus
/// a Fenwick tree over per-word popcounts, so the engine's sampling
/// never rebuilds an O(|catalog|) index vector per draw:
/// SelectAvailable answers order statistics in O(log |catalog|) and
/// AvailableIndices materializes a snapshot by scanning words (64 tasks
/// per iteration step) rather than bytes.
class TaskPool {
 public:
  explicit TaskPool(const std::vector<Task>* catalog);

  const std::vector<Task>& catalog() const { return *catalog_; }
  size_t size() const { return states_.size(); }

  TaskState state(size_t catalog_index) const;

  /// Indices of all currently available tasks, ascending.
  std::vector<size_t> AvailableIndices() const;

  /// Same snapshot written into a caller-owned buffer (cleared first),
  /// so a per-iteration caller reuses one allocation instead of
  /// materializing a fresh vector every time.
  void AvailableIndicesInto(std::vector<size_t>* out) const;

  /// Catalog index of the `rank`-th available task in ascending order
  /// (0-based; requires rank < available_count()). O(log |catalog|).
  size_t SelectAvailable(size_t rank) const;

  size_t available_count() const { return available_count_; }
  size_t completed_count() const { return completed_count_; }

  /// Marks an available task as assigned. Fails with FailedPrecondition
  /// if the task is not available.
  Status MarkAssigned(size_t catalog_index);

  /// Marks an assigned task as completed. Fails if not assigned.
  Status MarkCompleted(size_t catalog_index);

  /// Returns an assigned (not completed) task to the available pool.
  Status Release(size_t catalog_index);

 private:
  void SetAvailableBit(size_t catalog_index);
  void ClearAvailableBit(size_t catalog_index);
  void FenwickAdd(size_t word, int32_t delta);

  const std::vector<Task>* catalog_;
  std::vector<TaskState> states_;
  size_t available_count_ = 0;
  size_t completed_count_ = 0;
  std::vector<uint64_t> avail_words_;  // Bit i set <=> task i available.
  std::vector<int32_t> fenwick_;       // 1-based BIT over word popcounts.
  size_t fenwick_mask_ = 0;            // Highest power of two <= word count.
};

}  // namespace hta

#endif  // HTA_ENGINE_TASK_POOL_H_
